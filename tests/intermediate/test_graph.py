"""Intermediate-layer tests: wrapping jobs and XML imports."""

from repro.etl import job_to_xml
from repro.intermediate import from_job, from_xml
from repro.workloads import build_example_job


class TestFromJob:
    def test_structurally_isomorphic_to_job(self):
        # "the Intermediate layer graph for our example ... is
        # structurally isomorphic to the ETL job graph"
        job = build_example_job()
        graph = from_job(job)
        assert len(graph) == len(job.stages)
        assert sorted(e.name for e in graph.edges) == sorted(
            l.name for l in job.links
        )

    def test_nodes_wrap_stages(self):
        job = build_example_job()
        graph = from_job(job)
        node = graph.node("NonLoans")
        assert node.stage is job.stage("NonLoans")
        assert node.KIND == "Filter"

    def test_schema_propagation_delegates_to_stages(self):
        graph = from_job(build_example_job())
        graph.propagate_schemas()
        edge = graph.find_edge("DSLink10")
        assert "totalBalance" in edge.schema.attribute_names

    def test_keeps_job_reference(self):
        job = build_example_job()
        assert from_job(job).job is job


class TestFromXml:
    def test_import_via_external_format(self):
        # the serialized-exchange path of older DataStage versions
        job = build_example_job()
        graph = from_xml(job_to_xml(job))
        assert len(graph) == len(job.stages)
        graph.propagate_schemas()
