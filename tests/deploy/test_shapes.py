"""Box shape analysis tests."""

import pytest

from repro.deploy.shapes import analyze_box, chain_matches
from repro.ohm import (
    BasicProject,
    Filter,
    Group,
    Join,
    OhmGraph,
    Project,
    Source,
    Split,
    Target,
    Union,
    Unknown,
)
from repro.schema import relation


@pytest.fixture
def rel():
    return relation("R", ("id", "int", False), ("v", "float"))


def example_graph(rel):
    """source → FILTER → BASIC PROJECT → SPLIT → (FILTER, FILTER) → targets"""
    g = OhmGraph()
    s = g.add(Source(rel))
    f = g.add(Filter("v > 0"))
    bp = g.add(BasicProject([("id", "id"), ("v", "v")]))
    sp = g.add(Split())
    f1 = g.add(Filter("v > 10"))
    f2 = g.add(Filter("v <= 10"))
    t1 = g.add(Target(rel.renamed("A")))
    t2 = g.add(Target(rel.renamed("B")))
    g.chain(s, f, bp, sp)
    g.connect(sp, f1, src_port=0)
    g.connect(sp, f2, src_port=1)
    g.connect(f1, t1)
    g.connect(f2, t2)
    return g, s, f, bp, sp, f1, f2


class TestLinearShapes:
    def test_single_operator(self, rel):
        g, s, f, bp, sp, f1, f2 = example_graph(rel)
        shape = analyze_box(g, {f.uid})
        assert shape.kind == "linear"
        assert [op.uid for op in shape.chain] == [f.uid]

    def test_chain(self, rel):
        g, s, f, bp, sp, f1, f2 = example_graph(rel)
        shape = analyze_box(g, {f.uid, bp.uid})
        assert shape.kind == "linear"
        assert [op.KIND for op in shape.chain] == ["FILTER", "BASIC PROJECT"]

    def test_disconnected_box_rejected(self, rel):
        g, s, f, bp, sp, f1, f2 = example_graph(rel)
        assert analyze_box(g, {f.uid, f1.uid}) is None

    def test_access_operators_never_boxed(self, rel):
        g, s, f, *_ = example_graph(rel)
        assert analyze_box(g, {s.uid}) is None
        assert analyze_box(g, {s.uid, f.uid}) is None


class TestFanoutShapes:
    def test_split_alone(self, rel):
        g, s, f, bp, sp, f1, f2 = example_graph(rel)
        shape = analyze_box(g, {sp.uid})
        assert shape.kind == "fanout"
        assert shape.branches == [[], []]

    def test_split_with_branches(self, rel):
        g, s, f, bp, sp, f1, f2 = example_graph(rel)
        shape = analyze_box(g, {sp.uid, f1.uid, f2.uid})
        assert shape.kind == "fanout"
        assert [[op.KIND for op in b] for b in shape.branches] == [
            ["FILTER"], ["FILTER"],
        ]

    def test_partial_branch_coverage(self, rel):
        g, s, f, bp, sp, f1, f2 = example_graph(rel)
        shape = analyze_box(g, {sp.uid, f1.uid})
        assert shape.kind == "fanout"
        assert [[op.KIND for op in b] for b in shape.branches] == [
            ["FILTER"], [],
        ]

    def test_upstream_member_breaks_fanout(self, rel):
        g, s, f, bp, sp, f1, f2 = example_graph(rel)
        # bp -> sp -> f1: entry is bp (linear), but sp in the chain is
        # not a simple operator
        assert analyze_box(g, {bp.uid, sp.uid, f1.uid}) is None


class TestHeadShapes:
    def test_join_with_trailing_project(self, rel):
        other = relation("S", ("id", "int", False), ("w", "float"))
        g = OhmGraph()
        s1 = g.add(Source(rel))
        s2 = g.add(Source(other))
        j = g.add(Join("L.id = R.id"))
        bp = g.add(BasicProject([("id", "L.id"), ("v", "v"), ("w", "w")]))
        t = g.add(Target(relation("Out", ("id", "int"), ("v", "float"),
                                  ("w", "float"))))
        g.connect(s1, j, name="L")
        g.connect(s2, j, dst_port=1, name="R")
        g.chain(j, bp, t)
        shape = analyze_box(g, {j.uid, bp.uid})
        assert shape.kind == "join"
        assert [op.KIND for op in shape.chain] == ["BASIC PROJECT"]

    def test_union_shape(self, rel):
        other = rel.renamed("R2")
        g = OhmGraph()
        s1 = g.add(Source(rel))
        s2 = g.add(Source(other))
        u = g.add(Union())
        t = g.add(Target(rel.renamed("Out")))
        g.connect(s1, u, dst_port=0)
        g.connect(s2, u, dst_port=1)
        g.connect(u, t)
        shape = analyze_box(g, {u.uid})
        assert shape.kind == "union"

    def test_unknown_is_opaque_and_alone(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        u = g.add(Unknown([rel.renamed("o")], "box"))
        f = g.add(Filter("v > 0"))
        t = g.add(Target(rel.renamed("Out")))
        g.chain(s, u, f, t)
        assert analyze_box(g, {u.uid}).kind == "opaque"
        assert analyze_box(g, {u.uid, f.uid}) is None


class TestChainMatches:
    def test_optional_pattern(self, rel):
        f = Filter("v > 0")
        bp = BasicProject([("id", "id")])
        pattern = [(Filter, True), (BasicProject, True)]
        assert chain_matches([f, bp], pattern)
        assert chain_matches([f], pattern)
        assert chain_matches([bp], pattern)
        assert chain_matches([], pattern)
        assert not chain_matches([bp, f], pattern)
        assert not chain_matches([f, bp, bp], pattern)

    def test_required_pattern(self):
        g = Group(["a"])
        assert chain_matches([g], [(Group, False)])
        assert not chain_matches([], [(Group, False)])
