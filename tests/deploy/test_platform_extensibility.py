"""Platform extensibility and ablation tests.

The paper: "Orchid is extensible with respect to data processing
platforms ... New ETL import/export and compilation/deployment
components ... can be added to the system without impacting any of the
functionality of the OHM layer", and the merge heuristic "prefer[s]
solutions that have less RP operators".
"""

import pytest

from repro.compile import compile_job
from repro.deploy import (
    DATASTAGE,
    RuntimePlatform,
    build_minimal_platform,
    deploy_to_job,
    plan_deployment,
)
from repro.deploy.datastage import AggregatorRp, CustomRp, JoinRp, TransformerRp
from repro.errors import DeploymentError
from repro.etl import run_job
from repro.workloads import (
    build_example_job,
    build_fanout_job,
    generate_chain_instance,
    generate_instance,
)


class TestMinimalPlatform:
    def test_filters_deploy_as_transformers(self):
        graph = compile_job(build_example_job())
        job, plan = deploy_to_job(graph, build_minimal_platform())
        types = [s.STAGE_TYPE for s in job.stages]
        assert "Filter" not in types
        assert types.count("Transformer") == 3  # prepare + NonLoans + router

    def test_semantics_identical_across_platforms(self):
        graph = compile_job(build_example_job())
        ds_job, _ = deploy_to_job(graph, DATASTAGE)
        min_job, _ = deploy_to_job(graph, build_minimal_platform())
        instance = generate_instance(40)
        assert run_job(min_job, instance).same_bags(run_job(ds_job, instance))

    def test_fanout_on_minimal_platform(self):
        graph = compile_job(build_fanout_job(3))
        job, _ = deploy_to_job(graph, build_minimal_platform())
        instance = generate_chain_instance(50)
        assert run_job(job, instance).same_bags(
            run_job(build_fanout_job(3), instance)
        )

    def test_choice_step_changes_with_repertoire(self):
        # the same box is implemented by different RP operators depending
        # on what the platform registered (the §VI-B choice step)
        graph = compile_job(build_example_job())
        ds_plan = plan_deployment(graph.shallow_copy(), DATASTAGE)
        min_plan = plan_deployment(
            graph.shallow_copy(), build_minimal_platform()
        )
        ds_names = sorted(box.chosen.name for box in ds_plan.boxes)
        min_names = sorted(box.chosen.name for box in min_plan.boxes)
        assert "Filter" in ds_names
        assert "Filter" not in min_names
        assert min_names.count("Transformer") > ds_names.count("Transformer")


class TestMergeAblation:
    def test_no_merge_yields_more_stages(self):
        graph = compile_job(build_example_job())
        merged, _ = deploy_to_job(graph)
        unmerged, plan = deploy_to_job(graph, merge=False)
        assert len(unmerged.stages) > len(merged.stages)
        # every box holds exactly one operator
        assert all(len(box.uids) == 1 for box in plan.boxes)

    def test_no_merge_preserves_semantics(self):
        graph = compile_job(build_example_job())
        unmerged, _ = deploy_to_job(graph, merge=False)
        instance = generate_instance(40)
        assert run_job(unmerged, instance).same_bags(
            run_job(build_example_job(), instance)
        )


class TestCustomPlatformRegistration:
    def test_partial_repertoire_fails_loudly(self):
        sparse = RuntimePlatform("sparse")
        sparse.register(JoinRp())
        graph = compile_job(build_example_job())
        with pytest.raises(DeploymentError) as info:
            plan_deployment(graph, sparse)
        assert "sparse" in str(info.value)

    def test_sufficient_repertoire_works(self):
        enough = RuntimePlatform("enough")
        for rp in (TransformerRp(), JoinRp(), AggregatorRp(), CustomRp()):
            enough.register(rp)
        graph = compile_job(build_example_job())
        job, _ = deploy_to_job(graph, enough)
        instance = generate_instance(30)
        assert run_job(job, instance).same_bags(
            run_job(build_example_job(), instance)
        )
