"""RP framework unit tests: candidates, boxes, plans, boundary edges."""

import pytest

from repro.compile import compile_job
from repro.deploy import DATASTAGE, plan_deployment
from repro.deploy.platform import Box, RuntimePlatform
from repro.errors import DeploymentError
from repro.ohm import BasicProject, Filter, OhmGraph, Source, Target
from repro.schema import relation
from repro.workloads import build_example_job


@pytest.fixture
def small_graph():
    rel = relation("R", ("id", "int", False), ("v", "float"))
    g = OhmGraph("small")
    s = g.add(Source(rel))
    f = g.add(Filter("v > 0"))
    bp = g.add(BasicProject([("id", "id")]))
    t = g.add(Target(relation("Out", ("id", "int"))))
    g.chain(s, f, bp, t, names=["in", "mid", "out"])
    g.propagate_schemas()
    return g, s, f, bp, t


class TestCandidates:
    def test_candidates_sorted_by_priority(self, small_graph):
        g, s, f, bp, t = small_graph
        candidates = DATASTAGE.candidates(g, {f.uid, bp.uid})
        names = [c.name for c in candidates]
        assert names[0] == "Filter"  # priority 30 beats Transformer's 20
        assert "Transformer" in names

    def test_no_candidates_for_shapeless_box(self, small_graph):
        g, s, f, bp, t = small_graph
        assert DATASTAGE.candidates(g, {s.uid, f.uid}) == []

    def test_lone_basic_project_has_multiple_implementations(self, small_graph):
        g, s, f, bp, t = small_graph
        names = [c.name for c in DATASTAGE.candidates(g, {bp.uid})]
        # "all DataStage stages can perform simple projections"
        assert "Copy" in names and "Modify" in names and "Transformer" in names

    def test_empty_box_has_no_candidates(self, small_graph):
        g, *_ = small_graph
        assert DATASTAGE.candidates(g, set()) == []


class TestBox:
    def test_chosen_is_best_candidate(self, small_graph):
        g, s, f, bp, t = small_graph
        box = Box({f.uid})
        box.candidates = DATASTAGE.candidates(g, box.uids)
        assert box.chosen.name == "Filter"

    def test_chosen_without_candidates_raises(self):
        with pytest.raises(DeploymentError):
            Box({"x"}).chosen


class TestDeploymentPlan:
    def test_boundary_edges_exclude_intra_box_edges(self, small_graph):
        g, s, f, bp, t = small_graph
        plan = plan_deployment(g, DATASTAGE)
        # filter+project merged into one box: 'mid' is internal
        boundary_names = {e.name for e in plan.boundary_edges()}
        assert boundary_names == {"in", "out"}

    def test_box_of_lookup(self, small_graph):
        g, s, f, bp, t = small_graph
        plan = plan_deployment(g, DATASTAGE)
        assert plan.box_of(f.uid) is plan.box_of(bp.uid)
        assert plan.box_of(s.uid) is None  # access operators are not boxed

    def test_boxes_ordered_by_dataflow(self):
        graph = compile_job(build_example_job())
        plan = plan_deployment(graph, DATASTAGE)
        position = {
            op.uid: i for i, op in enumerate(graph.topological_order())
        }
        firsts = [min(position[u] for u in box.uids) for box in plan.boxes]
        assert firsts == sorted(firsts)

    def test_describe_lists_alternatives(self, small_graph):
        g, *_ = small_graph
        text = plan_deployment(g, DATASTAGE).describe()
        assert "alternatives" in text and "Filter" in text


class TestRegistration:
    def test_fresh_platform_is_empty(self):
        platform = RuntimePlatform("fresh")
        assert platform.operators == []
        assert "fresh" in repr(platform)

    def test_register_returns_operator(self):
        from repro.deploy.datastage import FilterRp

        platform = RuntimePlatform("p")
        rp = FilterRp()
        assert platform.register(rp) is rp
        assert platform.operators == [rp]
