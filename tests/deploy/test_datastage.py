"""DataStage deployment tests: planning (Figure 10) and job rebuilding."""

import pytest

from repro.compile import compile_job
from repro.deploy import DATASTAGE, deploy_to_job, plan_deployment
from repro.deploy.datastage import AggregatorRp, FilterRp, JoinRp, TransformerRp
from repro.deploy.shapes import analyze_box
from repro.errors import DeploymentError
from repro.data.dataset import Dataset, Instance
from repro.etl import run_job
from repro.ohm import (
    BasicProject,
    Filter,
    Group,
    OhmGraph,
    Source,
    Split,
    Target,
    Union,
    execute,
)
from repro.schema import relation
from repro.workloads import (
    build_chain_job,
    build_example_job,
    build_fanout_job,
    build_star_join_job,
    generate_chain_instance,
    generate_instance,
    generate_star_instance,
)


class TestFigure10Plan:
    @pytest.fixture
    def plan(self):
        graph = compile_job(build_example_job())
        return plan_deployment(graph, DATASTAGE)

    def test_five_boxes(self, plan):
        assert len(plan.boxes) == 5

    def test_box_contents_match_figure10(self, plan):
        kinds = []
        for box in plan.boxes:
            kinds.append(
                sorted(plan.graph.operator(uid).KIND for uid in box.uids)
            )
        assert sorted(map(tuple, kinds)) == sorted(
            map(
                tuple,
                [
                    ["PROJECT"],
                    ["BASIC PROJECT", "FILTER"],
                    ["BASIC PROJECT", "JOIN"],
                    ["GROUP"],
                    ["FILTER", "FILTER", "SPLIT"],
                ],
            )
        )

    def test_filter_boxes_offer_filter_and_transformer(self, plan):
        # "This merged box can be implemented with either a single Filter
        # or Transform stage ... a Filter stage would be the natural choice"
        for box in plan.boxes:
            kinds = {plan.graph.operator(uid).KIND for uid in box.uids}
            if kinds == {"FILTER", "BASIC PROJECT"} or kinds == {
                "SPLIT", "FILTER",
            }:
                names = [c.name for c in box.candidates]
                assert names[0] == "Filter"
                assert "Transformer" in names

    def test_join_box_offers_lookup_alternative(self, plan):
        for box in plan.boxes:
            kinds = {plan.graph.operator(uid).KIND for uid in box.uids}
            if "JOIN" in kinds:
                names = [c.name for c in box.candidates]
                assert names[0] == "Join"
                assert "Lookup" in names

    def test_describe_renders(self, plan):
        text = plan.describe()
        assert "box 1" in text and "alternatives" in text


class TestAggregatorCounterExample:
    def test_basic_project_group_does_not_merge(self):
        # "we cannot merge them into one Aggregator RP operator box
        # because the Aggregator template starts with a GROUP operator"
        rel = relation("R", ("id", "int", False), ("v", "float", False))
        g = OhmGraph()
        s = g.add(Source(rel))
        bp = g.add(BasicProject([("id", "id"), ("v", "v")]))
        gr = g.add(Group(["id"], [("total", "SUM(v)")]))
        t = g.add(Target(relation("Out", ("id", "int"), ("total", "float"))))
        g.chain(s, bp, gr, t)
        plan = plan_deployment(g, DATASTAGE)
        boxes_with_group = [
            box for box in plan.boxes
            if any(g.operator(u).KIND == "GROUP" for u in box.uids)
        ]
        (group_box,) = boxes_with_group
        assert {g.operator(u).KIND for u in group_box.uids} == {"GROUP"}

    def test_aggregator_matcher_rejects_prefixed_chain(self):
        rel = relation("R", ("id", "int", False), ("v", "float", False))
        g = OhmGraph()
        s = g.add(Source(rel))
        bp = g.add(BasicProject([("id", "id"), ("v", "v")]))
        gr = g.add(Group(["id"], [("total", "SUM(v)")]))
        t = g.add(Target(relation("Out", ("id", "int"), ("total", "float"))))
        g.chain(s, bp, gr, t)
        g.propagate_schemas()
        shape = analyze_box(g, {bp.uid, gr.uid})
        assert shape is not None  # it IS a valid linear box...
        assert not AggregatorRp().matches(g, shape)  # ...but not an Aggregator
        assert not FilterRp().matches(g, shape)
        assert not TransformerRp().matches(g, shape)


class TestRedeployment:
    def test_example_job_round_trips(self):
        job = build_example_job()
        graph = compile_job(job)
        redeployed, plan = deploy_to_job(graph)
        assert redeployed.kinds_in_order() == job.kinds_in_order()
        instance = generate_instance(50)
        assert run_job(redeployed, instance).same_bags(run_job(job, instance))

    @pytest.mark.parametrize(
        "builder,instance_builder",
        [
            (lambda: build_chain_job(12), lambda: generate_chain_instance(80)),
            (lambda: build_fanout_job(3), lambda: generate_chain_instance(80)),
            (lambda: build_star_join_job(2),
             lambda: generate_star_instance(2, 100)),
        ],
    )
    def test_generated_jobs_round_trip(self, builder, instance_builder):
        job = builder()
        graph = compile_job(job)
        redeployed, _plan = deploy_to_job(graph)
        instance = instance_builder()
        assert run_job(redeployed, instance).same_bags(run_job(job, instance))

    def test_custom_stage_round_trips_with_behaviour(self):
        job = build_example_job(custom_after_join=True)
        graph = compile_job(job)
        redeployed, _plan = deploy_to_job(graph)
        custom_stages = redeployed.stages_of_type("Custom")
        assert len(custom_stages) == 1
        instance = generate_instance(40)
        assert run_job(redeployed, instance).same_bags(run_job(job, instance))

    def test_input_graph_not_modified(self):
        graph = compile_job(build_example_job())
        before = len(graph), len(graph.edges)
        deploy_to_job(graph)
        assert (len(graph), len(graph.edges)) == before

    def test_distinct_union_deploys_as_funnel_plus_dedup(self):
        rel = relation("R", ("id", "int", False), ("v", "float", False))
        other = rel.renamed("R2")
        g = OhmGraph()
        s1 = g.add(Source(rel))
        s2 = g.add(Source(other))
        u = g.add(Union(distinct=True))
        t = g.add(Target(rel.renamed("Out")))
        g.connect(s1, u, dst_port=0)
        g.connect(s2, u, dst_port=1)
        g.connect(u, t)
        job, _plan = deploy_to_job(g)
        types = {s.STAGE_TYPE for s in job.stages}
        assert "Funnel" in types
        assert "RemoveDuplicates" in types
        rows = [{"id": 1, "v": 1.0}]
        instance = Instance([Dataset(rel, rows), Dataset(other, rows)])
        assert len(run_job(job, instance).dataset("Out")) == 1

    def test_keygen_deploys_as_surrogate_key(self):
        from repro.ohm import KeyGen, reset_keygen_sequences

        reset_keygen_sequences()
        rel = relation("R", ("id", "int", False))
        g = OhmGraph()
        s = g.add(Source(rel))
        kg = g.add(KeyGen("sk", sequence="deploy-test", start=5))
        t = g.add(Target(relation("Out", ("id", "int"), ("sk", "int"))))
        g.chain(s, kg, t)
        job, _plan = deploy_to_job(g)
        (stage,) = job.stages_of_type("SurrogateKey")
        assert stage.generated_column == "sk"
        assert stage.start == 5

    def test_annotations_land_on_stages(self):
        rel = relation("R", ("id", "int", False), ("v", "float", False))
        g = OhmGraph()
        s = g.add(Source(rel))
        f = g.add(Filter("v > 0", annotations={"rule": "positive only"}))
        t = g.add(Target(rel.renamed("Out")))
        g.chain(s, f, t)
        job, _plan = deploy_to_job(g)
        annotated = [s for s in job.stages if "rule" in s.annotations]
        assert annotated


class TestErrorPaths:
    def test_unsupported_operator_raises(self):
        from repro.deploy.platform import RuntimePlatform

        empty_platform = RuntimePlatform("empty")
        graph = compile_job(build_example_job())
        with pytest.raises(DeploymentError):
            plan_deployment(graph, empty_platform)
