"""SQL platform tests: dialect rendering, SELECT generation, and sqlite
execution agreement with the mapping executor."""

import datetime

import pytest

from repro.compile import compile_job
from repro.deploy.sql import (
    DEFAULT_DIALECT,
    SqliteRunner,
    mapping_to_select,
    mappings_to_select,
    run_mapping_as_sql,
)
from repro.data.dataset import Dataset, Instance
from repro.errors import DeploymentError
from repro.expr.parser import parse
from repro.mapping import (
    Mapping,
    MappingExecutor,
    SourceBinding,
    ohm_to_mappings,
)
from repro.schema import relation
from repro.workloads import build_example_job, generate_instance


class TestDialectRendering:
    def render(self, text):
        return DEFAULT_DIALECT.render(parse(text))

    def test_identifiers_quoted(self):
        assert self.render("Accounts.type") == '"Accounts"."type"'

    def test_string_escaping(self):
        assert self.render("'it''s'") == "'it''s'"

    def test_date_literal_is_iso_string(self):
        assert self.render("DATE '2008-01-01'") == "'2008-01-01'"

    def test_booleans_become_ints(self):
        assert self.render("TRUE") == "1"
        assert self.render("FALSE") == "0"

    def test_case_when(self):
        sql = self.render("CASE WHEN a < 1 THEN 'x' ELSE 'y' END")
        assert sql.startswith("(CASE WHEN")

    def test_concat_becomes_pipes(self):
        assert self.render("CONCAT(a, b)") == '("a" || "b")'

    def test_add_days_becomes_date_function(self):
        assert "date(" in self.render("ADD_DAYS(d, 10)")

    def test_years_between_uses_julianday(self):
        assert "julianday" in self.render("YEARS_BETWEEN(a, b)")

    def test_casts(self):
        assert self.render("TO_INTEGER(x)") == 'CAST("x" AS INTEGER)'
        assert self.render("TO_STRING(x)") == 'CAST("x" AS TEXT)'

    def test_unsupported_function_refused(self):
        assert not DEFAULT_DIALECT.supports_expression(
            parse("NEXT_SURROGATE_KEY('s')")
        )
        with pytest.raises(DeploymentError):
            self.render("NEXT_SURROGATE_KEY('s')")

    def test_first_aggregate_unsupported(self):
        from repro.expr.ast import AggregateCall, ColumnRef

        assert not DEFAULT_DIALECT.supports_expression(
            AggregateCall("FIRST", ColumnRef("x"))
        )


class TestSelectGeneration:
    @pytest.fixture
    def accounts(self):
        return relation(
            "Accounts", ("customerID", "int", False),
            ("balance", "float", False), ("type", "varchar"),
        )

    def test_single_block_shape(self, accounts):
        mapping = Mapping(
            [SourceBinding("a", accounts)],
            relation("T", ("customerID", "int"), ("total", "float")),
            [("customerID", "a.customerID"), ("total", "SUM(a.balance)")],
            where="a.type <> 'L'",
            group_by=["a.customerID"],
        )
        sql = mapping_to_select(mapping)
        assert sql.startswith("SELECT ")
        assert 'FROM "Accounts" AS "a"' in sql
        assert "WHERE" in sql and "GROUP BY" in sql
        assert 'SUM("a"."balance")' in sql

    def test_union_all_for_shared_target(self, accounts):
        target = relation("T", ("customerID", "int"))
        a = Mapping([SourceBinding("a", accounts)], target,
                    [("customerID", "a.customerID")], where="a.balance > 10")
        b = Mapping([SourceBinding("a", accounts)], target,
                    [("customerID", "a.customerID")], where="a.balance <= 10")
        sql = mappings_to_select([a, b])
        assert sql.count("SELECT") == 2
        assert "UNION ALL" in sql

    def test_opaque_mapping_refused(self, accounts):
        opaque = Mapping(
            [SourceBinding("a", accounts)],
            relation("T", ("customerID", "int")), [], reference="box",
        )
        with pytest.raises(DeploymentError):
            mapping_to_select(opaque)


class TestSqliteExecution:
    @pytest.fixture
    def accounts(self):
        return relation(
            "Accounts", ("customerID", "int", False),
            ("balance", "float", False), ("type", "varchar"),
            ("opened", "date"),
        )

    @pytest.fixture
    def instance(self, accounts):
        return Instance([
            Dataset(accounts, [
                {"customerID": 1, "balance": 10.0, "type": "S",
                 "opened": datetime.date(2001, 5, 1)},
                {"customerID": 1, "balance": 20.0, "type": "L",
                 "opened": datetime.date(2002, 6, 1)},
                {"customerID": 2, "balance": 30.0, "type": "S",
                 "opened": None},
            ]),
        ])

    def test_sql_result_matches_mapping_executor(self, accounts, instance):
        mapping = Mapping(
            [SourceBinding("a", accounts)],
            relation("T", ("customerID", "int"), ("total", "float")),
            [("customerID", "a.customerID"), ("total", "SUM(a.balance)")],
            where="a.type <> 'L'",
            group_by=["a.customerID"],
        )
        via_sql = run_mapping_as_sql(mapping, instance)
        direct = MappingExecutor().execute_mapping(mapping, instance)
        assert via_sql.same_bag(direct)

    def test_dates_round_trip_through_sqlite(self, accounts, instance):
        mapping = Mapping(
            [SourceBinding("a", accounts)],
            relation("T", ("customerID", "int"), ("opened", "date")),
            [("customerID", "a.customerID"), ("opened", "a.opened")],
            where="a.opened IS NOT NULL",
        )
        via_sql = run_mapping_as_sql(mapping, instance)
        assert all(
            isinstance(r["opened"], datetime.date) for r in via_sql
        )

    def test_date_functions_agree(self, accounts, instance):
        mapping = Mapping(
            [SourceBinding("a", accounts)],
            relation("T", ("customerID", "int"), ("until", "date"),
                     ("yrs", "int")),
            [
                ("customerID", "a.customerID"),
                ("until", "ADD_DAYS(a.opened, 100)"),
                ("yrs", "YEARS_BETWEEN(DATE '2008-01-01', a.opened)"),
            ],
            where="a.opened IS NOT NULL",
        )
        via_sql = run_mapping_as_sql(mapping, instance)
        direct = MappingExecutor().execute_mapping(mapping, instance)
        assert via_sql.same_bag(direct)

    def test_bad_sql_raises_execution_error(self, instance, accounts):
        from repro.errors import ExecutionError

        runner = SqliteRunner(instance)
        try:
            with pytest.raises(ExecutionError):
                runner.query("SELECT nonsense FROM nowhere", accounts)
        finally:
            runner.close()

    def test_example_m1_runs_on_sqlite(self):
        # the paper's M1 as a single SQL block, executed on the DBMS
        graph = compile_job(build_example_job())
        mappings = ohm_to_mappings(graph)
        m1 = mappings.by_name("M1")
        instance = generate_instance(40)
        via_sql = run_mapping_as_sql(m1, instance)
        direct = MappingExecutor().execute_mapping(m1, instance)
        assert via_sql.same_bag(direct)
