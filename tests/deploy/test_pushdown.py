"""Pushdown analysis tests: the hybrid SQL + ETL deployment of §VI-B."""

import pytest

from repro.compile import compile_job
from repro.deploy import plan_pushdown
from repro.errors import DeploymentError
from repro.etl import run_job
from repro.ohm import Filter, OhmGraph, Project, Source, Target
from repro.schema import relation
from repro.workloads import (
    build_chain_job,
    build_example_job,
    build_fanout_job,
    build_star_join_job,
    generate_chain_instance,
    generate_instance,
    generate_star_instance,
)


class TestExampleScenario:
    @pytest.fixture
    def hybrid(self):
        return plan_pushdown(compile_job(build_example_job()))

    def test_pushes_up_to_and_including_group(self):
        # "Orchid identifies the operators up to and including the GROUP
        # operator as operators to be pushed into the DBMS"
        graph = compile_job(build_example_job())
        hybrid = plan_pushdown(graph)
        pushed_kinds = sorted(
            graph.operator(uid).KIND
            for uid in hybrid.pushed_operator_uids
        )
        assert "GROUP" in pushed_kinds
        assert "JOIN" in pushed_kinds
        assert "SPLIT" not in pushed_kinds

    def test_single_statement_at_dslink10(self, hybrid):
        assert list(hybrid.statements) == ["DSLink10"]
        sql = hybrid.statements["DSLink10"]
        assert sql.count("SELECT") == 1
        assert "GROUP BY" in sql
        assert '"Customers"' in sql and '"Accounts"' in sql

    def test_residual_job_is_the_final_filter(self, hybrid):
        types = sorted(s.STAGE_TYPE for s in hybrid.job.stages)
        assert types == [
            "Filter", "TableSource", "TableTarget", "TableTarget",
        ]

    def test_hybrid_execution_matches_pure_etl(self, hybrid):
        instance = generate_instance(60)
        pure = run_job(build_example_job(), instance)
        assert hybrid.execute(instance).same_bags(pure)

    def test_describe_shows_sql_and_job(self, hybrid):
        text = hybrid.describe()
        assert "DSLink10" in text and "SELECT" in text
        assert "residual ETL job" in text


class TestPushabilityRules:
    def test_unsupported_function_blocks_pushing(self):
        from repro.expr.functions import DEFAULT_REGISTRY, register
        from repro.schema.types import INTEGER

        if not DEFAULT_REGISTRY.knows("HOST_LANG_FN"):
            register("HOST_LANG_FN", lambda x: x, INTEGER, 1)
        rel = relation("R", ("id", "int", False), ("v", "float", False))
        g = OhmGraph()
        s = g.add(Source(rel))
        f = g.add(Filter("v > 0"))
        p = g.add(Project([("id", "HOST_LANG_FN(id)")]))
        t = g.add(Target(relation("Out", ("id", "int"))))
        g.chain(s, f, p, t, names=["a", "Cut", "b"])
        hybrid = plan_pushdown(g)
        # the filter is pushed, the opaque-function project is not
        assert list(hybrid.statements) == ["Cut"]
        assert any(
            s.STAGE_TYPE == "Transformer" for s in hybrid.job.stages
        )

    def test_fully_pushable_graph_cuts_before_target(self):
        rel = relation("R", ("id", "int", False), ("v", "float", False))
        g = OhmGraph()
        s = g.add(Source(rel))
        f = g.add(Filter("v > 0"))
        t = g.add(Target(rel.renamed("Out")))
        g.chain(s, f, t, names=["a", "final"])
        hybrid = plan_pushdown(g)
        assert list(hybrid.statements) == ["final"]
        # the residual job only loads the query result
        assert sorted(s.STAGE_TYPE for s in hybrid.job.stages) == [
            "TableSource", "TableTarget",
        ]

    def test_nothing_pushable_raises(self):
        rel = relation("R", ("id", "int", False))
        g = OhmGraph()
        s = g.add(Source(rel, provider=lambda: None))  # generated source
        t = g.add(Target(rel.renamed("Out")))
        g.chain(s, t)
        with pytest.raises(DeploymentError):
            plan_pushdown(g)


class TestHybridEquivalence:
    @pytest.mark.parametrize(
        "builder,instance_builder",
        [
            (lambda: build_chain_job(10), lambda: generate_chain_instance(80)),
            (lambda: build_fanout_job(3), lambda: generate_chain_instance(80)),
            (lambda: build_star_join_job(2),
             lambda: generate_star_instance(2, 120)),
            (lambda: build_example_job(custom_after_join=True),
             lambda: generate_instance(40)),
        ],
    )
    def test_hybrid_equals_pure_etl(self, builder, instance_builder):
        job = builder()
        graph = compile_job(job)
        hybrid = plan_pushdown(graph)
        instance = instance_builder()
        assert hybrid.execute(instance).same_bags(run_job(job, instance))
