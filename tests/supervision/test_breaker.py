"""Circuit breakers: the state machine in isolation (fake clock), the
retry interaction (breaker outside retry, BreakerOpen never retried),
the SQL runner endpoint, and the pushdown→local degradation ladder."""

import pytest

from repro.data.dataset import Instance
from repro.errors import (
    BreakerOpen,
    ExecutionError,
    TransientError,
    ValidationError,
)
from repro.etl import EtlEngine
from repro.faults import FaultPlan, FlakySource
from repro.obs import Observability
from repro.resilience import RetryPolicy
from repro.supervision import (
    CircuitBreaker,
    resolve_breaker,
    set_default_breaker,
)
from repro.supervision.breaker import CLOSED, HALF_OPEN, OPEN
from repro.workloads import (
    build_example_job,
    build_faulty_job,
    generate_faulty_instance,
    generate_instance,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def boom():
    raise ExecutionError("endpoint died")


class TestStateMachine:
    def test_validates_parameters(self):
        with pytest.raises(ValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker(reset_timeout=0)

    def test_failures_below_threshold_stay_closed(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            with pytest.raises(ExecutionError):
                breaker.call("db", boom)
        assert breaker.state("db") == CLOSED
        assert breaker.call("db", lambda: "ok") == "ok"

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        with pytest.raises(ExecutionError):
            breaker.call("db", boom)
        breaker.call("db", lambda: "ok")
        with pytest.raises(ExecutionError):
            breaker.call("db", boom)
        assert breaker.state("db") == CLOSED  # count restarted after success

    def test_threshold_trips_open_and_fails_fast(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=30.0, clock=clock
        )
        for _ in range(2):
            with pytest.raises(ExecutionError):
                breaker.call("db", boom)
        assert breaker.state("db") == OPEN
        calls = []
        with pytest.raises(BreakerOpen) as exc:
            breaker.call("db", lambda: calls.append(1))
        assert calls == []  # no endpoint I/O while open
        assert exc.value.key == "db"
        assert 0 < exc.value.retry_after <= 30.0

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        with pytest.raises(ExecutionError):
            breaker.call("db", boom)
        clock.advance(10.0)
        assert breaker.state("db") == HALF_OPEN
        assert breaker.call("db", lambda: "ok") == "ok"
        assert breaker.state("db") == CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=10.0, clock=clock
        )
        for _ in range(3):
            with pytest.raises(ExecutionError):
                breaker.call("db", boom)
        clock.advance(10.0)
        with pytest.raises(ExecutionError):
            breaker.call("db", boom)  # the probe dies
        assert breaker.state("db") == OPEN  # single failure re-opens
        with pytest.raises(BreakerOpen):
            breaker.call("db", lambda: "ok")

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        with pytest.raises(ExecutionError):
            breaker.call("flaky", boom)
        assert breaker.state("flaky") == OPEN
        assert breaker.call("healthy", lambda: "ok") == "ok"
        assert breaker.state("healthy") == CLOSED

    def test_transitions_are_observable(self):
        clock = FakeClock()
        obs = Observability(stats=True)
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        with pytest.raises(ExecutionError):
            breaker.call("db", boom, obs=obs)
        with pytest.raises(BreakerOpen):
            breaker.call("db", lambda: "ok", obs=obs)
        clock.advance(5.0)
        breaker.call("db", lambda: "ok", obs=obs)
        counters = {
            name: obs.metrics.counter(f"exec.breaker.db.{name}")
            for name in ("opened", "fast_fail", "half_open", "closed")
        }
        assert counters == {
            "opened": 1, "fast_fail": 1, "half_open": 1, "closed": 1,
        }


class TestRetryInteraction:
    def test_breaker_open_is_not_transient(self):
        assert not issubclass(BreakerOpen, TransientError)

    def test_retry_never_absorbs_breaker_open(self):
        sleeps = []
        policy = RetryPolicy(max_retries=3, sleep=sleeps.append)

        def open_breaker():
            raise BreakerOpen("open", key="db")

        with pytest.raises(BreakerOpen):
            policy.call(open_breaker)
        assert sleeps == []  # failed fast, no backoff burned

    def test_exhausted_retry_budget_is_one_breaker_failure(self):
        """Breaker outside retry: each fully-retried-and-failed call
        counts once, so the threshold means 'N exhausted budgets', not
        'N raw attempts'."""
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        policy = RetryPolicy(max_retries=2, sleep=lambda s: None)
        attempts = []

        def transient():
            attempts.append(1)
            raise TransientError("flaky")

        for _ in range(1):
            with pytest.raises(TransientError):
                breaker.call("db", lambda: policy.call(transient))
        assert len(attempts) == 3  # 1 + 2 retries inside one breaker failure
        assert breaker.state("db") == CLOSED  # one failure, threshold 2


class TestResolveTriad:
    def test_instance_wins(self):
        breaker = CircuitBreaker()
        assert resolve_breaker(breaker) is breaker

    def test_int_is_a_threshold_shorthand(self):
        assert resolve_breaker(5).failure_threshold == 5

    def test_none_everywhere_disables(self):
        assert resolve_breaker(None) is None

    def test_setter_and_env(self, monkeypatch):
        set_default_breaker(4)
        try:
            assert resolve_breaker(None).failure_threshold == 4
        finally:
            set_default_breaker(None)
        monkeypatch.setenv("REPRO_BREAKER", "2")
        assert resolve_breaker(None).failure_threshold == 2
        monkeypatch.setenv("REPRO_BREAKER", "0")
        assert resolve_breaker(None) is None


class TestSqlRunnerEndpoint:
    def _runner(self, breaker, retry=None):
        from repro.deploy.sql import SqliteRunner

        instance = generate_instance(n_customers=5)
        return SqliteRunner(instance, retry=retry, breaker=breaker)

    def test_poisoned_writes_trip_the_breaker(self):
        from repro.schema.model import relation
        from repro.data.dataset import Dataset

        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        runner = self._runner(breaker)
        FaultPlan(seed=3).flaky_writes(runner, permanent=True)
        rel = relation("T", ("id", "int", False))
        data = Dataset(rel, [{"id": 1}])
        with pytest.raises(ExecutionError):
            runner.load_table(data)
        with pytest.raises(BreakerOpen):
            runner.load_table(data)  # fails fast now
        runner.close()

    def test_transient_writes_recover_under_retry(self):
        from repro.schema.model import relation
        from repro.data.dataset import Dataset

        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        retry = RetryPolicy(max_retries=2, sleep=lambda s: None)
        runner = self._runner(breaker, retry=retry)
        FaultPlan(seed=3).flaky_writes(runner, failures=2)
        rel = relation("T", ("id", "int", False))
        runner.load_table(Dataset(rel, [{"id": 1}]))  # retries absorb both
        got = runner.query(
            'SELECT "id" FROM "T"', rel
        )
        assert [r["id"] for r in got.rows] == [1]
        runner.close()


class TestEtlEndpointBreaker:
    @staticmethod
    def _passthrough_job(source):
        from repro.etl.model import Job
        from repro.etl.stages import TableTarget
        from repro.workloads import orders_schema

        job = Job("passthrough")
        job.add(source)
        target = job.add(TableTarget(orders_schema().renamed("Copied")))
        job.link(source, target, name="rows")
        return job

    def test_engine_fails_fast_on_the_second_run(self):
        from repro.etl.stages import TableSource
        from repro.workloads import orders_schema

        instance, _ = generate_faulty_instance(n=10, seed=2)
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        source = FlakySource(TableSource(orders_schema()), permanent=True)
        job = self._passthrough_job(source)
        engine = EtlEngine(breaker=breaker)
        with pytest.raises(ExecutionError):
            engine.run(job, instance)
        with pytest.raises(BreakerOpen):
            engine.run(job, instance)

    def test_healthy_endpoints_are_untouched_by_a_tripped_one(self):
        from repro.etl.stages import TableSource
        from repro.workloads import orders_schema

        instance, _ = generate_faulty_instance(n=10, seed=2)
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        source = FlakySource(TableSource(orders_schema()), permanent=True)
        engine = EtlEngine(breaker=breaker)
        with pytest.raises(ExecutionError):
            engine.run(self._passthrough_job(source), instance)
        # the same breaker instance, a different (healthy) endpoint key
        healthy = self._passthrough_job(
            TableSource(orders_schema(), name="src_Orders_healthy")
        )
        targets, _ = EtlEngine(breaker=breaker).run(healthy, instance)
        assert len(targets.dataset("Copied")) == 10


class TestPushdownDegradation:
    def test_open_breaker_falls_back_to_local_etl(self):
        from repro import Orchid
        from repro.deploy.pushdown import plan_pushdown

        orchid = Orchid()
        graph = orchid.import_etl(build_example_job())
        plan = plan_pushdown(graph)
        assert plan.statements  # something actually pushed
        instance = generate_instance(n_customers=50)
        baseline = plan.execute(instance)

        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        with pytest.raises(ExecutionError):
            breaker.call("deploy.sql", boom)  # quarantine the DBMS
        obs = Observability(stats=True)
        degraded = plan.execute(instance, breaker=breaker, obs=obs)
        assert degraded.same_bags(baseline)
        assert obs.metrics.counter("deploy.degrade.pushdown_to_local") == 1
