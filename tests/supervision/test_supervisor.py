"""Run supervision: budgets, cooperative cancellation, and the
deadline triad — in isolation with a fake clock, then threaded through
all three runtimes."""

import pytest

from repro.errors import RunCancelled, ValidationError
from repro.etl import EtlEngine
from repro.mapping import MappingExecutor
from repro.obs import Observability
from repro.ohm import OhmExecutor
from repro.supervision import (
    Budget,
    RunSupervisor,
    default_deadline,
    resolve_supervisor,
    set_default_deadline,
)
from repro.workloads import (
    build_example_job,
    build_faulty_job,
    generate_faulty_instance,
    generate_instance,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBudget:
    def test_rejects_non_positive_limits(self):
        with pytest.raises(ValidationError):
            Budget(deadline=0)
        with pytest.raises(ValidationError):
            Budget(soft_timeout=-1)

    def test_soft_timeout_must_not_exceed_deadline(self):
        with pytest.raises(ValidationError):
            Budget(deadline=1.0, soft_timeout=2.0)
        Budget(deadline=2.0, soft_timeout=1.0)  # fine


class TestRunSupervisor:
    def test_unbounded_supervisor_never_cancels(self):
        clock = FakeClock()
        sup = RunSupervisor(clock=clock).start()
        clock.advance(1e9)
        sup.check("stage")  # no deadline, no cancel: passes

    def test_deadline_cancels_at_the_next_check(self):
        clock = FakeClock()
        sup = RunSupervisor(Budget(deadline=1.0), clock=clock).start()
        sup.check("early")
        clock.advance(1.5)
        with pytest.raises(RunCancelled) as exc:
            sup.check("late")
        assert exc.value.reason == "deadline"
        assert exc.value.elapsed == pytest.approx(1.5)

    def test_cancel_carries_the_committed_frontier(self):
        sup = RunSupervisor().start()
        sup.committed("src_A")
        sup.committed("xform_B")
        sup.cancel("operator request")
        with pytest.raises(RunCancelled) as exc:
            sup.check("stage")
        assert exc.value.reason == "operator request"
        assert exc.value.frontier == ("src_A", "xform_B")

    def test_pre_run_cancel_cancels_the_run_at_its_first_check(self):
        sup = RunSupervisor()
        sup.cancel("abort before start")
        sup.start()
        with pytest.raises(RunCancelled):
            sup.check("first")

    def test_soft_timeout_warns_once_and_the_run_continues(self):
        clock = FakeClock()
        obs = Observability(stats=True)
        sup = RunSupervisor(
            Budget(deadline=10.0, soft_timeout=1.0), clock=clock, obs=obs
        ).start()
        clock.advance(2.0)
        sup.check("a")
        sup.check("b")
        assert obs.metrics.counter("exec.supervise.soft_timeout") == 1
        assert obs.metrics.counter("exec.supervise.checks") == 2

    def test_checks_are_counted(self):
        obs = Observability(stats=True)
        sup = RunSupervisor(obs=obs).start()
        sup.check("a")
        sup.check("b")
        assert obs.metrics.counter("exec.supervise.checks") == 2

    def test_guard_short_circuits_queued_tasks(self):
        sup = RunSupervisor().start()
        calls = []
        guarded = sup.guard(lambda: calls.append(1) or "ran")
        assert guarded() == "ran"
        sup.cancel()
        with pytest.raises(RunCancelled):
            guarded()
        assert calls == [1]

    def test_guard_enforces_the_deadline_at_dequeue(self):
        clock = FakeClock()
        sup = RunSupervisor(Budget(deadline=1.0), clock=clock).start()
        guarded = sup.guard(lambda: "ran")
        assert guarded() == "ran"
        clock.advance(2.0)
        with pytest.raises(RunCancelled):
            guarded()

    def test_remaining_budget(self):
        clock = FakeClock()
        sup = RunSupervisor(Budget(deadline=5.0), clock=clock).start()
        clock.advance(2.0)
        assert sup.remaining() == pytest.approx(3.0)
        assert RunSupervisor().remaining() is None


class TestResolveTriad:
    def test_explicit_supervisor_wins(self):
        sup = RunSupervisor()
        assert resolve_supervisor(sup, deadline=123.0) is sup

    def test_deadline_kwarg_builds_a_supervisor(self):
        sup = resolve_supervisor(None, deadline=2.5)
        assert sup.budget.deadline == 2.5

    def test_none_everywhere_means_unsupervised(self):
        assert resolve_supervisor(None, None) is None

    def test_setter_and_env(self, monkeypatch):
        set_default_deadline(7.0)
        try:
            assert default_deadline() == 7.0
            assert resolve_supervisor(None, None).budget.deadline == 7.0
        finally:
            set_default_deadline(None)
        monkeypatch.setenv("REPRO_DEADLINE", "3.5")
        assert resolve_supervisor(None, None).budget.deadline == 3.5

    def test_invalid_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "-1")
        with pytest.raises(ValidationError):
            resolve_supervisor(None, None)


class TestEngineCancellation:
    """A pre-cancelled (or instantly-expiring) supervisor cancels all
    three runtimes cleanly, serial and parallel alike."""

    def _cancelled_supervisor(self):
        sup = RunSupervisor()
        sup.cancel("test")
        return sup

    def test_etl_engine_serial(self):
        instance, _ = generate_faulty_instance(n=10, seed=2)
        engine = EtlEngine(supervisor=self._cancelled_supervisor())
        with pytest.raises(RunCancelled):
            engine.run(build_faulty_job(), instance)

    def test_etl_engine_parallel_drains(self):
        instance = generate_instance(n_customers=40)
        engine = EtlEngine(
            workers=4, supervisor=self._cancelled_supervisor()
        )
        with pytest.raises(RunCancelled):
            engine.run(build_example_job(), instance)

    def test_etl_engine_deadline_reports_frontier(self):
        clock = FakeClock()
        sup = RunSupervisor(Budget(deadline=1.0), clock=clock)
        instance = generate_instance(n_customers=20)
        engine = EtlEngine(supervisor=sup)

        # expire the budget after the second committed stage
        original = sup.committed

        def committed(name):
            original(name)
            if len(sup.frontier) == 2:
                clock.advance(5.0)

        sup.committed = committed
        with pytest.raises(RunCancelled) as exc:
            engine.run(build_example_job(), instance)
        assert len(exc.value.frontier) == 2

    def test_ohm_executor(self):
        from repro import Orchid

        graph = Orchid().import_etl(build_example_job())
        instance = generate_instance(n_customers=20)
        executor = OhmExecutor(supervisor=self._cancelled_supervisor())
        with pytest.raises(RunCancelled):
            executor.run(graph, instance)

    def test_mapping_executor(self):
        from repro import Orchid

        orchid = Orchid()
        graph = orchid.import_etl(build_example_job())
        mappings = orchid.to_mappings(graph)
        instance = generate_instance(n_customers=20)
        executor = MappingExecutor(supervisor=self._cancelled_supervisor())
        with pytest.raises(RunCancelled):
            executor.execute(mappings, instance)

    def test_degradation_ladder_does_not_absorb_cancellation(self):
        """RunCancelled must propagate through the tier ladder, not be
        swallowed as one more tier failure."""
        instance = generate_instance(n_customers=20)
        engine = EtlEngine(
            fused=True, batched=True,
            supervisor=self._cancelled_supervisor(),
        )
        with pytest.raises(RunCancelled):
            engine.run(build_example_job(), instance)

    def test_cancelled_metric_is_emitted(self):
        obs = Observability(stats=True)
        instance, _ = generate_faulty_instance(n=10, seed=2)
        engine = EtlEngine(
            obs=obs, supervisor=self._cancelled_supervisor()
        )
        with pytest.raises(RunCancelled):
            engine.run(build_faulty_job(), instance)
        assert obs.metrics.counter("exec.supervise.cancelled") >= 1
