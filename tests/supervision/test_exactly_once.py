"""Exactly-once under injected crashes: a run killed at any checkpoint
boundary or around (or mid-) a target write resumes to output that is
byte-identical to an uninterrupted run — accepted and rejected rows
alike — across the serial, parallel, and fused engine tiers.

:class:`~repro.errors.InjectedCrash` derives from ``BaseException``
(a simulated ``kill -9``), so the sweep also pins that no retry policy,
error-policy channel, or degradation ladder in any of the three
runtimes can absorb it."""

import pytest

from repro.data.dataset import Dataset
from repro.errors import InjectedCrash
from repro.etl import EtlEngine
from repro.etl.model import Job
from repro.etl.stages import SequentialFileTarget, TableSource
from repro.exec import set_kernel_fault_hook
from repro.faults import CrashingStore, CrashingTarget
from repro.mapping import MappingExecutor
from repro.ohm import execute
from repro.resilience import CheckpointStore, RetryPolicy, format_row
from repro.schema.model import relation
from repro.workloads import (
    build_example_job,
    build_faulty_job,
    generate_faulty_instance,
    generate_instance,
    orders_schema,
)

ENGINE_FLAGS = {
    "serial": {},
    "parallel": {"workers": 3},
    "fused": {"batched": True, "fused": True},
}


def _snapshot(targets):
    """Target datasets as name → sorted formatted-row multiset."""
    return {
        name: sorted(format_row(r) for r in targets.dataset(name).rows)
        for name in targets.names
    }


@pytest.fixture(scope="module")
def workload():
    """A poisoned instance and the uninterrupted run's accepted AND
    rejected outputs (the reject link makes rejects a target table)."""
    instance, _ = generate_faulty_instance(n=40, seed=11, poison=3)
    targets, _ = EtlEngine().run(
        build_faulty_job(with_reject_link=True), instance
    )
    return instance, _snapshot(targets)


class TestCrashAtEverySaveBoundary:
    """Kill the run at each checkpoint-save boundary in turn — both
    before the snapshot persists and just after — then resume with the
    same store and compare everything to the uninterrupted run."""

    @pytest.mark.parametrize("mode", list(ENGINE_FLAGS))
    @pytest.mark.parametrize("persist_first", [False, True])
    def test_resume_is_byte_identical(
        self, tmp_path, workload, mode, persist_first
    ):
        instance, expected = workload
        flags = ENGINE_FLAGS[mode]
        # discover this tier's boundary count with a never-firing probe
        probe = CrashingStore(
            CheckpointStore(str(tmp_path / "probe")), after_saves=10**9
        )
        EtlEngine(checkpoint=probe, **flags).run(
            build_faulty_job(with_reject_link=True), instance
        )
        n_saves = probe.saves
        assert n_saves >= 5  # one boundary per stage

        for boundary in range(n_saves):
            store = CrashingStore(
                CheckpointStore(str(tmp_path / f"b{boundary}")),
                after_saves=boundary,
                persist_first=persist_first,
            )
            job = build_faulty_job(with_reject_link=True)
            with pytest.raises(InjectedCrash):
                EtlEngine(checkpoint=store, **flags).run(job, instance)
            assert store.crashed
            # same wrapped store, crash spent: the resumed run finishes
            resumed, _ = EtlEngine(checkpoint=store, **flags).run(
                build_faulty_job(with_reject_link=True), instance
            )
            assert _snapshot(resumed) == expected, (
                f"{mode} boundary {boundary} persist_first={persist_first}"
            )
            # ... and a clean finish leaves no snapshots behind
            assert store.load_frontier(job) == {}


def _file_job(target):
    job = Job("orders_to_file")
    source = job.add(TableSource(orders_schema()))
    job.add(target)
    job.link(source, target, name="rows")
    return job


class TestTransactionalFileTarget:
    """Crash a CSV file target before, after, and mid-write (torn
    file): resume always converges on the uninterrupted file bytes —
    the atomic temp+fsync+rename writer never leaves a half-file as
    the final state."""

    @pytest.mark.parametrize("mode", list(ENGINE_FLAGS))
    @pytest.mark.parametrize("crash_mode", CrashingTarget.MODES)
    def test_resume_restores_the_exact_file(
        self, tmp_path, mode, crash_mode
    ):
        instance, _ = generate_faulty_instance(n=25, seed=4)
        flags = ENGINE_FLAGS[mode]
        reference = tmp_path / "reference.csv"
        EtlEngine(**flags).run(
            _file_job(SequentialFileTarget(orders_schema(), str(reference))),
            instance,
        )
        expected_bytes = reference.read_bytes()

        out = tmp_path / f"{mode}-{crash_mode}.csv"
        crashing = CrashingTarget(
            SequentialFileTarget(orders_schema(), str(out)), mode=crash_mode
        )
        job = _file_job(crashing)
        store = CheckpointStore(str(tmp_path / f"ckpt-{mode}-{crash_mode}"))
        with pytest.raises(InjectedCrash):
            EtlEngine(checkpoint=store, **flags).run(job, instance)
        if crash_mode == "torn":
            # the simulated non-atomic writer really left a torn file
            assert out.read_bytes() != expected_bytes
        targets, _ = EtlEngine(checkpoint=store, **flags).run(job, instance)
        assert out.read_bytes() == expected_bytes
        assert len(targets.dataset("Orders")) == 25


class TestSqliteTransactionalLoad:
    """The SQL runner's shadow-table load: a crash mid batched write
    leaves the live table untouched; the retry lands atomically."""

    def test_crash_mid_load_preserves_the_previous_table(self):
        from repro.deploy.sql import SqliteRunner

        instance, _ = generate_faulty_instance(n=6, seed=5)
        runner = SqliteRunner(instance)
        rel = relation("T", ("id", "int", False))
        runner.load_table(Dataset(rel, [{"id": 1}, {"id": 2}]))

        fired = []

        def crash_once(sql, rows):
            if not fired:
                fired.append(1)
                raise InjectedCrash("injected crash mid batched write")

        runner.write_hook = crash_once
        with pytest.raises(InjectedCrash):
            runner.load_table(Dataset(rel, [{"id": 9}]))
        # the swap never committed: the previous rows are still live
        got = runner.query('SELECT "id" FROM "T" ORDER BY "id"', rel)
        assert [r["id"] for r in got.rows] == [1, 2]
        # crash spent: the reload replaces the table atomically
        runner.load_table(Dataset(rel, [{"id": 9}]))
        got = runner.query('SELECT "id" FROM "T"', rel)
        assert [r["id"] for r in got.rows] == [9]
        runner.close()

    def test_non_transactional_load_still_works(self):
        from repro.deploy.sql import SqliteRunner

        instance, _ = generate_faulty_instance(n=3, seed=5)
        runner = SqliteRunner(instance)
        rel = relation("T", ("id", "int", False))
        runner.load_table(Dataset(rel, [{"id": 7}]), transactional=False)
        got = runner.query('SELECT "id" FROM "T"', rel)
        assert [r["id"] for r in got.rows] == [7]
        runner.close()


class _CrashingSource(TableSource):
    STAGE_TYPE = "TableSource"

    def extract(self, instance):
        raise InjectedCrash("injected source crash")


class TestCrashPropagation:
    """InjectedCrash is a BaseException: retry, error policies, and
    every runtime's degradation ladder must let it through."""

    @staticmethod
    def _crash_hook(tier, kind, fn):
        def crashed(*args, **kwargs):
            raise InjectedCrash(f"injected {tier} {kind} kernel crash")

        return crashed

    def test_etl_retry_and_policies_do_not_absorb(self):
        sleeps = []
        instance, _ = generate_faulty_instance(n=5, seed=1)
        source = _CrashingSource(orders_schema())
        crash_job = Job("crashing")
        crash_job.add(source)
        target = crash_job.add(
            SequentialFileTarget(orders_schema(), "/dev/null", name="tgt")
        )
        crash_job.link(source, target, name="rows")
        engine = EtlEngine(
            on_error="skip",
            retry=RetryPolicy(max_retries=5, sleep=sleeps.append),
        )
        with pytest.raises(InjectedCrash):
            engine.run(crash_job, instance)
        assert sleeps == []  # no retry burned on a crash

    def test_ohm_ladder_does_not_absorb(self):
        from repro import Orchid

        graph = Orchid().import_etl(build_example_job())
        instance = generate_instance(n_customers=10)
        set_kernel_fault_hook(self._crash_hook)
        try:
            with pytest.raises(InjectedCrash):
                execute(graph, instance, on_error="skip")
        finally:
            set_kernel_fault_hook(None)

    def test_mapping_ladder_does_not_absorb(self):
        from repro import Orchid

        orchid = Orchid()
        mappings = orchid.to_mappings(orchid.import_etl(build_example_job()))
        instance = generate_instance(n_customers=10)
        set_kernel_fault_hook(self._crash_hook)
        try:
            with pytest.raises(InjectedCrash):
                MappingExecutor(on_error="skip").execute(mappings, instance)
        finally:
            set_kernel_fault_hook(None)
