"""Memory-budgeted spill: budget accounting, governed installation, and
serial-exact parity of the external sort / grace aggregate / grace join
against the in-memory kernels at budgets forcing 0, 1, and many runs."""

import random

import pytest

from repro.errors import ValidationError
from repro.etl import EtlEngine
from repro.exec import ExpressionPlanner, block, kernels
from repro.exec.block import RowBlock
from repro.expr.parser import parse
from repro.mapping import execute_mappings
from repro.obs import Observability
from repro.ohm import execute
from repro.schema.model import Attribute, Relation
from repro.schema.types import INTEGER, STRING
from repro.supervision import (
    MemoryBudget,
    active_memory_budget,
    governed,
    resolve_memory_budget,
    set_default_memory_budget,
)
from repro.workloads import build_example_job, generate_instance


def _rows(n, seed=0):
    rng = random.Random(seed)
    values = [None, True, False, 1, 1.0, -3, 2.5, "a", "B", "", 7]
    return [
        {
            "id": i,
            "g": rng.choice(["x", "y", "z", None]),
            "v": rng.choice(values),
        }
        for i in range(n)
    ]


class TestMemoryBudget:
    def test_validates(self):
        with pytest.raises(ValidationError):
            MemoryBudget(0)

    def test_exceeded_and_runs(self):
        budget = MemoryBudget(10)
        assert not budget.exceeded(10)
        assert budget.exceeded(11)
        assert budget.runs_for(10) == 1
        assert budget.runs_for(11) == 2
        assert budget.runs_for(100) == 10

    def test_governed_installs_and_restores(self):
        outer, inner = MemoryBudget(5), MemoryBudget(3)
        assert active_memory_budget() is None
        with governed(outer):
            assert active_memory_budget() is outer
            with governed(inner):
                assert active_memory_budget() is inner
            assert active_memory_budget() is outer
        assert active_memory_budget() is None

    def test_governed_none_is_a_no_op(self):
        with governed(None):
            assert active_memory_budget() is None

    def test_resolve_triad(self, monkeypatch):
        budget = MemoryBudget(9)
        assert resolve_memory_budget(budget) is budget
        assert resolve_memory_budget(4).max_rows == 4
        assert resolve_memory_budget(None) is None
        set_default_memory_budget(7)
        try:
            assert resolve_memory_budget(None).max_rows == 7
        finally:
            set_default_memory_budget(None)
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "3")
        assert resolve_memory_budget(None).max_rows == 3


#: budgets forcing zero spill (fits), one extra run, and many runs
BUDGETS = [(1000, 0), (150, 2), (16, 13)]


class TestRowKernelParity:
    @pytest.mark.parametrize("max_rows,min_runs", BUDGETS)
    def test_sort_parity(self, max_rows, min_runs):
        rows = _rows(200)
        keys = [("v", "desc"), ("g", "asc"), ("id", "asc")]
        expected = kernels.sort_rows(rows, keys)
        obs = Observability(stats=True)
        with governed(MemoryBudget(max_rows)):
            got = kernels.sort_rows(rows, keys, obs=obs)
        assert got == expected
        assert obs.metrics.counter("exec.spill.runs") >= min_runs

    @pytest.mark.parametrize("max_rows,min_runs", BUDGETS)
    def test_group_aggregate_parity(self, max_rows, min_runs):
        rows = _rows(200)
        aggregates = [
            ("cnt", lambda members: len(members)),
            ("ids", lambda members: sum(m["id"] for m in members)),
        ]
        expected = kernels.group_aggregate_rows(rows, ["g"], aggregates)
        obs = Observability(stats=True)
        with governed(MemoryBudget(max_rows)):
            got = kernels.group_aggregate_rows(
                rows, ["g"], aggregates, obs=obs
            )
        assert got == expected
        assert obs.metrics.counter("exec.spill.runs") >= min_runs

    @pytest.mark.parametrize("kind", ["inner", "left", "full"])
    @pytest.mark.parametrize("max_rows", [1000, 150, 16])
    def test_hash_join_parity(self, kind, max_rows):
        left_rel = Relation(
            "L", [Attribute("k", INTEGER), Attribute("s", STRING)]
        )
        right_rel = Relation(
            "R", [Attribute("k", INTEGER), Attribute("t", STRING)]
        )
        rng = random.Random(4)
        left = [
            {"k": rng.choice([1, 2, 3, 4.0, None, 9]), "s": f"l{i}"}
            for i in range(180)
        ]
        right = [
            {"k": rng.choice([1, 2.0, 3, 5, None]), "t": f"r{i}"}
            for i in range(200)
        ]
        condition = parse("L.k = R.k")

        def merge(lr, rr):
            return {
                "s": None if lr is None else lr["s"],
                "t": None if rr is None else rr["t"],
            }

        def run(budget, obs=None):
            out = []
            with governed(budget):
                kernels.hash_join(
                    left, right, left_rel, right_rel, condition, kind,
                    merge, out.append, ExpressionPlanner(), obs=obs,
                )
            return out

        expected = run(None)
        obs = Observability(stats=True)
        got = run(MemoryBudget(max_rows), obs=obs)
        assert got == expected
        if max_rows < len(right):
            assert obs.metrics.counter("exec.spill.join") == 1

    def test_residual_condition_joins_stay_in_memory(self):
        """Grace partitioning only handles pure equi-joins; a residual
        predicate keeps the build resident (correct but unspilled)."""
        left_rel = Relation(
            "L", [Attribute("k", INTEGER), Attribute("a", INTEGER)]
        )
        right_rel = Relation(
            "R", [Attribute("k", INTEGER), Attribute("b", INTEGER)]
        )
        left = [{"k": i % 5, "a": i} for i in range(50)]
        right = [{"k": i % 5, "b": i} for i in range(50)]
        condition = parse("L.k = R.k AND L.a < R.b")
        out = []
        obs = Observability(stats=True)
        with governed(MemoryBudget(8)):
            kernels.hash_join(
                left, right, left_rel, right_rel, condition, "inner",
                lambda lr, rr: {"a": lr["a"], "b": rr["b"]},
                out.append, ExpressionPlanner(), obs=obs,
            )
        assert out  # joined fine
        assert obs.metrics.counter("exec.spill.join") == 0


class TestBlockKernelParity:
    @pytest.mark.parametrize("max_rows", [1000, 150, 16])
    def test_sort_block_parity(self, max_rows):
        rows = _rows(200)
        blk = RowBlock.from_rows(["id", "g", "v"], rows)
        keys = [("v", "desc"), ("g", "asc"), ("id", "asc")]
        expected = block.sort_block(blk, keys)
        with governed(MemoryBudget(max_rows)):
            got = block.sort_block(blk, keys)
        assert got.columns == expected.columns

    @pytest.mark.parametrize("max_rows", [1000, 150, 16])
    def test_group_aggregate_block_parity(self, max_rows):
        rows = _rows(200)
        blk = RowBlock.from_rows(["id", "g", "v"], rows)
        aggregates = [
            ("cnt", None, None),
            ("total", lambda b: b.columns["id"], sum),
        ]
        expected = block.group_aggregate_block(blk, ["g"], aggregates)
        with governed(MemoryBudget(max_rows)):
            got = block.group_aggregate_block(blk, ["g"], aggregates)
        assert got.columns == expected.columns

    def test_hash_join_block_declines_over_budget(self):
        """The block join declines (None) above budget so its caller
        falls back to the row path, whose join grace-partitions."""
        left_rel = Relation("L", [Attribute("k", INTEGER)])
        right_rel = Relation("R", [Attribute("k", INTEGER)])
        left = RowBlock.from_rows(["k"], [{"k": i % 3} for i in range(30)])
        right = RowBlock.from_rows(["k"], [{"k": i % 3} for i in range(30)])
        condition = parse("L.k = R.k")
        planner = ExpressionPlanner(compiled=True, batched=True)
        plan = [("k", "left", "k")]
        in_memory = block.hash_join_block(
            left, right, left_rel, right_rel, condition, "inner",
            plan, planner,
        )
        assert in_memory is not None
        with governed(MemoryBudget(8)):
            over_budget = block.hash_join_block(
                left, right, left_rel, right_rel, condition, "inner",
                plan, planner,
            )
        assert over_budget is None


class TestEngineParity:
    """The full workload under a tight budget: identical results,
    nonzero spill metrics, across all three runtimes and tiers."""

    @pytest.fixture(scope="class")
    def baseline(self):
        instance = generate_instance(n_customers=200)
        return instance, EtlEngine().execute(build_example_job(), instance)

    @pytest.mark.parametrize("tier", ["serial", "parallel", "fused"])
    def test_etl_engine(self, baseline, tier):
        instance, expected = baseline
        flags = {
            "serial": {},
            "parallel": {"batched": True, "workers": 3},
            "fused": {"batched": True, "fused": True},
        }[tier]
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, memory_budget=16, **flags)
        got = engine.execute(build_example_job(), instance)
        assert got.same_bags(expected)
        assert obs.metrics.counter("exec.spill.runs") > 0

    def test_ohm_executor(self, baseline):
        from repro import Orchid

        instance, expected = baseline
        graph = Orchid().import_etl(build_example_job())
        obs = Observability(stats=True)
        got = execute(graph, instance, obs=obs, memory_budget=16)
        assert got.same_bags(expected)
        assert obs.metrics.counter("exec.spill.runs") > 0

    def test_mapping_executor(self, baseline):
        from repro import Orchid

        instance, expected = baseline
        orchid = Orchid()
        mappings = orchid.to_mappings(orchid.import_etl(build_example_job()))
        from repro.mapping import MappingExecutor

        obs = Observability(stats=True)
        executor = MappingExecutor(obs=obs, memory_budget=16)
        got = executor.execute(mappings, instance)
        assert got.same_bags(expected)
        assert obs.metrics.counter("exec.spill.runs") > 0


class TestAutoTierUnderBudget:
    def test_choose_tier_prefers_rows_when_spilling(self):
        from repro.cost.model import DEFAULT_MODEL, choose_tier

        n = 50_000
        assert choose_tier(n, workers=4) == "parallel"
        assert choose_tier(n, workers=4, memory_budget=1000) == "rows"
        assert choose_tier(n, workers=4, memory_budget=n) == "parallel"
        assert DEFAULT_MODEL.spill_cost(n, 1000) > 0
        assert DEFAULT_MODEL.spill_cost(n, None) == 0
        assert DEFAULT_MODEL.spill_cost(n, MemoryBudget(1000)) > 0

    def test_auto_mode_engine_respects_the_budget(self):
        instance = generate_instance(n_customers=200)
        expected = EtlEngine().execute(build_example_job(), instance)
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, mode="auto", memory_budget=16)
        got = engine.execute(build_example_job(), instance)
        assert got.same_bags(expected)
