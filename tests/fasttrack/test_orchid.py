"""Orchid façade tests: the FastTrack scenarios of paper section I."""

import pytest

from repro.fasttrack import Orchid
from repro.etl import job_to_xml, run_job
from repro.mapping import Mapping, MappingSet, SourceBinding, execute_mappings
from repro.schema import relation
from repro.workloads import build_example_job, generate_instance


@pytest.fixture
def orchid():
    return Orchid()


class TestImports:
    def test_import_etl_object_model(self, orchid):
        graph = orchid.import_etl(build_example_job())
        assert len(graph.sources()) == 2

    def test_import_etl_xml(self, orchid):
        xml = job_to_xml(build_example_job())
        graph = orchid.import_etl(xml)
        assert len(graph.targets()) == 2

    def test_import_mappings_json(self, orchid):
        mappings = orchid.etl_to_mappings(build_example_job())
        json_text = Orchid.export_mappings_json(mappings)
        graph = orchid.import_mappings(json_text)
        assert "GROUP" in graph.kinds_in_order()


class TestAnalystReviewDirection:
    def test_etl_to_mappings(self, orchid):
        mappings = orchid.etl_to_mappings(build_example_job())
        assert mappings.names == ["M1", "M2", "M3"]

    def test_mappings_execute_like_the_job(self, orchid):
        job = build_example_job()
        mappings = orchid.etl_to_mappings(job)
        instance = generate_instance(40)
        assert execute_mappings(mappings, instance).same_bags(
            run_job(job, instance)
        )


class TestProgrammerDirection:
    def test_mappings_to_etl(self, orchid):
        mappings = orchid.etl_to_mappings(build_example_job())
        job, plan = orchid.mappings_to_etl(mappings)
        assert len(plan.boxes) >= 4
        instance = generate_instance(40)
        assert run_job(job, instance).same_bags(
            run_job(build_example_job(), instance)
        )

    def test_incomplete_mapping_yields_skeleton(self, orchid):
        """The paper's motivating FastTrack flow: an analyst's incomplete
        mapping becomes a job skeleton with an unresolved placeholder
        Join stage carrying the business-rule annotation."""
        a = relation("A", ("id", "int", False), ("x", "float"))
        b = relation("B", ("id", "int", False), ("y", "float"))
        target = relation("T", ("id", "int"), ("x", "float"), ("y", "float"))
        incomplete = Mapping(
            [SourceBinding("a", a), SourceBinding("b", b)],
            target,
            [("id", "a.id"), ("x", "a.x"), ("y", "b.y")],
            annotations={"rule": "match on account ownership (to refine)"},
        )
        skeleton, _plan = orchid.mappings_to_etl(MappingSet([incomplete]))
        joins = skeleton.stages_of_type("Join")
        assert len(joins) == 1
        (join,) = joins
        assert join.is_placeholder
        assert "placeholder" in join.annotations
        assert join.annotations["rule"].startswith("match on account")

    def test_refined_skeleton_becomes_runnable(self, orchid):
        a = relation("A", ("id", "int", False), ("x", "float", False))
        b = relation("B", ("id", "int", False), ("y", "float", False))
        target = relation("T", ("id", "int"), ("x", "float"), ("y", "float"))
        incomplete = Mapping(
            [SourceBinding("a", a), SourceBinding("b", b)],
            target,
            [("id", "a.id"), ("x", "a.x"), ("y", "b.y")],
        )
        skeleton, _plan = orchid.mappings_to_etl(MappingSet([incomplete]))
        (join,) = skeleton.stages_of_type("Join")
        # the skeleton disambiguated b's colliding id column as b_id; the
        # ETL programmer fills in the predicate against it...
        join.keys = [("id", "b_id")]
        join.annotations.pop("placeholder", None)
        # ...and the job runs
        from repro.data.dataset import Dataset, Instance

        instance = Instance([
            Dataset(a, [{"id": 1, "x": 1.0}]),
            Dataset(b, [{"id": 1, "y": 2.0}]),
        ])
        result = run_job(skeleton, instance)
        assert result.dataset("T").rows == [{"id": 1, "x": 1.0, "y": 2.0}]


class TestRoundTrips:
    def test_round_trip_etl(self, orchid):
        job = build_example_job()
        regenerated, mappings = orchid.round_trip_etl(job)
        instance = generate_instance(40)
        assert run_job(regenerated, instance).same_bags(run_job(job, instance))
        assert len(mappings) == 3

    def test_round_trip_mappings_stable(self, orchid):
        """Regenerated mappings 'will match the original mappings':
        a second round trip reproduces the first one's text exactly."""
        original = orchid.etl_to_mappings(build_example_job())
        once, _job = orchid.round_trip_mappings(original)
        twice, _job = orchid.round_trip_mappings(once)
        def canonical(ms):
            return [
                (
                    sorted(b.relation.name for b in m.sources),
                    m.target.name,
                    sorted(c.to_sql() for c in m.where_conjuncts()),
                    sorted((c, e.to_sql()) for c, e in m.derivations),
                )
                for m in ms.in_dependency_order()
            ]
        assert canonical(once) == canonical(twice)

    def test_optimize_in_place(self, orchid):
        graph = orchid.import_etl(build_example_job())
        report = orchid.optimize(graph)
        assert report.total >= 0
        instance = generate_instance(30)
        from repro.ohm import execute

        assert execute(graph, instance).same_bags(
            run_job(build_example_job(), instance)
        )

    def test_hybrid_deployment(self, orchid):
        graph = orchid.import_etl(build_example_job())
        hybrid = orchid.to_hybrid(graph)
        instance = generate_instance(30)
        assert hybrid.execute(instance).same_bags(
            run_job(build_example_job(), instance)
        )
