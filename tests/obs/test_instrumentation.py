"""Integration tests: the observability hooks across the real pipeline.

These run the paper's quickstart scenario (Figure 3 job) with an enabled
:class:`~repro.obs.Observability` and assert that the span tree and the
metrics registry show what actually happened — stage-by-stage
compilation, per-operator row flow, per-link monitor counts, rewrite
activity, deployment placement.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import Orchid
from repro.etl import EtlEngine
from repro.obs import Observability
from repro.ohm import execute
from repro.workloads import build_example_job, generate_instance


@pytest.fixture
def obs():
    return Observability(trace=True, stats=True)


class TestCompileTrace:
    def test_span_tree_mirrors_compilation(self, obs):
        job = build_example_job()
        Orchid(obs=obs).import_etl(job)
        compile_span = obs.tracer.find("compile.job")
        assert compile_span is not None
        phases = [c.name for c in compile_span.children]
        assert phases == [
            "compile.phase.propagate",
            "compile.phase.stages",
            "compile.phase.output-propagate",
            "compile.phase.cleanup",
        ]
        stage_spans = [
            s for s in obs.tracer.walk() if s.name.startswith("compile.stage.")
        ]
        assert len(stage_spans) == len(job.stages)
        compiled_names = {s.attrs["stage"] for s in stage_spans}
        assert compiled_names == {stage.name for stage in job.stages}

    def test_compile_phase_timers_recorded(self, obs):
        Orchid(obs=obs).import_etl(build_example_job())
        for phase in ("wrap", "propagate", "stages", "cleanup"):
            count, total = obs.metrics.timer_stats(
                f"compile.phase.{phase}.seconds"
            )
            assert count == 1
            assert total >= 0.0
        assert obs.metrics.counter("compile.stages") == len(
            build_example_job().stages
        )

    def test_rewrite_counters_from_cleanup_pass(self, obs):
        Orchid(obs=obs).import_etl(build_example_job())
        attempted = [
            name
            for name in obs.metrics.counters
            if name.startswith("rewrite.rule.") and name.endswith(".attempted")
        ]
        assert attempted, "cleanup pass should attempt its rules"
        assert obs.metrics.counter("rewrite.passes") >= 1
        span = obs.tracer.find("rewrite.optimize")
        assert span.attrs["operators_before"] >= span.attrs["operators_after"]


class TestOhmExecutionMetrics:
    def test_per_operator_rows_match_dataset_sizes(self, obs):
        orchid = Orchid(obs=obs)
        graph = orchid.import_etl(build_example_job())
        instance = generate_instance(n_customers=60)
        execute(graph, instance, obs=obs)
        for source in graph.sources():
            rows_out = obs.metrics.counter(
                f"ohm.operator.{source.uid}.rows_out"
            )
            assert rows_out == len(instance.dataset(source.relation.name))
            _count, seconds = obs.metrics.timer_stats(
                f"ohm.operator.{source.uid}.seconds"
            )
            assert seconds >= 0.0
        run_span = obs.tracer.find("ohm.run")
        op_spans = [
            c for c in run_span.children if c.name.startswith("ohm.op.")
        ]
        assert len(op_spans) == len(graph.operators)
        for span in op_spans:
            assert span.attrs["rows_in"] >= 0
            assert span.attrs["rows_out"] >= 0

    def test_filter_never_grows_its_input(self, obs):
        graph = Orchid(obs=obs).import_etl(build_example_job())
        execute(graph, generate_instance(n_customers=40), obs=obs)
        for span in obs.tracer.walk():
            if span.name == "ohm.op.FILTER":
                assert span.attrs["rows_out"] <= span.attrs["rows_in"]


class TestEtlEngineStats:
    def test_per_link_counts_in_metrics_and_stats(self, obs):
        job = build_example_job()
        instance = generate_instance(n_customers=30)
        engine = EtlEngine(obs=obs)
        _targets, links = engine.run(job, instance)
        for name, dataset in links.items():
            assert engine.last_run.link_counts[name] == len(dataset)
            assert obs.metrics.counter(f"etl.link.{name}.rows") == len(dataset)
        assert set(engine.last_run.stage_seconds) == {
            stage.name for stage in job.stages
        }

    def test_stats_are_per_run_not_interleaved(self):
        """The bugfix: a second run replaces the snapshot wholesale
        instead of mutating it in place under the first caller."""
        job = build_example_job()
        engine = EtlEngine()
        engine.run(job, generate_instance(n_customers=30))
        first = engine.last_run
        first_counts = dict(first.link_counts)
        engine.run(job, generate_instance(n_customers=80))
        assert engine.last_run is not first
        assert first.link_counts == first_counts  # untouched by run #2
        assert engine.last_run.link_counts["DSLink1"] == 80

    def test_link_counts_shim_warns_and_copies(self):
        engine = EtlEngine()
        engine.run(build_example_job(), generate_instance(n_customers=10))
        with pytest.warns(DeprecationWarning):
            counts = engine.link_counts
        counts["DSLink1"] = -1  # mutating the copy must not corrupt state
        assert engine.last_run.link_counts["DSLink1"] == 10


class TestDeploymentMetrics:
    def test_placement_counters(self, obs):
        orchid = Orchid(obs=obs)
        graph = orchid.import_etl(build_example_job())
        job, plan = orchid.to_etl(graph)
        assert obs.metrics.counter("deploy.DataStage.boxes") == len(plan.boxes)
        assert obs.metrics.counter("deploy.DataStage.stages") == len(job.stages)
        placed = sum(len(box.uids) for box in plan.boxes)
        assert (
            obs.metrics.counter("deploy.DataStage.operators_placed") == placed
        )

    def test_pushdown_decisions(self, obs):
        orchid = Orchid(obs=obs)
        graph = orchid.import_etl(build_example_job())
        hybrid = orchid.to_hybrid(graph)
        assert obs.metrics.counter("deploy.pushdown.pushed_operators") == len(
            hybrid.pushed_operator_uids
        )
        assert obs.metrics.counter("deploy.pushdown.frontier_edges") == len(
            hybrid.statements
        )
        span = obs.tracer.find("deploy.pushdown")
        assert span.attrs["pushed_operators"] == len(
            hybrid.pushed_operator_uids
        )


class TestDisabledDefault:
    def test_pipeline_records_nothing_by_default(self):
        obs = Observability()  # both disabled
        orchid = Orchid(obs=obs)
        graph = orchid.import_etl(build_example_job())
        execute(graph, generate_instance(n_customers=10), obs=obs)
        assert obs.tracer.spans == []
        assert obs.metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
        }


class TestQuickstartStatsJson:
    def test_quickstart_emits_parseable_metrics_document(self):
        repo = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [
                sys.executable,
                os.path.join(repo, "examples", "quickstart.py"),
                "--stats",
                "json",
            ],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        document = json.loads(result.stdout)
        counters = document["counters"]
        timers = document["timers"]
        assert any(
            k.startswith("ohm.operator.") and k.endswith(".rows_out")
            for k in counters
        )
        assert any(
            k.startswith("ohm.operator.") and k.endswith(".seconds")
            for k in timers
        )
        assert any(k.startswith("etl.link.") for k in counters)
        assert any(k.startswith("rewrite.rule.") for k in counters)
        assert any(k.startswith("compile.phase.") for k in timers)
        # the narrative went to stderr, stdout is pure JSON
        assert "Semantic checks" in result.stderr
