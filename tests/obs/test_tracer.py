"""Tracer tests: span nesting, the disabled no-op, JSON round-trip."""

import json

from repro.obs import NULL_SPAN, NULL_TRACER, Span, Tracer, tracer_from_json


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("inner.b"):
                pass
        assert [s.name for s in tracer.spans] == ["outer"]
        outer = tracer.spans[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[0].children] == ["leaf"]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.spans] == ["first", "second"]

    def test_durations_are_monotone(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        outer = tracer.spans[0]
        inner = outer.children[0]
        assert outer.seconds >= inner.seconds >= 0.0

    def test_open_span_reports_zero(self):
        span = Span("pending")
        assert span.seconds == 0.0

    def test_attributes_via_set_and_kwargs(self):
        tracer = Tracer()
        with tracer.span("work", job="fig3") as span:
            span.set(rows=42)
        assert tracer.spans[0].attrs == {"job": "fig3", "rows": 42}

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert tracer.find("c").name == "c"
        assert tracer.find("missing") is None
        assert [s.name for s in tracer.walk()] == ["a", "b", "c"]

    def test_to_text_indents_children(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        lines = tracer.to_text().splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")


class TestJsonRoundTrip:
    def test_round_trip_preserves_tree_and_attrs(self):
        tracer = Tracer()
        with tracer.span("compile.job", job="q") as span:
            span.set(operators=13)
            with tracer.span("compile.stage.Filter", stage="NonLoans"):
                pass
        restored = tracer_from_json(tracer.to_json())
        assert restored.to_dict() == tracer.to_dict()
        assert restored.find("compile.stage.Filter").attrs == {
            "stage": "NonLoans"
        }

    def test_json_is_parseable_and_shaped(self):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        doc = json.loads(tracer.to_json())
        assert list(doc) == ["trace"]
        assert doc["trace"][0]["name"] == "only"
        assert doc["trace"][0]["seconds"] >= 0.0

    def test_empty_tracer_round_trips(self):
        restored = tracer_from_json(Tracer().to_json())
        assert restored.spans == []


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_span_returns_shared_singleton(self):
        a = NULL_TRACER.span("anything", key="value")
        b = NULL_TRACER.span("other")
        assert a is b is NULL_SPAN

    def test_nothing_is_recorded(self):
        with NULL_TRACER.span("outer") as span:
            span.set(rows=1)
            with NULL_TRACER.span("inner"):
                pass
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.to_dict() == {"trace": []}
        assert NULL_TRACER.find("outer") is None
        assert list(NULL_TRACER.walk()) == []

    def test_null_span_is_reentrant(self):
        with NULL_TRACER.span("a") as outer:
            with NULL_TRACER.span("a") as inner:
                assert outer is inner

    def test_text_and_json_exports_still_work(self):
        assert NULL_TRACER.to_text() == "(tracing disabled)"
        assert json.loads(NULL_TRACER.to_json()) == {"trace": []}
