"""Metrics registry tests: counters, gauges, timers, exports, no-op."""

import json

from repro.obs import Metrics, NULL_METRICS, Observability


class TestCounters:
    def test_count_accumulates(self):
        metrics = Metrics()
        metrics.count("etl.link.DSLink1.rows", 10)
        metrics.count("etl.link.DSLink1.rows", 5)
        assert metrics.counter("etl.link.DSLink1.rows") == 15

    def test_default_increment_is_one(self):
        metrics = Metrics()
        metrics.count("compile.stages")
        metrics.count("compile.stages")
        assert metrics.counter("compile.stages") == 2

    def test_missing_counter_reads_zero(self):
        assert Metrics().counter("never.recorded") == 0


class TestGaugesAndTimers:
    def test_gauge_last_write_wins(self):
        metrics = Metrics()
        metrics.gauge("deploy.pushdown.pushed_operators", 3)
        metrics.gauge("deploy.pushdown.pushed_operators", 6)
        assert metrics.gauges["deploy.pushdown.pushed_operators"] == 6

    def test_observe_accumulates_count_and_total(self):
        metrics = Metrics()
        metrics.observe("phase.seconds", 0.25)
        metrics.observe("phase.seconds", 0.75)
        assert metrics.timer_stats("phase.seconds") == (2, 1.0)

    def test_timer_context_manager_records_elapsed(self):
        metrics = Metrics()
        with metrics.timer("work.seconds"):
            sum(range(1000))
        count, total = metrics.timer_stats("work.seconds")
        assert count == 1
        assert total > 0.0


class TestExports:
    def test_snapshot_sections_and_sorting(self):
        metrics = Metrics()
        metrics.count("b.counter")
        metrics.count("a.counter")
        metrics.gauge("g", 1.5)
        metrics.observe("t.seconds", 0.1)
        snap = metrics.snapshot()
        assert list(snap) == ["counters", "gauges", "timers"]
        assert list(snap["counters"]) == ["a.counter", "b.counter"]
        assert snap["timers"]["t.seconds"] == {
            "count": 1,
            "total_seconds": 0.1,
        }

    def test_to_json_parses_back_to_snapshot(self):
        metrics = Metrics()
        metrics.count("x", 3)
        assert json.loads(metrics.to_json()) == metrics.snapshot()

    def test_to_text_mentions_every_metric(self):
        metrics = Metrics()
        metrics.count("some.counter", 7)
        metrics.gauge("some.gauge", 2.0)
        metrics.observe("some.timer.seconds", 0.5)
        text = metrics.to_text()
        for name in ("some.counter", "some.gauge", "some.timer.seconds"):
            assert name in text

    def test_empty_registry_text(self):
        assert Metrics().to_text() == "(no metrics recorded)"


class TestNullMetrics:
    def test_disabled_flag(self):
        assert NULL_METRICS.enabled is False
        assert Metrics().enabled is True

    def test_recording_is_a_no_op(self):
        NULL_METRICS.count("c", 5)
        NULL_METRICS.gauge("g", 1.0)
        NULL_METRICS.observe("t", 0.5)
        with NULL_METRICS.timer("t2"):
            pass
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
        }
        assert NULL_METRICS.counter("c") == 0
        assert NULL_METRICS.timer_stats("t") == (0, 0.0)


class TestObservabilityBundle:
    def test_default_is_fully_disabled(self):
        obs = Observability()
        assert not obs.enabled
        assert not obs.tracer.enabled
        assert not obs.metrics.enabled

    def test_partial_enablement(self):
        trace_only = Observability(trace=True)
        assert trace_only.enabled
        assert trace_only.tracer.enabled and not trace_only.metrics.enabled
        stats_only = Observability(stats=True)
        assert stats_only.enabled
        assert stats_only.metrics.enabled and not stats_only.tracer.enabled
