"""Property-based end-to-end checks: for randomly parameterized jobs and
data, all execution paths agree —

    ETL engine ≡ compiled OHM graph ≡ extracted mappings
              ≡ mappings→OHM round trip ≡ redeployed ETL job
              ≡ hybrid SQL+ETL deployment.

This is the reproduction's strongest evidence that every translation
"captures the same transformation semantics" (paper abstract).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compile import compile_job
from repro.deploy import deploy_to_job, plan_pushdown
from repro.etl import run_job
from repro.mapping import execute_mappings, ohm_to_mappings
from repro.mapping.to_ohm import mappings_to_ohm
from repro.ohm import execute
from repro.rewrite import optimize
from repro.workloads import (
    build_chain_job,
    build_example_job,
    build_fanout_job,
    build_star_join_job,
    generate_chain_instance,
    generate_instance,
    generate_star_instance,
)


def all_paths_agree(job, instance):
    baseline = run_job(job, instance)
    graph = compile_job(job)
    assert execute(graph, instance).same_bags(baseline), "OHM engine diverged"
    mappings = ohm_to_mappings(graph)
    assert execute_mappings(mappings, instance).same_bags(
        baseline
    ), "mapping executor diverged"
    back = mappings_to_ohm(mappings)
    assert execute(back, instance).same_bags(
        baseline
    ), "mappings→OHM round trip diverged"
    redeployed, _plan = deploy_to_job(graph)
    assert run_job(redeployed, instance).same_bags(
        baseline
    ), "redeployed job diverged"
    optimize(graph)
    assert execute(graph, instance).same_bags(baseline), "optimizer diverged"
    hybrid = plan_pushdown(compile_job(job))
    assert hybrid.execute(instance).same_bags(baseline), "hybrid diverged"


class TestChainJobs:
    @given(
        n_stages=st.integers(min_value=1, max_value=14),
        seed=st.integers(min_value=0, max_value=10_000),
        rows=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_chains(self, n_stages, seed, rows):
        all_paths_agree(
            build_chain_job(n_stages, seed=seed),
            generate_chain_instance(rows, seed=seed + 1),
        )


class TestFanoutJobs:
    @given(
        branches=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=8, deadline=None)
    def test_random_fanouts(self, branches, seed):
        all_paths_agree(
            build_fanout_job(branches, seed=seed),
            generate_chain_instance(50, seed=seed),
        )


class TestStarJoins:
    @given(
        dims=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=6, deadline=None)
    def test_random_stars(self, dims, seed):
        all_paths_agree(
            build_star_join_job(dims),
            generate_star_instance(dims, 80, seed=seed),
        )


class TestPaperExample:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_example_with_random_data(self, seed):
        all_paths_agree(
            build_example_job(), generate_instance(40, seed=seed)
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=4, deadline=None)
    def test_unknown_scenario_with_random_data(self, seed):
        # pushdown works around the UNKNOWN; all other paths carry the
        # black box behaviour
        job = build_example_job(custom_after_join=True)
        instance = generate_instance(30, seed=seed)
        baseline = run_job(job, instance)
        graph = compile_job(job)
        assert execute(graph, instance).same_bags(baseline)
        mappings = ohm_to_mappings(graph)
        assert execute_mappings(mappings, instance).same_bags(baseline)
        back = mappings_to_ohm(mappings)
        assert execute(back, instance).same_bags(baseline)
        hybrid = plan_pushdown(graph)
        assert hybrid.execute(instance).same_bags(baseline)
