"""The kitchen-sink workload: every compilable stage type in one job,
checked across every execution path."""

import pytest

from repro.compile import compile_job
from repro.deploy import build_minimal_platform, deploy_to_job, plan_pushdown
from repro.etl import job_from_xml, job_to_xml, run_job
from repro.mapping import (
    execute_mappings,
    mappings_from_json,
    mappings_to_json,
    ohm_to_mappings,
)
from repro.mapping.to_ohm import mappings_to_ohm
from repro.ohm import execute, graph_from_json, graph_to_json, reset_keygen_sequences
from repro.workloads import (
    build_kitchen_sink_job,
    generate_kitchen_sink_instance,
)


@pytest.fixture(scope="module")
def instance():
    return generate_kitchen_sink_instance(150)


@pytest.fixture(scope="module")
def baseline(instance):
    reset_keygen_sequences()
    return run_job(build_kitchen_sink_job(), instance)


class TestStageCoverage:
    def test_uses_twelve_processing_stage_types(self):
        job = build_kitchen_sink_job()
        types = {s.STAGE_TYPE for s in job.stages}
        assert {
            "Sort", "Peek", "Filter", "Switch", "Funnel", "Copy", "Lookup",
            "Transformer", "Modify", "RemoveDuplicates", "Aggregator",
            "SurrogateKey",
        } <= types

    def test_all_five_targets_populated(self, baseline):
        for name in (
            "Enriched", "Rejected", "OtherRegions", "Audit", "RegionStats",
        ):
            assert len(baseline.dataset(name)) > 0, name

    def test_workload_exercises_edge_behaviour(self, instance, baseline):
        # NULL amounts fell through to the otherwise link
        assert len(baseline.dataset("Rejected")) > 0
        # duplicates were removed: audit rows are distinct orderIDs
        audit = baseline.dataset("Audit").column("orderID")
        assert len(audit) == len(set(audit))
        # unmatched lookups null-filled rather than dropping rows
        assert any(
            r["name"] is None for r in baseline.dataset("Enriched")
        )


class TestOrderPreservingPaths:
    """Paths that share the engines' deterministic row order may include
    the surrogate-key stage."""

    def test_ohm_engine(self, instance, baseline):
        graph = compile_job(build_kitchen_sink_job())
        reset_keygen_sequences()
        assert execute(graph, instance).same_bags(baseline)

    def test_redeployed_job(self, instance, baseline):
        graph = compile_job(build_kitchen_sink_job())
        job, _plan = deploy_to_job(graph)
        reset_keygen_sequences()
        assert run_job(job, instance).same_bags(baseline)

    def test_xml_round_trip(self, instance, baseline):
        job = job_from_xml(job_to_xml(build_kitchen_sink_job()))
        reset_keygen_sequences()
        assert run_job(job, instance).same_bags(baseline)

    def test_ohm_json_round_trip(self, instance, baseline):
        graph = compile_job(build_kitchen_sink_job())
        restored = graph_from_json(graph_to_json(graph))
        reset_keygen_sequences()
        assert execute(restored, instance).same_bags(baseline)


class TestMappingPaths:
    """Mapping-level paths use the keygen-free variant (surrogate keys
    are row-order dependent; the mapping executor enumerates rows in a
    different order)."""

    @pytest.fixture(scope="class")
    def nk_baseline(self, instance):
        return run_job(build_kitchen_sink_job(with_surrogate_key=False),
                       instance)

    def test_extracted_mappings_execute(self, instance, nk_baseline):
        graph = compile_job(build_kitchen_sink_job(with_surrogate_key=False))
        mappings = ohm_to_mappings(graph)
        # the outer-join Lookup becomes an opaque mapping that still runs
        assert any(m.is_opaque for m in mappings)
        assert execute_mappings(mappings, instance).same_bags(nk_baseline)

    def test_mappings_to_ohm_round_trip(self, instance, nk_baseline):
        graph = compile_job(build_kitchen_sink_job(with_surrogate_key=False))
        back = mappings_to_ohm(ohm_to_mappings(graph))
        assert execute(back, instance).same_bags(nk_baseline)

    def test_mapping_json_round_trip_structure(self):
        graph = compile_job(build_kitchen_sink_job(with_surrogate_key=False))
        mappings = ohm_to_mappings(graph)
        restored = mappings_from_json(mappings_to_json(mappings))
        assert restored.names == mappings.names

    def test_hybrid_pushdown(self, instance, nk_baseline):
        graph = compile_job(build_kitchen_sink_job(with_surrogate_key=False))
        hybrid = plan_pushdown(graph)
        assert hybrid.execute(instance).same_bags(nk_baseline)

    def test_minimal_platform_deployment(self, instance, nk_baseline):
        graph = compile_job(build_kitchen_sink_job(with_surrogate_key=False))
        job, _plan = deploy_to_job(graph, build_minimal_platform())
        assert run_job(job, instance).same_bags(nk_baseline)
