"""End-to-end assertions for every figure of the paper's worked example.

Each test class corresponds to one figure/scenario; see DESIGN.md's
experiment index. The benchmarks regenerate the same artifacts with
timings; these tests pin the exact structures.
"""

import pytest

from repro.compile import compile_job
from repro.deploy import DATASTAGE, deploy_to_job, plan_deployment, plan_pushdown
from repro.etl import run_job, run_job_with_links
from repro.mapping import execute_mappings, ohm_to_mappings
from repro.mapping.to_ohm import mappings_to_ohm
from repro.ohm import execute, execute_with_edges
from repro.workloads import build_example_job, generate_instance


@pytest.fixture(scope="module")
def instance():
    return generate_instance(100)


@pytest.fixture(scope="module")
def etl_result(instance):
    return run_job(build_example_job(), instance)


class TestFigure3ExampleJob:
    def test_stage_inventory(self):
        job = build_example_job()
        types = sorted(s.STAGE_TYPE for s in job.stages)
        assert types == sorted([
            "TableSource", "TableSource", "Transformer", "Filter", "Join",
            "Aggregator", "Filter", "TableTarget", "TableTarget",
        ])

    def test_named_links_match_paper(self):
        job = build_example_job()
        names = {l.name for l in job.links}
        assert {"DSLink5", "DSLink10"} <= names  # the paper names these

    def test_job_partitions_customers(self, instance, etl_result):
        big = etl_result.dataset("BigCustomers")
        other = etl_result.dataset("OtherCustomers")
        assert len(big) > 0 and len(other) > 0
        assert all(r["totalBalance"] > 100000 for r in big)
        assert all(r["totalBalance"] <= 100000 for r in other)


class TestFigure5OhmInstance:
    EXPECTED_KINDS = [
        "PROJECT",            # Prepare Customers
        "FILTER",             # NonLoans predicate
        "BASIC PROJECT",      # NonLoans projection
        "JOIN",               # Join
        "BASIC PROJECT",      # drop the duplicate customerID
        "GROUP",              # Compute Total Balance
        "SPLIT",              # the final Filter fans out
        "FILTER",             # > 100000
        "FILTER",             # the negated predicate
    ]

    @pytest.fixture(scope="class")
    def graph(self):
        return compile_job(build_example_job())

    def test_operator_multiset_matches_figure5(self, graph):
        processing = [
            k for k in graph.kinds_in_order() if k not in ("SOURCE", "TARGET")
        ]
        assert sorted(processing) == sorted(self.EXPECTED_KINDS)

    def test_join_followed_by_basic_project(self, graph):
        (join,) = graph.operators_of_kind("JOIN")
        (successor,) = graph.successors(join.uid)
        assert successor.KIND == "BASIC PROJECT"
        # "only one customerid column is needed from this point on"
        out_schema = graph.out_edges(successor.uid)[0].schema
        assert out_schema.attribute_names.count("customerID") == 1

    def test_split_branch_predicates(self, graph):
        (split,) = graph.operators_of_kind("SPLIT")
        branch_filters = graph.successors(split.uid)
        conditions = sorted(f.condition.to_sql() for f in branch_filters)
        assert conditions == [
            "(totalBalance <= 100000)",   # the negated predicate branch
            "(totalBalance > 100000)",
        ]

    def test_edge_dslink10_before_split(self, graph):
        (split,) = graph.operators_of_kind("SPLIT")
        (in_edge,) = graph.in_edges(split.uid)
        assert in_edge.name == "DSLink10"

    def test_compiled_graph_semantics(self, graph, instance, etl_result):
        assert execute(graph, instance).same_bags(etl_result)


class TestFigures7And8Mappings:
    @pytest.fixture(scope="class")
    def mappings(self):
        return ohm_to_mappings(compile_job(build_example_job()))

    def test_exactly_three_mappings(self, mappings):
        assert mappings.names == ["M1", "M2", "M3"]

    def test_materialization_point_is_dslink10(self, mappings):
        assert mappings.intermediate_relation_names() == ["DSLink10"]

    def test_m1_holds_join_filter_and_grouping(self, mappings):
        m1 = mappings.by_name("M1")
        assert sorted(m1.source_relation_names) == ["Accounts", "Customers"]
        assert m1.target.name == "DSLink10"
        conjuncts = {c.to_sql() for c in m1.where_conjuncts()}
        assert "(a.type <> 'L')" in conjuncts
        assert "(c.customerID = a.customerID)" in conjuncts
        assert m1.is_grouping
        derived = dict(m1.derivations)
        assert derived["totalBalance"].to_sql() == "SUM(a.balance)"
        # "The long expressions on the body of M1 are the transformation
        # functions used to compute the values of agegroup, enddate, ..."
        assert "CASE WHEN" in derived["agegroup"].to_sql()
        assert "ADD_DAYS" in derived["endDate"].to_sql()
        assert "YEARS_BETWEEN" in derived["years"].to_sql()

    def test_m2_m3_route_on_total_balance(self, mappings):
        m2, m3 = mappings.by_name("M2"), mappings.by_name("M3")
        assert m2.source_relation_names == ["DSLink10"]
        assert m3.source_relation_names == ["DSLink10"]
        assert {m2.target.name, m3.target.name} == {
            "BigCustomers", "OtherCustomers",
        }
        big = m2 if m2.target.name == "BigCustomers" else m3
        other = m3 if big is m2 else m2
        assert big.where.to_sql() == "(d1.totalBalance > 100000)"
        assert other.where.to_sql() == "(d2.totalBalance <= 100000)"

    def test_mappings_execute_like_the_job(self, mappings, instance, etl_result):
        assert execute_mappings(mappings, instance).same_bags(etl_result)

    def test_dslink10_contents_match_the_link(self, mappings, instance):
        # the intermediate relation is exactly the data on the ETL link
        from repro.mapping import MappingExecutor

        _targets, intermediates = MappingExecutor().run(mappings, instance)
        _etl_targets, links = run_job_with_links(
            build_example_job(), instance
        )
        assert intermediates["DSLink10"].same_bag(links["DSLink10"])


class TestUnknownOperatorScenario:
    """Section V-B: a custom operator right after the Join."""

    @pytest.fixture(scope="class")
    def mappings(self):
        return ohm_to_mappings(
            compile_job(build_example_job(custom_after_join=True))
        )

    def test_five_mappings(self, mappings):
        assert len(mappings) == 5

    def test_structure_matches_paper(self, mappings):
        ordered = mappings.in_dependency_order()
        # sources -> DSLink5 (no grouping), DSLink5 -> custom output
        # (opaque), custom output -> DSLink10 (the grouping), then the
        # two target mappings
        first = ordered[0]
        assert first.target.name == "DSLink5"
        assert not first.is_grouping
        opaque = [m for m in ordered if m.is_opaque]
        assert len(opaque) == 1
        assert opaque[0].source_relation_names == ["DSLink5"]
        assert opaque[0].reference == "AuditBalances"
        grouping = [m for m in ordered if m.is_grouping]
        assert len(grouping) == 1
        assert grouping[0].target.name == "DSLink10"
        targets = {m.target.name for m in ordered[-2:]}
        assert targets == {"BigCustomers", "OtherCustomers"}

    def test_opaque_mapping_records_no_transformation(self, mappings):
        (opaque,) = [m for m in mappings if m.is_opaque]
        assert opaque.derivations == []
        assert opaque.where.to_sql() == "TRUE"

    def test_executable_because_behaviour_was_carried(self, mappings, instance):
        job = build_example_job(custom_after_join=True)
        assert execute_mappings(mappings, instance).same_bags(
            run_job(job, instance)
        )


class TestFigure9ReverseDirection:
    def test_round_trip_reproduces_figure5_shape(self, instance, etl_result):
        forward = compile_job(build_example_job())
        backward = mappings_to_ohm(ohm_to_mappings(forward))

        def shape(graph):
            return sorted(
                k for k in graph.kinds_in_order()
                if k not in ("SOURCE", "TARGET")
            )

        assert shape(backward) == shape(forward)
        assert execute(backward, instance).same_bags(etl_result)

    def test_m2_compiles_to_filter_basic_project(self):
        # "resulting in the simple DSLink10 -> FILTER -> BASIC PROJECT ->
        # BigCustomers flow"
        mappings = ohm_to_mappings(compile_job(build_example_job()))
        m2 = mappings.by_name("M2")
        from repro.mapping.model import MappingSet

        graph = mappings_to_ohm(MappingSet([m2]), cleanup=False)
        kinds = [
            k for k in graph.kinds_in_order() if k not in ("SOURCE", "TARGET")
        ]
        assert kinds == ["FILTER", "BASIC PROJECT"]


class TestFigure10Deployment:
    def test_plan_and_redeployed_job(self, instance, etl_result):
        graph = compile_job(build_example_job())
        job, plan = deploy_to_job(graph)
        assert len(plan.boxes) == 5
        types = sorted(s.STAGE_TYPE for s in job.stages)
        assert types == sorted([
            "TableSource", "TableSource", "Transformer", "Filter", "Join",
            "Aggregator", "Filter", "TableTarget", "TableTarget",
        ])
        assert run_job(job, instance).same_bags(etl_result)

    def test_filter_chosen_over_transformer(self):
        # "In both cases, a Filter stage would be the natural choice"
        graph = compile_job(build_example_job())
        plan = plan_deployment(graph, DATASTAGE)
        filter_boxes = [
            box for box in plan.boxes
            if {plan.graph.operator(u).KIND for u in box.uids}
            in ({"FILTER", "BASIC PROJECT"}, {"SPLIT", "FILTER"})
        ]
        assert filter_boxes
        for box in filter_boxes:
            assert box.chosen.name == "Filter"
            assert "Transformer" in [c.name for c in box.candidates]


class TestPushdownScenario:
    def test_hybrid_sql_plus_etl(self, instance, etl_result):
        graph = compile_job(build_example_job())
        hybrid = plan_pushdown(graph)
        assert list(hybrid.statements) == ["DSLink10"]
        assert "GROUP BY" in hybrid.statements["DSLink10"]
        assert hybrid.execute(instance).same_bags(etl_result)


class TestRoundTripping:
    def test_etl_mappings_etl(self, instance, etl_result):
        from repro.fasttrack import Orchid

        regenerated, _mappings = Orchid().round_trip_etl(build_example_job())
        assert run_job(regenerated, instance).same_bags(etl_result)

    def test_intermediate_edge_data_matches_at_dslink10(self, instance):
        graph = compile_job(build_example_job())
        _targets, edges = execute_with_edges(graph, instance)
        _etl_targets, links = run_job_with_links(
            build_example_job(), instance
        )
        assert edges["DSLink10"].same_bag(links["DSLink10"])
