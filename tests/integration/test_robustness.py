"""Robustness and failure-injection tests.

Hostile inputs through the full pipeline: string data containing quotes,
SQL wildcards, XML markup, and unicode must survive every translation
and both external formats; broken artifacts must fail loudly with
subsystem-specific errors rather than corrupting downstream layers.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compile import compile_job
from repro.data.dataset import Dataset, Instance
from repro.deploy import plan_pushdown
from repro.errors import (
    CompilationError,
    DeploymentError,
    MappingError,
    OrchidError,
    ValidationError,
)
from repro.etl import (
    FilterOutput,
    FilterStage,
    Job,
    TableSource,
    TableTarget,
    Transformer,
    job_from_xml,
    job_to_xml,
    run_job,
)
from repro.mapping import (
    execute_mappings,
    mappings_from_json,
    mappings_to_json,
    ohm_to_mappings,
)
from repro.ohm import execute
from repro.schema import relation

HOSTILE_STRINGS = [
    "O'Brien",                      # SQL string escape
    'quote " inside',               # identifier-quote character
    "100% _match_ LIKE",            # LIKE wildcards
    "<tag attr='x'>&amp;</tag>",    # XML markup
    "line\nbreak\tand tab",
    "ünïcødé — 日本語 🚀",
    "",                             # empty string
    "NULL",                         # the word, not the value
    "; DROP TABLE Customers; --",   # the classic
]


def hostile_job():
    rel = relation(
        "H", ("id", "int", False), ("text", "varchar"), ("v", "float", False)
    )
    job = Job("hostile")
    src = job.add(TableSource(rel))
    mark = job.add(
        Transformer.single(
            [
                ("id", "id"),
                ("text", "text"),
                ("tagged", "COALESCE(text, '?') || ' [' || v || ']'"),
            ],
            name="tag",
        )
    )
    pick = job.add(FilterStage(
        [FilterOutput("text IS NOT NULL"), FilterOutput(reject=True)],
        name="pick",
    ))
    out = relation(
        "Out", ("id", "int"), ("text", "varchar"), ("tagged", "varchar")
    )
    t1 = job.add(TableTarget(out))
    t2 = job.add(TableTarget(out.renamed("NoText")))
    job.link(src, mark)
    job.link(mark, pick)
    job.link(pick, t1, src_port=0)
    job.link(pick, t2, src_port=1)
    return job, rel


class TestHostileData:
    def make_instance(self, rel, texts):
        rows = [
            {"id": i, "text": t, "v": float(i)} for i, t in enumerate(texts)
        ]
        rows.append({"id": 999, "text": None, "v": 0.0})
        return Instance([Dataset(rel, rows)])

    def test_hostile_strings_survive_every_path(self):
        job, rel = hostile_job()
        instance = self.make_instance(rel, HOSTILE_STRINGS)
        baseline = run_job(job, instance)
        graph = compile_job(job)
        assert execute(graph, instance).same_bags(baseline)
        mappings = ohm_to_mappings(graph)
        assert execute_mappings(mappings, instance).same_bags(baseline)
        hybrid = plan_pushdown(graph)
        assert hybrid.execute(instance).same_bags(baseline)

    def test_hostile_strings_survive_external_formats(self):
        job, rel = hostile_job()
        instance = self.make_instance(rel, HOSTILE_STRINGS)
        baseline = run_job(job, instance)
        via_xml = job_from_xml(job_to_xml(job))
        assert run_job(via_xml, instance).same_bags(baseline)
        mappings = ohm_to_mappings(compile_job(job))
        via_json = mappings_from_json(mappings_to_json(mappings))
        assert execute_mappings(via_json, instance).same_bags(baseline)

    @given(
        texts=st.lists(
            st.text(max_size=24).filter(lambda s: "\r" not in s),
            min_size=0,
            max_size=8,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_property_arbitrary_text_through_pushdown(self, texts):
        # SQL generation + sqlite must agree with the ETL engine on
        # arbitrary (escaped) string data; carriage returns are excluded
        # because the csv-ish XML layer is not under test here
        job, rel = hostile_job()
        instance = self.make_instance(rel, texts)
        baseline = run_job(job, instance)
        hybrid = plan_pushdown(compile_job(job))
        assert hybrid.execute(instance).same_bags(baseline)


class TestHostileLiteralsInExpressions:
    def test_quote_in_predicate_literal(self):
        rel = relation("H", ("id", "int", False), ("text", "varchar"))
        job = Job("quoted")
        src = job.add(TableSource(rel))
        pick = job.add(FilterStage.single("text = 'O''Brien'", name="pick"))
        tgt = job.add(TableTarget(rel.renamed("Out")))
        job.link(src, pick)
        job.link(pick, tgt)
        instance = Instance([
            Dataset(rel, [
                {"id": 1, "text": "O'Brien"}, {"id": 2, "text": "Smith"},
            ])
        ])
        baseline = run_job(job, instance)
        assert baseline.dataset("Out").column("id") == [1]
        graph = compile_job(job)
        mappings = ohm_to_mappings(graph)
        assert execute_mappings(mappings, instance).same_bags(baseline)
        # ... and through SQL generation on sqlite
        hybrid = plan_pushdown(graph)
        assert hybrid.execute(instance).same_bags(baseline)
        # ... and through both external formats
        assert run_job(
            job_from_xml(job_to_xml(job)), instance
        ).same_bags(baseline)
        restored = mappings_from_json(mappings_to_json(mappings))
        assert execute_mappings(restored, instance).same_bags(baseline)


class TestFailLoudly:
    def test_every_library_error_is_an_orchid_error(self):
        for exc in (CompilationError, DeploymentError, MappingError,
                    ValidationError):
            assert issubclass(exc, OrchidError)

    def test_schema_mismatch_fails_at_validation_not_runtime(self):
        rel = relation("R", ("id", "int", False))
        job = Job("broken")
        src = job.add(TableSource(rel))
        tgt = job.add(TableTarget(relation("Out", ("missing", "varchar"))))
        job.link(src, tgt)
        with pytest.raises(ValidationError):
            job.propagate_schemas()

    def test_bad_expression_surfaces_stage_context(self):
        rel = relation("R", ("id", "int", False))
        job = Job("badexpr")
        src = job.add(TableSource(rel))
        bad = job.add(FilterStage.single("nonexistent > 3", name="oops"))
        tgt = job.add(TableTarget(rel.renamed("Out")))
        job.link(src, bad)
        job.link(bad, tgt)
        with pytest.raises(OrchidError):
            job.propagate_schemas()

    def test_compiling_invalid_job_fails_before_emitting(self):
        rel = relation("R", ("id", "int", False))
        job = Job("halfwired")
        job.add(TableSource(rel))  # dangling source
        with pytest.raises(OrchidError):
            compile_job(job)
