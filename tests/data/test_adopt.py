"""Trusted-materialization invariants: ``Dataset.adopt`` and
``Dataset.adopt_block``.

These are the compiled/batched engines' fast paths: ownership of
kernel-built rows or blocks transfers to the dataset with *no* copying
and *no* per-row validation, so every structural guarantee must be
enforced at the adoption boundary (schema shape) or documented as the
caller's obligation (freshness). These tests pin both: schema
mismatches raise at the source boundary, adopted data is never
re-copied, and the lazy block↔row conversions behave.
"""

import pytest

from repro.data.dataset import Dataset
from repro.errors import SchemaError
from repro.exec.block import RowBlock
from repro.schema.model import Attribute, Relation
from repro.schema.types import INTEGER, STRING

RELATION = Relation(
    "T",
    [
        Attribute("id", INTEGER, nullable=False),
        Attribute("name", STRING),
    ],
)
ROWS = [{"id": 1, "name": "a"}, {"id": 2, "name": None}]


def make_block():
    return RowBlock.from_rows(["id", "name"], ROWS)


# --- adopt (row lists) --------------------------------------------------------


def test_adopt_does_not_copy_the_row_list():
    rows = [dict(r) for r in ROWS]
    data = Dataset.adopt(RELATION, rows)
    assert data.rows is rows  # ownership transfer, not a copy
    assert data.rows[0] is rows[0]
    assert len(data) == 2


def test_adopt_skips_validation_by_design():
    # the trusted path trusts: upstream kernels already shaped the rows,
    # so even a NULL in a non-nullable column is not re-checked here
    data = Dataset.adopt(RELATION, [{"id": None, "name": "x"}])
    assert data.rows[0]["id"] is None
    with pytest.raises(SchemaError):
        Dataset(RELATION, [{"id": None, "name": "x"}])  # checked path does


# --- adopt_block --------------------------------------------------------------


def test_adopt_block_schema_mismatch_raises_at_the_boundary():
    missing = RowBlock({"id": [1]}, 1)
    with pytest.raises(SchemaError, match="do not match"):
        Dataset.adopt_block(RELATION, missing)
    extra = RowBlock({"id": [1], "name": ["a"], "stray": [0]}, 1)
    with pytest.raises(SchemaError, match="stray"):
        Dataset.adopt_block(RELATION, extra)


def test_adopt_block_keeps_the_block_without_conversion():
    blk = make_block()
    data = Dataset.adopt_block(RELATION, blk)
    assert data.peek_block() is blk  # not re-copied, not re-built
    assert data.as_block() is blk
    assert len(data) == 2  # length answered from the block, no rows yet


def test_adopted_block_materializes_rows_lazily_and_once():
    data = Dataset.adopt_block(RELATION, make_block())
    rows = data.rows
    assert rows == ROWS
    assert data.rows is rows  # cached, not rebuilt per access
    # row order follows the relation's attribute order
    assert list(rows[0]) == ["id", "name"]


def test_as_block_columnarizes_row_backed_data_once():
    data = Dataset(RELATION, ROWS)
    blk = data.as_block()
    assert blk.to_rows(["id", "name"]) == ROWS
    assert data.as_block() is blk  # cached


def test_append_materializes_rows_and_invalidates_the_block():
    data = Dataset.adopt_block(RELATION, make_block())
    data.append({"id": 3, "name": "c"})
    assert data.peek_block() is None  # the columnar form went stale
    assert [r["id"] for r in data.rows] == [1, 2, 3]
    rebuilt = data.as_block()
    assert rebuilt.columns["id"] == [1, 2, 3]


def test_renamed_shares_the_block_of_block_backed_data():
    blk = make_block()
    data = Dataset.adopt_block(RELATION, blk)
    renamed = data.renamed("T2")
    assert renamed.relation.name == "T2"
    assert renamed.peek_block() is blk  # columns shared, not copied
    assert renamed.rows == ROWS


def test_column_reads_straight_from_the_block():
    data = Dataset.adopt_block(RELATION, make_block())
    assert data.column("name") == ["a", None]
    assert data.peek_block() is not None  # no row materialization happened
    with pytest.raises(SchemaError):
        data.column("nope")
