"""Dataset/Instance unit tests: validation, bag semantics, comparison."""

import pytest

from repro.data.dataset import Dataset, Instance
from repro.errors import SchemaError
from repro.schema import relation


@pytest.fixture
def rel():
    return relation(
        "T", ("id", "int", False), ("name", "varchar"), ("score", "float")
    )


class TestValidation:
    def test_missing_columns_become_null(self, rel):
        data = Dataset(rel, [{"id": 1}])
        assert data.rows[0] == {"id": 1, "name": None, "score": None}

    def test_unknown_column_rejected(self, rel):
        with pytest.raises(SchemaError):
            Dataset(rel, [{"id": 1, "bogus": 2}])

    def test_null_in_non_nullable_rejected(self, rel):
        with pytest.raises(SchemaError):
            Dataset(rel, [{"name": "x"}])  # id missing -> NULL

    def test_type_mismatch_rejected(self, rel):
        with pytest.raises(SchemaError):
            Dataset(rel, [{"id": "one"}])

    def test_lossless_numeric_coercion(self, rel):
        data = Dataset(rel, [{"id": 1, "score": 3}])
        assert data.rows[0]["score"] == 3.0
        assert isinstance(data.rows[0]["score"], float)

    def test_unvalidated_append_is_verbatim(self, rel):
        data = Dataset(rel)
        data.append({"anything": "goes"}, validate=False)
        assert data.rows[0] == {"anything": "goes"}


class TestBagSemantics:
    def test_duplicates_preserved(self, rel):
        data = Dataset(rel, [{"id": 1}, {"id": 1}])
        assert len(data) == 2

    def test_same_bag_ignores_row_order(self, rel):
        a = Dataset(rel, [{"id": 1}, {"id": 2}])
        b = Dataset(rel, [{"id": 2}, {"id": 1}])
        assert a.same_bag(b)

    def test_same_bag_counts_multiplicity(self, rel):
        a = Dataset(rel, [{"id": 1}, {"id": 1}])
        b = Dataset(rel, [{"id": 1}])
        assert not a.same_bag(b)

    def test_same_bag_treats_nulls_equal(self, rel):
        a = Dataset(rel, [{"id": 1, "name": None}])
        b = Dataset(rel, [{"id": 1, "name": None}])
        assert a.same_bag(b)

    def test_same_bag_int_float_equal(self, rel):
        a = Dataset(rel, [{"id": 1, "score": 2.0}])
        b = Dataset(rel, [{"id": 1, "score": 2}])
        assert a.same_bag(b)

    def test_different_columns_not_same_bag(self, rel):
        other = relation("T2", ("id", "int"))
        assert not Dataset(rel).same_bag(Dataset(other))


class TestUtilities:
    def test_column_extraction(self, rel):
        data = Dataset(rel, [{"id": 1, "name": "a"}, {"id": 2, "name": "b"}])
        assert data.column("name") == ["a", "b"]

    def test_column_unknown_raises(self, rel):
        with pytest.raises(SchemaError):
            Dataset(rel).column("bogus")

    def test_renamed(self, rel):
        data = Dataset(rel, [{"id": 1}]).renamed("U")
        assert data.name == "U"
        assert len(data) == 1

    def test_head(self, rel):
        data = Dataset(rel, [{"id": i} for i in range(10)])
        assert len(data.head(3)) == 3

    def test_to_table_renders(self, rel):
        data = Dataset(rel, [{"id": 1, "name": "a"}])
        table = data.to_table()
        assert "id" in table and "NULL" in table

    def test_to_table_truncates(self, rel):
        data = Dataset(rel, [{"id": i} for i in range(30)])
        assert "more rows" in data.to_table(limit=5)


class TestInstance:
    def test_add_and_lookup(self, rel):
        instance = Instance([Dataset(rel)])
        assert "T" in instance
        assert instance.dataset("T").relation is rel

    def test_duplicate_add_rejected(self, rel):
        instance = Instance([Dataset(rel)])
        with pytest.raises(SchemaError):
            instance.add(Dataset(rel))

    def test_put_replaces(self, rel):
        instance = Instance([Dataset(rel)])
        replacement = Dataset(rel, [{"id": 1}])
        instance.put(replacement)
        assert len(instance.dataset("T")) == 1

    def test_same_bags(self, rel):
        a = Instance([Dataset(rel, [{"id": 1}])])
        b = Instance([Dataset(rel, [{"id": 1}])])
        c = Instance([Dataset(rel, [{"id": 2}])])
        assert a.same_bags(b)
        assert not a.same_bags(c)
        assert not a.same_bags(Instance())

    def test_missing_dataset_raises(self):
        with pytest.raises(SchemaError):
            Instance().dataset("nope")
