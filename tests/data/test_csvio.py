"""CSV I/O unit tests."""

import datetime

import pytest

from repro.data.csvio import (
    dataset_from_csv_text,
    dataset_to_csv_text,
    read_csv,
    write_csv,
)
from repro.data.dataset import Dataset
from repro.errors import SerializationError
from repro.schema import relation
from repro.schema.model import Attribute, Relation
from repro.schema.types import INTEGER, RecordType, SetType


@pytest.fixture
def rel():
    return relation(
        "T",
        ("id", "int", False),
        ("name", "varchar"),
        ("score", "float"),
        ("joined", "date"),
        ("active", "bool"),
    )


class TestParsing:
    def test_typed_parsing(self, rel):
        text = "id,name,score,joined,active\n1,ada,2.5,2008-01-31,true\n"
        data = dataset_from_csv_text(text, rel)
        row = data.rows[0]
        assert row["id"] == 1
        assert row["score"] == 2.5
        assert row["joined"] == datetime.date(2008, 1, 31)
        assert row["active"] is True

    def test_empty_cell_is_null(self, rel):
        data = dataset_from_csv_text("id,name\n1,\n", rel)
        assert data.rows[0]["name"] is None

    def test_header_reorders_columns(self, rel):
        data = dataset_from_csv_text("name,id\nada,3\n", rel)
        assert data.rows[0]["id"] == 3

    def test_unknown_header_column_rejected(self, rel):
        with pytest.raises(SerializationError):
            dataset_from_csv_text("id,bogus\n1,2\n", rel)

    def test_ragged_row_rejected(self, rel):
        with pytest.raises(SerializationError) as info:
            dataset_from_csv_text("id,name\n1\n", rel)
        assert "line 2" in str(info.value)

    def test_bad_value_rejected(self, rel):
        with pytest.raises(SerializationError):
            dataset_from_csv_text("id\nnot-a-number\n", rel)

    def test_boolean_spellings(self, rel):
        text = "id,active\n1,yes\n2,0\n3,T\n"
        data = dataset_from_csv_text(text, rel)
        assert [r["active"] for r in data] == [True, False, True]

    def test_nested_relation_rejected(self):
        nested = Relation(
            "N",
            [
                Attribute("id", INTEGER),
                Attribute("items", SetType(RecordType([("v", INTEGER)]))),
            ],
        )
        import io

        with pytest.raises(SerializationError):
            read_csv(io.StringIO("id,items\n"), nested)


class TestRoundTrip:
    def test_text_roundtrip(self, rel):
        data = Dataset(
            rel,
            [
                {"id": 1, "name": "ada", "score": 2.5,
                 "joined": datetime.date(2008, 1, 31), "active": True},
                {"id": 2, "name": None, "score": None,
                 "joined": None, "active": False},
            ],
        )
        text = dataset_to_csv_text(data)
        back = dataset_from_csv_text(text, rel)
        assert back.same_bag(data)

    def test_file_roundtrip(self, rel, tmp_path):
        path = str(tmp_path / "data.csv")
        data = Dataset(rel, [{"id": 7, "name": "x"}])
        write_csv(data, path)
        assert read_csv(path, rel).same_bag(data)

    def test_no_header_positional(self, rel, tmp_path):
        path = str(tmp_path / "data.csv")
        with open(path, "w") as handle:
            handle.write("5,ada,1.0,2008-01-01,false\n")
        data = read_csv(path, rel, has_header=False)
        assert data.rows[0]["id"] == 5

    def test_empty_file_with_header_expected(self, rel):
        assert len(dataset_from_csv_text("", rel)) == 0
