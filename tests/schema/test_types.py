"""Type-algebra unit tests."""

import datetime

import pytest

from repro.errors import SchemaError
from repro.schema.types import (
    ANY,
    BOOLEAN,
    DATE,
    DECIMAL,
    FLOAT,
    INTEGER,
    NULL,
    STRING,
    TIMESTAMP,
    AtomicType,
    RecordType,
    SetType,
    atomic,
    coerce_value,
    common_type,
    python_value_type,
)


class TestAtomicTypes:
    def test_interning(self):
        assert AtomicType("INTEGER") is INTEGER
        assert AtomicType("integer") is INTEGER

    def test_aliases(self):
        assert atomic("varchar") is STRING
        assert atomic("int") is INTEGER
        assert atomic("double") is FLOAT
        assert atomic("datetime") is TIMESTAMP
        assert atomic("bool") is BOOLEAN

    def test_unknown_alias_raises(self):
        with pytest.raises(SchemaError):
            atomic("blob7")

    def test_numeric_widening(self):
        assert FLOAT.accepts(INTEGER)
        assert FLOAT.accepts(DECIMAL)
        assert DECIMAL.accepts(INTEGER)
        assert not INTEGER.accepts(FLOAT)

    def test_null_flows_anywhere(self):
        assert STRING.accepts(NULL)
        assert DATE.accepts(NULL)

    def test_any_accepts_everything_atomic(self):
        assert ANY.accepts(STRING)
        assert ANY.accepts(INTEGER)

    def test_timestamp_accepts_date(self):
        assert TIMESTAMP.accepts(DATE)
        assert not DATE.accepts(TIMESTAMP)

    def test_unrelated_types_incompatible(self):
        assert not STRING.accepts(INTEGER)
        assert not BOOLEAN.accepts(INTEGER)


class TestValueChecking:
    def test_integer_values(self):
        assert INTEGER.accepts_value(5)
        assert not INTEGER.accepts_value(5.0)
        assert not INTEGER.accepts_value(True)  # bool is not an int here

    def test_float_accepts_ints(self):
        assert FLOAT.accepts_value(5)
        assert FLOAT.accepts_value(5.5)

    def test_boolean(self):
        assert BOOLEAN.accepts_value(True)
        assert not BOOLEAN.accepts_value(1)

    def test_dates_vs_timestamps(self):
        assert DATE.accepts_value(datetime.date(2008, 1, 1))
        assert not DATE.accepts_value(datetime.datetime(2008, 1, 1))
        assert TIMESTAMP.accepts_value(datetime.datetime(2008, 1, 1))

    def test_none_accepted_by_all(self):
        for dtype in (INTEGER, STRING, DATE, BOOLEAN):
            assert dtype.accepts_value(None)


class TestCoercion:
    def test_int_to_float_coerces(self):
        assert coerce_value(FLOAT, 5) == 5.0
        assert isinstance(coerce_value(FLOAT, 5), float)

    def test_bad_coercion_raises(self):
        with pytest.raises(SchemaError):
            coerce_value(INTEGER, "5")

    def test_none_passes_through(self):
        assert coerce_value(STRING, None) is None


class TestCommonType:
    def test_identical(self):
        assert common_type(STRING, STRING) is STRING

    def test_numeric_join(self):
        assert common_type(INTEGER, FLOAT) is FLOAT

    def test_null_bottom(self):
        assert common_type(NULL, DATE) is DATE
        assert common_type(DATE, NULL) is DATE

    def test_unrelated_raises(self):
        with pytest.raises(SchemaError):
            common_type(STRING, INTEGER)


class TestPythonValueType:
    def test_inference(self):
        assert python_value_type(1) is INTEGER
        assert python_value_type(1.5) is FLOAT
        assert python_value_type("x") is STRING
        assert python_value_type(True) is BOOLEAN
        assert python_value_type(None) is NULL
        assert python_value_type(datetime.date(2008, 1, 1)) is DATE

    def test_unknown_value_raises(self):
        with pytest.raises(SchemaError):
            python_value_type(object())


class TestRecordType:
    def test_field_access(self):
        record = RecordType([("a", INTEGER), ("b", STRING)])
        assert record.field_type("a") is INTEGER
        assert record.field_names == ("a", "b")
        assert record.has_field("b")
        assert not record.has_field("c")

    def test_duplicate_field_raises(self):
        with pytest.raises(SchemaError):
            RecordType([("a", INTEGER), ("a", STRING)])

    def test_structural_equality_and_hash(self):
        r1 = RecordType([("a", INTEGER)])
        r2 = RecordType([("a", INTEGER)])
        assert r1 == r2 and hash(r1) == hash(r2)
        assert r1 != RecordType([("a", FLOAT)])

    def test_covariant_acceptance(self):
        wide = RecordType([("a", FLOAT)])
        narrow = RecordType([("a", INTEGER)])
        assert wide.accepts(narrow)
        assert not narrow.accepts(wide)

    def test_value_checking(self):
        record = RecordType([("a", INTEGER), ("b", STRING)])
        assert record.accepts_value({"a": 1, "b": "x"})
        assert not record.accepts_value({"a": 1})
        assert not record.accepts_value({"a": "no", "b": "x"})


class TestSetType:
    def test_nested_relation_type(self):
        element = RecordType([("balance", FLOAT)])
        nested = SetType(element)
        assert nested.element_type == element
        assert nested.accepts_value([{"balance": 1.0}, {"balance": None}])
        assert not nested.accepts_value([{"other": 1}])

    def test_set_equality(self):
        assert SetType(INTEGER) == SetType(INTEGER)
        assert SetType(INTEGER) != SetType(FLOAT)

    def test_set_covariance(self):
        assert SetType(FLOAT).accepts(SetType(INTEGER))
