"""Relation/Schema model unit tests."""

import pytest

from repro.errors import SchemaError
from repro.schema.model import Attribute, Relation, Schema, relation
from repro.schema.types import FLOAT, INTEGER, RecordType, STRING, SetType


@pytest.fixture
def customers():
    return relation(
        "Customers",
        ("customerID", "int", False),
        ("name", "varchar"),
        ("balance", "float"),
        keys=["customerID"],
    )


class TestAttribute:
    def test_string_type_resolution(self):
        attr = Attribute("a", "varchar")
        assert attr.dtype is STRING

    def test_renamed_preserves_rest(self):
        attr = Attribute("a", INTEGER, nullable=False, is_key=True)
        renamed = attr.renamed("b")
        assert renamed.name == "b"
        assert renamed.dtype is INTEGER
        assert not renamed.nullable and renamed.is_key

    def test_as_nullable(self):
        attr = Attribute("a", INTEGER, nullable=False)
        assert attr.as_nullable().nullable

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", INTEGER)

    def test_equality(self):
        assert Attribute("a", INTEGER) == Attribute("a", INTEGER)
        assert Attribute("a", INTEGER) != Attribute("a", INTEGER, nullable=False)


class TestRelation:
    def test_attribute_lookup(self, customers):
        assert customers.attribute("name").dtype is STRING
        assert customers.has_attribute("balance")
        assert not customers.has_attribute("missing")

    def test_missing_attribute_error_lists_available(self, customers):
        with pytest.raises(SchemaError) as info:
            customers.attribute("salary")
        assert "customerID" in str(info.value)

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation("T", [Attribute("a", INTEGER), Attribute("a", STRING)])

    def test_keys(self, customers):
        assert customers.key_names == ("customerID",)
        assert not customers.attribute("customerID").nullable

    def test_unknown_key_rejected(self):
        with pytest.raises(SchemaError):
            relation("T", ("a", "int"), keys=["nope"])

    def test_record_and_set_types(self, customers):
        record = customers.record_type()
        assert record.field_names == ("customerID", "name", "balance")
        assert customers.set_type() == SetType(record)

    def test_project_reorders_and_drops(self, customers):
        projected = customers.project(["balance", "customerID"], "P")
        assert projected.attribute_names == ("balance", "customerID")
        assert projected.name == "P"

    def test_extended(self, customers):
        extended = customers.extended([Attribute("extra", FLOAT)])
        assert extended.attribute_names[-1] == "extra"

    def test_renamed(self, customers):
        assert customers.renamed("C2").name == "C2"
        assert customers.renamed("C2").attributes == customers.attributes

    def test_union_compatibility_is_name_based(self):
        a = relation("A", ("x", "int"), ("y", "varchar"))
        b = relation("B", ("y", "varchar"), ("x", "int"))
        c = relation("C", ("x", "int"), ("z", "varchar"))
        d = relation("D", ("x", "varchar"), ("y", "varchar"))
        assert a.is_union_compatible(b)
        assert not a.is_union_compatible(c)
        assert not a.is_union_compatible(d)

    def test_union_compat_allows_widening(self):
        a = relation("A", ("x", "int"))
        b = relation("B", ("x", "float"))
        assert a.is_union_compatible(b)

    def test_is_flat(self, customers):
        assert customers.is_flat()
        nested = Relation(
            "N",
            [
                Attribute("id", INTEGER),
                Attribute(
                    "items", SetType(RecordType([("v", INTEGER)]))
                ),
            ],
        )
        assert not nested.is_flat()

    def test_iteration_and_len(self, customers):
        assert len(customers) == 3
        assert [a.name for a in customers] == list(customers.attribute_names)


class TestSchema:
    def test_add_and_lookup(self, customers):
        schema = Schema("src", [customers])
        assert schema.relation("Customers") is customers
        assert "Customers" in schema
        assert len(schema) == 1

    def test_duplicate_relation_rejected(self, customers):
        schema = Schema("src", [customers])
        with pytest.raises(SchemaError):
            schema.add(customers)

    def test_missing_relation_error(self, customers):
        schema = Schema("src", [customers])
        with pytest.raises(SchemaError):
            schema.relation("Orders")
