"""OHM execution engine tests: per-operator semantics on data."""

import pytest

from repro.data.dataset import Dataset, Instance
from repro.errors import ExecutionError
from repro.ohm import (
    BasicProject,
    Filter,
    Group,
    Join,
    OhmGraph,
    Project,
    Source,
    Split,
    Target,
    Union,
    Unknown,
    execute,
    execute_with_edges,
)
from repro.schema import relation


@pytest.fixture
def people():
    return relation(
        "People", ("id", "int", False), ("dept", "varchar"), ("salary", "float")
    )


@pytest.fixture
def depts():
    return relation("Depts", ("dept", "varchar", False), ("site", "varchar"))


def people_data(people):
    return Dataset(
        people,
        [
            {"id": 1, "dept": "eng", "salary": 100.0},
            {"id": 2, "dept": "eng", "salary": 120.0},
            {"id": 3, "dept": "ops", "salary": 80.0},
            {"id": 4, "dept": None, "salary": None},
        ],
    )


def run(graph, *datasets):
    return execute(graph, Instance(list(datasets)))


class TestFilterExecution:
    def test_unknown_predicate_drops_row(self, people):
        g = OhmGraph()
        s = g.add(Source(people))
        f = g.add(Filter("salary > 90"))
        t = g.add(Target(people.renamed("Out")))
        g.chain(s, f, t)
        result = run(g, people_data(people)).dataset("Out")
        # row 4 has NULL salary: neither kept by > 90 nor by its negation
        assert sorted(result.column("id")) == [1, 2]


class TestJoinExecution:
    def _graph(self, people, depts, kind):
        g = OhmGraph()
        s1 = g.add(Source(people))
        s2 = g.add(Source(depts))
        j = g.add(Join("P.dept = D.dept", kind=kind))
        out = relation(
            "Out", ("id", "int"), ("dept", "varchar"),
            ("salary", "float"), ("site", "varchar"),
        )
        bp = g.add(BasicProject(
            [("id", "id"), ("dept", "P.dept"), ("salary", "salary"),
             ("site", "site")]
        ))
        t = g.add(Target(out))
        g.connect(s1, j, name="P")
        g.connect(s2, j, dst_port=1, name="D")
        g.chain(j, bp, t)
        return g

    def depts_data(self, depts):
        return Dataset(
            depts,
            [{"dept": "eng", "site": "SJ"}, {"dept": "sales", "site": "NY"}],
        )

    def test_inner_join(self, people, depts):
        g = self._graph(people, depts, "inner")
        result = run(g, people_data(people), self.depts_data(depts)).dataset("Out")
        assert sorted(result.column("id")) == [1, 2]
        assert set(result.column("site")) == {"SJ"}

    def test_left_join_null_fills(self, people, depts):
        g = self._graph(people, depts, "left")
        result = run(g, people_data(people), self.depts_data(depts)).dataset("Out")
        assert sorted(r["id"] for r in result) == [1, 2, 3, 4]
        unmatched = [r for r in result if r["id"] == 3][0]
        assert unmatched["site"] is None

    def test_full_join_includes_both_sides(self, people, depts):
        g = self._graph(people, depts, "full")
        result = run(g, people_data(people), self.depts_data(depts)).dataset("Out")
        # 2 matches + 2 unmatched people + 1 unmatched dept
        assert len(result) == 5
        sales_row = [r for r in result if r["site"] == "NY"][0]
        assert sales_row["id"] is None

    def test_null_keys_never_match(self, people, depts):
        g = self._graph(people, depts, "inner")
        result = run(g, people_data(people), self.depts_data(depts)).dataset("Out")
        assert all(r["dept"] is not None for r in result)


class TestGroupExecution:
    def test_grouping_with_aggregates(self, people):
        g = OhmGraph()
        s = g.add(Source(people))
        gr = g.add(Group(["dept"], [("total", "SUM(salary)"),
                                    ("n", "COUNT(*)")]))
        out = relation("Out", ("dept", "varchar"), ("total", "float"),
                       ("n", "int"))
        t = g.add(Target(out))
        g.chain(s, gr, t)
        result = run(g, people_data(people)).dataset("Out")
        by_dept = {r["dept"]: r for r in result}
        assert by_dept["eng"]["total"] == 220.0
        assert by_dept["eng"]["n"] == 2
        # NULL keys group together (SQL GROUP BY semantics)
        assert by_dept[None]["n"] == 1
        assert by_dept[None]["total"] is None

    def test_group_without_aggregates_dedupes(self, people):
        g = OhmGraph()
        s = g.add(Source(people))
        gr = g.add(Group(["dept"]))
        t = g.add(Target(relation("Out", ("dept", "varchar"))))
        g.chain(s, gr, t)
        result = run(g, people_data(people)).dataset("Out")
        assert len(result) == 3  # eng, ops, NULL


class TestSplitAndUnion:
    def test_split_copies_to_all_outputs(self, people):
        g = OhmGraph()
        s = g.add(Source(people))
        sp = g.add(Split())
        t1 = g.add(Target(people.renamed("A")))
        t2 = g.add(Target(people.renamed("B")))
        g.connect(s, sp)
        g.connect(sp, t1, src_port=0)
        g.connect(sp, t2, src_port=1)
        result = run(g, people_data(people))
        assert result.dataset("A").same_bag(result.dataset("B"))
        assert len(result.dataset("A")) == 4

    def test_union_all_keeps_duplicates(self, people):
        other = people.renamed("People2")
        g = OhmGraph()
        s1 = g.add(Source(people))
        s2 = g.add(Source(other))
        u = g.add(Union())
        t = g.add(Target(people.renamed("Out")))
        g.connect(s1, u, dst_port=0)
        g.connect(s2, u, dst_port=1)
        g.connect(u, t)
        d1 = people_data(people)
        d2 = Dataset(other, [dict(r) for r in d1.rows])
        result = run(g, d1, d2).dataset("Out")
        assert len(result) == 8

    def test_union_distinct_dedupes(self, people):
        other = people.renamed("People2")
        g = OhmGraph()
        s1 = g.add(Source(people))
        s2 = g.add(Source(other))
        u = g.add(Union(distinct=True))
        t = g.add(Target(people.renamed("Out")))
        g.connect(s1, u, dst_port=0)
        g.connect(s2, u, dst_port=1)
        g.connect(u, t)
        d1 = people_data(people)
        d2 = Dataset(other, [dict(r) for r in d1.rows])
        result = run(g, d1, d2).dataset("Out")
        assert len(result) == 4


class TestUnknownExecution:
    def test_executor_runs(self, people):
        def double_salary(inputs):
            return [[dict(r, salary=(r["salary"] or 0) * 2) for r in inputs[0]]]

        g = OhmGraph()
        s = g.add(Source(people))
        u = g.add(Unknown([people.renamed("u")], "doubler", executor=double_salary))
        t = g.add(Target(people.renamed("Out")))
        g.chain(s, u, t)
        result = run(g, people_data(people)).dataset("Out")
        assert sorted(r["salary"] for r in result) == [0, 160.0, 200.0, 240.0]

    def test_without_executor_raises(self, people):
        g = OhmGraph()
        s = g.add(Source(people))
        u = g.add(Unknown([people.renamed("u")], "blackbox"))
        t = g.add(Target(people.renamed("Out")))
        g.chain(s, u, t)
        with pytest.raises(ExecutionError):
            run(g, people_data(people))


class TestEngineInterface:
    def test_missing_source_relation_raises(self, people):
        g = OhmGraph()
        s = g.add(Source(people))
        t = g.add(Target(people.renamed("Out")))
        g.chain(s, t)
        with pytest.raises(ExecutionError):
            execute(g, Instance())

    def test_source_provider_fallback(self, people):
        provided = people_data(people)
        g = OhmGraph()
        s = g.add(Source(people, provider=lambda: provided))
        t = g.add(Target(people.renamed("Out")))
        g.chain(s, t)
        result = execute(g, Instance()).dataset("Out")
        assert len(result) == 4

    def test_edge_data_exposed(self, people):
        g = OhmGraph()
        s = g.add(Source(people))
        f = g.add(Filter("salary > 90"))
        t = g.add(Target(people.renamed("Out")))
        g.chain(s, f, t, names=["in_link", "filtered"])
        _targets, edges = execute_with_edges(
            g, Instance([people_data(people)])
        )
        assert len(edges["in_link"]) == 4
        assert len(edges["filtered"]) == 2

    def test_source_data_is_type_checked(self, people):
        g = OhmGraph()
        s = g.add(Source(people))
        t = g.add(Target(people.renamed("Out")))
        g.chain(s, t)
        bad = Dataset(people, validate=False)
        bad.append({"id": "not-an-int", "dept": 1, "salary": "x"}, validate=False)
        with pytest.raises(Exception):
            execute(g, Instance([bad]))
