"""Dataflow-graph unit tests (shared machinery + OHM specifics)."""

import pytest

from repro.errors import GraphError, ValidationError
from repro.ohm.graph import OhmGraph
from repro.ohm.operators import Filter, Join, Project, Source, Split, Target
from repro.schema import relation


@pytest.fixture
def rel():
    return relation("R", ("id", "int", False), ("v", "float"))


def linear_graph(rel):
    g = OhmGraph("lin")
    s = g.add(Source(rel))
    f = g.add(Filter("v > 0"))
    t = g.add(Target(rel.renamed("Out")))
    g.connect(s, f, name="e1")
    g.connect(f, t, name="e2")
    return g, s, f, t


class TestConstruction:
    def test_duplicate_uid_rejected(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        with pytest.raises(GraphError):
            g.add(s)

    def test_connect_unknown_operator_rejected(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        with pytest.raises(GraphError):
            g.connect(s, "ghost")

    def test_double_connect_output_port_rejected(self, rel):
        g, s, f, t = linear_graph(rel)
        extra = g.add(Filter("v > 1"))
        with pytest.raises(GraphError):
            g.connect(s, extra)

    def test_double_connect_input_port_rejected(self, rel):
        g, s, f, t = linear_graph(rel)
        extra = g.add(Source(rel.renamed("R2")))
        with pytest.raises(GraphError):
            g.connect(extra, f)

    def test_chain_helper(self, rel):
        g = OhmGraph()
        s = Source(rel)
        f = Filter("v > 0")
        t = Target(rel.renamed("Out"))
        edges = g.chain(s, f, t, names=["a", "b"])
        assert [e.name for e in edges] == ["a", "b"]
        assert len(g) == 3


class TestAnalysis:
    def test_topological_order(self, rel):
        g, s, f, t = linear_graph(rel)
        order = [op.uid for op in g.topological_order()]
        assert order.index(s.uid) < order.index(f.uid) < order.index(t.uid)

    def test_cycle_detected(self, rel):
        g = OhmGraph()
        f1 = g.add(Filter("v > 0"))
        f2 = g.add(Filter("v > 1"))
        g.connect(f1, f2)
        g.connect(f2, f1)
        with pytest.raises(GraphError):
            g.topological_order()

    def test_kinds_in_order(self, rel):
        g, *_ = linear_graph(rel)
        assert g.kinds_in_order() == ["SOURCE", "FILTER", "TARGET"]

    def test_neighbourhood_lookups(self, rel):
        g, s, f, t = linear_graph(rel)
        assert [op.uid for op in g.successors(s.uid)] == [f.uid]
        assert [op.uid for op in g.predecessors(t.uid)] == [f.uid]
        assert g.edge_between(s.uid, f.uid).name == "e1"
        assert g.find_edge("e2").dst == t.uid

    def test_sources_and_targets(self, rel):
        g, s, f, t = linear_graph(rel)
        assert g.sources() == [s]
        assert g.targets() == [t]

    def test_operators_of_kind(self, rel):
        g, *_ = linear_graph(rel)
        assert len(g.operators_of_kind("FILTER")) == 1


class TestSchemaPropagation:
    def test_edges_annotated(self, rel):
        g, s, f, t = linear_graph(rel)
        g.propagate_schemas()
        assert g.find_edge("e1").schema.name == "e1"
        assert g.find_edge("e2").schema.attribute_names == rel.attribute_names

    def test_validation_failure_surfaces_operator(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        f = g.add(Filter("missing > 0"))
        t = g.add(Target(rel.renamed("Out")))
        g.connect(s, f)
        g.connect(f, t)
        with pytest.raises(Exception):
            g.propagate_schemas()

    def test_port_count_validation(self, rel):
        g = OhmGraph()
        g.add(Filter("v > 0"))  # dangling: no inputs/outputs
        with pytest.raises(ValidationError):
            g.validate_structure()

    def test_non_contiguous_ports_rejected(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        split = g.add(Split())
        t1 = g.add(Target(rel.renamed("O1")))
        t2 = g.add(Target(rel.renamed("O2")))
        g.connect(s, split)
        g.connect(split, t1, src_port=0)
        g.connect(split, t2, src_port=2)  # hole at port 1
        with pytest.raises(ValidationError):
            g.validate_structure()


class TestMutation:
    def test_splice_out_keeps_consumer_facing_edge_name(self, rel):
        g, s, f, t = linear_graph(rel)
        g.splice_out(f.uid)
        assert len(g) == 2
        (edge,) = g.edges
        # the outgoing edge's identity survives: consumers may reference
        # their input edge by name, producers never reference outputs
        assert edge.name == "e2"
        assert edge.src == s.uid and edge.dst == t.uid

    def test_splice_requires_single_io(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        split = g.add(Split())
        t1 = g.add(Target(rel.renamed("O1")))
        t2 = g.add(Target(rel.renamed("O2")))
        g.connect(s, split)
        g.connect(split, t1, src_port=0)
        g.connect(split, t2, src_port=1)
        with pytest.raises(GraphError):
            g.splice_out(split.uid)

    def test_remove_operator_drops_edges(self, rel):
        g, s, f, t = linear_graph(rel)
        g.remove_operator(f.uid)
        assert len(g.edges) == 0

    def test_shallow_copy_is_structurally_independent(self, rel):
        g, s, f, t = linear_graph(rel)
        clone = g.shallow_copy()
        clone.splice_out(f.uid)
        assert len(g) == 3 and len(clone) == 2
        assert len(g.edges) == 2


class TestRendering:
    def test_to_dot_mentions_all_operators(self, rel):
        g, *_ = linear_graph(rel)
        dot = g.to_dot()
        assert "digraph" in dot
        assert dot.count("->") == 2
        assert "FILTER" in dot
