"""OHM JSON serialization tests."""

import pytest

from repro.compile import compile_job
from repro.errors import SerializationError
from repro.etl import run_job
from repro.mapping import ohm_to_mappings
from repro.ohm import (
    ColumnMerge,
    ColumnSplit,
    KeyGen,
    Nest,
    OhmGraph,
    Source,
    Target,
    Union,
    Unnest,
    execute,
    graph_from_json,
    graph_to_json,
    read_graph,
    reset_keygen_sequences,
    write_graph,
)
from repro.schema import relation
from repro.workloads import build_example_job, generate_instance


class TestRoundTrip:
    def test_example_graph_structure(self):
        graph = compile_job(build_example_job())
        restored = graph_from_json(graph_to_json(graph))
        assert sorted(restored.kinds_in_order()) == sorted(
            graph.kinds_in_order()
        )
        assert sorted(e.name for e in restored.edges) == sorted(
            e.name for e in graph.edges
        )

    def test_example_graph_semantics(self):
        graph = compile_job(build_example_job())
        restored = graph_from_json(graph_to_json(graph))
        instance = generate_instance(40)
        assert execute(restored, instance).same_bags(
            run_job(build_example_job(), instance)
        )

    def test_extracted_mappings_survive(self):
        # the graph stays mapping-extractable after a round trip
        graph = compile_job(build_example_job())
        restored = graph_from_json(graph_to_json(graph))
        assert ohm_to_mappings(restored).names == ["M1", "M2", "M3"]

    def test_annotations_and_labels_survive(self):
        graph = compile_job(build_example_job())
        for op in graph.operators:
            op.annotations["note"] = f"about {op.uid}"
        restored = graph_from_json(graph_to_json(graph))
        for op in restored.operators:
            assert op.annotations["note"] == f"about {op.uid}"
            assert op.label == graph.operator(op.uid).label

    def test_subtype_operators_round_trip(self):
        reset_keygen_sequences()
        rel = relation("R", ("id", "int", False), ("code", "varchar", False))
        graph = OhmGraph("subtypes")
        s = graph.add(Source(rel))
        kg = graph.add(KeyGen("sk", sequence="json-test", start=7))
        cs = graph.add(ColumnSplit("code", ["p1", "p2"], "-",
                                   passthrough=["id", "sk"]))
        cm = graph.add(ColumnMerge(["p1", "p2"], "code", "-",
                                   passthrough=["id", "sk"]))
        t = graph.add(Target(relation(
            "Out", ("id", "int"), ("sk", "int"), ("code", "varchar"),
        )))
        graph.chain(s, kg, cs, cm, t)
        restored = graph_from_json(graph_to_json(graph))
        assert restored.kinds_in_order() == [
            "SOURCE", "KEYGEN", "COLUMN SPLIT", "COLUMN MERGE", "TARGET",
        ]
        restored_kg = restored.operator(kg.uid)
        assert restored_kg.key_column == "sk"
        assert restored_kg.start == 7

    def test_nested_operators_round_trip(self):
        rel = relation("R", ("g", "int", False), ("v", "float"))
        graph = OhmGraph("nf2")
        s = graph.add(Source(rel))
        n = graph.add(Nest(["g"], ["v"], into="vs"))
        u = graph.add(Unnest("vs"))
        t = graph.add(Target(relation("Out", ("g", "int"), ("v", "float"))))
        graph.chain(s, n, u, t)
        restored = graph_from_json(graph_to_json(graph))
        restored.propagate_schemas()
        assert restored.kinds_in_order() == [
            "SOURCE", "NEST", "UNNEST", "TARGET",
        ]

    def test_unknown_round_trips_as_black_box(self):
        graph = compile_job(build_example_job(custom_after_join=True))
        restored = graph_from_json(graph_to_json(graph))
        (unknown,) = restored.operators_of_kind("UNKNOWN")
        assert unknown.reference == "AuditBalances"
        assert unknown.executor is None  # callables do not serialize

    def test_distinct_union_flag_survives(self):
        rel = relation("R", ("id", "int", False))
        graph = OhmGraph("u")
        s1 = graph.add(Source(rel))
        s2 = graph.add(Source(rel.renamed("R2")))
        u = graph.add(Union(distinct=True))
        t = graph.add(Target(rel.renamed("Out")))
        graph.connect(s1, u, dst_port=0)
        graph.connect(s2, u, dst_port=1)
        graph.connect(u, t)
        restored = graph_from_json(graph_to_json(graph))
        (union,) = restored.operators_of_kind("UNION")
        assert union.distinct is True

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "graph.json")
        graph = compile_job(build_example_job())
        write_graph(graph, path)
        assert sorted(read_graph(path).kinds_in_order()) == sorted(
            graph.kinds_in_order()
        )


class TestErrors:
    def test_malformed_document(self):
        with pytest.raises(SerializationError):
            graph_from_json("{oops")

    def test_wrong_format_marker(self):
        with pytest.raises(SerializationError):
            graph_from_json('{"format": "other"}')

    def test_unknown_operator_kind(self):
        doc = (
            '{"format": "orchid-ohm", "version": 1, "name": "x", '
            '"operators": [{"uid": "q", "kind": "QUANTUM", '
            '"properties": {}}], "edges": []}'
        )
        with pytest.raises(SerializationError):
            graph_from_json(doc)
