"""OHM operator unit tests: validation and schema computation."""

import pytest

from repro.errors import ValidationError
from repro.expr.parser import parse
from repro.ohm.operators import (
    Filter,
    Group,
    Join,
    Nest,
    Project,
    Source,
    Split,
    Target,
    Union,
    Unknown,
    Unnest,
)
from repro.schema import FLOAT, INTEGER, STRING, RecordType, SetType, relation


@pytest.fixture
def customers():
    return relation(
        "Customers",
        ("customerID", "int", False),
        ("name", "varchar"),
        ("balance", "float"),
    )


@pytest.fixture
def accounts():
    return relation(
        "Accounts", ("customerID", "int", False), ("balance", "float")
    )


def out(op, inputs, names=("out",)):
    return op.output_relations(list(inputs), list(names))


class TestFilter:
    def test_schema_passes_through(self, customers):
        op = Filter("balance > 0")
        op.validate([customers])
        (result,) = out(op, [customers])
        assert result.attribute_names == customers.attribute_names
        assert result.name == "out"

    def test_condition_must_typecheck(self, customers):
        with pytest.raises(Exception):
            Filter("missing > 0").validate([customers])

    def test_condition_must_be_boolean(self, customers):
        with pytest.raises(Exception):
            Filter("balance + 1").validate([customers])

    def test_string_condition_parsed(self, customers):
        assert Filter("balance > 0").condition == parse("balance > 0")


class TestProject:
    def test_output_schema_from_derivations(self, customers):
        op = Project([("id2", "customerID * 2"), ("upper", "UPPER(name)")])
        op.validate([customers])
        (result,) = out(op, [customers])
        assert result.attribute("id2").dtype is INTEGER
        assert result.attribute("upper").dtype is STRING

    def test_duplicate_outputs_rejected(self):
        with pytest.raises(ValidationError):
            Project([("a", "x"), ("a", "y")])

    def test_empty_derivations_rejected(self):
        with pytest.raises(ValidationError):
            Project([])

    def test_identity_detection(self, customers):
        identity = Project(
            [(n, n) for n in customers.attribute_names]
        )
        assert identity.is_identity_for(customers)
        reordered = Project([("name", "name"), ("customerID", "customerID"),
                             ("balance", "balance")])
        assert not reordered.is_identity_for(customers)
        renamed = Project([("cid", "customerID"), ("name", "name"),
                           ("balance", "balance")])
        assert not renamed.is_identity_for(customers)


class TestJoin:
    def test_collision_columns_become_dotted(self, customers, accounts):
        op = Join("Customers.customerID = Accounts.customerID")
        op.validate([customers, accounts])
        (result,) = out(op, [customers, accounts])
        names = result.attribute_names
        assert "Customers.customerID" in names
        assert "Accounts.customerID" in names
        assert "Customers.balance" in names and "Accounts.balance" in names
        assert "name" in names  # no collision

    def test_outer_join_nullability(self, customers, accounts):
        left = Join("Customers.customerID = Accounts.customerID", kind="left")
        (result,) = out(left, [customers, accounts])
        assert result.attribute("Accounts.balance").nullable
        assert not result.attribute("Customers.customerID").nullable

    def test_full_join_all_nullable(self, customers, accounts):
        op = Join("Customers.customerID = Accounts.customerID", kind="full")
        (result,) = out(op, [customers, accounts])
        assert result.attribute("Customers.customerID").nullable
        assert result.attribute("Accounts.customerID").nullable

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            Join("a = b", kind="sideways")

    def test_requires_two_inputs(self, customers):
        op = Join("TRUE")
        with pytest.raises(ValidationError):
            op.check_port_counts(1, 1)


class TestUnion:
    def test_union_compatibility_enforced(self, customers, accounts):
        op = Union()
        with pytest.raises(ValidationError):
            op.validate([customers, accounts])

    def test_schema_from_first_input(self, customers):
        op = Union()
        other = customers.renamed("Other")
        op.validate([customers, other])
        (result,) = out(op, [customers, other])
        assert result.attribute_names == customers.attribute_names

    def test_nary(self, customers):
        op = Union()
        op.check_port_counts(5, 1)  # unions take any number of inputs


class TestGroup:
    def test_output_is_keys_plus_aggregates(self, customers):
        op = Group(["customerID"], [("total", "SUM(balance)"),
                                    ("n", "COUNT(*)")])
        op.validate([customers])
        (result,) = out(op, [customers])
        assert result.attribute_names == ("customerID", "total", "n")
        assert result.attribute("total").dtype is FLOAT
        assert result.attribute("n").dtype is INTEGER

    def test_requires_keys_or_aggregates(self):
        with pytest.raises(ValidationError):
            Group([], [])

    def test_unknown_key_rejected(self, customers):
        op = Group(["bogus"])
        with pytest.raises(Exception):
            op.validate([customers])

    def test_non_aggregate_derivation_rejected(self):
        with pytest.raises(ValidationError):
            Group(["a"], [("x", "a + 1")])

    def test_colliding_output_names_rejected(self):
        with pytest.raises(ValidationError):
            Group(["a"], [("a", "SUM(b)")])

    def test_eliminates_duplicates_flag(self, customers):
        assert Group(["customerID"]).eliminates_duplicates


class TestSplit:
    def test_copies_schema_per_output(self, customers):
        op = Split()
        results = op.output_relations([customers], ["x", "y", "z"])
        assert [r.name for r in results] == ["x", "y", "z"]
        assert all(
            r.attribute_names == customers.attribute_names for r in results
        )


class TestNestUnnest:
    def test_nest_builds_set_attribute(self, customers):
        op = Nest(["customerID"], ["name", "balance"], into="records")
        op.validate([customers])
        (result,) = out(op, [customers])
        nested = result.attribute("records").dtype
        assert isinstance(nested, SetType)
        assert nested.element_type.field_names == ("name", "balance")

    def test_nest_key_collision_rejected(self):
        with pytest.raises(ValidationError):
            Nest(["a"], ["b"], into="a")

    def test_unnest_restores_columns(self, customers):
        nest = Nest(["customerID"], ["name", "balance"], into="records")
        (nested_rel,) = out(nest, [customers], ["n"])
        unnest = Unnest("records")
        unnest.validate([nested_rel])
        (flat,) = out(unnest, [nested_rel])
        assert set(flat.attribute_names) == set(customers.attribute_names)

    def test_unnest_requires_set_of_records(self, customers):
        op = Unnest("name")
        with pytest.raises(ValidationError):
            op.validate([customers])


class TestAccessOperators:
    def test_source_renames_to_edge(self, customers):
        op = Source(customers)
        (result,) = op.output_relations([], ["DSLink1"])
        assert result.name == "DSLink1"

    def test_target_requires_all_columns(self, customers):
        op = Target(customers)
        missing = relation("In", ("customerID", "int"))
        with pytest.raises(ValidationError):
            op.validate([missing])

    def test_target_accepts_superset(self, customers):
        op = Target(relation("Out", ("customerID", "int")))
        op.validate([customers])

    def test_target_type_compatibility(self):
        op = Target(relation("Out", ("x", "int")))
        with pytest.raises(ValidationError):
            op.validate([relation("In", ("x", "varchar"))])


class TestUnknown:
    def test_declared_outputs(self, customers):
        op = Unknown([customers], reference="cleanse")
        results = op.output_relations([customers], ["o"])
        assert results[0].name == "o"

    def test_output_count_mismatch_rejected(self, customers):
        op = Unknown([customers], reference="cleanse")
        with pytest.raises(ValidationError):
            op.output_relations([customers], ["a", "b"])

    def test_requires_declared_schemas(self):
        with pytest.raises(ValidationError):
            Unknown([], reference="x")
