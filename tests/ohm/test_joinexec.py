"""Hash-join execution tests: decomposition and equivalence with the
nested-loop semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.dataset import Dataset, Instance
from repro.expr.parser import parse
from repro.ohm import BasicProject, Join, OhmGraph, Source, Target, execute
from repro.ohm.joinexec import split_equi_condition
from repro.schema import relation


@pytest.fixture
def left_rel():
    return relation("L", ("id", "int"), ("v", "float"))


@pytest.fixture
def right_rel():
    return relation("R", ("id", "int"), ("w", "float"))


class TestDecomposition:
    def test_simple_equi_join(self, left_rel, right_rel):
        pairs, residual = split_equi_condition(
            parse("L.id = R.id"), left_rel, right_rel
        )
        assert len(pairs) == 1 and residual == []
        left_expr, right_expr = pairs[0]
        assert left_expr == parse("L.id")
        assert right_expr == parse("R.id")

    def test_reversed_sides_normalized(self, left_rel, right_rel):
        pairs, _ = split_equi_condition(
            parse("R.id = L.id"), left_rel, right_rel
        )
        ((left_expr, right_expr),) = pairs
        assert left_expr == parse("L.id")
        assert right_expr == parse("R.id")

    def test_residual_kept(self, left_rel, right_rel):
        pairs, residual = split_equi_condition(
            parse("L.id = R.id AND L.v < R.w"), left_rel, right_rel
        )
        assert len(pairs) == 1
        assert residual == [parse("L.v < R.w")]

    def test_expression_keys(self, left_rel, right_rel):
        pairs, residual = split_equi_condition(
            parse("L.id + 1 = R.id"), left_rel, right_rel
        )
        assert len(pairs) == 1 and residual == []

    def test_same_side_equality_is_residual(self, left_rel, right_rel):
        pairs, residual = split_equi_condition(
            parse("L.id = L.v"), left_rel, right_rel
        )
        assert pairs == [] and len(residual) == 1

    def test_ambiguous_unqualified_is_residual(self, left_rel, right_rel):
        # `id` exists on both sides: not safely attributable
        pairs, residual = split_equi_condition(
            parse("id = R.id"), left_rel, right_rel
        )
        assert pairs == [] and len(residual) == 1

    def test_non_equality_is_residual(self, left_rel, right_rel):
        pairs, residual = split_equi_condition(
            parse("L.id < R.id"), left_rel, right_rel
        )
        assert pairs == [] and len(residual) == 1


def run_join(condition, kind, left_rows, right_rows):
    left_rel = relation("L", ("id", "int"), ("v", "float"))
    right_rel = relation("R", ("id", "int"), ("w", "float"))
    g = OhmGraph()
    s1 = g.add(Source(left_rel))
    s2 = g.add(Source(right_rel))
    j = g.add(Join(condition, kind=kind))
    bp = g.add(BasicProject([
        ("lid", "L.id"), ("v", "v"), ("rid", "R.id"), ("w", "w"),
    ]))
    t = g.add(Target(relation(
        "Out", ("lid", "int"), ("v", "float"), ("rid", "int"), ("w", "float"),
    )))
    g.connect(s1, j, name="L")
    g.connect(s2, j, dst_port=1, name="R")
    g.chain(j, bp, t)
    instance = Instance([
        Dataset(left_rel, left_rows), Dataset(right_rel, right_rows),
    ])
    return execute(g, instance).dataset("Out")


row_lists = st.lists(
    st.fixed_dictionaries(
        {
            "id": st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
            "v": st.floats(min_value=0, max_value=10, allow_nan=False,
                           width=16),
        }
    ),
    max_size=10,
)


class TestHashVsNestedLoopEquivalence:
    """The hash path (pure equi-join) must agree with the nested-loop
    path (forced via a tautological non-equi residual)."""

    @pytest.mark.parametrize("kind", ["inner", "left", "right", "full"])
    @given(left=row_lists, right=row_lists)
    @settings(max_examples=25, deadline=None)
    def test_all_join_kinds(self, kind, left, right):
        right = [{"id": r["id"], "w": r["v"]} for r in right]
        hashed = run_join("L.id = R.id", kind, left, right)
        # appending a tautology leaves no pure-equi fast path... it stays
        # a residual, but the equi pair still hashes; force pure nested
        # loop with a >=-shaped equivalent instead
        looped = run_join(
            "L.id <= R.id AND L.id >= R.id", kind, left, right
        )
        assert hashed.same_bag(looped)

    @given(left=row_lists, right=row_lists)
    @settings(max_examples=25, deadline=None)
    def test_residual_predicates(self, left, right):
        right = [{"id": r["id"], "w": r["v"]} for r in right]
        mixed = run_join("L.id = R.id AND L.v < R.w", "inner", left, right)
        looped = run_join(
            "L.id <= R.id AND L.id >= R.id AND L.v < R.w", "inner",
            left, right,
        )
        assert mixed.same_bag(looped)


class TestNullSemantics:
    def test_null_keys_never_match(self):
        out = run_join(
            "L.id = R.id", "inner",
            [{"id": None, "v": 1.0}, {"id": 1, "v": 2.0}],
            [{"id": None, "w": 3.0}, {"id": 1, "w": 4.0}],
        )
        assert len(out) == 1
        assert out.rows[0]["lid"] == 1

    def test_null_keys_padded_in_outer_joins(self):
        out = run_join(
            "L.id = R.id", "full",
            [{"id": None, "v": 1.0}],
            [{"id": None, "w": 2.0}],
        )
        assert len(out) == 2  # both unmatched, both padded

    def test_int_float_keys_join(self):
        left_rel = relation("L", ("k", "float"))
        right_rel = relation("R", ("k", "int"))
        g = OhmGraph()
        s1 = g.add(Source(left_rel))
        s2 = g.add(Source(right_rel))
        j = g.add(Join("L.k = R.k"))
        t = g.add(Target(relation("Out", ("L.k", "float"), ("R.k", "int"))))
        g.connect(s1, j, name="L")
        g.connect(s2, j, dst_port=1, name="R")
        g.connect(j, t)
        instance = Instance([
            Dataset(left_rel, [{"k": 2.0}]),
            Dataset(right_rel, [{"k": 2}]),
        ])
        assert len(execute(g, instance).dataset("Out")) == 1
