"""Operator subtyping tests.

The paper's contract: "a refined operator must be a specialization of its
more generic base operator. That is, its behavior must be realizable by
the base operator." The property test executes each subtype and its
``as_base_project()`` generalization on the same data and asserts
identical results.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.dataset import Dataset, Instance
from repro.errors import ValidationError
from repro.ohm import (
    BasicProject,
    ColumnMerge,
    ColumnSplit,
    KeyGen,
    OhmGraph,
    Project,
    Source,
    Target,
    execute,
    reset_keygen_sequences,
)
from repro.schema import relation


@pytest.fixture
def rel():
    return relation(
        "R", ("id", "int", False), ("name", "varchar"), ("code", "varchar")
    )


def run_project(project_op, rel, rows, out_attrs):
    graph = OhmGraph()
    source = graph.add(Source(rel))
    graph.add(project_op)
    target = graph.add(Target(relation("Out", *out_attrs)))
    graph.chain(source, project_op, target)
    instance = Instance([Dataset(rel, rows)])
    return execute(graph, instance).dataset("Out")


class TestBasicProject:
    def test_renames_and_drops(self, rel):
        op = BasicProject([("ident", "id"), ("name", "name")])
        result = run_project(
            op, rel, [{"id": 1, "name": "a", "code": "x-y"}],
            [("ident", "int"), ("name", "varchar")],
        )
        assert result.rows == [{"ident": 1, "name": "a"}]

    def test_is_a_project(self):
        assert isinstance(BasicProject([("a", "a")]), Project)

    def test_identity_constructor(self, rel):
        op = BasicProject.identity(rel)
        assert op.is_identity_for(rel)

    def test_keep_constructor(self):
        op = BasicProject.keep(["a", "b"])
        assert op.columns == [("a", "a"), ("b", "b")]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            BasicProject([])

    def test_derivations_are_pure_column_refs(self):
        op = BasicProject([("x", "y")])
        from repro.expr.ast import ColumnRef

        assert all(isinstance(e, ColumnRef) for _c, e in op.derivations)


class TestKeyGen:
    def test_appends_monotone_key(self, rel):
        reset_keygen_sequences()
        op = KeyGen("sk", sequence="test-seq-1", start=100)
        result = run_project(
            op, rel,
            [{"id": 1}, {"id": 2}, {"id": 3}],
            [("id", "int"), ("name", "varchar"), ("code", "varchar"),
             ("sk", "int")],
        )
        assert result.column("sk") == [100, 101, 102]
        assert result.column("id") == [1, 2, 3]

    def test_existing_column_rejected(self, rel):
        op = KeyGen("id")
        with pytest.raises(ValidationError):
            op.validate([rel])

    def test_separate_sequences_are_independent(self, rel):
        reset_keygen_sequences()
        a = KeyGen("sk", sequence="seq-a", start=1)
        b = KeyGen("sk", sequence="seq-b", start=1)
        run_project(a, rel, [{"id": 1}],
                    [("id", "int"), ("name", "varchar"), ("code", "varchar"),
                     ("sk", "int")])
        result = run_project(
            b, rel, [{"id": 1}],
            [("id", "int"), ("name", "varchar"), ("code", "varchar"),
             ("sk", "int")],
        )
        assert result.column("sk") == [1]


class TestColumnSplit:
    def test_splits_by_delimiter(self, rel):
        op = ColumnSplit(
            "code", ["part1", "part2"], "-", passthrough=["id"]
        )
        result = run_project(
            op, rel, [{"id": 1, "code": "ab-cd"}],
            [("id", "int"), ("part1", "varchar"), ("part2", "varchar")],
        )
        assert result.rows == [{"id": 1, "part1": "ab", "part2": "cd"}]

    def test_missing_parts_become_empty(self, rel):
        op = ColumnSplit("code", ["p1", "p2", "p3"], "-")
        result = run_project(
            op, rel, [{"id": 1, "code": "only"}],
            [("p1", "varchar"), ("p2", "varchar"), ("p3", "varchar")],
        )
        assert result.rows == [{"p1": "only", "p2": "", "p3": ""}]

    def test_needs_two_targets(self):
        with pytest.raises(ValidationError):
            ColumnSplit("c", ["only"], "-")


class TestColumnMerge:
    def test_merges_with_delimiter(self, rel):
        op = ColumnMerge(["name", "code"], "merged", ":", passthrough=["id"])
        result = run_project(
            op, rel, [{"id": 1, "name": "a", "code": "b"}],
            [("id", "int"), ("merged", "varchar")],
        )
        assert result.rows == [{"id": 1, "merged": "a:b"}]

    def test_inverse_of_split(self, rel):
        # COLUMN SPLIT then COLUMN MERGE restores the original column
        split = ColumnSplit("code", ["p1", "p2"], "-", passthrough=["id"])
        merged = ColumnMerge(["p1", "p2"], "code", "-", passthrough=["id"])
        mid = run_project(
            split, rel, [{"id": 1, "code": "x-y"}],
            [("id", "int"), ("p1", "varchar"), ("p2", "varchar")],
        )
        back = run_project(
            merged, mid.relation, mid.rows, [("id", "int"), ("code", "varchar")]
        )
        assert back.rows == [{"id": 1, "code": "x-y"}]

    def test_needs_two_sources(self):
        with pytest.raises(ValidationError):
            ColumnMerge(["one"], "m", "-")


class TestSubtypeRealizableByBase:
    """The refinement contract, checked behaviourally."""

    rows_strategy = st.lists(
        st.fixed_dictionaries(
            {
                "id": st.integers(min_value=0, max_value=99),
                "name": st.text(
                    alphabet="abcxyz", min_size=0, max_size=6
                ),
                "code": st.text(alphabet="abc-", min_size=0, max_size=8),
            }
        ),
        max_size=8,
    )

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_basic_project_equals_base(self, rows):
        rel = relation(
            "R", ("id", "int", False), ("name", "varchar"), ("code", "varchar")
        )
        refined = BasicProject([("n", "name"), ("i", "id")])
        base = refined.as_base_project()
        out_attrs = [("n", "varchar"), ("i", "int")]
        a = run_project(refined, rel, rows, out_attrs)
        b = run_project(base, rel, rows, out_attrs)
        assert a.same_bag(b)

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_column_split_equals_base(self, rows):
        rel = relation(
            "R", ("id", "int", False), ("name", "varchar"), ("code", "varchar")
        )
        refined = ColumnSplit("code", ["p1", "p2"], "-", passthrough=["id"])
        base = refined.as_base_project()
        out_attrs = [("id", "int"), ("p1", "varchar"), ("p2", "varchar")]
        rows = [dict(r, code=r["code"] or "x") for r in rows]
        a = run_project(refined, rel, rows, out_attrs)
        b = run_project(base, rel, rows, out_attrs)
        assert a.same_bag(b)

    @given(rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_column_merge_equals_base(self, rows):
        rel = relation(
            "R", ("id", "int", False), ("name", "varchar"), ("code", "varchar")
        )
        refined = ColumnMerge(["name", "code"], "m", "|", passthrough=["id"])
        base = refined.as_base_project()
        out_attrs = [("id", "int"), ("m", "varchar")]
        rows = [dict(r, name=r["name"] or "n", code=r["code"] or "c") for r in rows]
        a = run_project(refined, rel, rows, out_attrs)
        b = run_project(base, rel, rows, out_attrs)
        assert a.same_bag(b)
