"""NF² (NEST/UNNEST) execution tests — the nested capabilities of the
schema representation (paper section IV)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.dataset import Dataset, Instance
from repro.ohm import Nest, OhmGraph, Source, Target, Unnest, execute_with_edges
from repro.schema import relation
from repro.schema.model import Attribute, Relation
from repro.schema.types import FLOAT, INTEGER, RecordType, SetType


@pytest.fixture
def accounts():
    return relation(
        "Accounts",
        ("customerID", "int", False),
        ("accountID", "int", False),
        ("balance", "float"),
    )


def nested_relation():
    element = RecordType([("accountID", INTEGER), ("balance", FLOAT)])
    return Relation(
        "Nested",
        [
            Attribute("customerID", INTEGER, nullable=False),
            Attribute("accounts", SetType(element), nullable=False),
        ],
    )


ROWS = [
    {"customerID": 1, "accountID": 10, "balance": 5.0},
    {"customerID": 1, "accountID": 11, "balance": 7.0},
    {"customerID": 2, "accountID": 12, "balance": 9.0},
]


class TestNest:
    def test_groups_into_set_attribute(self, accounts):
        g = OhmGraph()
        s = g.add(Source(accounts))
        n = g.add(
            Nest(["customerID"], ["accountID", "balance"], into="accounts")
        )
        t = g.add(Target(nested_relation()))
        g.chain(s, n, t)
        result, _ = execute_with_edges(
            g, Instance([Dataset(accounts, ROWS)])
        )
        rows = {r["customerID"]: r for r in result.dataset("Nested")}
        assert len(rows[1]["accounts"]) == 2
        assert rows[2]["accounts"] == [{"accountID": 12, "balance": 9.0}]


class TestUnnest:
    def test_flattens_set_attribute(self, accounts):
        nested = nested_relation()
        g = OhmGraph()
        s = g.add(Source(nested))
        u = g.add(Unnest("accounts"))
        flat = relation(
            "Flat", ("customerID", "int"), ("accountID", "int"),
            ("balance", "float"),
        )
        t = g.add(Target(flat))
        g.chain(s, u, t)
        nested_rows = [
            {"customerID": 1, "accounts": [
                {"accountID": 10, "balance": 5.0},
                {"accountID": 11, "balance": 7.0},
            ]},
            {"customerID": 3, "accounts": []},
        ]
        data = Dataset(nested, nested_rows)
        result, _ = execute_with_edges(g, Instance([data]))
        flat_rows = result.dataset("Flat").rows
        assert len(flat_rows) == 2  # the empty set produces no rows
        assert all(r["customerID"] == 1 for r in flat_rows)


class TestNestUnnestRoundTrip:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=4),
                st.integers(min_value=0, max_value=99),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_unnest_after_nest_restores_rows(self, triples):
        """NEST then UNNEST is the identity on the original bag (every
        customer has ≥1 account by construction, so no rows vanish)."""
        accounts = relation(
            "Accounts",
            ("customerID", "int", False),
            ("accountID", "int", False),
            ("balance", "float"),
        )
        rows = [
            {"customerID": c, "accountID": a, "balance": round(b, 3)}
            for c, a, b in triples
        ]
        g = OhmGraph()
        s = g.add(Source(accounts))
        n = g.add(
            Nest(["customerID"], ["accountID", "balance"], into="accounts")
        )
        u = g.add(Unnest("accounts"))
        flat = relation(
            "Flat", ("customerID", "int"), ("accountID", "int"),
            ("balance", "float"),
        )
        t = g.add(Target(flat))
        g.chain(s, n, u, t)
        result, _ = execute_with_edges(
            g, Instance([Dataset(accounts, rows)])
        )
        original = Dataset(flat, rows)
        assert result.dataset("Flat").same_bag(original)
