"""The diagnostic model: codes, severities, locations, reports."""

import json

import pytest

from repro.analysis import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Diagnostic,
    Location,
)


class TestCatalogue:
    def test_every_code_has_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            assert code.startswith("ORC") and len(code) == 6
            assert severity in (ERROR, WARNING, INFO)
            assert title

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="ORC999"):
            Diagnostic("ORC999", "nope")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="fatal"):
            Diagnostic("ORC002", "msg", severity="fatal")

    def test_severity_defaults_from_catalogue(self):
        assert Diagnostic("ORC002", "m").severity == ERROR
        assert Diagnostic("ORC020", "m").severity == WARNING
        assert Diagnostic("ORC021", "m").severity == INFO

    def test_explicit_severity_wins(self):
        assert Diagnostic("ORC020", "m", severity=ERROR).severity == ERROR


class TestLocation:
    def test_empty_location_is_falsy(self):
        assert not Location()
        assert Location(stage="x")

    def test_to_dict_omits_none(self):
        loc = Location(stage="s", link="l")
        assert loc.to_dict() == {"stage": "s", "link": "l"}

    def test_str(self):
        assert str(Location(stage="s")) == "stage 's'"


class TestRendering:
    def test_render_with_location_and_hint(self):
        d = Diagnostic(
            "ORC002",
            "bad type",
            location=Location(stage="s", link="l"),
            hint="fix it",
        )
        line = d.render()
        assert line.startswith("ORC002 error at stage 's', link 'l': ")
        assert line.endswith("(fix: fix it)")

    def test_render_without_location(self):
        assert Diagnostic("ORC010", "cycle").render() == (
            "ORC010 error: cycle"
        )

    def test_to_dict_includes_fix_only_when_hinted(self):
        assert "fix" not in Diagnostic("ORC002", "m").to_dict()
        assert Diagnostic("ORC002", "m", hint="h").to_dict()["fix"] == "h"


class TestReport:
    def make(self):
        report = AnalysisReport(subject="job 'j'")
        report.emit("ORC002", "bad", stage="s")
        report.emit("ORC020", "dead", link="l")
        report.emit("ORC021", "push")
        return report

    def test_severity_buckets(self):
        report = self.make()
        assert [d.code for d in report.errors] == ["ORC002"]
        assert [d.code for d in report.warnings] == ["ORC020"]
        assert [d.code for d in report.infos] == ["ORC021"]
        assert not report.ok
        assert len(report) == 3

    def test_ok_with_warnings_only(self):
        report = AnalysisReport()
        report.emit("ORC020", "dead")
        assert report.ok

    def test_exit_codes(self):
        clean = AnalysisReport()
        assert clean.exit_code() == 0
        assert clean.exit_code(strict=True) == 0
        warned = AnalysisReport()
        warned.emit("ORC020", "dead")
        assert warned.exit_code() == 0
        assert warned.exit_code(strict=True) == 1
        assert self.make().exit_code() == 1

    def test_codes_first_report_order(self):
        assert self.make().codes() == ["ORC002", "ORC020", "ORC021"]

    def test_by_code(self):
        assert len(self.make().by_code("ORC020")) == 1

    def test_to_text_summary(self):
        text = self.make().to_text()
        assert text.splitlines()[-1] == (
            "job 'j': 1 error(s), 1 warning(s), 1 info(s)"
        )

    def test_to_json_roundtrips(self):
        doc = json.loads(self.make().to_json())
        assert doc["subject"] == "job 'j'"
        assert doc["ok"] is False
        assert doc["counts"] == {"error": 1, "warning": 1, "info": 1}
        assert doc["diagnostics"][0]["code"] == "ORC002"
        assert doc["diagnostics"][0]["location"] == {"stage": "s"}

    def test_extend_merges(self):
        a, b = AnalysisReport(), AnalysisReport()
        a.emit("ORC002", "x")
        b.emit("ORC020", "y")
        assert [d.code for d in a.extend(b)] == ["ORC002", "ORC020"]
