"""Guard: the diagnostic catalogue, its documentation, and its tests
stay in lockstep — every code documented in docs/analysis.md appears in
the catalogue and in at least one test, and vice versa."""

import re
from pathlib import Path

from repro.analysis import CODES

REPO = Path(__file__).resolve().parents[2]
DOC = REPO / "docs" / "analysis.md"
TESTS = Path(__file__).resolve().parent


def codes_in(text: str) -> set:
    return set(re.findall(r"ORC\d{3}", text))


def test_every_catalogue_code_is_documented():
    documented = codes_in(DOC.read_text())
    assert set(CODES) <= documented, (
        f"codes missing from docs/analysis.md: "
        f"{sorted(set(CODES) - documented)}"
    )


def test_docs_mention_no_unknown_codes():
    documented = codes_in(DOC.read_text())
    assert documented <= set(CODES), (
        f"docs/analysis.md documents codes absent from the catalogue: "
        f"{sorted(documented - set(CODES))}"
    )


def test_every_documented_code_has_a_test():
    tested = set()
    for path in TESTS.glob("test_*.py"):
        if path.name == Path(__file__).name:
            continue
        tested |= codes_in(path.read_text())
    untested = codes_in(DOC.read_text()) - tested
    assert not untested, (
        f"codes documented in docs/analysis.md but exercised by no test "
        f"under tests/analysis/: {sorted(untested)}"
    )
