"""``orchid lint``: text and JSON output, exit statuses, --strict,
--check pre-run enforcement."""

import json

import pytest

from repro.cli import main
from repro.etl import job_to_xml
from repro.etl.model import Job
from repro.etl.stages import (
    FilterOutput,
    FilterStage,
    OutputLink,
    TableSource,
    TableTarget,
    Transformer,
)
from repro.schema import relation
from repro.workloads import build_example_job

REL = relation(
    "R", ("id", "int", False), ("name", "string", False),
    ("amt", "float", False),
)


@pytest.fixture
def clean_xml(tmp_path):
    path = tmp_path / "clean.xml"
    path.write_text(job_to_xml(build_example_job()))
    return str(path)


@pytest.fixture
def bad_type_xml(tmp_path):
    job = Job("bad_type")
    s = job.add(TableSource(REL))
    f = job.add(FilterStage([FilterOutput(where="name > 3")]))
    t = job.add(TableTarget(REL))
    job.chain(s, f, t, names=["a", "b"])
    path = tmp_path / "bad.xml"
    path.write_text(job_to_xml(job))
    return str(path)


@pytest.fixture
def warn_xml(tmp_path):
    job = Job("warned")
    s = job.add(TableSource(REL))
    tr = job.add(
        Transformer([
            OutputLink([
                ("id", "id"), ("name", "name"), ("amt", "amt"),
                ("waste", "amt * 2"),
            ])
        ])
    )
    t = job.add(TableTarget(REL))
    job.chain(s, tr, t, names=["a", "b"])
    path = tmp_path / "warn.xml"
    path.write_text(job_to_xml(job))
    return str(path)


class TestTextOutput:
    def test_clean_job_exits_zero(self, clean_xml, capsys):
        assert main(["lint", clean_xml]) == 0
        out = capsys.readouterr().out
        assert out.strip() == (
            "job 'CustomerBalanceSplit': 0 error(s), 0 warning(s), "
            "0 info(s)"
        )

    def test_bad_type_exits_one_with_diagnostic(
        self, bad_type_xml, capsys
    ):
        assert main(["lint", bad_type_xml]) == 1
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0].startswith("ORC002 error at stage ")
        assert "link 'b'" in lines[0]
        assert "(name > 3)" in lines[0]
        assert lines[-1] == (
            "job 'bad_type': 1 error(s), 0 warning(s), 0 info(s)"
        )

    def test_warning_exits_zero_without_strict(self, warn_xml, capsys):
        assert main(["lint", warn_xml]) == 0
        assert "ORC020 warning" in capsys.readouterr().out

    def test_strict_promotes_warnings(self, warn_xml):
        assert main(["lint", warn_xml, "--strict"]) == 1

    def test_unparseable_document_is_orc001(self, tmp_path, capsys):
        path = tmp_path / "mangled.xml"
        path.write_text(job_to_xml(build_example_job()).replace(
            "&lt;&gt;", "&lt;&gt;&gt;*", 1
        ))
        assert main(["lint", str(path)]) == 1
        assert "ORC001 error" in capsys.readouterr().out


class TestJsonOutput:
    def test_clean_json_document(self, clean_xml, capsys):
        assert main(["lint", clean_xml, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["counts"] == {"error": 0, "warning": 0, "info": 0}
        assert doc["diagnostics"] == []

    def test_bad_type_json_document(self, bad_type_xml, capsys):
        assert main(["lint", bad_type_xml, "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False
        (diag,) = doc["diagnostics"]
        assert diag["code"] == "ORC002"
        assert diag["severity"] == "error"
        assert diag["location"]["link"] == "b"
        assert "expression" in diag["location"]

    def test_ohm_layer_lint(self, clean_xml, capsys):
        assert main(["lint", clean_xml, "--ohm"]) == 0
        assert "OHM instance" in capsys.readouterr().out


class TestCheckFlag:
    def test_check_flag_resets_after_invocation(self, clean_xml):
        from repro.analysis import default_check

        assert main(["lint", clean_xml, "--check"]) == 0
        assert default_check() is False
