"""Regression tests for the narrowed exception paths: static plan
defects (``STATIC_ERRORS``) and harness bugs must surface immediately —
never absorbed by row policies, never retried down the degradation
ladder, never misreported as worker unavailability."""

import pytest

from repro.data.dataset import Instance
from repro.errors import (
    EvaluationError,
    FaultInjected,
    SchemaError,
    TypeCheckError,
)
from repro.etl import EtlEngine
from repro.etl.model import Job
from repro.etl.stages import (
    FilterOutput,
    FilterStage,
    TableSource,
    TableTarget,
)
from repro.exec.parallel import WorkerPool, WorkerUnavailable
from repro.mapping.executor import MappingExecutor
from repro.mapping.model import Mapping, MappingSet, SourceBinding
from repro.ohm import Filter, OhmGraph, Source, Target
from repro.ohm.engine import OhmExecutor
from repro.resilience import ErrorContext
from repro.schema import relation
from repro.workloads import synthesize_instance

REL = relation(
    "R", ("id", "int", False), ("name", "string", False),
    ("amt", "float", False),
)


def make_job():
    job = Job("ladder")
    s = job.add(TableSource(REL))
    f = job.add(FilterStage([FilterOutput(where="id > 0")]))
    t = job.add(TableTarget(REL))
    job.chain(s, f, t, names=["a", "b"])
    return job


def make_graph():
    g = OhmGraph("ladder")
    s = g.add(Source(REL))
    f = g.add(Filter("id > 0"))
    t = g.add(Target(REL))
    g.chain(s, f, t, names=["a", "b"])
    return g


def make_mappings():
    m = Mapping(
        [SourceBinding("r", REL)],
        relation("T", ("id", "int", False)),
        [("id", "r.id")],
        name="M1",
    )
    return MappingSet([m])


class TestRowPoliciesNeverAbsorbStaticErrors:
    def test_skip_absorbs_data_errors(self):
        ctx = ErrorContext("s", "skip")
        ctx.record(0, {"id": 1}, ValueError("bad cell"))
        assert ctx.skipped == 1

    @pytest.mark.parametrize("policy", ["skip", "reject"])
    def test_static_error_raises_through_policy(self, policy):
        ctx = ErrorContext("s", policy)
        with pytest.raises(SchemaError):
            ctx.record(0, {"id": 1}, SchemaError("planted plan defect"))
        assert ctx.skipped == 0
        assert ctx.rejected == []

    def test_type_check_error_raises_through_policy(self):
        ctx = ErrorContext("s", "reject")
        with pytest.raises(TypeCheckError):
            ctx.record(0, {"id": 1}, TypeCheckError("planted"))
        assert ctx.rejected == []


class TestLaddersNeverRetryStaticErrors:
    """A plan defect fails identically at every tier, so the ladders
    raise it from the *first* attempt instead of walking every tier."""

    def test_etl_ladder(self, monkeypatch):
        calls = []
        original = FilterStage.execute

        def boom(self, inputs, out_relations, registry, **kwargs):
            calls.append(type(kwargs.get("planner")).__name__)
            raise SchemaError("planted plan defect")

        monkeypatch.setattr(FilterStage, "execute", boom)
        with pytest.raises(SchemaError, match="planted"):
            EtlEngine(compiled=True).run(
                make_job(), synthesize_instance([REL], 5)
            )
        assert len(calls) == 1
        monkeypatch.setattr(FilterStage, "execute", original)

    def test_etl_ladder_still_degrades_runtime_errors(self, monkeypatch):
        calls = []

        def boom(self, inputs, out_relations, registry, **kwargs):
            calls.append(1)
            raise ValueError("tier-specific breakage")

        monkeypatch.setattr(FilterStage, "execute", boom)
        with pytest.raises(ValueError):
            EtlEngine(compiled=True).run(
                make_job(), synthesize_instance([REL], 5)
            )
        assert len(calls) > 1  # every tier was attempted

    def test_ohm_ladder(self, monkeypatch):
        calls = []

        def boom(self, op, inputs, out_relations, instance, **kwargs):
            calls.append(1)
            raise SchemaError("planted plan defect")

        monkeypatch.setattr(OhmExecutor, "_run_operator", boom)
        with pytest.raises(SchemaError, match="planted"):
            OhmExecutor(compiled=True).run(
                make_graph(), synthesize_instance([REL], 5)
            )
        assert len(calls) == 1

    def test_mapping_ladder(self, monkeypatch):
        calls = []

        def boom(self, mapping, working, **kwargs):
            calls.append(1)
            raise TypeCheckError("planted plan defect")

        monkeypatch.setattr(MappingExecutor, "execute_mapping", boom)
        with pytest.raises(TypeCheckError, match="planted"):
            MappingExecutor(compiled=True).execute(
                make_mappings(), synthesize_instance([REL], 5)
            )
        assert len(calls) == 1


class TestTypecheckNarrowing:
    """``common_type`` failures are converted to located
    :class:`TypeCheckError`\\ s only for genuine :class:`SchemaError`;
    anything else is a harness bug and must propagate unmasked."""

    def test_schema_error_becomes_type_check_error(self):
        from repro.expr.parser import parse
        from repro.expr.typecheck import TypeContext, infer_type

        ctx = TypeContext(REL)
        with pytest.raises(TypeCheckError, match="cannot compare"):
            infer_type(parse("name > 3"), ctx)

    def test_harness_bug_propagates(self, monkeypatch):
        import repro.expr.typecheck as tc
        from repro.expr.parser import parse

        def broken(left, right):
            raise TypeError("harness bug, not a type mismatch")

        monkeypatch.setattr(tc, "common_type", broken)
        ctx = tc.TypeContext(REL)
        with pytest.raises(TypeError, match="harness bug"):
            tc.infer_type(parse("id > 1"), ctx)


class TestWorkerPoolNarrowing:
    """Only resource failures (RuntimeError/OSError) downgrade to
    :class:`WorkerUnavailable`; a TypeError from the harness itself
    propagates."""

    def tasks(self, n=3):
        return [lambda i=i: i for i in range(n)]

    def test_resource_failure_degrades(self, monkeypatch):
        def broken(self):
            raise RuntimeError("cannot schedule new futures")

        monkeypatch.setattr(WorkerPool, "_resolve_executor", broken)
        entries = WorkerPool(workers=2).run_all(self.tasks())
        assert all(isinstance(e, WorkerUnavailable) for e, _ in entries)

    def test_harness_bug_propagates(self, monkeypatch):
        def broken(self):
            raise TypeError("harness bug")

        monkeypatch.setattr(WorkerPool, "_resolve_executor", broken)
        with pytest.raises(TypeError, match="harness bug"):
            WorkerPool(workers=2).run_all(self.tasks())

    def test_submit_failure_degrades(self):
        class BrokenExecutor:
            def submit(self, fn, *a, **kw):
                raise RuntimeError("shutdown")

        entries = WorkerPool(executor=BrokenExecutor()).run_all(
            self.tasks()
        )
        assert all(isinstance(e, WorkerUnavailable) for e, _ in entries)


class TestScalarFunctionNarrowing:
    """Injected faults drive retry machinery by identity; they must
    never be wrapped into :class:`EvaluationError`."""

    def test_data_error_is_wrapped(self):
        from repro.expr.functions import ScalarFunction
        from repro.schema.types import INTEGER

        fn = ScalarFunction("BOOM", lambda x: 1 / 0, INTEGER, arity=1)
        with pytest.raises(EvaluationError, match="BOOM"):
            fn(1)

    def test_injected_fault_passes_unwrapped(self):
        from repro.expr.functions import ScalarFunction
        from repro.schema.types import INTEGER

        def impl(x):
            raise FaultInjected("planted")

        fn = ScalarFunction("BOOM", impl, INTEGER, arity=1)
        with pytest.raises(FaultInjected):
            fn(1)
