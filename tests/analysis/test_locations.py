"""Structured locations on :class:`GraphError`/:class:`ValidationError`
and their population by the graph validation hooks."""

import pytest

from repro.errors import GraphError, ValidationError
from repro.etl.model import Job
from repro.etl.stages import (
    FilterOutput,
    FilterStage,
    TableSource,
    TableTarget,
)
from repro.ohm import OhmGraph, Source, Target
from repro.schema import relation

REL = relation("R", ("id", "int", False), ("name", "string", False))


class TestLocationFields:
    def test_bare_error_has_no_location(self):
        exc = GraphError("boom")
        assert exc.location() == {}
        assert str(exc) == "boom"

    def test_fields_render_into_message(self):
        exc = ValidationError(
            "boom", stage="Filter_1", link="b", expression="(id > 0)"
        )
        assert exc.stage == "Filter_1"
        assert exc.link == "b"
        assert exc.expression == "(id > 0)"
        assert "stage='Filter_1'" in str(exc)
        assert "link='b'" in str(exc)
        assert "expression='(id > 0)'" in str(exc)

    def test_location_dict_drops_empty_fields(self):
        exc = GraphError("boom", operator="F_1")
        assert exc.location() == {"operator": "F_1"}


class TestValidateHooksPopulateLocations:
    WIDER = relation(
        "W", ("id", "int", False), ("name", "string", False),
        ("ghost", "int", False),
    )

    def test_etl_validate_names_the_stage(self):
        job = Job("bad")
        s = job.add(TableSource(REL))
        t = job.add(TableTarget(self.WIDER))  # 'ghost' never arrives
        job.chain(s, t, names=["a"])
        with pytest.raises(ValidationError) as info:
            job.propagate_schemas()
        assert info.value.stage == t.uid
        assert info.value.operator is None

    def test_ohm_validate_names_the_operator(self):
        g = OhmGraph("bad")
        s = g.add(Source(REL))
        t = g.add(Target(self.WIDER))  # 'ghost' never arrives
        g.chain(s, t, names=["a"])
        with pytest.raises(ValidationError) as info:
            g.propagate_schemas()
        assert info.value.operator == t.uid
        assert info.value.stage is None

    def test_port_count_errors_are_located(self):
        job = Job("dangling")
        s = job.add(TableSource(REL))
        f = job.add(FilterStage([FilterOutput(where="id > 0")]))
        job.link(s, f, name="a")  # the filter's output dangles
        with pytest.raises(GraphError) as info:
            job.validate_structure()
        assert info.value.stage == f.uid

    def test_located_errors_are_not_relocated(self):
        """An error that already names its stage keeps that location
        even when the graph machinery re-raises it."""
        job = Job("j")
        exc = ValidationError("boom", stage="inner")
        assert job._relocate(exc, "outer") is exc
