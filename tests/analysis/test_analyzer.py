"""The analyzer proper: every ORC code caught from a seeded defect,
with stage/operator/link/expression locations — and no execution."""

import pytest

from repro.analysis import (
    analyze,
    analyze_expression,
    analyze_graph,
    analyze_job,
    analyze_mappings,
    check_plan,
)
from repro.errors import ValidationError
from repro.etl.model import Job
from repro.etl.stages import (
    AggregatorStage,
    CustomStage,
    FilterOutput,
    FilterStage,
    OutputLink,
    SortStage,
    TableSource,
    TableTarget,
    Transformer,
)
from repro.mapping.model import Mapping, MappingSet, SourceBinding
from repro.ohm import Filter, OhmGraph, Project, Source, Target
from repro.schema import relation

REL = relation(
    "R", ("id", "int", False), ("name", "string", False),
    ("amt", "float", False),
)
OUT = relation(
    "Out", ("id", "int", False), ("name", "string", False),
    ("amt", "float", False),
)


def passing_filter():
    return FilterStage([FilterOutput(where="id > 0")])


def codes(report):
    return [d.code for d in report]


class TestTypeErrors:
    def test_orc002_bad_comparison(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        f = job.add(FilterStage([FilterOutput(where="name > 3")]))
        t = job.add(TableTarget(OUT))
        job.chain(s, f, t, names=["a", "b"])
        report = analyze_job(job)
        assert codes(report) == ["ORC002"]
        d = report.errors[0]
        assert d.location.stage == f.uid
        assert d.location.link == "b"
        assert "(name > 3)" in d.location.expression

    def test_orc003_non_boolean_predicate(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        f = job.add(FilterStage([FilterOutput(where="id + 1")]))
        t = job.add(TableTarget(OUT))
        job.chain(s, f, t, names=["a", "b"])
        report = analyze_job(job)
        assert codes(report) == ["ORC003"]
        assert "boolean" in report.errors[0].message

    def test_orc001_unparseable_expression(self):
        report = analyze_expression("amt +* 2", REL)
        assert codes(report) == ["ORC001"]

    def test_orc002_in_transformer_derivation(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        tr = job.add(
            Transformer([
                OutputLink([
                    ("id", "id"), ("name", "name"),
                    ("amt", "amt + name"),
                ])
            ])
        )
        t = job.add(TableTarget(OUT))
        job.chain(s, tr, t, names=["a", "b"])
        report = analyze_job(job)
        assert "ORC002" in codes(report)
        assert report.errors[0].location.stage == tr.uid

    def test_orc015_wrongly_typed_target_column(self):
        # TableTarget.validate only checks presence; the analyzer also
        # checks the dtype, which would otherwise fail at load time
        job = Job("t")
        s = job.add(TableSource(REL))
        tr = job.add(
            Transformer([
                OutputLink([
                    ("id", "id"), ("name", "name"),
                    ("amt", "UPPER(name)"),
                ])
            ])
        )
        t = job.add(TableTarget(OUT))
        job.chain(s, tr, t, names=["a", "b"])
        report = analyze_job(job)
        assert "ORC015" in codes(report)
        d = report.by_code("ORC015")[0]
        assert d.location.stage == t.uid and "'amt'" in d.message

    def test_downstream_of_error_is_not_double_reported(self):
        # the stage after a broken one has no usable schema: suppressed
        job = Job("t")
        s = job.add(TableSource(REL))
        f1 = job.add(FilterStage([FilterOutput(where="id + 1")]))
        f2 = job.add(FilterStage([FilterOutput(where="name > 3")]))
        t = job.add(TableTarget(OUT))
        job.chain(s, f1, f2, t, names=["a", "b", "c"])
        assert codes(analyze_job(job)) == ["ORC003"]


class TestNullability:
    def test_orc004_nullable_into_not_null(self):
        src = relation("S", ("id", "int", False), ("opt", "float", True))
        tgt = relation("T", ("id", "int", False), ("opt", "float", False))
        job = Job("t")
        s = job.add(TableSource(src))
        tr = job.add(
            Transformer([
                OutputLink([("id", "id"), ("opt", "opt + 1")])
            ])
        )
        t = job.add(TableTarget(tgt))
        job.chain(s, tr, t, names=["a", "b"])
        report = analyze_job(job)
        assert codes(report) == ["ORC004"]
        assert report.ok  # a warning, not an error

    def test_coalesce_refines_away_the_warning(self):
        src = relation("S", ("id", "int", False), ("opt", "float", True))
        tgt = relation("T", ("id", "int", False), ("opt", "float", False))
        job = Job("t")
        s = job.add(TableSource(src))
        tr = job.add(
            Transformer([
                OutputLink([("id", "id"), ("opt", "COALESCE(opt, 0.0)")])
            ])
        )
        t = job.add(TableTarget(tgt))
        job.chain(s, tr, t, names=["a", "b"])
        assert codes(analyze_job(job)) == []


class TestStructure:
    def test_orc010_cycle(self):
        job = Job("t")
        f1 = job.add(passing_filter())
        f2 = job.add(passing_filter())
        job.link(f1, f2, name="a")
        job.link(f2, f1, name="b")
        assert codes(analyze_job(job)) == ["ORC010"]

    def test_orc011_dangling_port(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        f = job.add(passing_filter())
        job.link(s, f, name="a")  # the filter's output dangles
        report = analyze_job(job)
        assert "ORC011" in codes(report)
        assert report.by_code("ORC011")[0].location.stage == f.uid

    def test_orc012_duplicate_link_name(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        f = job.add(passing_filter())
        t = job.add(TableTarget(OUT))
        job.link(s, f, name="x")
        job.link(f, t, name="x")
        report = analyze_job(job)
        assert "ORC012" in codes(report)
        assert report.by_code("ORC012")[0].location.link == "x"

    def test_orc013_unreachable_stage(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        f = job.add(passing_filter())
        t = job.add(TableTarget(OUT))
        job.chain(s, f, t, names=["a", "b"])
        orphan = job.add(SortStage([("id", "asc")]))
        report = analyze_job(job)
        warned = report.by_code("ORC013")
        assert warned and all(
            d.location.stage == orphan.uid for d in warned
        )

    def test_orc014_reject_link_with_skip_policy(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        tr = job.add(
            Transformer(
                [OutputLink([
                    ("id", "id"), ("name", "name"), ("amt", "amt"),
                ])],
                on_error="skip",
            )
        )
        t = job.add(TableTarget(OUT))
        job.link(s, tr, name="a")
        job.link(tr, t, name="b")
        from repro.resilience import reject_relation

        rt = job.add(TableTarget(reject_relation()))
        job.reject_link(tr, rt, name="rej")
        report = analyze_job(job)
        assert "ORC014" in codes(report)
        d = report.by_code("ORC014")[0]
        assert d.location.stage == tr.uid and d.location.link == "rej"

    def test_orc015_schema_incompatible_target(self):
        narrow = relation("N", ("id", "int", False), ("nope", "int", False))
        job = Job("t")
        s = job.add(TableSource(REL))
        t = job.add(TableTarget(narrow))
        job.link(s, t, name="a")
        report = analyze_job(job)
        assert codes(report) == ["ORC015"]
        assert report.errors[0].location.stage == t.uid


class TestDataflow:
    def test_orc020_dead_computed_column(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        tr = job.add(
            Transformer([
                OutputLink([
                    ("id", "id"), ("name", "name"), ("amt", "amt"),
                    ("waste", "amt * 2"),
                ])
            ])
        )
        t = job.add(TableTarget(OUT))
        job.chain(s, tr, t, names=["a", "b"])
        report = analyze_job(job)
        assert codes(report) == ["ORC020"]
        d = report.warnings[0]
        assert "waste" in d.message
        assert d.location.stage == tr.uid and d.location.link == "b"

    def test_passthrough_columns_are_not_dead(self):
        # a passthrough the consumer drops is projection, not computation
        job = Job("t")
        s = job.add(TableSource(REL))
        agg = job.add(
            AggregatorStage(["name"], [("total", "sum", "amt")])
        )
        t = job.add(
            TableTarget(relation(
                "A", ("name", "string", False), ("total", "float", True),
            ))
        )
        job.chain(s, agg, t, names=["a", "b"])
        assert codes(analyze_job(job)) == []

    def test_orc020_dead_aggregate_output(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        agg = job.add(
            AggregatorStage(
                ["name"],
                [("total", "sum", "amt"), ("n", "count", None)],
            )
        )
        t = job.add(
            TableTarget(relation(
                "A", ("name", "string", False), ("total", "float", True),
            ))
        )
        job.chain(s, agg, t, names=["a", "b"])
        report = analyze_job(job)
        assert codes(report) == ["ORC020"]
        assert "'n'" in report.warnings[0].message

    def test_orc022_fusion_chain_broken_by_custom_stage(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        f1 = job.add(passing_filter())
        c = job.add(
            CustomStage([REL], implementation=lambda ins: [list(ins[0])])
        )
        f2 = job.add(FilterStage([FilterOutput(where="amt > 0")]))
        t = job.add(TableTarget(OUT))
        job.chain(s, f1, c, f2, t, names=["a", "b", "c", "d"])
        report = analyze_job(job)
        assert codes(report) == ["ORC022"]
        assert report.infos[0].location.stage == c.uid


class TestOhmLayer:
    def test_orc021_pushdown_barrier(self):
        from repro.expr.functions import DEFAULT_REGISTRY, register
        from repro.schema.types import INTEGER

        if not DEFAULT_REGISTRY.knows("ANALYSIS_HOST_FN"):
            register("ANALYSIS_HOST_FN", lambda x: x, INTEGER, 1)
        g = OhmGraph("p")
        s = g.add(Source(REL))
        f = g.add(Filter("amt > 0"))
        p = g.add(
            Project([
                ("id", "ANALYSIS_HOST_FN(id)"), ("name", "name"),
                ("amt", "amt"),
            ])
        )
        t = g.add(Target(OUT))
        g.chain(s, f, p, t, names=["a", "b", "c"])
        report = analyze_graph(g)
        assert codes(report) == ["ORC021"]
        d = report.infos[0]
        assert d.location.operator == p.uid
        assert "ANALYSIS_HOST_FN" in d.location.expression

    def test_ohm_type_error_locates_operator(self):
        g = OhmGraph("p")
        s = g.add(Source(REL))
        f = g.add(Filter("name > 3"))
        t = g.add(Target(OUT))
        g.chain(s, f, t, names=["a", "b"])
        report = analyze_graph(g)
        assert codes(report) == ["ORC002"]
        assert report.errors[0].location.operator == f.uid


class TestMappings:
    def setup_method(self):
        self.src = relation(
            "S", ("id", "int", False), ("amt", "float", True),
            ("name", "string", False),
        )
        self.tgt = relation(
            "T", ("id", "int", False), ("amt", "float", True),
        )

    def test_orc030_unknown_target_column(self):
        m = Mapping(
            [SourceBinding("s", self.src)], self.tgt,
            [("id", "s.id"), ("amt", "s.amt"), ("ghost", "s.amt")],
            name="M1",
        )
        report = analyze_mappings([m])
        assert codes(report) == ["ORC030"]
        assert report.errors[0].location.mapping == "M1"

    def test_orc030_duplicate_mapping_names(self):
        def make():
            return Mapping(
                [SourceBinding("s", self.src)], self.tgt,
                [("id", "s.id"), ("amt", "s.amt")], name="DUP",
            )

        ms = MappingSet([make(), make()])
        assert "ORC030" in codes(analyze_mappings(ms))

    def test_orc002_derivation_type_mismatch(self):
        m = Mapping(
            [SourceBinding("s", self.src)], self.tgt,
            [("id", "UPPER(s.name)"), ("amt", "s.amt")], name="M1",
        )
        report = analyze_mappings([m])
        assert codes(report) == ["ORC002"]

    def test_orc010_mapping_dependency_cycle(self):
        m1 = Mapping(
            [SourceBinding("s", self.src)], self.tgt,
            [("id", "s.id"), ("amt", "s.amt")], name="M1",
        )
        m2 = Mapping(
            [SourceBinding("t", self.tgt)], self.src,
            [("id", "t.id"), ("amt", "t.amt"), ("name", "'x'")],
            name="M2",
        )
        assert "ORC010" in codes(analyze_mappings([m1, m2]))

    def test_orc004_nullable_derivation(self):
        strict = relation(
            "T2", ("id", "int", False), ("amt", "float", False),
        )
        m = Mapping(
            [SourceBinding("s", self.src)], strict,
            [("id", "s.id"), ("amt", "s.amt")], name="M1",
        )
        report = analyze_mappings([m])
        assert codes(report) == ["ORC004"]

    def test_opaque_mappings_skipped(self):
        m = Mapping(
            [SourceBinding("s", self.src)], self.tgt,
            reference="blackbox", name="M1",
        )
        assert codes(analyze_mappings([m])) == []


class TestDispatchAndCheckPlan:
    def test_analyze_dispatches_by_type(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        t = job.add(TableTarget(OUT))
        job.link(s, t, name="a")
        assert analyze(job).ok
        g = OhmGraph("g")
        gs = g.add(Source(REL))
        gt = g.add(Target(OUT))
        g.chain(gs, gt, names=["a"])
        assert analyze(g).ok

    def test_analyze_rejects_unknown_subjects(self):
        with pytest.raises(ValidationError, match="cannot statically"):
            analyze(42)

    def test_check_plan_raises_with_location(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        f = job.add(FilterStage([FilterOutput(where="name > 3")]))
        t = job.add(TableTarget(OUT))
        job.chain(s, f, t, names=["a", "b"])
        with pytest.raises(ValidationError, match="ORC002") as exc_info:
            check_plan(job)
        loc = exc_info.value.location()
        assert loc["stage"] == f.uid and loc["link"] == "b"

    def test_check_plan_passes_warnings(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        tr = job.add(
            Transformer([
                OutputLink([
                    ("id", "id"), ("name", "name"), ("amt", "amt"),
                    ("waste", "amt * 2"),
                ])
            ])
        )
        t = job.add(TableTarget(OUT))
        job.chain(s, tr, t, names=["a", "b"])
        report = check_plan(job)  # ORC020 is a warning: no raise
        assert [d.code for d in report] == ["ORC020"]

    def test_analyzer_does_not_mutate_the_graph(self):
        job = Job("t")
        s = job.add(TableSource(REL))
        t = job.add(TableTarget(OUT))
        job.link(s, t, name="a")
        analyze_job(job)
        assert all(e.schema is None for e in job.edges)
