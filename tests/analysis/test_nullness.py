"""Three-valued NULL-ness inference over expressions."""

import pytest

from repro.analysis import infer_nullable, relation_resolver
from repro.expr.parser import parse
from repro.schema import relation

REL = relation(
    "R",
    ("id", "int", False),
    ("opt", "float", True),
    ("name", "string", False),
)


def nullable(text: str) -> bool:
    return infer_nullable(parse(text), relation_resolver(REL))


class TestLeaves:
    def test_literal(self):
        assert not nullable("1")
        assert not nullable("'x'")
        assert nullable("NULL")

    def test_columns_follow_schema(self):
        assert not nullable("id")
        assert nullable("opt")

    def test_qualified_column(self):
        assert not nullable("R.id")

    def test_unresolvable_is_conservative(self):
        assert nullable("mystery_column")


class TestOperators:
    def test_strict_binary_ops(self):
        assert not nullable("id + 1")
        assert nullable("opt + 1")
        assert nullable("id + opt")

    def test_unary(self):
        assert nullable("-opt")
        assert not nullable("-id")

    def test_comparison_and_logic(self):
        assert not nullable("id > 1 AND name = 'x'")
        assert nullable("opt > 1")

    def test_in_between_like(self):
        assert not nullable("id IN (1, 2)")
        assert nullable("opt IN (1, 2)")
        assert nullable("id BETWEEN 1 AND opt")
        assert not nullable("name LIKE 'a%'")


class TestFunctions:
    def test_coalesce_proves_not_null(self):
        assert not nullable("COALESCE(opt, 0)")
        assert not nullable("IFNULL(opt, 0)")

    def test_coalesce_of_all_nullables_stays_nullable(self):
        assert nullable("COALESCE(opt, NULL)")

    def test_nullif_always_nullable(self):
        assert nullable("NULLIF(id, 1)")

    def test_strict_function_follows_args(self):
        assert not nullable("UPPER(name)")
        assert nullable("ABS(opt)")


class TestCaseAndAggregates:
    def test_case_without_else_is_nullable(self):
        assert nullable("CASE WHEN id > 1 THEN 1 END")

    def test_case_with_else_follows_branches(self):
        assert not nullable("CASE WHEN id > 1 THEN 1 ELSE 2 END")
        assert nullable("CASE WHEN id > 1 THEN opt ELSE 2 END")

    def test_count_never_null(self):
        assert not nullable("COUNT(*)")
        assert not nullable("COUNT(opt)")

    def test_sum_follows_argument(self):
        assert not nullable("SUM(id)")
        assert nullable("SUM(opt)")

    def test_is_null_is_boolean_not_null(self):
        assert not nullable("opt IS NULL")


class TestResolver:
    def test_wrong_qualifier_unresolved(self):
        resolve = relation_resolver(REL)
        ref = parse("other.id")
        assert resolve(ref) is None

    def test_dotted_collision_column(self):
        joined = relation(
            "J", ("id", "int", False), ("src.id", "int", True)
        )
        resolve = relation_resolver(joined)
        assert resolve(parse("src.id")).nullable is True
        assert resolve(parse("id")).nullable is False
