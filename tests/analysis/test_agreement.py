"""Analyzer ↔ runtime agreement: a clean lint predicts a clean run,
seeded static defects are caught before row one, and ``check=True``
changes nothing about a clean run's results."""

import pytest

from repro.analysis import (
    analyze_graph,
    analyze_job,
    default_check,
    resolve_check,
    set_default_check,
)
from repro.compile import compile_job
from repro.data.dataset import Instance
from repro.errors import ValidationError
from repro.etl import EtlEngine, run_job
from repro.etl.model import Job
from repro.etl.stages import (
    FilterOutput,
    FilterStage,
    TableSource,
    TableTarget,
    Transformer,
    OutputLink,
)
from repro.mapping.executor import MappingExecutor
from repro.ohm.engine import OhmExecutor
from repro.schema import relation
from repro.workloads import (
    build_chain_job,
    build_example_job,
    build_fanout_job,
    build_faulty_job,
    build_kitchen_sink_job,
    build_star_join_job,
    generate_chain_instance,
    generate_faulty_instance,
    generate_instance,
    generate_kitchen_sink_instance,
    generate_star_instance,
    synthesize_instance,
)

REL = relation(
    "R", ("id", "int", False), ("name", "string", False),
    ("amt", "float", False),
)


def source_relations(job):
    return [
        s.relation for s in job.stages if isinstance(s, TableSource)
    ]


WORKLOADS = [
    ("example", lambda: build_example_job(),
     lambda job: generate_instance(60)),
    ("chain", lambda: build_chain_job(4),
     lambda job: generate_chain_instance(50)),
    ("fanout", lambda: build_fanout_job(3),
     lambda job: synthesize_instance(source_relations(job), 40)),
    ("star", lambda: build_star_join_job(3),
     lambda job: generate_star_instance(3, 40)),
    ("kitchen_sink", lambda: build_kitchen_sink_job(),
     lambda job: generate_kitchen_sink_instance(60)),
    ("faulty_clean", lambda: build_faulty_job(),
     lambda job: generate_faulty_instance(40, poison=0)[0]),
]


class TestCleanLintPredictsCleanRun:
    @pytest.mark.parametrize(
        "name,build,data", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    def test_workload_lints_clean_and_runs(self, name, build, data):
        job = build()
        report = analyze_job(job)
        assert report.ok, report.to_text()
        ohm_report = analyze_graph(compile_job(build()))
        assert ohm_report.ok, ohm_report.to_text()
        # and the run the lint predicted is indeed clean
        targets = run_job(build(), data(job), check=True)
        assert sum(len(d) for d in targets) > 0


class TestDefectsCaughtBeforeRowOne:
    """Each seeded static-defect class is rejected with zero rows
    processed: the source stage is never even asked for data."""

    def run_counting(self, job, engine_cls=EtlEngine, **kwargs):
        pulls = []
        original = TableSource.extract

        def counting(self, *args, **kw):
            pulls.append(self.name)
            return original(self, *args, **kw)

        TableSource.extract = counting
        try:
            with pytest.raises(ValidationError, match="static analysis"):
                EtlEngine(check=True, **kwargs).run(job, Instance())
        finally:
            TableSource.extract = original
        assert pulls == []

    def bad_type_job(self):
        job = Job("bad_type")
        s = job.add(TableSource(REL))
        f = job.add(FilterStage([FilterOutput(where="name > 3")]))
        t = job.add(TableTarget(REL))
        job.chain(s, f, t, names=["a", "b"])
        return job

    def dangling_job(self):
        job = Job("dangling")
        s = job.add(TableSource(REL))
        f = job.add(FilterStage([FilterOutput(where="id > 0")]))
        job.link(s, f, name="a")  # filter output dangles
        return job

    def test_bad_type_rejected_statically(self):
        self.run_counting(self.bad_type_job())

    def test_dangling_link_rejected_statically(self):
        self.run_counting(self.dangling_job())

    def test_dead_column_is_a_warning_not_a_rejection(self):
        job = Job("dead")
        s = job.add(TableSource(REL))
        tr = job.add(
            Transformer([
                OutputLink([
                    ("id", "id"), ("name", "name"), ("amt", "amt"),
                    ("waste", "amt * 2"),
                ])
            ])
        )
        t = job.add(TableTarget(REL))
        job.chain(s, tr, t, names=["a", "b"])
        report = analyze_job(job)
        assert [d.code for d in report] == ["ORC020"]
        # warnings never block check=True runs
        data = synthesize_instance([REL], 10)
        targets = run_job(job, data, check=True)
        assert len(targets.dataset("R")) == 10

    def test_ohm_executor_checks_before_running(self):
        from repro.ohm import Filter, OhmGraph, Source, Target

        g = OhmGraph("bad")
        s = g.add(Source(REL))
        f = g.add(Filter("name > 3"))
        t = g.add(Target(REL))
        g.chain(s, f, t, names=["a", "b"])
        with pytest.raises(ValidationError, match="static analysis"):
            OhmExecutor(check=True).run(g, Instance())

    def test_mapping_executor_checks_before_running(self):
        from repro.mapping.model import Mapping, MappingSet, SourceBinding

        tgt = relation("T", ("id", "int", False))
        m = Mapping(
            [SourceBinding("r", REL)], tgt,
            [("id", "UPPER(r.name)")], name="M1",
        )
        with pytest.raises(ValidationError, match="static analysis"):
            MappingExecutor(check=True).execute(
                MappingSet([m]), Instance()
            )


class TestCheckIsTransparent:
    """``check=True`` runs of clean workloads are identical to
    ``check=False`` runs."""

    @pytest.mark.parametrize(
        "name,build,data", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    def test_results_identical(self, name, build, data):
        job = build()
        instance = data(job)
        with_check = run_job(build(), instance, check=True)
        without = run_job(build(), instance, check=False)
        assert with_check.same_bags(without)

    def test_ohm_check_transparent(self):
        graph = compile_job(build_example_job())
        instance = generate_instance(50)
        a = OhmExecutor(check=True).execute(graph, instance)
        b = OhmExecutor(check=False).execute(graph, instance)
        assert a.same_bags(b)


class TestKnobTriad:
    def teardown_method(self):
        set_default_check(None)

    def test_default_off(self):
        assert default_check() is False
        assert EtlEngine().check is False

    def test_setter_wins(self):
        set_default_check(True)
        assert default_check() is True
        assert EtlEngine().check is True
        assert OhmExecutor().check is True
        assert MappingExecutor().check is True

    def test_explicit_kwarg_beats_setter(self):
        set_default_check(True)
        assert EtlEngine(check=False).check is False
        assert resolve_check(False) is False

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert default_check() is True
        monkeypatch.setenv("REPRO_CHECK", "0")
        assert default_check() is False

    def test_env_rejected_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        job = Job("bad")
        s = job.add(TableSource(REL))
        f = job.add(FilterStage([FilterOutput(where="name > 3")]))
        t = job.add(TableTarget(REL))
        job.chain(s, f, t, names=["a", "b"])
        with pytest.raises(ValidationError, match="static analysis"):
            run_job(job, Instance())
