"""Mapping model unit tests: well-formedness, introspection, rendering."""

import pytest

from repro.errors import MappingError
from repro.expr.parser import parse
from repro.mapping import Mapping, MappingSet, SourceBinding
from repro.schema import relation


@pytest.fixture
def customers():
    return relation(
        "Customers", ("customerID", "int", False), ("name", "varchar"),
        ("age", "int"),
    )


@pytest.fixture
def accounts():
    return relation(
        "Accounts", ("customerID", "int", False), ("balance", "float"),
        ("type", "varchar"),
    )


@pytest.fixture
def target():
    return relation(
        "Out", ("customerID", "int"), ("name", "varchar"),
        ("totalBalance", "float"),
    )


def m1(customers, accounts, target, **kwargs):
    return Mapping(
        [SourceBinding("c", customers), SourceBinding("a", accounts)],
        target,
        [
            ("customerID", "c.customerID"),
            ("name", "c.name"),
            ("totalBalance", "SUM(a.balance)"),
        ],
        where="a.type <> 'L' AND c.customerID = a.customerID",
        group_by=["c.customerID", "c.name"],
        **kwargs,
    )


class TestWellFormedness:
    def test_valid_mapping_validates(self, customers, accounts, target):
        m1(customers, accounts, target).validate()

    def test_needs_sources(self, target):
        with pytest.raises(MappingError):
            Mapping([], target, [("customerID", "1")])

    def test_duplicate_variable_rejected(self, customers, target):
        with pytest.raises(MappingError):
            Mapping(
                [SourceBinding("c", customers), SourceBinding("c", customers)],
                target,
                [("customerID", "c.customerID")],
            )

    def test_duplicate_derivation_rejected(self, customers, target):
        with pytest.raises(MappingError):
            Mapping(
                [SourceBinding("c", customers)],
                target,
                [("customerID", "c.customerID"), ("customerID", "c.age")],
            )

    def test_aggregate_requires_group_by(self, customers, accounts, target):
        with pytest.raises(MappingError):
            Mapping(
                [SourceBinding("a", accounts)],
                target,
                [("totalBalance", "SUM(a.balance)")],
            )

    def test_non_aggregate_derivation_must_be_group_key(
        self, customers, accounts, target
    ):
        with pytest.raises(MappingError):
            Mapping(
                [SourceBinding("a", accounts)],
                target,
                [
                    ("customerID", "a.customerID"),
                    ("totalBalance", "SUM(a.balance)"),
                ],
                group_by=["a.type"],  # customerID is not a key
            )

    def test_underived_non_nullable_target_rejected(self, customers):
        strict = relation("S", ("must", "int", False))
        with pytest.raises(MappingError):
            Mapping(
                [SourceBinding("c", customers)], strict, [],
                reference=None,
            )

    def test_opaque_requires_reference(self, customers, target):
        with pytest.raises(MappingError):
            Mapping([SourceBinding("c", customers)], target, [])

    def test_validate_checks_types(self, customers, target):
        bad = Mapping(
            [SourceBinding("c", customers)],
            target,
            [("customerID", "c.name")],  # STRING into int column
        )
        with pytest.raises(MappingError):
            bad.validate()

    def test_validate_checks_where_is_boolean(self, customers, target):
        bad = Mapping(
            [SourceBinding("c", customers)],
            target,
            [("customerID", "c.customerID")],
            where="c.age + 1",
        )
        with pytest.raises(Exception):
            bad.validate()


class TestIntrospection:
    def test_join_and_filter_conjuncts(self, customers, accounts, target):
        mapping = m1(customers, accounts, target)
        assert mapping.join_conjuncts() == [
            parse("c.customerID = a.customerID")
        ]
        assert mapping.filter_conjuncts_of("a") == [parse("a.type <> 'L'")]
        assert mapping.filter_conjuncts_of("c") == []

    def test_unqualified_reference_resolves_to_unique_holder(
        self, customers, accounts, target
    ):
        mapping = Mapping(
            [SourceBinding("c", customers), SourceBinding("a", accounts)],
            target,
            [("customerID", "c.customerID")],
            where="balance > 0",  # only Accounts has balance
        )
        assert mapping.filter_conjuncts_of("a") == [parse("balance > 0")]

    def test_ambiguous_unqualified_reference_raises(
        self, customers, accounts, target
    ):
        mapping = Mapping(
            [SourceBinding("c", customers), SourceBinding("a", accounts)],
            target,
            [("customerID", "c.customerID")],
            where="customerID > 0",  # both c and a have customerID
        )
        with pytest.raises(MappingError):
            mapping.join_conjuncts()

    def test_derivations_of(self, customers, accounts, target):
        mapping = m1(customers, accounts, target)
        assert [c for c, _ in mapping.derivations_of("c")] == [
            "customerID", "name",
        ]
        assert mapping.derivations_of("a") == []

    def test_grouping_flags(self, customers, accounts, target):
        assert m1(customers, accounts, target).is_grouping
        plain = Mapping(
            [SourceBinding("c", customers)], target,
            [("customerID", "c.customerID")],
        )
        assert not plain.is_grouping

    def test_opaque_flag(self, customers, target):
        opaque = Mapping(
            [SourceBinding("c", customers)], target, [], reference="box"
        )
        assert opaque.is_opaque


class TestRendering:
    def test_query_notation_shape(self, customers, accounts, target):
        text = m1(customers, accounts, target, name="M1").to_query_notation()
        assert text.startswith("M1:")
        assert "for c in Customers, a in Accounts" in text
        assert "where" in text and "group by" in text
        assert "exists t in Out" in text
        assert "t.totalBalance = SUM(a.balance)" in text

    def test_logical_notation_shape(self, customers, accounts, target):
        text = m1(customers, accounts, target).to_logical_notation()
        assert "∀" in text and "∃" in text and "→" in text
        assert "Customers(c)" in text

    def test_opaque_rendering(self, customers, target):
        opaque = Mapping(
            [SourceBinding("c", customers)], target, [], reference="cleanse"
        )
        assert "cleanse" in opaque.to_query_notation()
        assert "⟦cleanse⟧" in opaque.to_logical_notation()


class TestMappingSet:
    def _set(self, customers, accounts, target):
        intermediate = relation(
            "Mid", ("customerID", "int"), ("name", "varchar"),
            ("totalBalance", "float"),
        )
        first = m1(customers, accounts, intermediate, name="M1")
        second = Mapping(
            [SourceBinding("d", intermediate)],
            target,
            [("customerID", "d.customerID"), ("name", "d.name"),
             ("totalBalance", "d.totalBalance")],
            where="d.totalBalance > 100000",
            name="M2",
        )
        return MappingSet([second, first])  # deliberately out of order

    def test_dependency_order(self, customers, accounts, target):
        ordered = self._set(customers, accounts, target).in_dependency_order()
        assert [m.name for m in ordered] == ["M1", "M2"]

    def test_intermediate_and_final_names(self, customers, accounts, target):
        mappings = self._set(customers, accounts, target)
        assert mappings.intermediate_relation_names() == ["Mid"]
        assert mappings.final_target_names() == ["Out"]
        assert mappings.base_relation_names() == ["Customers", "Accounts"]

    def test_producers_and_consumers(self, customers, accounts, target):
        mappings = self._set(customers, accounts, target)
        assert [m.name for m in mappings.producers_of("Mid")] == ["M1"]
        assert [m.name for m in mappings.consumers_of("Mid")] == ["M2"]

    def test_by_name(self, customers, accounts, target):
        mappings = self._set(customers, accounts, target)
        assert mappings.by_name("M1").name == "M1"
        with pytest.raises(MappingError):
            mappings.by_name("M9")

    def test_cycle_detected(self, customers, target):
        a = relation("A", ("x", "int"))
        b = relation("B", ("x", "int"))
        cyc = MappingSet(
            [
                Mapping([SourceBinding("a", a)], b, [("x", "a.x")], name="AB"),
                Mapping([SourceBinding("b", b)], a, [("x", "b.x")], name="BA"),
            ]
        )
        with pytest.raises(MappingError):
            cyc.in_dependency_order()
