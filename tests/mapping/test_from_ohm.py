"""OHM→mappings tests: composition, materialization points, the paper's
section V-B behaviours."""

import pytest

from repro.compile import compile_job
from repro.data.dataset import Dataset, Instance
from repro.etl import run_job
from repro.mapping import execute_mappings, ohm_to_mappings
from repro.ohm import (
    BasicProject,
    Filter,
    Group,
    Join,
    OhmGraph,
    Project,
    Source,
    Split,
    Target,
    Union,
    execute,
)
from repro.schema import relation
from repro.workloads import build_example_job, generate_instance


@pytest.fixture
def rel():
    return relation("R", ("id", "int", False), ("v", "float", False),
                    ("kind", "varchar"))


def rel_instance(rel, n=6):
    rows = [
        {"id": i, "v": float(i * 10), "kind": "ab"[i % 2]} for i in range(n)
    ]
    return Instance([Dataset(rel, rows)])


def check_equivalence(graph, instance):
    mappings = ohm_to_mappings(graph)
    assert execute_mappings(mappings, instance).same_bags(
        execute(graph, instance)
    )
    return mappings


class TestComposition:
    def test_filter_project_chain_composes_to_one_mapping(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        f = g.add(Filter("v > 10"))
        p = g.add(Project([("id", "id"), ("doubled", "v * 2")]))
        t = g.add(Target(relation("Out", ("id", "int"), ("doubled", "float"))))
        g.chain(s, f, p, t)
        mappings = check_equivalence(g, rel_instance(rel))
        assert len(mappings) == 1
        (m,) = mappings
        assert dict(m.derivations)["doubled"].to_sql() == "(r.v * 2)"

    def test_filter_after_project_unfolds_derivation(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        p = g.add(Project([("doubled", "v * 2")]))
        f = g.add(Filter("doubled > 50"))
        t = g.add(Target(relation("Out", ("doubled", "float"))))
        g.chain(s, p, f, t)
        mappings = check_equivalence(g, rel_instance(rel))
        (m,) = mappings
        # the condition is expressed over the source, not the view
        assert m.where.to_sql() == "((r.v * 2) > 50)"

    def test_join_composes_both_sides(self):
        left = relation("L", ("id", "int", False), ("v", "float"))
        right = relation("Rt", ("id", "int", False), ("w", "float"))
        g = OhmGraph()
        s1 = g.add(Source(left))
        s2 = g.add(Source(right))
        f = g.add(Filter("w > 1"))
        j = g.add(Join("A.id = B.id"))
        bp = g.add(BasicProject([("id", "A.id"), ("v", "v"), ("w", "w")]))
        t = g.add(Target(relation("Out", ("id", "int"), ("v", "float"),
                                  ("w", "float"))))
        g.connect(s1, j, name="A")
        g.connect(s2, f, name="Rin")
        g.connect(f, j, dst_port=1, name="B")
        g.chain(j, bp, t)
        mappings = ohm_to_mappings(g)
        assert len(mappings) == 1
        (m,) = mappings
        assert len(m.sources) == 2
        conjuncts = {c.to_sql() for c in m.where_conjuncts()}
        assert "(r.w > 1)" in conjuncts
        assert "(l.id = r.id)" in conjuncts
        instance = Instance([
            Dataset(left, [{"id": 1, "v": 5.0}]),
            Dataset(right, [{"id": 1, "w": 7.0}, {"id": 1, "w": 0.5}]),
        ])
        assert execute_mappings(mappings, instance).same_bags(
            execute(g, instance)
        )


class TestMaterializationPoints:
    def test_split_materializes_at_incoming_edge(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        f = g.add(Filter("v > 10"))
        sp = g.add(Split())
        t1 = g.add(Target(rel.renamed("A")))
        t2 = g.add(Target(rel.renamed("B")))
        g.connect(s, f, name="in")
        g.connect(f, sp, name="MatPoint")
        g.connect(sp, t1, src_port=0)
        g.connect(sp, t2, src_port=1)
        mappings = check_equivalence(g, rel_instance(rel))
        assert len(mappings) == 3
        assert mappings.intermediate_relation_names() == ["MatPoint"]

    def test_split_directly_after_source_adds_no_mapping(self, rel):
        # nothing composed yet: no intermediate copy mapping is emitted
        g = OhmGraph()
        s = g.add(Source(rel))
        sp = g.add(Split())
        t1 = g.add(Target(rel.renamed("A")))
        t2 = g.add(Target(rel.renamed("B")))
        g.connect(s, sp)
        g.connect(sp, t1, src_port=0)
        g.connect(sp, t2, src_port=1)
        mappings = check_equivalence(g, rel_instance(rel))
        assert len(mappings) == 2
        assert mappings.intermediate_relation_names() == []

    def test_filter_after_group_materializes(self, rel):
        # "we cannot compose two mappings that involve grouping and
        # aggregation": a filter over aggregate output starts a new mapping
        g = OhmGraph()
        s = g.add(Source(rel))
        gr = g.add(Group(["kind"], [("total", "SUM(v)")]))
        f = g.add(Filter("total > 30"))
        t = g.add(Target(relation("Out", ("kind", "varchar"),
                                  ("total", "float"))))
        g.connect(s, gr, name="in")
        g.connect(gr, f, name="Grouped")
        g.connect(f, t, name="out")
        mappings = check_equivalence(g, rel_instance(rel))
        assert len(mappings) == 2
        assert mappings.intermediate_relation_names() == ["Grouped"]
        first, second = mappings.in_dependency_order()
        assert first.is_grouping
        assert second.where.to_sql() == "(g.total > 30)"

    def test_rename_after_group_still_composes(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        gr = g.add(Group(["kind"], [("total", "SUM(v)")]))
        bp = g.add(BasicProject([("category", "kind"), ("sum_v", "total")]))
        t = g.add(Target(relation("Out", ("category", "varchar"),
                                  ("sum_v", "float"))))
        g.chain(s, gr, bp, t)
        mappings = check_equivalence(g, rel_instance(rel))
        assert len(mappings) == 1  # BASIC PROJECT composed through

    def test_second_group_materializes(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        g1 = g.add(Group(["kind", "id"], [("total", "SUM(v)")]))
        g2 = g.add(Group(["kind"], [("m", "MAX(total)")]))
        t = g.add(Target(relation("Out", ("kind", "varchar"), ("m", "float"))))
        g.connect(s, g1, name="a")
        g.connect(g1, g2, name="Mid")
        g.connect(g2, t, name="b")
        mappings = check_equivalence(g, rel_instance(rel))
        assert len(mappings) == 2


class TestUnions:
    def test_union_emits_mapping_per_branch(self, rel):
        other = rel.renamed("R2")
        g = OhmGraph()
        s1 = g.add(Source(rel))
        s2 = g.add(Source(other))
        u = g.add(Union())
        t = g.add(Target(rel.renamed("Out")))
        g.connect(s1, u, dst_port=0)
        g.connect(s2, u, dst_port=1)
        g.connect(u, t, name="U")
        mappings = ohm_to_mappings(g)
        # two mappings into the union edge + the copy to the target is
        # composed into... the union target edge IS consumed by target
        producers = mappings.producers_of("U")
        assert len(producers) == 2
        instance = Instance([
            Dataset(rel, [{"id": 1, "v": 1.0, "kind": "a"}]),
            Dataset(other, [{"id": 2, "v": 2.0, "kind": "b"}]),
        ])
        assert execute_mappings(mappings, instance).same_bags(
            execute(g, instance)
        )


class TestOuterJoinOpacity:
    def test_left_join_becomes_opaque_mapping(self):
        left = relation("L", ("id", "int", False), ("v", "float"))
        right = relation("Rt", ("id", "int", False), ("w", "float"))
        g = OhmGraph()
        s1 = g.add(Source(left))
        s2 = g.add(Source(right))
        j = g.add(Join("A.id = B.id", kind="left"))
        t = g.add(Target(relation("Out", ("A.id", "int"), ("v", "float"),
                                  ("B.id", "int"), ("w", "float"))))
        g.connect(s1, j, name="A")
        g.connect(s2, j, dst_port=1, name="B")
        g.connect(j, t, name="out")
        mappings = ohm_to_mappings(g)
        assert any(m.is_opaque for m in mappings)


class TestPaperScenarios:
    def test_example_job_gives_three_mappings(self):
        graph = compile_job(build_example_job())
        mappings = ohm_to_mappings(graph)
        assert mappings.names == ["M1", "M2", "M3"]
        assert mappings.intermediate_relation_names() == ["DSLink10"]

    def test_unknown_scenario_gives_five_mappings(self):
        graph = compile_job(build_example_job(custom_after_join=True))
        mappings = ohm_to_mappings(graph)
        assert len(mappings) == 5
        opaque = [m for m in mappings if m.is_opaque]
        assert len(opaque) == 1
        assert opaque[0].reference == "AuditBalances"
        # both black-box boundary edges are materialization points
        assert set(mappings.intermediate_relation_names()) == {
            "DSLink5", "DSLink6", "DSLink10",
        }

    def test_example_semantics_three_ways(self):
        job = build_example_job()
        graph = compile_job(job)
        mappings = ohm_to_mappings(graph)
        instance = generate_instance(60)
        etl = run_job(job, instance)
        assert execute(graph, instance).same_bags(etl)
        assert execute_mappings(mappings, instance).same_bags(etl)
