"""First-class mapping composition tests (paper section V-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compile import compile_job
from repro.data.dataset import Dataset, Instance
from repro.errors import CompositionError
from repro.mapping import (
    Mapping,
    MappingExecutor,
    MappingSet,
    SourceBinding,
    can_compose,
    compose_all,
    compose_mappings,
    execute_mappings,
    ohm_to_mappings,
)
from repro.schema import relation
from repro.workloads import build_example_job, build_chain_job, generate_instance


@pytest.fixture
def a_rel():
    return relation("A", ("id", "int", False), ("v", "float", False))


@pytest.fixture
def b_rel():
    return relation("B", ("id", "int", False), ("u", "float", False))


@pytest.fixture
def mid():
    return relation("Mid", ("id", "int"), ("w", "float"))


@pytest.fixture
def target():
    return relation("T", ("id", "int"), ("w", "float"))


def m_first(a_rel, mid, **kwargs):
    return Mapping(
        [SourceBinding("a", a_rel)], mid,
        [("id", "a.id"), ("w", "a.v * 2")],
        where="a.v > 1", name="M1", **kwargs,
    )


def m_second(mid, target, **kwargs):
    return Mapping(
        [SourceBinding("d", mid)], target,
        [("id", "d.id"), ("w", "d.w")],
        where="d.w < 100", name="M2", **kwargs,
    )


def a_data(a_rel, values):
    return Dataset(
        a_rel, [{"id": i, "v": float(v)} for i, v in enumerate(values)]
    )


class TestBasicComposition:
    def test_unfolds_derivations_into_predicates(self, a_rel, mid, target):
        composed = compose_mappings(m_first(a_rel, mid), m_second(mid, target))
        conjuncts = {c.to_sql() for c in composed.where_conjuncts()}
        assert "((a.v * 2) < 100)" in conjuncts
        assert "(a.v > 1)" in conjuncts
        assert composed.target.name == "T"
        assert composed.source_relation_names == ["A"]

    def test_semantics_equal_sequential_execution(self, a_rel, mid, target):
        first, second = m_first(a_rel, mid), m_second(mid, target)
        composed = compose_mappings(first, second)
        instance = Instance([a_data(a_rel, [2, 60, 0.5, 49.5])])
        sequential = execute_mappings(MappingSet([first, second]), instance)
        direct = MappingExecutor().execute_mapping(composed, instance)
        assert direct.same_bag(sequential.dataset("T"))

    @given(
        values=st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False,
                      width=32),
            max_size=15,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_composition_preserves_semantics(self, values):
        a_rel = relation("A", ("id", "int", False), ("v", "float", False))
        mid = relation("Mid", ("id", "int"), ("w", "float"))
        target = relation("T", ("id", "int"), ("w", "float"))
        first, second = m_first(a_rel, mid), m_second(mid, target)
        composed = compose_mappings(first, second)
        instance = Instance([a_data(a_rel, [round(v, 3) for v in values])])
        sequential = execute_mappings(MappingSet([first, second]), instance)
        direct = MappingExecutor().execute_mapping(composed, instance)
        assert direct.same_bag(sequential.dataset("T"))

    def test_second_mapping_with_extra_sources(self, a_rel, b_rel, mid, target):
        # composing through a join in the outer mapping
        wide = relation("W", ("id", "int"), ("w", "float"), ("u", "float"))
        second = Mapping(
            [SourceBinding("d", mid), SourceBinding("b", b_rel)],
            wide,
            [("id", "d.id"), ("w", "d.w"), ("u", "b.u")],
            where="d.id = b.id",
            name="J",
        )
        composed = compose_mappings(m_first(a_rel, mid), second)
        assert sorted(composed.source_relation_names) == ["A", "B"]
        instance = Instance([
            a_data(a_rel, [2, 60]),
            Dataset(b_rel, [{"id": 0, "u": 7.0}, {"id": 1, "u": 8.0}]),
        ])
        sequential = execute_mappings(
            MappingSet([m_first(a_rel, mid), second]), instance
        )
        direct = MappingExecutor().execute_mapping(composed, instance)
        assert direct.same_bag(sequential.dataset("W"))

    def test_variable_collision_renamed(self, a_rel, mid, target):
        # both mappings use the variable name 'a'
        first = Mapping(
            [SourceBinding("a", a_rel)], mid,
            [("id", "a.id"), ("w", "a.v")], name="F",
        )
        other = relation("O", ("id", "int", False), ("z", "float", False))
        second = Mapping(
            [SourceBinding("d", mid), SourceBinding("a", other)],
            relation("T2", ("id", "int"), ("z", "float")),
            [("id", "d.id"), ("z", "a.z")],
            where="d.id = a.id",
            name="S",
        )
        composed = compose_mappings(first, second)
        assert len({b.var for b in composed.sources}) == 2
        composed.validate()


class TestGroupingRestriction:
    def grouping_mapping(self, a_rel, mid):
        return Mapping(
            [SourceBinding("a", a_rel)], mid,
            [("id", "a.id"), ("w", "SUM(a.v)")],
            group_by=["a.id"], name="G",
        )

    def test_filter_after_grouping_refused(self, a_rel, mid, target):
        with pytest.raises(CompositionError):
            compose_mappings(
                self.grouping_mapping(a_rel, mid), m_second(mid, target)
            )

    def test_rename_after_grouping_allowed(self, a_rel, mid):
        renamed = relation("R", ("ident", "int"), ("total", "float"))
        second = Mapping(
            [SourceBinding("d", mid)], renamed,
            [("ident", "d.id"), ("total", "d.w")], name="Rn",
        )
        composed = compose_mappings(self.grouping_mapping(a_rel, mid), second)
        assert composed.is_grouping
        assert dict(composed.derivations)["total"].to_sql() == "SUM(a.v)"
        instance = Instance([a_data(a_rel, [1, 2, 3])])
        sequential = execute_mappings(
            MappingSet([self.grouping_mapping(a_rel, mid), second]), instance
        )
        direct = MappingExecutor().execute_mapping(composed, instance)
        assert direct.same_bag(sequential.dataset("R"))

    def test_grouping_in_outer_mapping_is_fine(self, a_rel, mid):
        # first projects, second groups: composable (grouping is not
        # being *read through*, it is being applied)
        first = m_first(a_rel, mid)
        second = Mapping(
            [SourceBinding("d", mid)],
            relation("S", ("id", "int"), ("n", "int")),
            [("id", "d.id"), ("n", "COUNT(*)")],
            group_by=["d.id"], name="C",
        )
        composed = compose_mappings(first, second)
        assert composed.is_grouping


class TestRefusals:
    def test_opaque_refused(self, a_rel, mid, target):
        opaque = Mapping(
            [SourceBinding("a", a_rel)], mid, [], reference="box"
        )
        with pytest.raises(CompositionError):
            compose_mappings(opaque, m_second(mid, target))
        assert not can_compose(opaque, m_second(mid, target))

    def test_unrelated_mappings_refused(self, a_rel, b_rel, mid, target):
        unrelated = Mapping(
            [SourceBinding("b", b_rel)], target,
            [("id", "b.id"), ("w", "b.u")], name="U",
        )
        with pytest.raises(CompositionError):
            compose_mappings(m_first(a_rel, mid), unrelated)

    def test_self_join_on_intermediate_refused(self, a_rel, mid):
        second = Mapping(
            [SourceBinding("d1", mid), SourceBinding("d2", mid)],
            relation("P", ("l", "int"), ("r", "int")),
            [("l", "d1.id"), ("r", "d2.id")],
            where="d1.id < d2.id",
            name="Pairs",
        )
        with pytest.raises(CompositionError):
            compose_mappings(m_first(a_rel, mid), second)

    def test_underived_column_read_refused(self, a_rel, mid, target):
        narrow = Mapping(
            [SourceBinding("a", a_rel)], mid, [("id", "a.id")], name="N"
        )
        with pytest.raises(CompositionError):
            compose_mappings(narrow, m_second(mid, target))


class TestComposeAll:
    def test_chain_collapses_to_single_mapping(self):
        graph = compile_job(build_chain_job(8))
        mappings = ohm_to_mappings(graph)
        folded = compose_all(mappings)
        assert len(folded) == 1

    def test_grouping_boundary_survives(self):
        mappings = ohm_to_mappings(compile_job(build_example_job()))
        folded = compose_all(mappings)
        # M1 groups: M2/M3 cannot fold into it
        assert len(folded) == 3
        instance = generate_instance(30)
        assert execute_mappings(folded, instance).same_bags(
            execute_mappings(mappings, instance)
        )
