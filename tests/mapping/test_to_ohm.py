"""Mappings→OHM tests: Figure 9 template instantiation + pruning, the
SPLIT/UNION assembly, FastTrack placeholders."""

import pytest

from repro.compile import compile_job
from repro.data.dataset import Dataset, Instance
from repro.errors import MappingError
from repro.etl import run_job
from repro.expr.ast import TRUE
from repro.mapping import (
    Mapping,
    MappingSet,
    SourceBinding,
    execute_mappings,
    ohm_to_mappings,
)
from repro.mapping.to_ohm import mappings_to_ohm
from repro.ohm import execute
from repro.schema import relation
from repro.workloads import build_example_job, generate_instance


@pytest.fixture
def customers():
    return relation(
        "Customers", ("customerID", "int", False), ("name", "varchar"),
        ("age", "int"),
    )


@pytest.fixture
def accounts():
    return relation(
        "Accounts", ("customerID", "int", False),
        ("balance", "float", False), ("type", "varchar"),
    )


@pytest.fixture
def instance(customers, accounts):
    return Instance(
        [
            Dataset(customers, [
                {"customerID": 1, "name": "ada", "age": 25},
                {"customerID": 2, "name": "ben", "age": 65},
            ]),
            Dataset(accounts, [
                {"customerID": 1, "balance": 10.0, "type": "S"},
                {"customerID": 1, "balance": 20.0, "type": "L"},
                {"customerID": 2, "balance": 30.0, "type": "S"},
            ]),
        ]
    )


def processing_kinds(graph):
    return [k for k in graph.kinds_in_order() if k not in ("SOURCE", "TARGET")]


def check(mappings, instance):
    graph = mappings_to_ohm(mappings)
    assert execute(graph, instance).same_bags(
        execute_mappings(mappings, instance)
    )
    return graph


class TestTemplatePruning:
    def test_projection_only_mapping(self, customers, instance):
        target = relation("Out", ("name", "varchar"))
        mapping = Mapping(
            [SourceBinding("c", customers)], target, [("name", "c.name")]
        )
        graph = check(MappingSet([mapping]), instance)
        # JOIN/GROUP/FILTER pruned away; only the projection remains
        assert processing_kinds(graph) == ["BASIC PROJECT"]

    def test_filter_only_mapping(self, customers, instance):
        # M2's shape: "the simple DSLink10 -> FILTER -> BASIC PROJECT ->
        # BigCustomers flow"
        target = relation("Out", ("customerID", "int"), ("name", "varchar"))
        mapping = Mapping(
            [SourceBinding("c", customers)], target,
            [("customerID", "c.customerID"), ("name", "c.name")],
            where="c.age > 30",
        )
        graph = check(MappingSet([mapping]), instance)
        assert processing_kinds(graph) == ["FILTER", "BASIC PROJECT"]

    def test_complex_derivation_uses_general_project(self, customers, instance):
        target = relation("Out", ("shout", "varchar"))
        mapping = Mapping(
            [SourceBinding("c", customers)], target,
            [("shout", "UPPER(c.name)")],
        )
        graph = check(MappingSet([mapping]), instance)
        assert "PROJECT" in processing_kinds(graph)

    def test_join_mapping(self, customers, accounts, instance):
        target = relation("Out", ("name", "varchar"), ("balance", "float"))
        mapping = Mapping(
            [SourceBinding("c", customers), SourceBinding("a", accounts)],
            target,
            [("name", "c.name"), ("balance", "a.balance")],
            where="c.customerID = a.customerID AND a.type = 'S'",
        )
        graph = check(MappingSet([mapping]), instance)
        kinds = processing_kinds(graph)
        assert "JOIN" in kinds
        assert "FILTER" in kinds  # the single-source predicate on a
        # the join condition was placed on the JOIN operator
        (join,) = graph.operators_of_kind("JOIN")
        assert "customerID" in join.condition.to_sql()

    def test_grouping_mapping(self, customers, accounts, instance):
        target = relation(
            "Out", ("customerID", "int"), ("total", "float")
        )
        mapping = Mapping(
            [SourceBinding("a", accounts)], target,
            [("customerID", "a.customerID"), ("total", "SUM(a.balance)")],
            group_by=["a.customerID"],
        )
        graph = check(MappingSet([mapping]), instance)
        assert "GROUP" in processing_kinds(graph)

    def test_three_way_join(self, customers, accounts, instance):
        extra = relation("Extra", ("customerID", "int", False),
                         ("flag", "varchar"))
        instance.add(Dataset(extra, [
            {"customerID": 1, "flag": "y"},
            {"customerID": 2, "flag": "n"},
        ]))
        target = relation("Out", ("name", "varchar"), ("flag", "varchar"),
                          ("balance", "float"))
        mapping = Mapping(
            [SourceBinding("c", customers), SourceBinding("a", accounts),
             SourceBinding("e", extra)],
            target,
            [("name", "c.name"), ("flag", "e.flag"),
             ("balance", "a.balance")],
            where="c.customerID = a.customerID AND "
                  "c.customerID = e.customerID",
        )
        graph = check(MappingSet([mapping]), instance)
        assert processing_kinds(graph).count("JOIN") == 2


class TestAssembly:
    def test_shared_output_gets_split(self, customers, instance):
        mid = relation("Mid", ("customerID", "int"), ("name", "varchar"))
        m1 = Mapping(
            [SourceBinding("c", customers)], mid,
            [("customerID", "c.customerID"), ("name", "c.name")], name="M1",
        )
        m2 = Mapping(
            [SourceBinding("d", mid)], relation("A", ("name", "varchar")),
            [("name", "d.name")], where="d.customerID = 1", name="M2",
        )
        m3 = Mapping(
            [SourceBinding("d", mid)], relation("B", ("name", "varchar")),
            [("name", "d.name")], where="d.customerID = 2", name="M3",
        )
        graph = check(MappingSet([m1, m2, m3]), instance)
        assert len(graph.operators_of_kind("SPLIT")) == 1

    def test_shared_target_gets_union(self, customers, instance):
        target = relation("T", ("name", "varchar"))
        a = Mapping([SourceBinding("c", customers)], target,
                    [("name", "c.name")], where="c.customerID = 1", name="A")
        b = Mapping([SourceBinding("c", customers)], target,
                    [("name", "c.name")], where="c.customerID = 2", name="B")
        graph = check(MappingSet([a, b]), instance)
        assert len(graph.operators_of_kind("UNION")) == 1
        # the shared base relation also needs a SPLIT
        assert len(graph.operators_of_kind("SPLIT")) == 1

    def test_opaque_mapping_becomes_unknown(self, customers, instance):
        target = relation("T", ("name", "varchar"))
        opaque = Mapping(
            [SourceBinding("c", customers)], target, [],
            reference="blackbox",
            executor=lambda inputs: [
                {"name": r["name"]} for r in inputs[0]
            ],
        )
        graph = check(MappingSet([opaque]), instance)
        assert processing_kinds(graph) == ["UNKNOWN"]


class TestFastTrackPlaceholders:
    def test_missing_join_predicate_marks_placeholder(self, customers, accounts):
        # "FastTrack ... detects that the mapping requires a join and
        # creates an empty join operation (no join predicate is created)"
        target = relation("T", ("name", "varchar"), ("balance", "float"))
        mapping = Mapping(
            [SourceBinding("c", customers), SourceBinding("a", accounts)],
            target,
            [("name", "c.name"), ("balance", "a.balance")],
        )
        graph = mappings_to_ohm(MappingSet([mapping]))
        (join,) = graph.operators_of_kind("JOIN")
        assert join.condition == TRUE
        assert "placeholder" in join.annotations

    def test_annotations_propagate_to_operators(self, customers):
        target = relation("T", ("name", "varchar"))
        mapping = Mapping(
            [SourceBinding("c", customers)], target, [("name", "c.name")],
            where="c.age > 30",
            annotations={"rule": "only adults, per compliance"},
        )
        graph = mappings_to_ohm(MappingSet([mapping]))
        annotated = [
            op for op in graph.operators if "rule" in op.annotations
        ]
        assert annotated  # the business rule landed on operators


class TestRoundTripShape:
    def test_example_round_trip_restores_figure5_shape(self):
        # "The resulting OHM for this simple example has (not
        # surprisingly) the same shape as the one created from the ETL job"
        job = build_example_job()
        forward = compile_job(job)
        mappings = ohm_to_mappings(forward)
        backward = mappings_to_ohm(mappings)
        assert sorted(processing_kinds(backward)) == sorted(
            processing_kinds(forward)
        )
        instance = generate_instance(40)
        assert execute(backward, instance).same_bags(run_job(job, instance))
