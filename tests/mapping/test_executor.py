"""Mapping executor tests: direct interpretation of mapping formulas."""

import pytest

from repro.data.dataset import Dataset, Instance
from repro.errors import ExecutionError
from repro.mapping import Mapping, MappingExecutor, MappingSet, SourceBinding, execute_mappings
from repro.schema import relation


@pytest.fixture
def customers():
    return relation(
        "Customers", ("customerID", "int", False), ("name", "varchar")
    )


@pytest.fixture
def accounts():
    return relation(
        "Accounts", ("customerID", "int", False), ("balance", "float", False),
        ("type", "varchar"),
    )


@pytest.fixture
def instance(customers, accounts):
    return Instance(
        [
            Dataset(customers, [
                {"customerID": 1, "name": "ada"},
                {"customerID": 2, "name": "ben"},
                {"customerID": 3, "name": "cleo"},
            ]),
            Dataset(accounts, [
                {"customerID": 1, "balance": 10.0, "type": "S"},
                {"customerID": 1, "balance": 20.0, "type": "L"},
                {"customerID": 2, "balance": 30.0, "type": "S"},
            ]),
        ]
    )


class TestSingleMapping:
    def test_projection_mapping(self, customers, instance):
        target = relation("Names", ("name", "varchar"))
        mapping = Mapping(
            [SourceBinding("c", customers)], target, [("name", "c.name")]
        )
        result = MappingExecutor().execute_mapping(mapping, instance)
        assert sorted(result.column("name")) == ["ada", "ben", "cleo"]

    def test_filtered_join_mapping(self, customers, accounts, instance):
        target = relation("T", ("name", "varchar"), ("balance", "float"))
        mapping = Mapping(
            [SourceBinding("c", customers), SourceBinding("a", accounts)],
            target,
            [("name", "c.name"), ("balance", "a.balance")],
            where="c.customerID = a.customerID AND a.type = 'S'",
        )
        result = MappingExecutor().execute_mapping(mapping, instance)
        assert sorted(
            (r["name"], r["balance"]) for r in result
        ) == [("ada", 10.0), ("ben", 30.0)]

    def test_grouping_mapping(self, customers, accounts, instance):
        target = relation("T", ("name", "varchar"), ("total", "float"),
                          ("n", "int"))
        mapping = Mapping(
            [SourceBinding("c", customers), SourceBinding("a", accounts)],
            target,
            [("name", "c.name"), ("total", "SUM(a.balance)"),
             ("n", "COUNT(*)")],
            where="c.customerID = a.customerID",
            group_by=["c.name"],
        )
        result = MappingExecutor().execute_mapping(mapping, instance)
        rows = {r["name"]: r for r in result}
        assert rows["ada"]["total"] == 30.0 and rows["ada"]["n"] == 2
        assert rows["ben"]["total"] == 30.0 and rows["ben"]["n"] == 1
        assert "cleo" not in rows  # no accounts -> no group

    def test_scalar_over_aggregate(self, accounts, instance):
        target = relation("T", ("customerID", "int"), ("scaled", "float"))
        mapping = Mapping(
            [SourceBinding("a", accounts)],
            target,
            [("customerID", "a.customerID"),
             ("scaled", "SUM(a.balance) / 10")],
            group_by=["a.customerID"],
        )
        result = MappingExecutor().execute_mapping(mapping, instance)
        rows = {r["customerID"]: r["scaled"] for r in result}
        assert rows[1] == 3.0

    def test_underived_target_columns_are_null(self, customers, instance):
        target = relation("T", ("name", "varchar"), ("extra", "int"))
        mapping = Mapping(
            [SourceBinding("c", customers)], target, [("name", "c.name")]
        )
        result = MappingExecutor().execute_mapping(mapping, instance)
        assert all(r["extra"] is None for r in result)

    def test_missing_source_relation_raises(self, customers):
        target = relation("T", ("name", "varchar"))
        mapping = Mapping(
            [SourceBinding("c", customers)], target, [("name", "c.name")]
        )
        with pytest.raises(ExecutionError):
            MappingExecutor().execute_mapping(mapping, Instance())


class TestOpaqueMappings:
    def test_executor_callable_runs(self, customers, instance):
        target = relation("T", ("name", "varchar"))
        mapping = Mapping(
            [SourceBinding("c", customers)], target, [],
            reference="shouter",
            executor=lambda inputs: [
                {"name": r["name"].upper()} for r in inputs[0]
            ],
        )
        result = MappingExecutor().execute_mapping(mapping, instance)
        assert sorted(result.column("name")) == ["ADA", "BEN", "CLEO"]

    def test_opaque_without_executor_raises(self, customers, instance):
        target = relation("T", ("name", "varchar"))
        mapping = Mapping(
            [SourceBinding("c", customers)], target, [], reference="box"
        )
        with pytest.raises(ExecutionError):
            MappingExecutor().execute_mapping(mapping, instance)


class TestMappingSets:
    def test_chained_through_intermediate(self, customers, accounts, instance):
        mid = relation("Mid", ("customerID", "int"), ("total", "float"))
        target = relation("Big", ("customerID", "int"), ("total", "float"))
        first = Mapping(
            [SourceBinding("a", accounts)], mid,
            [("customerID", "a.customerID"), ("total", "SUM(a.balance)")],
            group_by=["a.customerID"], name="M1",
        )
        second = Mapping(
            [SourceBinding("d", mid)], target,
            [("customerID", "d.customerID"), ("total", "d.total")],
            where="d.total > 25", name="M2",
        )
        targets, intermediates = MappingExecutor().run(
            MappingSet([first, second]), instance
        )
        assert sorted(targets.dataset("Big").column("customerID")) == [1, 2]
        assert "Mid" in intermediates
        assert targets.names == ["Big"]

    def test_shared_target_unions(self, customers, instance):
        target = relation("T", ("name", "varchar"))
        a = Mapping([SourceBinding("c", customers)], target,
                    [("name", "c.name")], where="c.customerID = 1", name="A")
        b = Mapping([SourceBinding("c", customers)], target,
                    [("name", "c.name")], where="c.customerID = 2", name="B")
        result = execute_mappings(MappingSet([a, b]), instance)
        assert sorted(result.dataset("T").column("name")) == ["ada", "ben"]

    def test_self_join(self, customers, instance):
        # pair every customer with every other (requires two variables
        # over the same relation)
        target = relation("Pairs", ("left", "varchar"), ("right", "varchar"))
        mapping = Mapping(
            [SourceBinding("c1", customers), SourceBinding("c2", customers)],
            target,
            [("left", "c1.name"), ("right", "c2.name")],
            where="c1.customerID < c2.customerID",
        )
        result = MappingExecutor().execute_mapping(mapping, instance)
        assert len(result) == 3
