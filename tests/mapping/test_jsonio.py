"""Mapping JSON external-format tests."""

import pytest

from repro.compile import compile_job
from repro.errors import SerializationError
from repro.mapping import (
    Mapping,
    MappingSet,
    SourceBinding,
    execute_mappings,
    mappings_from_json,
    mappings_to_json,
    ohm_to_mappings,
)
from repro.mapping.jsonio import read_mappings, write_mappings
from repro.schema import relation
from repro.workloads import build_example_job, generate_instance


def example_mappings():
    return ohm_to_mappings(compile_job(build_example_job()))


class TestRoundTrip:
    def test_names_and_structure_survive(self):
        mappings = example_mappings()
        restored = mappings_from_json(mappings_to_json(mappings))
        assert restored.names == mappings.names
        for original, back in zip(mappings, restored):
            assert back.target.name == original.target.name
            assert back.where == original.where
            assert back.group_by == original.group_by
            assert back.derivations == original.derivations
            assert [b.var for b in back.sources] == [
                b.var for b in original.sources
            ]

    def test_semantics_survive(self):
        mappings = example_mappings()
        restored = mappings_from_json(mappings_to_json(mappings))
        instance = generate_instance(40)
        assert execute_mappings(restored, instance).same_bags(
            execute_mappings(mappings, instance)
        )

    def test_rendering_survives(self):
        mappings = example_mappings()
        restored = mappings_from_json(mappings_to_json(mappings))
        assert restored.to_text() == mappings.to_text()

    def test_annotations_survive(self):
        rel = relation("R", ("a", "int"))
        mapping = Mapping(
            [SourceBinding("r", rel)], relation("T", ("a", "int")),
            [("a", "r.a")],
            annotations={"rule": "English text"},
        )
        restored = mappings_from_json(
            mappings_to_json(MappingSet([mapping]))
        )
        assert restored[0].annotations == {"rule": "English text"}

    def test_opaque_round_trips_without_executor(self):
        rel = relation("R", ("a", "int"))
        opaque = Mapping(
            [SourceBinding("r", rel)], relation("T", ("a", "int")), [],
            reference="external-proc", executor=lambda inputs: [],
        )
        restored = mappings_from_json(mappings_to_json(MappingSet([opaque])))
        assert restored[0].is_opaque
        assert restored[0].reference == "external-proc"
        assert restored[0].executor is None

    def test_key_metadata_survives(self):
        rel = relation("R", ("id", "int", False), keys=["id"])
        mapping = Mapping(
            [SourceBinding("r", rel)],
            relation("T", ("id", "int", False), keys=["id"]),
            [("id", "r.id")],
        )
        restored = mappings_from_json(mappings_to_json(MappingSet([mapping])))
        assert restored[0].target.key_names == ("id",)

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "mappings.json")
        mappings = example_mappings()
        write_mappings(mappings, path)
        assert read_mappings(path).names == mappings.names


class TestErrors:
    def test_malformed_json_rejected(self):
        with pytest.raises(SerializationError):
            mappings_from_json("{not json")

    def test_wrong_format_marker_rejected(self):
        with pytest.raises(SerializationError):
            mappings_from_json('{"format": "something-else"}')
