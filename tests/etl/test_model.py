"""Job model unit tests."""

import pytest

from repro.errors import GraphError, ValidationError
from repro.etl import (
    FilterOutput,
    FilterStage,
    Job,
    TableSource,
    TableTarget,
    Transformer,
)
from repro.etl.stages.transform import OutputLink
from repro.expr.functions import DEFAULT_REGISTRY
from repro.schema import relation


@pytest.fixture
def rel():
    return relation("R", ("id", "int", False), ("v", "float"))


class TestJobConstruction:
    def test_stage_names_are_uids(self, rel):
        job = Job("j")
        src = job.add(TableSource(rel, name="my source"))
        assert job.stage("my source") is src

    def test_duplicate_stage_name_rejected(self, rel):
        job = Job("j")
        job.add(TableSource(rel, name="s"))
        with pytest.raises(GraphError):
            job.add(TableTarget(rel, name="s"))

    def test_links_get_dslink_names(self, rel):
        job = Job("j")
        src = job.add(TableSource(rel))
        tgt = job.add(TableTarget(rel.renamed("Out")))
        link = job.link(src, tgt)
        assert link.name.startswith("DSLink")

    def test_explicit_link_names(self, rel):
        job = Job("j")
        src = job.add(TableSource(rel))
        tgt = job.add(TableTarget(rel.renamed("Out")))
        assert job.link(src, tgt, name="DSLink10").name == "DSLink10"

    def test_stages_of_type(self, rel):
        job = Job("j")
        job.add(TableSource(rel))
        job.add(TableTarget(rel.renamed("Out")))
        assert len(job.stages_of_type("TableSource")) == 1

    def test_source_and_target_discovery(self, rel):
        job = Job("j")
        src = job.add(TableSource(rel))
        tgt = job.add(TableTarget(rel.renamed("Out")))
        job.link(src, tgt)
        assert job.source_stages() == [src]
        assert job.target_stages() == [tgt]


class TestPortChecking:
    def test_transformer_output_count_must_match_config(self, rel):
        job = Job("j")
        src = job.add(TableSource(rel))
        transformer = job.add(
            Transformer(
                [OutputLink([("id", "id")]), OutputLink([("v", "v")])],
            )
        )
        tgt = job.add(TableTarget(relation("Out", ("id", "int"))))
        job.link(src, transformer)
        job.link(transformer, tgt)  # only one of two outputs wired
        with pytest.raises(ValidationError):
            job.propagate_schemas()

    def test_filter_output_count_must_match_config(self, rel):
        job = Job("j")
        src = job.add(TableSource(rel))
        f = job.add(FilterStage([FilterOutput("v > 0"), FilterOutput("v < 0")]))
        t1 = job.add(TableTarget(rel.renamed("A")))
        job.link(src, f)
        job.link(f, t1)
        with pytest.raises(ValidationError):
            job.propagate_schemas()


class TestRegistry:
    def test_default_registry_shared(self):
        assert Job("j").registry is DEFAULT_REGISTRY

    def test_job_scoped_registry(self, rel):
        from repro.expr.functions import register
        from repro.schema.types import INTEGER

        scoped = DEFAULT_REGISTRY.child()
        register("JOB_ONLY", lambda x: x + 1, INTEGER, 1, registry=scoped)
        job = Job("j", registry=scoped)
        assert job.registry.knows("JOB_ONLY")
        assert not DEFAULT_REGISTRY.knows("JOB_ONLY")
