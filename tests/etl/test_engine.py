"""ETL runtime engine tests: whole-job execution, link statistics."""

import pytest

from repro.data.dataset import Dataset, Instance
from repro.etl import (
    EtlEngine,
    FilterOutput,
    FilterStage,
    Job,
    JoinStage,
    TableSource,
    TableTarget,
    Transformer,
    run_job,
    run_job_with_links,
)
from repro.schema import relation
from repro.workloads import build_example_job, generate_instance


@pytest.fixture
def rel():
    return relation("R", ("id", "int", False), ("v", "float"))


def simple_job(rel):
    job = Job("simple")
    src = job.add(TableSource(rel))
    f = job.add(FilterStage.single("v > 10", name="big"))
    tgt = job.add(TableTarget(rel.renamed("Out")))
    job.link(src, f, name="DSLink1")
    job.link(f, tgt, name="DSLink2")
    return job


class TestExecution:
    def test_run_returns_targets(self, rel):
        job = simple_job(rel)
        instance = Instance(
            [Dataset(rel, [{"id": 1, "v": 5.0}, {"id": 2, "v": 15.0}])]
        )
        result = run_job(job, instance)
        assert result.dataset("Out").column("id") == [2]

    def test_link_data_and_counts(self, rel):
        job = simple_job(rel)
        instance = Instance(
            [Dataset(rel, [{"id": 1, "v": 5.0}, {"id": 2, "v": 15.0}])]
        )
        engine = EtlEngine()
        _targets, links = engine.run(job, instance)
        assert len(links["DSLink1"]) == 2
        assert len(links["DSLink2"]) == 1
        assert engine.last_run.link_counts == {"DSLink1": 2, "DSLink2": 1}
        with pytest.warns(DeprecationWarning):
            assert engine.link_counts == {"DSLink1": 2, "DSLink2": 1}

    def test_run_job_with_links_helper(self, rel):
        job = simple_job(rel)
        instance = Instance([Dataset(rel, [{"id": 1, "v": 50.0}])])
        targets, links = run_job_with_links(job, instance)
        assert "DSLink2" in links
        assert len(targets.dataset("Out")) == 1

    def test_multi_path_job(self):
        # diamond: source splits via a 2-output filter, rejoins via a join
        rel = relation("R", ("id", "int", False), ("v", "float"))
        job = Job("diamond")
        src = job.add(TableSource(rel))
        split = job.add(
            FilterStage(
                [FilterOutput("TRUE", columns=[("id", "id"), ("v", "v")]),
                 FilterOutput("TRUE", columns=[("id", "id")])],
                name="fan",
            )
        )
        join = job.add(JoinStage(keys=[("id", "id")], name="rejoin"))
        tgt = job.add(TableTarget(rel.renamed("Out")))
        job.link(src, split)
        job.link(split, join, src_port=0)
        job.link(split, join, src_port=1, dst_port=1)
        job.link(join, tgt)
        instance = Instance([Dataset(rel, [{"id": 1, "v": 3.0}])])
        result = run_job(job, instance)
        assert result.dataset("Out").rows == [{"id": 1, "v": 3.0}]


class TestPaperExampleJob:
    def test_partitions_customers(self):
        job = build_example_job()
        instance = generate_instance(80)
        targets, links = run_job_with_links(job, instance)
        big = targets.dataset("BigCustomers")
        other = targets.dataset("OtherCustomers")
        # the final filter partitions DSLink10 exactly
        assert len(big) + len(other) == len(links["DSLink10"])
        assert all(r["totalBalance"] > 100000 for r in big)
        assert all(r["totalBalance"] <= 100000 for r in other)

    def test_loan_accounts_excluded(self):
        job = build_example_job()
        instance = generate_instance(80)
        _targets, links = run_job_with_links(job, instance)
        accounts = instance.dataset("Accounts")
        non_loans = [r for r in accounts if r["type"] != "L"]
        assert len(links["DSLink4"]) == len(non_loans)

    def test_derived_columns_populated(self):
        job = build_example_job()
        targets = run_job(job, generate_instance(30))
        for dataset in targets:
            for row in dataset:
                assert row["agegroup"] in ("young", "adult", "senior")
                assert row["country"] is not None
