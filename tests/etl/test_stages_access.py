"""Access stage tests: table/file sources & targets, RowGenerator,
CustomStage."""

import pytest

from repro.data.csvio import write_csv
from repro.data.dataset import Dataset, Instance
from repro.errors import ExecutionError, ValidationError
from repro.etl.stages import (
    CustomStage,
    RowGenerator,
    SequentialFileSource,
    SequentialFileTarget,
    TableSource,
    TableTarget,
)
from repro.schema import relation


@pytest.fixture
def rel():
    return relation("R", ("id", "int", False), ("v", "float"))


class TestTableSource:
    def test_extract_from_instance(self, rel):
        stage = TableSource(rel)
        instance = Instance([Dataset(rel, [{"id": 1, "v": 2.0}])])
        assert len(stage.extract(instance)) == 1

    def test_missing_relation_raises(self, rel):
        stage = TableSource(rel)
        with pytest.raises(ExecutionError):
            stage.extract(Instance())

    def test_extract_validates_types(self, rel):
        stage = TableSource(rel)
        wrong = Dataset(rel, validate=False)
        wrong.append({"id": "x", "v": "y"}, validate=False)
        with pytest.raises(Exception):
            stage.extract(Instance([wrong]))


class TestTableTarget:
    def test_load_projects_to_target_columns(self, rel):
        stage = TableTarget(rel)
        incoming = Dataset(
            relation("In", ("id", "int"), ("v", "float"), ("extra", "int")),
            [{"id": 1, "v": 2.0, "extra": 9}],
        )
        loaded = stage.load(incoming)
        assert loaded.relation is rel
        assert loaded.rows == [{"id": 1, "v": 2.0}]

    def test_validate_requires_columns(self, rel):
        stage = TableTarget(rel)
        with pytest.raises(ValidationError):
            stage.validate([relation("In", ("id", "int"))])


class TestSequentialFiles:
    def test_file_source_reads_csv(self, rel, tmp_path):
        path = str(tmp_path / "in.csv")
        write_csv(Dataset(rel, [{"id": 3, "v": 1.5}]), path)
        stage = SequentialFileSource(rel, path)
        data = stage.extract(Instance())
        assert data.rows == [{"id": 3, "v": 1.5}]

    def test_file_target_writes_csv(self, rel, tmp_path):
        path = str(tmp_path / "out.csv")
        stage = SequentialFileTarget(rel, path)
        stage.load(Dataset(rel, [{"id": 1, "v": 2.0}]))
        from repro.data.csvio import read_csv

        assert read_csv(path, rel).rows == [{"id": 1, "v": 2.0}]


class TestRowGenerator:
    def test_generator_specs(self, run, rel):
        stage = RowGenerator(
            rel,
            count=4,
            generators={
                "id": {"initial": 10, "increment": 5},
                "v": {"cycle": [1.0, 2.0]},
            },
        )
        (out,) = run(stage, [])
        assert out.column("id") == [10, 15, 20, 25]
        assert out.column("v") == [1.0, 2.0, 1.0, 2.0]

    def test_constant_and_default_null(self, run):
        rel = relation("G", ("a", "int"), ("b", "varchar"))
        stage = RowGenerator(rel, count=2, generators={"b": {"constant": "x"}})
        (out,) = run(stage, [])
        assert out.column("a") == [None, None]
        assert out.column("b") == ["x", "x"]

    def test_unknown_generator_column_rejected(self, rel):
        with pytest.raises(Exception):
            RowGenerator(rel, count=1, generators={"bogus": {"constant": 1}})


class TestCustomStage:
    def test_implementation_runs(self, run, rel):
        def implementation(inputs):
            return [[dict(r, v=r["v"] * 10) for r in inputs[0]]]

        stage = CustomStage(
            [rel.renamed("out")], reference="tenfold",
            implementation=implementation,
        )
        (out,) = run(stage, [Dataset(rel, [{"id": 1, "v": 2.0}])])
        assert out.rows[0]["v"] == 20.0

    def test_without_implementation_raises(self, run, rel):
        stage = CustomStage([rel.renamed("out")], reference="mystery")
        with pytest.raises(ExecutionError):
            run(stage, [Dataset(rel)])

    def test_output_count_checked(self, run, rel):
        def bad(inputs):
            return [[], []]

        stage = CustomStage(
            [rel.renamed("out")], reference="bad", implementation=bad
        )
        with pytest.raises(ExecutionError):
            run(stage, [Dataset(rel)])

    def test_declared_schemas_required(self):
        with pytest.raises(ValidationError):
            CustomStage([], reference="empty")
