"""Shared helpers for ETL stage tests."""

from typing import List

import pytest

from repro.data.dataset import Dataset
from repro.expr.functions import DEFAULT_REGISTRY


def run_stage(stage, inputs: List[Dataset], out_names=None) -> List[Dataset]:
    """Validate, compute output schemas, and execute one stage directly."""
    input_relations = [d.relation for d in inputs]
    stage.validate(input_relations)
    if out_names is None:
        n_out = stage.max_outputs if stage.max_outputs is not None else None
        if n_out is None or n_out > 1:
            # infer from configuration where possible
            n_out = getattr(stage, "n_outputs", None)
            if n_out is None:
                outputs = getattr(stage, "outputs", None)
                schemas = getattr(stage, "output_schemas", None)
                keeps = getattr(stage, "keep_columns", None)
                if outputs is not None:
                    n_out = len(outputs)
                elif schemas is not None:
                    n_out = len(schemas)
                elif keeps is not None:
                    n_out = len(keeps)
                else:
                    n_out = 1
        out_names = [f"out{i}" for i in range(n_out)]
    out_relations = stage.output_relations(input_relations, out_names)
    return stage.execute(inputs, out_relations, DEFAULT_REGISTRY)


@pytest.fixture
def run():
    return run_stage
