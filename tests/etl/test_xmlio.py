"""External XML format tests: serialization round trips for every stage
type, error handling."""

import pytest

from repro.errors import SerializationError
from repro.etl import (
    Job,
    TableSource,
    TableTarget,
    job_from_xml,
    job_to_xml,
    read_job,
    run_job,
    write_job,
)
from repro.schema import relation
from repro.workloads import (
    build_chain_job,
    build_example_job,
    build_fanout_job,
    build_star_join_job,
    generate_chain_instance,
    generate_instance,
    generate_star_instance,
)


class TestRoundTrip:
    def test_example_job_structure_survives(self):
        job = build_example_job()
        restored = job_from_xml(job_to_xml(job))
        assert restored.name == job.name
        assert sorted(s.name for s in restored.stages) == sorted(
            s.name for s in job.stages
        )
        assert sorted(l.name for l in restored.links) == sorted(
            l.name for l in job.links
        )

    def test_example_job_semantics_survive(self):
        job = build_example_job()
        restored = job_from_xml(job_to_xml(job))
        instance = generate_instance(40)
        assert run_job(restored, instance).same_bags(run_job(job, instance))

    @pytest.mark.parametrize(
        "builder,instance_builder",
        [
            (lambda: build_chain_job(10), lambda: generate_chain_instance(60)),
            (lambda: build_fanout_job(4), lambda: generate_chain_instance(60)),
            (lambda: build_star_join_job(2),
             lambda: generate_star_instance(2, 80)),
        ],
    )
    def test_generated_jobs_survive(self, builder, instance_builder):
        job = builder()
        restored = job_from_xml(job_to_xml(job))
        instance = instance_builder()
        assert run_job(restored, instance).same_bags(run_job(job, instance))

    def test_annotations_survive(self):
        rel = relation("R", ("id", "int"))
        job = Job("annotated")
        src = job.add(
            TableSource(rel, annotations={"rule": "English business rule"})
        )
        tgt = job.add(TableTarget(rel.renamed("Out")))
        job.link(src, tgt)
        restored = job_from_xml(job_to_xml(job))
        assert restored.stage(src.name).annotations == {
            "rule": "English business rule"
        }

    def test_custom_stage_loses_implementation_only(self):
        job = build_example_job(custom_after_join=True)
        restored = job_from_xml(job_to_xml(job))
        custom = restored.stage("AuditBalances")
        assert custom.STAGE_TYPE == "Custom"
        assert custom.reference == "AuditBalances"
        assert custom.implementation is None  # the black box stays black

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "job.xml")
        job = build_example_job()
        write_job(job, path)
        restored = read_job(path)
        assert restored.name == job.name


class TestFormatDetails:
    def test_document_is_versioned_xml(self):
        text = job_to_xml(build_example_job())
        assert text.startswith("<etljob")
        assert 'version="1.0"' in text

    def test_link_ports_preserved(self):
        job = build_example_job()
        restored = job_from_xml(job_to_xml(job))
        original_ports = {
            l.name: (l.src_port, l.dst_port) for l in job.links
        }
        for link in restored.links:
            assert (link.src_port, link.dst_port) == original_ports[link.name]


class TestErrors:
    def test_malformed_xml_rejected(self):
        with pytest.raises(SerializationError):
            job_from_xml("<etljob><unclosed>")

    def test_wrong_root_rejected(self):
        with pytest.raises(SerializationError):
            job_from_xml("<notajob/>")

    def test_missing_stages_rejected(self):
        with pytest.raises(SerializationError):
            job_from_xml('<etljob name="x"/>')

    def test_unknown_stage_type_rejected(self):
        text = (
            '<etljob name="x"><stages>'
            '<stage name="s" type="Quantum"/></stages></etljob>'
        )
        with pytest.raises(SerializationError):
            job_from_xml(text)
