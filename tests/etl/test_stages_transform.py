"""Transformation stage tests: Transformer, Modify, SurrogateKey."""

import pytest

from repro.data.dataset import Dataset
from repro.errors import ValidationError
from repro.etl.stages import Modify, SurrogateKey, Transformer
from repro.etl.stages.transform import OutputLink
from repro.schema import relation


@pytest.fixture
def rel():
    return relation(
        "R", ("id", "int", False), ("name", "varchar"), ("v", "float")
    )


@pytest.fixture
def data(rel):
    return Dataset(
        rel,
        [
            {"id": 1, "name": "ada", "v": 10.0},
            {"id": 2, "name": "ben", "v": 200.0},
            {"id": 3, "name": None, "v": None},
        ],
    )


class TestTransformer:
    def test_derivations(self, run, data):
        stage = Transformer.single(
            [("id", "id"), ("shout", "UPPER(name) || '!'")]
        )
        (out,) = run(stage, [data])
        assert out.rows[0] == {"id": 1, "shout": "ADA!"}
        assert out.rows[2]["shout"] is None  # NULL propagates

    def test_constraint_gates_output(self, run, data):
        stage = Transformer.single([("id", "id")], constraint="v > 100")
        (out,) = run(stage, [data])
        assert out.column("id") == [2]

    def test_multiple_outputs_with_constraints(self, run, data):
        stage = Transformer(
            [
                OutputLink([("id", "id")], constraint="v <= 100"),
                OutputLink([("id", "id")], constraint="v > 100"),
            ]
        )
        low, high = run(stage, [data])
        assert low.column("id") == [1]
        assert high.column("id") == [2]

    def test_otherwise_link_catches_unmatched(self, run, data):
        stage = Transformer(
            [
                OutputLink([("id", "id")], constraint="v > 100"),
                OutputLink([("id", "id")], otherwise=True),
            ]
        )
        matched, otherwise = run(stage, [data])
        assert matched.column("id") == [2]
        assert sorted(otherwise.column("id")) == [1, 3]

    def test_stage_variables(self, run, data):
        stage = Transformer(
            [OutputLink([("id", "id"), ("band", "bucket * 10")])],
            stage_variables=[("bucket", "CASE WHEN v > 100 THEN 2 ELSE 1 END")],
        )
        (out,) = run(stage, [data])
        assert [r["band"] for r in out] == [10, 20, 10]

    def test_stage_variable_chaining(self, run, data):
        stage = Transformer(
            [OutputLink([("x", "b")])],
            stage_variables=[("a", "id * 2"), ("b", "a + 1")],
        )
        (out,) = run(stage, [data])
        assert [r["x"] for r in out] == [3, 5, 7]

    def test_output_schema_types(self, rel):
        stage = Transformer.single([("n", "LENGTH(name)")])
        (out_rel,) = stage.output_relations([rel], ["o"])
        from repro.schema import INTEGER

        assert out_rel.attribute("n").dtype is INTEGER

    def test_at_most_one_otherwise(self):
        with pytest.raises(ValidationError):
            Transformer(
                [
                    OutputLink([("a", "a")], otherwise=True),
                    OutputLink([("a", "a")], otherwise=True),
                ]
            )

    def test_otherwise_with_constraint_rejected(self):
        with pytest.raises(ValidationError):
            OutputLink([("a", "a")], constraint="a > 1", otherwise=True)

    def test_duplicate_output_columns_rejected(self):
        with pytest.raises(ValidationError):
            OutputLink([("a", "x"), ("a", "y")])


class TestModify:
    def test_keep_drop_rename(self, run, data):
        stage = Modify(keep=["id", "name"], rename={"label": "name"})
        (out,) = run(stage, [data])
        assert out.relation.attribute_names == ("id", "label")
        assert out.rows[0]["label"] == "ada"

    def test_drop(self, run, data):
        stage = Modify(drop=["v"])
        (out,) = run(stage, [data])
        assert out.relation.attribute_names == ("id", "name")

    def test_convert_changes_type_and_value(self, run, data):
        stage = Modify(convert={"id": "varchar"})
        (out,) = run(stage, [data])
        assert out.rows[0]["id"] == "1"
        from repro.schema import STRING

        assert out.relation.attribute("id").dtype is STRING

    def test_unknown_column_rejected(self, run, data):
        with pytest.raises(Exception):
            run(Modify(keep=["bogus"]), [data])

    def test_rename_source_must_exist(self, run, data):
        with pytest.raises(Exception):
            run(Modify(rename={"x": "bogus"}), [data])


class TestSurrogateKey:
    def test_appends_sequential_key(self, run, data):
        stage = SurrogateKey("sk", start=10)
        (out,) = run(stage, [data])
        assert out.column("sk") == [10, 11, 12]
        assert out.relation.attribute("sk").nullable is False

    def test_existing_column_rejected(self, run, data):
        with pytest.raises(ValidationError):
            run(SurrogateKey("id"), [data])
