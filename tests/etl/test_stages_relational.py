"""Relational stage tests: Join, Lookup, Aggregator, Sort,
RemoveDuplicates."""

import pytest

from repro.data.dataset import Dataset
from repro.errors import ExecutionError, ValidationError
from repro.etl.stages import (
    AggregatorStage,
    JoinStage,
    LookupStage,
    RemoveDuplicatesStage,
    SortStage,
)
from repro.schema import relation


@pytest.fixture
def orders():
    return relation(
        "Orders", ("orderID", "int", False), ("customerID", "int"),
        ("amount", "float"),
    )


@pytest.fixture
def customers():
    return relation(
        "Customers", ("customerID", "int", False), ("name", "varchar")
    )


def orders_data(orders):
    return Dataset(
        orders,
        [
            {"orderID": 1, "customerID": 1, "amount": 10.0},
            {"orderID": 2, "customerID": 1, "amount": 20.0},
            {"orderID": 3, "customerID": 2, "amount": 30.0},
            {"orderID": 4, "customerID": 9, "amount": 40.0},
        ],
    )


def customers_data(customers):
    return Dataset(
        customers,
        [{"customerID": 1, "name": "ada"}, {"customerID": 2, "name": "ben"}],
    )


class TestJoinStage:
    def test_keys_mode_merges_key_columns(self, run, orders, customers):
        stage = JoinStage(keys=[("customerID", "customerID")])
        (out,) = run(stage, [orders_data(orders), customers_data(customers)])
        # DataStage behaviour: one customerID column, left copy
        assert out.relation.attribute_names == (
            "orderID", "customerID", "amount", "name",
        )
        assert len(out) == 3

    def test_left_join_null_fills(self, run, orders, customers):
        stage = JoinStage(
            keys=[("customerID", "customerID")], join_type="left"
        )
        (out,) = run(stage, [orders_data(orders), customers_data(customers)])
        assert len(out) == 4
        dangling = [r for r in out if r["orderID"] == 4][0]
        assert dangling["name"] is None

    def test_condition_mode_keeps_dotted_collisions(self, run, orders, customers):
        stage = JoinStage(
            condition="DSLink1.customerID = DSLink2.customerID"
        )
        left = orders_data(orders).renamed("DSLink1")
        right = customers_data(customers).renamed("DSLink2")
        (out,) = run(stage, [left, right])
        names = out.relation.attribute_names
        assert "DSLink1.customerID" in names
        assert "DSLink2.customerID" in names

    def test_non_equi_condition(self, run, orders, customers):
        stage = JoinStage(condition="DSLink1.amount > 25")
        left = orders_data(orders).renamed("DSLink1")
        right = customers_data(customers).renamed("DSLink2")
        (out,) = run(stage, [left, right])
        assert len(out) == 4  # 2 big orders x 2 customers

    def test_keys_and_condition_mutually_exclusive(self):
        with pytest.raises(ValidationError):
            JoinStage(keys=[("a", "a")], condition="a = b")

    def test_placeholder_join(self, orders, customers):
        stage = JoinStage()
        assert stage.is_placeholder
        assert "placeholder" in stage.annotations
        stage.validate([orders, customers])  # skeletons validate...
        with pytest.raises(ValidationError):
            stage.effective_condition(orders, customers)  # ...but can't run

    def test_unknown_join_type_rejected(self):
        with pytest.raises(ValidationError):
            JoinStage(keys=[("a", "a")], join_type="diagonal")


class TestLookupStage:
    def test_continue_null_fills(self, run, orders, customers):
        stage = LookupStage(keys=[("customerID", "customerID")])
        (out,) = run(stage, [orders_data(orders), customers_data(customers)])
        assert len(out) == 4
        miss = [r for r in out if r["orderID"] == 4][0]
        assert miss["name"] is None

    def test_drop_discards_misses(self, run, orders, customers):
        stage = LookupStage(
            keys=[("customerID", "customerID")], on_failure="drop"
        )
        (out,) = run(stage, [orders_data(orders), customers_data(customers)])
        assert sorted(out.column("orderID")) == [1, 2, 3]

    def test_fail_raises_on_miss(self, run, orders, customers):
        stage = LookupStage(
            keys=[("customerID", "customerID")], on_failure="fail"
        )
        with pytest.raises(ExecutionError):
            run(stage, [orders_data(orders), customers_data(customers)])

    def test_first_match_wins_on_duplicate_reference(self, run, orders, customers):
        dup = Dataset(
            customers,
            [
                {"customerID": 1, "name": "first"},
                {"customerID": 1, "name": "second"},
            ],
        )
        stage = LookupStage(
            keys=[("customerID", "customerID")], on_failure="drop"
        )
        (out,) = run(stage, [orders_data(orders), dup])
        assert set(out.column("name")) == {"first"}

    def test_return_columns_restriction(self, run, orders, customers):
        stage = LookupStage(
            keys=[("customerID", "customerID")], return_columns=["name"]
        )
        (out,) = run(stage, [orders_data(orders), customers_data(customers)])
        assert "name" in out.relation.attribute_names

    def test_returned_collision_rejected(self, orders):
        ref = relation("Ref", ("customerID", "int"), ("amount", "float"))
        stage = LookupStage(keys=[("customerID", "customerID")])
        with pytest.raises(ValidationError):
            stage.validate([orders, ref])


class TestAggregatorStage:
    def test_grouping_and_aggregation(self, run, orders):
        stage = AggregatorStage(
            ["customerID"],
            [("total", "sum", "amount"), ("n", "count", None)],
        )
        (out,) = run(stage, [orders_data(orders)])
        by_customer = {r["customerID"]: r for r in out}
        assert by_customer[1]["total"] == 30.0
        assert by_customer[1]["n"] == 2

    def test_all_aggregation_functions(self, run, orders):
        stage = AggregatorStage(
            ["customerID"],
            [
                ("s", "sum", "amount"),
                ("a", "avg", "amount"),
                ("lo", "min", "amount"),
                ("hi", "max", "amount"),
                ("c", "count", "amount"),
            ],
        )
        (out,) = run(stage, [orders_data(orders)])
        row = [r for r in out if r["customerID"] == 1][0]
        assert (row["s"], row["a"], row["lo"], row["hi"], row["c"]) == (
            30.0, 15.0, 10.0, 20.0, 2,
        )

    def test_pure_grouping(self, run, orders):
        stage = AggregatorStage(["customerID"])
        (out,) = run(stage, [orders_data(orders)])
        assert len(out) == 3

    def test_unknown_function_rejected(self):
        with pytest.raises(ValidationError):
            AggregatorStage(["a"], [("x", "median", "v")])

    def test_needs_group_keys(self):
        with pytest.raises(ValidationError):
            AggregatorStage([], [("x", "sum", "v")])

    def test_non_count_needs_column(self):
        with pytest.raises(ValidationError):
            AggregatorStage(["a"], [("x", "sum", None)])


class TestSortStage:
    def test_multi_key_sort(self, run, orders):
        stage = SortStage([("customerID", "asc"), ("amount", "desc")])
        (out,) = run(stage, [orders_data(orders)])
        assert [r["orderID"] for r in out] == [2, 1, 3, 4]

    def test_nulls_last_ascending(self, run, orders):
        data = orders_data(orders)
        data.append({"orderID": 5, "customerID": None, "amount": 1.0})
        stage = SortStage([("customerID", "asc")])
        (out,) = run(stage, [data])
        assert out.rows[-1]["orderID"] == 5

    def test_nulls_last_descending(self, run, orders):
        data = orders_data(orders)
        data.append({"orderID": 5, "customerID": None, "amount": 1.0})
        stage = SortStage([("customerID", "desc")])
        (out,) = run(stage, [data])
        assert out.rows[-1]["orderID"] == 5

    def test_bad_direction_rejected(self):
        with pytest.raises(ValidationError):
            SortStage([("a", "upwards")])


class TestRemoveDuplicates:
    def test_retain_first(self, run, orders):
        stage = RemoveDuplicatesStage(["customerID"])
        (out,) = run(stage, [orders_data(orders)])
        assert sorted(out.column("orderID")) == [1, 3, 4]

    def test_retain_last(self, run, orders):
        stage = RemoveDuplicatesStage(["customerID"], retain="last")
        (out,) = run(stage, [orders_data(orders)])
        assert sorted(out.column("orderID")) == [2, 3, 4]

    def test_bad_retain_rejected(self):
        with pytest.raises(ValidationError):
            RemoveDuplicatesStage(["a"], retain="middle")
