"""Flow stage tests: Filter (incl. row-only-once / reject), Switch, Copy,
Funnel, Peek."""

import pytest

from repro.data.dataset import Dataset
from repro.errors import ValidationError
from repro.etl.stages import (
    CopyStage,
    FilterOutput,
    FilterStage,
    FunnelStage,
    PeekStage,
    SwitchStage,
)
from repro.schema import relation


@pytest.fixture
def rel():
    return relation("R", ("id", "int", False), ("v", "float"),
                    ("kind", "varchar"))


@pytest.fixture
def data(rel):
    return Dataset(
        rel,
        [
            {"id": 1, "v": 5.0, "kind": "a"},
            {"id": 2, "v": 15.0, "kind": "b"},
            {"id": 3, "v": 25.0, "kind": "a"},
            {"id": 4, "v": None, "kind": None},
        ],
    )


class TestFilterStage:
    def test_single_output(self, run, data):
        stage = FilterStage.single("v > 10")
        (out,) = run(stage, [data])
        assert sorted(out.column("id")) == [2, 3]

    def test_multi_output_copies_to_all_matching(self, run, data):
        # overlapping predicates: a row can reach several outputs
        stage = FilterStage(
            [FilterOutput("v > 0"), FilterOutput("v > 10")]
        )
        first, second = run(stage, [data])
        assert sorted(first.column("id")) == [1, 2, 3]
        assert sorted(second.column("id")) == [2, 3]

    def test_row_only_once_routes_to_first_match(self, run, data):
        stage = FilterStage(
            [FilterOutput("v > 0"), FilterOutput("v > 10")],
            row_only_once=True,
        )
        first, second = run(stage, [data])
        assert sorted(first.column("id")) == [1, 2, 3]
        assert second.column("id") == []

    def test_reject_output_gets_unmatched(self, run, data):
        stage = FilterStage(
            [FilterOutput("v > 10"), FilterOutput(reject=True)]
        )
        matched, rejected = run(stage, [data])
        assert sorted(matched.column("id")) == [2, 3]
        assert sorted(rejected.column("id")) == [1, 4]

    def test_null_goes_to_reject_not_both(self, run, data):
        # under three-valued logic a NULL satisfies neither the predicate
        # nor is it matched; the reject link catches it
        stage = FilterStage(
            [FilterOutput("v > 10"), FilterOutput(reject=True)]
        )
        matched, rejected = run(stage, [data])
        assert 4 not in matched.column("id")
        assert 4 in rejected.column("id")

    def test_simple_projection_per_output(self, run, data):
        stage = FilterStage(
            [FilterOutput("v > 10", columns=[("ident", "id")])]
        )
        (out,) = run(stage, [data])
        assert out.relation.attribute_names == ("ident",)
        assert sorted(out.column("ident")) == [2, 3]

    def test_reject_must_be_last(self):
        with pytest.raises(ValidationError):
            FilterStage([FilterOutput(reject=True), FilterOutput("v > 0")])

    def test_at_most_one_reject(self):
        with pytest.raises(ValidationError):
            FilterStage(
                [FilterOutput("v > 0"), FilterOutput(reject=True),
                 FilterOutput(reject=True)]
            )

    def test_reject_with_predicate_rejected(self):
        with pytest.raises(ValidationError):
            FilterOutput("v > 0", reject=True)

    def test_unknown_projection_column_rejected(self, run, data):
        stage = FilterStage(
            [FilterOutput("v > 0", columns=[("x", "missing")])]
        )
        with pytest.raises(Exception):
            run(stage, [data])


class TestSwitchStage:
    def test_routes_by_value(self, run, data):
        stage = SwitchStage("kind", cases=["a", "b"])
        a_rows, b_rows = run(stage, [data])
        assert sorted(a_rows.column("id")) == [1, 3]
        assert b_rows.column("id") == [2]

    def test_default_catches_unmatched_and_null(self, run, data):
        stage = SwitchStage("kind", cases=["a"], has_default=True)
        a_rows, rest = run(stage, [data])
        assert sorted(a_rows.column("id")) == [1, 3]
        assert sorted(rest.column("id")) == [2, 4]

    def test_without_default_unmatched_dropped(self, run, data):
        stage = SwitchStage("kind", cases=["a"])
        (a_rows,) = run(stage, [data])
        assert sorted(a_rows.column("id")) == [1, 3]

    def test_needs_cases(self):
        with pytest.raises(ValidationError):
            SwitchStage("kind", cases=[])


class TestCopyStage:
    def test_plain_copy(self, run, data):
        stage = CopyStage(keep_columns=[None, None])
        a, b = run(stage, [data])
        assert a.same_bag(b)
        assert len(a) == 4

    def test_column_restriction_per_output(self, run, data):
        stage = CopyStage(keep_columns=[["id"], None])
        ids, full = run(stage, [data])
        assert ids.relation.attribute_names == ("id",)
        assert full.relation.attribute_names == data.relation.attribute_names

    def test_unknown_keep_column_rejected(self, run, data):
        stage = CopyStage(keep_columns=[["bogus"]])
        with pytest.raises(Exception):
            run(stage, [data])


class TestFunnelStage:
    def test_bag_union(self, run, rel, data):
        other = Dataset(rel.renamed("R2"), [dict(r) for r in data.rows[:2]])
        stage = FunnelStage()
        (out,) = run(stage, [data, other])
        assert len(out) == 6

    def test_name_based_column_alignment(self, run, rel):
        shuffled = relation("S", ("v", "float"), ("kind", "varchar"),
                            ("id", "int"))
        a = Dataset(rel, [{"id": 1, "v": 1.0, "kind": "x"}])
        b = Dataset(shuffled, [{"id": 2, "v": 2.0, "kind": "y"}])
        stage = FunnelStage()
        (out,) = run(stage, [a, b])
        assert sorted(out.column("id")) == [1, 2]

    def test_incompatible_inputs_rejected(self, run, rel):
        other = relation("S", ("different", "int"))
        stage = FunnelStage()
        with pytest.raises(ValidationError):
            run(stage, [Dataset(rel), Dataset(other)])


class TestPeekStage:
    def test_passthrough_with_sample(self, run, data):
        stage = PeekStage(sample=2)
        (out,) = run(stage, [data])
        assert out.same_bag(data)
        assert len(stage.peeked) == 2
        assert stage.peeked[0]["id"] == 1
