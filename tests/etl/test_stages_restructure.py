"""Restructure (NF²) stage tests: CombineRecords / PromoteSubrecord."""

import pytest

from repro.data.dataset import Dataset, Instance
from repro.errors import ValidationError
from repro.etl import (
    CombineRecords,
    Job,
    PromoteSubrecord,
    TableSource,
    TableTarget,
    run_job,
)
from repro.schema import relation
from repro.schema.model import Attribute, Relation
from repro.schema.types import FLOAT, INTEGER, RecordType, SetType


@pytest.fixture
def accounts():
    return relation(
        "Accounts",
        ("customerID", "int", False),
        ("accountID", "int", False),
        ("balance", "float"),
    )


ROWS = [
    {"customerID": 1, "accountID": 10, "balance": 5.0},
    {"customerID": 1, "accountID": 11, "balance": 7.0},
    {"customerID": 2, "accountID": 12, "balance": 9.0},
]


class TestCombineRecords:
    def test_nests_groups(self, run, accounts):
        stage = CombineRecords(
            ["customerID"], ["accountID", "balance"], into="accounts"
        )
        (out,) = run(stage, [Dataset(accounts, ROWS)])
        rows = {r["customerID"]: r for r in out}
        assert len(rows[1]["accounts"]) == 2
        assert rows[2]["accounts"] == [{"accountID": 12, "balance": 9.0}]

    def test_output_schema_is_nested(self, accounts):
        stage = CombineRecords(
            ["customerID"], ["accountID", "balance"], into="accounts"
        )
        (out_rel,) = stage.output_relations([accounts], ["o"])
        nested = out_rel.attribute("accounts").dtype
        assert isinstance(nested, SetType)
        assert nested.element_type.field_names == ("accountID", "balance")

    def test_needs_keys_and_nested(self):
        with pytest.raises(ValidationError):
            CombineRecords([], ["x"], into="s")
        with pytest.raises(ValidationError):
            CombineRecords(["k"], [], into="s")

    def test_into_collision_rejected(self):
        with pytest.raises(ValidationError):
            CombineRecords(["k"], ["x"], into="k")


class TestPromoteSubrecord:
    def nested_dataset(self):
        nested_rel = Relation(
            "Nested",
            [
                Attribute("customerID", INTEGER, nullable=False),
                Attribute(
                    "accounts",
                    SetType(RecordType(
                        [("accountID", INTEGER), ("balance", FLOAT)]
                    )),
                    nullable=False,
                ),
            ],
        )
        return Dataset(
            nested_rel,
            [
                {"customerID": 1, "accounts": [
                    {"accountID": 10, "balance": 5.0},
                    {"accountID": 11, "balance": 7.0},
                ]},
                {"customerID": 3, "accounts": []},
            ],
        )

    def test_flattens(self, run):
        stage = PromoteSubrecord("accounts")
        (out,) = run(stage, [self.nested_dataset()])
        assert len(out) == 2
        assert all(r["customerID"] == 1 for r in out)

    def test_requires_set_of_records(self, accounts):
        stage = PromoteSubrecord("balance")
        with pytest.raises(ValidationError):
            stage.validate([accounts])


class TestEndToEnd:
    def build_job(self, accounts):
        job = Job("nf2")
        s = job.add(TableSource(accounts))
        n = job.add(CombineRecords(
            ["customerID"], ["accountID", "balance"], into="accounts",
            name="nest",
        ))
        u = job.add(PromoteSubrecord("accounts", name="flatten"))
        t = job.add(TableTarget(accounts.renamed("Out")))
        job.link(s, n)
        job.link(n, u)
        job.link(u, t)
        return job

    def test_nest_unnest_is_identity(self, accounts):
        job = self.build_job(accounts)
        instance = Instance([Dataset(accounts, ROWS)])
        result = run_job(job, instance)
        assert result.dataset("Out").same_bag(Dataset(accounts, ROWS))

    def test_compiles_to_nest_unnest(self, accounts):
        from repro.compile import compile_job

        graph = compile_job(self.build_job(accounts))
        assert graph.kinds_in_order() == [
            "SOURCE", "NEST", "UNNEST", "TARGET",
        ]

    def test_redeploys_to_restructure_stages(self, accounts):
        from repro.compile import compile_job
        from repro.deploy import deploy_to_job

        graph = compile_job(self.build_job(accounts))
        job, _plan = deploy_to_job(graph)
        types = [s.STAGE_TYPE for s in job.topological_order()]
        assert "CombineRecords" in types
        assert "PromoteSubrecord" in types
        instance = Instance([Dataset(accounts, ROWS)])
        assert run_job(job, instance).same_bags(
            run_job(self.build_job(accounts), instance)
        )

    def test_mapping_extraction_treats_nf2_as_opaque_but_executable(
        self, accounts
    ):
        from repro.compile import compile_job
        from repro.mapping import execute_mappings, ohm_to_mappings

        job = self.build_job(accounts)
        graph = compile_job(job)
        mappings = ohm_to_mappings(graph)
        assert all(m.is_opaque for m in mappings if m.reference in (
            "NEST", "UNNEST",
        ))
        instance = Instance([Dataset(accounts, ROWS)])
        assert execute_mappings(mappings, instance).same_bags(
            run_job(job, instance)
        )

    def test_xml_roundtrip(self, accounts):
        from repro.etl import job_from_xml, job_to_xml

        job = self.build_job(accounts)
        restored = job_from_xml(job_to_xml(job))
        instance = Instance([Dataset(accounts, ROWS)])
        assert run_job(restored, instance).same_bags(run_job(job, instance))
