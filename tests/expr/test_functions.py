"""Function registry unit tests: extensibility, scoping, arity."""

import pytest

from repro.errors import ExpressionError
from repro.expr.evaluator import evaluate
from repro.expr.functions import (
    DEFAULT_REGISTRY,
    FunctionRegistry,
    ScalarFunction,
    register,
)
from repro.expr.parser import parse
from repro.schema import INTEGER, STRING


class TestRegistry:
    def test_builtins_present(self):
        for name in ("UPPER", "COALESCE", "SUBSTR", "ADD_DAYS"):
            assert DEFAULT_REGISTRY.knows(name)

    def test_lookup_is_case_insensitive(self):
        assert DEFAULT_REGISTRY.lookup("upper") is DEFAULT_REGISTRY.lookup("UPPER")

    def test_unknown_function_raises(self):
        with pytest.raises(ExpressionError):
            DEFAULT_REGISTRY.lookup("NO_SUCH_FN")

    def test_duplicate_registration_rejected(self):
        registry = FunctionRegistry()
        registry.register(ScalarFunction("F", lambda: 1, INTEGER, 0))
        with pytest.raises(ExpressionError):
            registry.register(ScalarFunction("F", lambda: 2, INTEGER, 0))

    def test_replace_flag_allows_override(self):
        registry = FunctionRegistry()
        registry.register(ScalarFunction("F", lambda: 1, INTEGER, 0))
        registry.register(ScalarFunction("F", lambda: 2, INTEGER, 0), replace=True)
        assert registry.lookup("F")() == 2


class TestScoping:
    def test_child_registry_sees_parent_builtins(self):
        child = DEFAULT_REGISTRY.child()
        assert child.knows("UPPER")

    def test_user_function_scoped_to_child(self):
        child = DEFAULT_REGISTRY.child()
        register(
            "RISK_SCORE",
            lambda balance: min(int(balance / 1000), 10),
            INTEGER,
            1,
            registry=child,
        )
        assert child.knows("RISK_SCORE")
        assert not DEFAULT_REGISTRY.knows("RISK_SCORE")
        # the paper's escape hatch: complex host-language transformation
        # functions usable from expressions
        result = evaluate(parse("RISK_SCORE(balance)"), {"balance": 3500}, child)
        assert result == 3

    def test_names_include_parent(self):
        child = DEFAULT_REGISTRY.child()
        register("ONLY_HERE", lambda: 0, INTEGER, 0, registry=child)
        names = child.names()
        assert "ONLY_HERE" in names and "UPPER" in names


class TestArity:
    def test_exact_arity(self):
        with pytest.raises(ExpressionError):
            DEFAULT_REGISTRY.lookup("UPPER").check_arity(2)

    def test_range_arity(self):
        substr = DEFAULT_REGISTRY.lookup("SUBSTR")
        substr.check_arity(2)
        substr.check_arity(3)
        with pytest.raises(ExpressionError):
            substr.check_arity(1)

    def test_variadic_minimum(self):
        coalesce = DEFAULT_REGISTRY.lookup("COALESCE")
        coalesce.check_arity(1)
        coalesce.check_arity(9)
        with pytest.raises(ExpressionError):
            coalesce.check_arity(0)


class TestReturnTypes:
    def test_fixed_return_type(self):
        assert DEFAULT_REGISTRY.lookup("UPPER").infer_return_type([STRING]) is STRING

    def test_polymorphic_return_type(self):
        abs_fn = DEFAULT_REGISTRY.lookup("ABS")
        assert abs_fn.infer_return_type([INTEGER]) is INTEGER

    def test_failure_wrapped_with_context(self):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError) as info:
            DEFAULT_REGISTRY.lookup("TO_INTEGER")("not-a-number")
        assert "TO_INTEGER" in str(info.value)
