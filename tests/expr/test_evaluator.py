"""Evaluator unit tests: SQL three-valued logic, NULL propagation,
aggregates, environments."""

import datetime

import pytest

from repro.errors import EvaluationError
from repro.expr.ast import AggregateCall, ColumnRef
from repro.expr.evaluator import (
    Environment,
    evaluate,
    evaluate_aggregate,
    evaluate_predicate,
)
from repro.expr.parser import parse


def ev(text, row=None, **named):
    env = Environment(row if row is not None else {})
    for name, bound in named.items():
        env.bind(name, bound)
    return evaluate(parse(text), env)


class TestArithmetic:
    def test_precedence(self):
        assert ev("1 + 2 * 3") == 7

    def test_integer_division_stays_integral_when_exact(self):
        assert ev("10 / 2") == 5
        assert isinstance(ev("10 / 2"), int)

    def test_division_produces_float_when_inexact(self):
        assert ev("7 / 2") == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            ev("1 / 0")

    def test_modulo(self):
        assert ev("7 % 3") == 1

    def test_unary_minus(self):
        assert ev("-(2 + 3)") == -5

    def test_arithmetic_on_strings_raises(self):
        with pytest.raises(EvaluationError):
            ev("'a' + 1")


class TestThreeValuedLogic:
    def test_null_comparison_is_unknown(self):
        assert ev("NULL = 1") is None
        assert ev("NULL <> 1") is None
        assert ev("NULL < 1") is None

    def test_unknown_and_false_is_false(self):
        assert ev("NULL = 1 AND FALSE") is False

    def test_unknown_and_true_is_unknown(self):
        assert ev("NULL = 1 AND TRUE") is None

    def test_unknown_or_true_is_true(self):
        assert ev("NULL = 1 OR TRUE") is True

    def test_unknown_or_false_is_unknown(self):
        assert ev("NULL = 1 OR FALSE") is None

    def test_not_unknown_is_unknown(self):
        assert ev("NOT (NULL = 1)") is None

    def test_predicate_treats_unknown_as_not_passing(self):
        assert evaluate_predicate(parse("x > 10"), {"x": None}) is False

    def test_is_null(self):
        assert ev("x IS NULL", {"x": None}) is True
        assert ev("x IS NOT NULL", {"x": None}) is False

    def test_in_list_with_null_item_follows_sql(self):
        # 2 IN (1, NULL) is unknown, 1 IN (1, NULL) is true
        assert ev("2 IN (1, NULL)") is None
        assert ev("1 IN (1, NULL)") is True

    def test_not_in_with_null_is_unknown(self):
        assert ev("2 NOT IN (1, NULL)") is None

    def test_between_with_null_bound(self):
        assert ev("5 BETWEEN 1 AND NULL") is None
        assert ev("0 BETWEEN 1 AND NULL") is False  # already < low


class TestStringsAndDates:
    def test_concat_operator(self):
        assert ev("'a' || 'b'") == "ab"

    def test_concat_with_null_is_null(self):
        assert ev("'a' || NULL") is None

    def test_like_wildcards(self):
        assert ev("'Anna' LIKE 'A%'") is True
        assert ev("'Anna' LIKE 'A_'") is False
        assert ev("'Ab' LIKE 'A_'") is True

    def test_like_escapes_regex_metacharacters(self):
        assert ev("'a.c' LIKE 'a.c'") is True
        assert ev("'abc' LIKE 'a.c'") is False

    def test_date_comparison(self):
        assert ev("DATE '2008-01-01' > DATE '2007-12-31'") is True

    def test_cross_type_comparison_raises(self):
        with pytest.raises(EvaluationError):
            ev("'a' > 1")


class TestFunctions:
    def test_builtin_functions(self):
        assert ev("UPPER('abc')") == "ABC"
        assert ev("LENGTH('abcd')") == 4
        assert ev("SUBSTR('abcdef', 2, 3)") == "bcd"
        assert ev("COALESCE(NULL, NULL, 7)") == 7
        assert ev("IFNULL(NULL, 'x')") == "x"
        assert ev("NULLIF(3, 3)") is None

    def test_null_propagation(self):
        assert ev("UPPER(NULL)") is None

    def test_coalesce_is_not_null_propagating(self):
        assert ev("COALESCE(NULL, 1)") == 1

    def test_unknown_function_raises(self):
        with pytest.raises(Exception):
            ev("NO_SUCH_FUNCTION(1)")

    def test_arity_checked(self):
        with pytest.raises(Exception):
            ev("UPPER('a', 'b')")

    def test_date_functions(self):
        assert ev("YEAR(DATE '2008-03-04')") == 2008
        assert ev("ADD_DAYS(DATE '2008-01-01', 31)") == datetime.date(2008, 2, 1)
        assert ev(
            "YEARS_BETWEEN(DATE '2008-01-01', DATE '2000-01-01')"
        ) == 8


class TestCase:
    def test_first_matching_branch_wins(self):
        text = "CASE WHEN x < 10 THEN 'low' WHEN x < 100 THEN 'mid' ELSE 'hi' END"
        assert ev(text, {"x": 5}) == "low"
        assert ev(text, {"x": 50}) == "mid"
        assert ev(text, {"x": 500}) == "hi"

    def test_unknown_condition_skips_branch(self):
        text = "CASE WHEN x < 10 THEN 'low' ELSE 'other' END"
        assert ev(text, {"x": None}) == "other"

    def test_no_match_no_else_gives_null(self):
        assert ev("CASE WHEN FALSE THEN 1 END") is None


class TestEnvironment:
    def test_unqualified_lookup(self):
        assert ev("balance * 2", {"balance": 10}) == 20

    def test_qualified_lookup(self):
        assert ev("Accounts.balance", Accounts={"balance": 7}) == 7

    def test_dotted_column_in_anonymous_row(self):
        # join outputs keep colliding columns under dotted names
        assert ev("L.customerID", {"L.customerID": 3}) == 3

    def test_ambiguous_unqualified_raises(self):
        env = Environment()
        env.bind("A", {"x": 1})
        env.bind("B", {"x": 2})
        with pytest.raises(EvaluationError):
            evaluate(parse("x"), env)

    def test_unbound_column_raises(self):
        with pytest.raises(EvaluationError):
            ev("missing", {})

    def test_aggregate_refused_per_row(self):
        with pytest.raises(EvaluationError):
            ev("SUM(x)", {"x": 1})


class TestAggregates:
    ROWS = [{"v": 1}, {"v": 2}, {"v": None}, {"v": 2}]

    def agg(self, text, rows=None):
        return evaluate_aggregate(parse(text), rows if rows is not None else self.ROWS)

    def test_sum_skips_nulls(self):
        assert self.agg("SUM(v)") == 5

    def test_count_column_skips_nulls(self):
        assert self.agg("COUNT(v)") == 3

    def test_count_star_counts_all_rows(self):
        assert self.agg("COUNT(*)") == 4

    def test_avg(self):
        assert self.agg("AVG(v)") == pytest.approx(5 / 3)

    def test_min_max(self):
        assert self.agg("MIN(v)") == 1
        assert self.agg("MAX(v)") == 2

    def test_distinct(self):
        assert self.agg("COUNT(DISTINCT v)") == 2
        assert self.agg("SUM(DISTINCT v)") == 3

    def test_empty_group(self):
        assert self.agg("SUM(v)", []) is None
        assert self.agg("COUNT(v)", []) == 0
        assert self.agg("COUNT(*)", []) == 0

    def test_all_null_group(self):
        rows = [{"v": None}]
        assert self.agg("SUM(v)", rows) is None
        assert self.agg("MIN(v)", rows) is None

    def test_first_and_last(self):
        first = AggregateCall("FIRST", ColumnRef("v"))
        last = AggregateCall("LAST", ColumnRef("v"))
        assert evaluate_aggregate(first, self.ROWS) == 1
        assert evaluate_aggregate(last, self.ROWS) == 2

    def test_aggregate_over_expression(self):
        assert self.agg("SUM(v * 2)") == 10
