"""Parser unit tests: precedence, predicates, CASE, calls, errors."""

import datetime

import pytest

from repro.errors import ParseError
from repro.expr.ast import (
    AggregateCall,
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.expr.parser import parse


class TestLiterals:
    def test_integer(self):
        assert parse("42") == Literal(42)

    def test_float(self):
        assert parse("2.5") == Literal(2.5)

    def test_string(self):
        assert parse("'L'") == Literal("L")

    def test_booleans_and_null(self):
        assert parse("TRUE") == Literal(True)
        assert parse("false") == Literal(False)
        assert parse("NULL") == Literal(None)

    def test_date_literal(self):
        assert parse("DATE '2008-01-01'") == Literal(datetime.date(2008, 1, 1))

    def test_timestamp_literal(self):
        assert parse("TIMESTAMP '2008-01-01 12:30:00'") == Literal(
            datetime.datetime(2008, 1, 1, 12, 30)
        )

    def test_bad_date_literal_raises(self):
        with pytest.raises(ParseError):
            parse("DATE 'not-a-date'")

    def test_negative_number_folds_into_literal(self):
        assert parse("-5") == Literal(-5)


class TestColumns:
    def test_unqualified(self):
        assert parse("balance") == ColumnRef("balance")

    def test_qualified(self):
        assert parse("Accounts.type") == ColumnRef("type", qualifier="Accounts")


class TestPrecedence:
    def test_multiplication_binds_tighter_than_addition(self):
        assert parse("1 + 2 * 3") == BinaryOp(
            "+", Literal(1), BinaryOp("*", Literal(2), Literal(3))
        )

    def test_parentheses_override(self):
        assert parse("(1 + 2) * 3") == BinaryOp(
            "*", BinaryOp("+", Literal(1), Literal(2)), Literal(3)
        )

    def test_comparison_binds_looser_than_arithmetic(self):
        expr = parse("a + 1 > b * 2")
        assert isinstance(expr, BinaryOp) and expr.op == ">"

    def test_and_binds_tighter_than_or(self):
        expr = parse("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not_binds_tighter_than_and(self):
        expr = parse("NOT a = 1 AND b = 2")
        assert expr.op == "AND"
        assert isinstance(expr.left, UnaryOp)

    def test_left_associativity_of_subtraction(self):
        assert parse("10 - 4 - 3") == BinaryOp(
            "-", BinaryOp("-", Literal(10), Literal(4)), Literal(3)
        )

    def test_concat_parses_at_additive_level(self):
        expr = parse("a || b || c")
        assert expr.op == "||"
        assert expr.left.op == "||"


class TestPredicates:
    def test_not_equal_normalizes(self):
        assert parse("a != 1") == parse("a <> 1")

    def test_is_null(self):
        assert parse("a IS NULL") == IsNull(ColumnRef("a"))

    def test_is_not_null(self):
        assert parse("a IS NOT NULL") == IsNull(ColumnRef("a"), negated=True)

    def test_in_list(self):
        expr = parse("t IN ('S', 'C')")
        assert isinstance(expr, InList)
        assert [i.value for i in expr.items] == ["S", "C"]

    def test_not_in_list(self):
        assert parse("t NOT IN (1)").negated is True

    def test_between(self):
        expr = parse("x BETWEEN 1 AND 10")
        assert isinstance(expr, Between)
        assert not expr.negated

    def test_not_between(self):
        assert parse("x NOT BETWEEN 1 AND 10").negated is True

    def test_between_and_disambiguation(self):
        # the AND after BETWEEN belongs to BETWEEN, the second to the
        # boolean conjunction
        expr = parse("x BETWEEN 1 AND 10 AND y = 2")
        assert expr.op == "AND"
        assert isinstance(expr.left, Between)

    def test_like(self):
        expr = parse("name LIKE 'A%'")
        assert isinstance(expr, Like)

    def test_not_like(self):
        assert parse("name NOT LIKE 'A%'").negated is True

    def test_dangling_not_raises(self):
        with pytest.raises(ParseError):
            parse("a NOT")


class TestCase:
    def test_searched_case(self):
        expr = parse(
            "CASE WHEN age < 30 THEN 'young' WHEN age < 60 THEN 'adult' "
            "ELSE 'senior' END"
        )
        assert isinstance(expr, Case)
        assert len(expr.whens) == 2
        assert expr.default == Literal("senior")

    def test_case_without_else(self):
        expr = parse("CASE WHEN a = 1 THEN 'x' END")
        assert expr.default is None

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse("CASE ELSE 1 END")


class TestCalls:
    def test_function_call(self):
        assert parse("UPPER(name)") == FunctionCall(
            "UPPER", [ColumnRef("name")]
        )

    def test_nested_calls(self):
        expr = parse("SUBSTR(TRIM(name), 1, 3)")
        assert isinstance(expr.args[0], FunctionCall)

    def test_zero_argument_call(self):
        assert parse("NOW()") == FunctionCall("NOW", [])

    def test_aggregate_sum(self):
        assert parse("SUM(balance)") == AggregateCall(
            "SUM", ColumnRef("balance")
        )

    def test_count_star(self):
        expr = parse("COUNT(*)")
        assert isinstance(expr, AggregateCall)
        assert expr.arg is None

    def test_count_distinct(self):
        assert parse("COUNT(DISTINCT c)").distinct is True

    def test_sum_star_is_illegal(self):
        with pytest.raises(ParseError):
            parse("SUM(*)")


class TestErrors:
    def test_trailing_input_raises(self):
        with pytest.raises(ParseError):
            parse("1 + 2 extra")

    def test_unbalanced_paren_raises(self):
        with pytest.raises(ParseError):
            parse("(1 + 2")

    def test_empty_input_raises(self):
        with pytest.raises(ParseError):
            parse("")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse("1 + + 2 zzz")
        assert info.value.position >= 0


class TestRoundTrip:
    EXAMPLES = [
        "Accounts.type <> 'L'",
        "(Customers.customerID = Accounts.customerID)",
        "totalBalance > 100000",
        "CASE WHEN (age < 30) THEN 'young' ELSE 'senior' END",
        "SUM(balance)",
        "(a IS NOT NULL)",
        "(x NOT BETWEEN 1 AND 2)",
        "(t IN ('a', 'b'))",
        "UPPER(name) || '!'",
        "NOT (a AND b)",
    ]

    @pytest.mark.parametrize("text", EXAMPLES)
    def test_to_sql_reparses_to_same_ast(self, text):
        ast = parse(text)
        assert parse(ast.to_sql()) == ast


class TestQuotedIdentifierParsing:
    def test_quoted_column_name(self):
        assert parse('"DSLink11.customerID"') == ColumnRef(
            "DSLink11.customerID"
        )

    def test_quoted_qualifier(self):
        assert parse('"names~4".customerID') == ColumnRef(
            "customerID", qualifier="names~4"
        )

    def test_rendering_quotes_when_needed(self):
        ref = ColumnRef("DSLink11.customerID", qualifier="n")
        assert ref.to_sql() == 'n."DSLink11.customerID"'
        assert parse(ref.to_sql()) == ref

    def test_plain_names_stay_unquoted(self):
        assert ColumnRef("balance").to_sql() == "balance"
