"""Static type checker unit tests."""

import pytest

from repro.errors import TypeCheckError
from repro.expr.parser import parse
from repro.expr.typecheck import TypeContext, check_boolean, infer_type
from repro.schema import BOOLEAN, DATE, FLOAT, INTEGER, STRING, relation


@pytest.fixture
def customers():
    return relation(
        "Customers",
        ("customerID", "int", False),
        ("name", "varchar"),
        ("age", "int"),
        ("memberSince", "date"),
        ("balance", "float"),
    )


@pytest.fixture
def accounts():
    return relation(
        "Accounts",
        ("accountID", "int", False),
        ("customerID", "int"),
        ("type", "char"),
        ("balance", "float"),
    )


class TestInference:
    def test_column_type(self, customers):
        assert infer_type(parse("age"), customers) is INTEGER

    def test_qualified_column(self, customers):
        context = TypeContext.of(customers)
        assert infer_type(parse("Customers.name"), context) is STRING

    def test_arithmetic_widens(self, customers):
        assert infer_type(parse("age + 1"), customers) is INTEGER
        assert infer_type(parse("age + balance"), customers) is FLOAT

    def test_division_is_float(self, customers):
        assert infer_type(parse("age / 2"), customers) is FLOAT

    def test_comparison_is_boolean(self, customers):
        assert infer_type(parse("age > 30"), customers) is BOOLEAN

    def test_concat_is_string(self, customers):
        assert infer_type(parse("name || '!'"), customers) is STRING

    def test_case_common_type(self, customers):
        expr = parse("CASE WHEN age < 30 THEN 'young' ELSE 'old' END")
        assert infer_type(expr, customers) is STRING

    def test_function_return_type(self, customers):
        assert infer_type(parse("UPPER(name)"), customers) is STRING
        assert infer_type(parse("LENGTH(name)"), customers) is INTEGER
        assert infer_type(parse("ADD_DAYS(memberSince, 10)"), customers) is DATE

    def test_null_literal_is_permissive(self, customers):
        assert infer_type(parse("COALESCE(NULL, age)"), customers) is INTEGER


class TestErrors:
    def test_unknown_column(self, customers):
        with pytest.raises(TypeCheckError):
            infer_type(parse("salary"), customers)

    def test_unknown_qualifier(self, customers):
        with pytest.raises(TypeCheckError):
            infer_type(parse("Orders.total"), TypeContext.of(customers))

    def test_ambiguous_across_relations(self, customers, accounts):
        with pytest.raises(TypeCheckError):
            infer_type(parse("balance"), TypeContext.of(customers, accounts))

    def test_qualified_resolves_ambiguity(self, customers, accounts):
        context = TypeContext.of(customers, accounts)
        assert infer_type(parse("Accounts.balance"), context) is FLOAT

    def test_arithmetic_on_string_rejected(self, customers):
        with pytest.raises(TypeCheckError):
            infer_type(parse("name + 1"), customers)

    def test_and_needs_booleans(self, customers):
        with pytest.raises(TypeCheckError):
            infer_type(parse("age AND TRUE"), customers)

    def test_incomparable_types_rejected(self, customers):
        with pytest.raises(TypeCheckError):
            infer_type(parse("name > age"), customers)

    def test_like_needs_strings(self, customers):
        with pytest.raises(TypeCheckError):
            infer_type(parse("age LIKE 'x%'"), customers)

    def test_unknown_function(self, customers):
        with pytest.raises(Exception):
            infer_type(parse("FROBNICATE(age)"), customers)

    def test_case_condition_must_be_boolean(self, customers):
        with pytest.raises(TypeCheckError):
            infer_type(parse("CASE WHEN age THEN 1 END"), customers)


class TestAggregates:
    def test_aggregates_forbidden_by_default(self, customers):
        with pytest.raises(TypeCheckError):
            infer_type(parse("SUM(balance)"), customers)

    def test_aggregate_types(self, customers):
        assert (
            infer_type(parse("SUM(balance)"), customers, allow_aggregates=True)
            is FLOAT
        )
        assert (
            infer_type(parse("COUNT(*)"), customers, allow_aggregates=True)
            is INTEGER
        )
        assert (
            infer_type(parse("AVG(age)"), customers, allow_aggregates=True)
            is FLOAT
        )
        assert (
            infer_type(parse("MIN(name)"), customers, allow_aggregates=True)
            is STRING
        )


class TestCheckBoolean:
    def test_accepts_predicate(self, customers):
        check_boolean(parse("age > 1 AND name IS NOT NULL"), customers)

    def test_rejects_scalar(self, customers):
        with pytest.raises(TypeCheckError):
            check_boolean(parse("age + 1"), customers)


class TestDottedColumns:
    def test_join_output_dotted_names_resolve(self):
        joined = relation(
            "J",
            ("L.customerID", "int"),
            ("R.customerID", "int"),
            ("balance", "float"),
        )
        context = TypeContext(joined)
        assert infer_type(parse("L.customerID"), context) is INTEGER
        assert infer_type(parse("R.customerID + 1"), context) is INTEGER
