"""Tokenizer unit tests."""

import pytest

from repro.errors import ParseError
from repro.expr import lexer
from repro.expr.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)][:-1]  # drop EOF


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == lexer.EOF

    def test_identifier(self):
        assert kinds("balance") == [lexer.IDENT, lexer.EOF]

    def test_identifier_with_underscore_and_digits(self):
        assert texts("total_balance_2") == ["total_balance_2"]

    def test_keyword_is_recognized_case_insensitively(self):
        for word in ("AND", "and", "And"):
            assert kinds(word) == [lexer.KEYWORD, lexer.EOF]

    def test_non_keyword_word_is_ident(self):
        assert kinds("sum") == [lexer.IDENT, lexer.EOF]

    def test_integer_number(self):
        assert texts("12345") == ["12345"]

    def test_decimal_number(self):
        assert texts("3.14") == ["3.14"]

    def test_scientific_notation(self):
        assert texts("1e5 2.5E-3") == ["1e5", "2.5E-3"]

    def test_string_literal(self):
        tokens = tokenize("'hello'")
        assert tokens[0].kind == lexer.STRING
        assert tokens[0].text == "hello"

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_illegal_character_raises_with_position(self):
        with pytest.raises(ParseError) as info:
            tokenize("a @ b")
        assert info.value.position == 2


class TestOperators:
    def test_comparison_operators(self):
        assert texts("= <> != < <= > >=") == [
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ]

    def test_arithmetic_and_concat(self):
        assert texts("+ - / % ||") == ["+", "-", "/", "%", "||"]

    def test_star_is_distinct_token(self):
        tokens = tokenize("a * b")
        assert tokens[1].kind == lexer.STAR

    def test_longest_match_wins(self):
        # <= must not tokenize as < followed by =
        tokens = tokenize("a<=b")
        assert [t.text for t in tokens[:3]] == ["a", "<=", "b"]


class TestStructure:
    def test_qualified_name_produces_dot(self):
        assert kinds("Accounts.type") == [
            lexer.IDENT, lexer.DOT, lexer.IDENT, lexer.EOF,
        ]

    def test_call_with_commas(self):
        assert kinds("f(a, b)") == [
            lexer.IDENT, lexer.LPAREN, lexer.IDENT, lexer.COMMA,
            lexer.IDENT, lexer.RPAREN, lexer.EOF,
        ]

    def test_positions_are_character_offsets(self):
        tokens = tokenize("ab + cd")
        assert [t.position for t in tokens[:3]] == [0, 3, 5]

    def test_whitespace_is_insignificant(self):
        assert texts("a   +\n\tb") == ["a", "+", "b"]


class TestQuotedIdentifiers:
    def test_quoted_identifier_with_dot(self):
        tokens = tokenize('"DSLink11.customerID"')
        assert tokens[0].kind == lexer.IDENT
        assert tokens[0].text == "DSLink11.customerID"

    def test_quoted_identifier_with_escape(self):
        tokens = tokenize('"a""b"')
        assert tokens[0].text == 'a"b'

    def test_unterminated_quoted_identifier_raises(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_quoted_keyword_stays_identifier(self):
        tokens = tokenize('"AND"')
        assert tokens[0].kind == lexer.IDENT
