"""Symbolic-algebra unit tests: substitution, negation, conjunction."""

import pytest

from repro.expr.algebra import (
    conjoin,
    disjoin,
    is_join_condition,
    is_simple_rename,
    is_trivially_true,
    negate,
    qualify,
    references_only,
    rename_qualifiers,
    split_conjuncts,
    strip_qualifiers,
    substitute,
    substitute_by_name,
    transform,
)
from repro.expr.ast import TRUE, BinaryOp, ColumnRef, Literal
from repro.expr.evaluator import evaluate
from repro.expr.parser import parse


class TestSubstitution:
    def test_replaces_matching_column(self):
        out = substitute_by_name(parse("a + b"), {"a": parse("x * 2")})
        assert out == parse("(x * 2) + b")

    def test_substitution_is_simultaneous_not_sequential(self):
        # swapping a and b must not cascade
        out = substitute_by_name(
            parse("a + b"), {"a": parse("b"), "b": parse("a")}
        )
        assert out == parse("b + a")

    def test_unqualified_key_matches_qualified_reference(self):
        out = substitute_by_name(parse("T.a + 1"), {"a": parse("z")})
        assert out == parse("z + 1")

    def test_qualified_key_only_matches_that_qualifier(self):
        out = substitute(
            parse("L.a + R.a"), {ColumnRef("a", "L"): parse("left_a")}
        )
        assert out == parse("left_a + R.a")

    def test_substitutes_inside_nested_structures(self):
        out = substitute_by_name(
            parse("CASE WHEN a > 1 THEN a ELSE 0 END"), {"a": parse("b + 1")}
        )
        assert out == parse("CASE WHEN (b + 1) > 1 THEN (b + 1) ELSE 0 END")

    def test_substitution_composes_semantically(self):
        # eval(subst(e, m), row) == eval(e, row extended with m's values)
        expr = parse("a * 2 + b")
        substituted = substitute_by_name(expr, {"a": parse("x + y")})
        row = {"x": 3, "y": 4, "b": 1}
        direct = evaluate(substituted, row)
        extended = dict(row, a=7)
        assert direct == evaluate(expr, extended) == 15


class TestQualifiers:
    def test_rename_qualifiers(self):
        out = rename_qualifiers(parse("L.a = R.b"), {"L": "X"})
        assert out == parse("X.a = R.b")

    def test_rename_to_none_unqualifies(self):
        out = rename_qualifiers(parse("L.a + 1"), {"L": None})
        assert out == parse("a + 1")

    def test_strip_all_qualifiers(self):
        assert strip_qualifiers(parse("L.a = R.b")) == parse("a = b")

    def test_qualify_adds_to_unqualified_only(self):
        out = qualify(parse("a + R.b"), "T")
        assert out == parse("T.a + R.b")


class TestNegation:
    def test_flips_comparisons(self):
        assert negate(parse("x > 10")) == parse("x <= 10")
        assert negate(parse("x = 1")) == parse("x <> 1")

    def test_double_negation_cancels(self):
        expr = parse("a LIKE 'x%'")
        assert negate(negate(expr)) == expr

    def test_boolean_literal(self):
        assert negate(Literal(True)) == Literal(False)

    def test_wraps_complex_predicates(self):
        out = negate(parse("a = 1 OR b = 2"))
        assert out == parse("NOT (a = 1 OR b = 2)")

    @pytest.mark.parametrize("x", [5, 15, None])
    def test_negation_preserves_unknown(self, x):
        # the row-only-once requirement: a NULL never satisfies the
        # predicate NOR its negation
        p = parse("x > 10")
        value = evaluate(p, {"x": x})
        negated = evaluate(negate(p), {"x": x})
        if value is None:
            assert negated is None
        else:
            assert negated == (not value)


class TestConjunction:
    def test_conjoin_empty_is_true(self):
        assert conjoin([]) == TRUE

    def test_conjoin_drops_trues_and_nones(self):
        assert conjoin([None, TRUE, parse("a = 1")]) == parse("a = 1")

    def test_split_flattens_nested_ands(self):
        conjuncts = split_conjuncts(parse("a = 1 AND (b = 2 AND c = 3)"))
        assert conjuncts == [parse("a = 1"), parse("b = 2"), parse("c = 3")]

    def test_split_then_conjoin_is_semantically_stable(self):
        expr = parse("a = 1 AND b = 2 AND c = 3")
        rebuilt = conjoin(split_conjuncts(expr))
        row = {"a": 1, "b": 2, "c": 3}
        assert evaluate(rebuilt, row) == evaluate(expr, row)

    def test_disjoin_empty_is_false(self):
        assert disjoin([]) == Literal(False)

    def test_disjoin_two(self):
        assert disjoin([parse("a = 1"), parse("b = 2")]) == parse(
            "a = 1 OR b = 2"
        )


class TestPredicateShapes:
    def test_is_trivially_true(self):
        assert is_trivially_true(TRUE)
        assert not is_trivially_true(parse("1 = 1"))

    def test_is_join_condition(self):
        assert is_join_condition(parse("L.id = R.id"))
        assert not is_join_condition(parse("L.id = 5"))
        assert not is_join_condition(parse("L.id = L.other"))

    def test_references_only(self):
        expr = parse("L.a + R.b")
        assert references_only(expr, ["L", "R"])
        assert not references_only(expr, ["L"])

    def test_is_simple_rename(self):
        assert is_simple_rename(parse("a"))
        assert not is_simple_rename(parse("a + 0"))


class TestTransform:
    def test_bottom_up_application(self):
        # rewrite every literal 1 into 2, bottom-up
        def bump(node):
            if isinstance(node, Literal) and node.value == 1:
                return Literal(2)
            return None

        assert transform(parse("1 + (1 * x)"), bump) == parse("2 + (2 * x)")

    def test_identity_returns_equal_tree(self):
        expr = parse("a AND b OR c")
        assert transform(expr, lambda n: None) == expr
