"""Property-based tests of the expression layer (hypothesis).

Invariants:

* ``parse(expr.to_sql()) == expr`` — rendering round-trips structurally,
* substitution followed by evaluation equals evaluation in the extended
  environment (the view-unfolding soundness the translations rely on),
* ``negate`` is an involution up to semantics and preserves *unknown*,
* ``conjoin(split_conjuncts(p))`` is semantically stable.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr.algebra import conjoin, negate, split_conjuncts, substitute_by_name
from repro.expr.ast import (
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.expr.evaluator import evaluate
from repro.expr.parser import parse

# --- strategies -----------------------------------------------------------------

COLUMNS = ("a", "b", "c")

numbers = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-100, max_value=100, allow_nan=False, width=32).map(
        lambda f: round(f, 3)
    ),
)

scalar_literals = st.one_of(
    numbers.map(Literal),
    st.sampled_from(["x", "yy", "z'z", ""]).map(Literal),
    st.just(Literal(None)),
)

columns = st.sampled_from(COLUMNS).map(ColumnRef)


def numeric_exprs(depth=2):
    base = st.one_of(numbers.map(Literal), columns)
    if depth == 0:
        return base
    sub = numeric_exprs(depth - 1)
    def negated(e):
        # the parser folds unary minus on numeric literals; generate the
        # same normal form so round-tripping is well-defined
        if isinstance(e, Literal) and isinstance(e.value, (int, float)):
            return Literal(-e.value)
        return UnaryOp("-", e)

    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: BinaryOp(t[0], t[1], t[2])
        ),
        sub.map(negated),
    )


def boolean_exprs(depth=2):
    comparison = st.tuples(
        st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        numeric_exprs(1),
        numeric_exprs(1),
    ).map(lambda t: BinaryOp(t[0], t[1], t[2]))
    is_null = numeric_exprs(1).map(IsNull)
    base = st.one_of(comparison, is_null, st.sampled_from([Literal(True), Literal(False)]))
    if depth == 0:
        return base
    sub = boolean_exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["AND", "OR"]), sub, sub).map(
            lambda t: BinaryOp(t[0], t[1], t[2])
        ),
        sub.map(lambda e: UnaryOp("NOT", e)),
    )


def mixed_exprs():
    return st.one_of(
        numeric_exprs(2),
        boolean_exprs(2),
        st.tuples(boolean_exprs(1), numeric_exprs(1), numeric_exprs(1)).map(
            lambda t: Case([(t[0], t[1])], t[2])
        ),
        st.lists(numeric_exprs(0), min_size=1, max_size=3).flatmap(
            lambda items: numeric_exprs(0).map(
                lambda operand: InList(operand, items)
            )
        ),
    )


rows = st.fixed_dictionaries(
    {
        name: st.one_of(st.none(), st.integers(min_value=-50, max_value=50))
        for name in COLUMNS
    }
)


# --- properties ------------------------------------------------------------------


class TestParseRenderRoundTrip:
    @given(mixed_exprs())
    @settings(max_examples=300, deadline=None)
    def test_to_sql_reparses_to_equal_ast(self, expr):
        assert parse(expr.to_sql()) == expr

    @given(mixed_exprs())
    @settings(max_examples=100, deadline=None)
    def test_rendering_is_deterministic(self, expr):
        assert expr.to_sql() == parse(expr.to_sql()).to_sql()


class TestStructuralEquality:
    @given(mixed_exprs())
    @settings(max_examples=100, deadline=None)
    def test_equal_expressions_have_equal_hash(self, expr):
        clone = parse(expr.to_sql())
        assert hash(clone) == hash(expr)

    @given(mixed_exprs())
    @settings(max_examples=100, deadline=None)
    def test_replace_children_identity(self, expr):
        rebuilt = expr.replace_children(list(expr.children()))
        assert rebuilt == expr


def _eval(expr, row):
    try:
        return ("ok", evaluate(expr, row))
    except Exception as exc:  # type errors on random trees are fine —
        return ("err", type(exc).__name__)  # both sides must agree


class TestSubstitutionSoundness:
    @given(numeric_exprs(2), numeric_exprs(1), rows)
    @settings(max_examples=200, deadline=None)
    def test_substitute_equals_extended_environment(self, expr, replacement, row):
        substituted = substitute_by_name(expr, {"a": replacement})
        status, value = _eval(replacement, row)
        if status == "err":
            return
        extended = dict(row, a=value)
        assert _eval(substituted, row) == _eval(expr, extended)


class TestNegation:
    @given(boolean_exprs(2), rows)
    @settings(max_examples=200, deadline=None)
    def test_negate_semantics(self, expr, row):
        status, value = _eval(expr, row)
        if status == "err":
            return
        neg_status, negated = _eval(negate(expr), row)
        assert neg_status == "ok"
        if value is None:
            assert negated is None  # unknown is preserved
        else:
            assert negated == (not value)

    @given(boolean_exprs(2), rows)
    @settings(max_examples=100, deadline=None)
    def test_double_negation_is_semantic_identity(self, expr, row):
        assert _eval(negate(negate(expr)), row) == _eval(expr, row)


class TestConjunctionStability:
    @given(st.lists(boolean_exprs(1), min_size=0, max_size=4), rows)
    @settings(max_examples=200, deadline=None)
    def test_conjoin_split_roundtrip(self, conjuncts, row):
        expr = conjoin(conjuncts)
        rebuilt = conjoin(split_conjuncts(expr))
        assert _eval(rebuilt, row) == _eval(expr, row)
