"""Unit tests for the expression compiler and the planner plumbing."""

import os

import pytest

from repro.errors import EvaluationError
from repro.exec import (
    ExpressionPlanner,
    default_compiled,
    resolve_compiled,
    set_default_compiled,
)
from repro.exec.compile_expr import compile_expr, compile_predicate, is_foldable
from repro.expr.ast import AggregateCall, ColumnRef, Literal
from repro.expr.evaluator import Environment
from repro.expr.parser import parse


def test_is_foldable():
    assert is_foldable(parse("1 + 2 * 3"))
    assert is_foldable(parse("'a' || 'b'"))
    assert not is_foldable(parse("a + 1"))
    assert not is_foldable(parse("UPPER('x')"))  # functions may be impure
    assert not is_foldable(AggregateCall("SUM", ColumnRef("v")))


def test_constant_folding_produces_constant_closure():
    compiled = compile_expr(parse("1 + 2 * 3"))
    assert compiled({}) == 7
    # folding off still computes the same value
    assert compile_expr(parse("1 + 2 * 3"), fold_constants=False)({}) == 7


def test_foldable_error_is_deferred_to_call_time():
    compiled = compile_expr(parse("1 / 0"))
    with pytest.raises(EvaluationError):
        compiled({})


def test_accepts_bare_mapping_and_environment():
    compiled = compile_expr(parse("x * 2"))
    assert compiled({"x": 21}) == 42
    assert compiled(Environment({"x": 21})) == 42


def test_literal_like_precompiles_pattern():
    compiled = compile_expr(parse("s LIKE 'ab%'"))
    assert compiled({"s": "abc"}) is True
    assert compiled({"s": "xbc"}) is False
    assert compiled({"s": None}) is None


def test_compile_predicate_reduces_unknown_to_false():
    predicate = compile_predicate(parse("x > 0"))
    assert predicate({"x": 1}) is True
    assert predicate({"x": None}) is False


def test_aggregate_per_row_raises():
    with pytest.raises(EvaluationError):
        compile_expr(AggregateCall("SUM", ColumnRef("v")))({})


def test_compiled_closure_keeps_expr_for_introspection():
    expr = parse("a + 1")
    assert compile_expr(expr).expr is expr


def test_planner_caches_per_expression():
    planner = ExpressionPlanner()
    one = planner.scalar(parse("a + 1"))
    two = planner.scalar(parse("a + 1"))
    assert one is two
    assert planner.predicate(parse("a > 1")) is planner.predicate(
        parse("a > 1")
    )


def test_default_compiled_env_var(monkeypatch):
    monkeypatch.delenv("REPRO_COMPILED", raising=False)
    assert default_compiled() is True
    monkeypatch.setenv("REPRO_COMPILED", "0")
    assert default_compiled() is False
    assert resolve_compiled(None) is False
    assert resolve_compiled(True) is True
    monkeypatch.setenv("REPRO_COMPILED", "1")
    assert default_compiled() is True


def test_set_default_compiled_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILED", "0")
    set_default_compiled(True)
    try:
        assert default_compiled() is True
    finally:
        set_default_compiled(None)
    assert default_compiled() is False


def test_interpreted_planner_reports_mode():
    assert ExpressionPlanner(compiled=False).compiled is False
    assert ExpressionPlanner(compiled=True).compiled is True
