"""Unit tests for the shared batch kernels."""

from repro.exec import ExpressionPlanner, kernels
from repro.expr.parser import parse
from repro.obs import Observability
from repro.schema.model import Attribute, Relation
from repro.schema.types import INTEGER, STRING

PLANNER = ExpressionPlanner()

ROWS = [
    {"id": 1, "grp": "a", "v": 10},
    {"id": 2, "grp": "b", "v": None},
    {"id": 3, "grp": "a", "v": 30},
    {"id": 4, "grp": None, "v": 40},
    {"id": 5, "grp": None, "v": 50},
]


def bind():
    return kernels.row_binder("T")


def test_group_key_value_nulls_and_numbers():
    assert kernels.group_key_value(None) == kernels.group_key_value(None)
    assert kernels.group_key_value(1) == kernels.group_key_value(1.0)
    assert kernels.group_key_value(True) != kernels.group_key_value(1)
    assert kernels.group_key_value("1") != kernels.group_key_value(1)


def test_filter_rows_drops_unknown():
    kept = kernels.filter_rows(
        ROWS, PLANNER.predicate(parse("v > 15")), bind()
    )
    assert [r["id"] for r in kept] == [3, 4, 5]  # NULL v drops


def test_filter_rows_qualified_reference():
    kept = kernels.filter_rows(
        ROWS, PLANNER.predicate(parse("T.id <= 2")), bind()
    )
    assert [r["id"] for r in kept] == [1, 2]


def test_project_rows_with_defaults():
    out = kernels.project_rows(
        ROWS[:2],
        [("double", PLANNER.scalar(parse("id * 2")))],
        bind(),
        defaults={"extra": None, "double": 0},
    )
    assert out == [
        {"extra": None, "double": 2},
        {"extra": None, "double": 4},
    ]


def test_route_rows_fallback_and_only_once():
    specs = [
        ("pred", PLANNER.predicate(parse("id < 3"))),
        ("pred", PLANNER.predicate(parse("id < 5"))),
        ("fallback", None),
    ]
    outs = kernels.route_rows(ROWS, specs, bind())
    assert [r["id"] for r in outs[0]] == [1, 2]
    assert [r["id"] for r in outs[1]] == [1, 2, 3, 4]
    assert [r["id"] for r in outs[2]] == [5]
    once = kernels.route_rows(ROWS, specs, bind(), only_once=True)
    assert [r["id"] for r in once[0]] == [1, 2]
    assert [r["id"] for r in once[1]] == [3, 4]  # 1,2 already matched
    assert [r["id"] for r in once[2]] == [5]


def test_route_rows_always_does_not_count_as_match():
    specs = [
        ("always", None),
        ("pred", PLANNER.predicate(parse("id = 1"))),
        ("fallback", None),
    ]
    outs = kernels.route_rows(ROWS, specs, bind())
    assert len(outs[0]) == len(ROWS)
    assert [r["id"] for r in outs[1]] == [1]
    assert [r["id"] for r in outs[2]] == [2, 3, 4, 5]


def test_route_rows_no_predicates_never_falls_back():
    outs = kernels.route_rows(ROWS, [("always", None), ("fallback", None)], bind())
    assert len(outs[0]) == len(ROWS)
    assert outs[1] == []


def test_switch_rows_first_match_and_default():
    outs = kernels.switch_rows(
        ROWS, PLANNER.scalar(parse("grp")), ["a", "b"], True, bind()
    )
    assert [r["id"] for r in outs[0]] == [1, 3]
    assert [r["id"] for r in outs[1]] == [2]
    assert [r["id"] for r in outs[2]] == [4, 5]  # NULL selector → default


def test_group_rows_null_keys_equal():
    groups = kernels.group_rows(ROWS, [PLANNER.scalar(parse("grp"))], bind())
    assert [[r["id"] for r in g] for g in groups] == [[1, 3], [2], [4, 5]]


def test_group_aggregate_rows():
    out = kernels.group_aggregate_rows(
        ROWS,
        ["grp"],
        [("total", PLANNER.aggregate(parse("SUM(v)")))],
    )
    assert out == [
        {"grp": "a", "total": 40},
        {"grp": "b", "total": None},
        {"grp": None, "total": 90},
    ]


def test_dedup_rows_first_and_last():
    first = kernels.dedup_rows(ROWS, ["grp"], "first")
    assert [r["id"] for r in first] == [1, 2, 4]
    last = kernels.dedup_rows(ROWS, ["grp"], "last")
    assert [r["id"] for r in last] == [3, 2, 5]


def test_union_rows_distinct():
    rows = kernels.union_rows(
        [[{"x": 1, "y": "p"}], [{"x": 1, "y": "p"}, {"x": None, "y": "q"}]],
        ["x", "y"],
        distinct=True,
    )
    assert rows == [{"x": 1, "y": "p"}, {"x": None, "y": "q"}]


def test_sort_rows_null_placement():
    # NULLs sort last in both directions
    rows = kernels.sort_rows(ROWS, [("grp", "asc"), ("id", "desc")])
    assert [r["id"] for r in rows] == [3, 1, 2, 5, 4]
    rows = kernels.sort_rows(ROWS, [("grp", "desc"), ("id", "asc")])
    assert [r["id"] for r in rows] == [2, 1, 3, 4, 5]


def test_sort_rows_mixed_types_nulls_last():
    # regression: a column mixing ints, strings, and NULLs must order
    # deterministically (numbers, then strings by type name, NULLs last)
    # instead of raising or placing NULLs first
    mixed = [
        {"id": 1, "k": "b"},
        {"id": 2, "k": None},
        {"id": 3, "k": 10},
        {"id": 4, "k": "a"},
        {"id": 5, "k": 2},
        {"id": 6, "k": None},
    ]
    ascending = kernels.sort_rows(mixed, [("k", "asc"), ("id", "asc")])
    assert [r["id"] for r in ascending] == [5, 3, 4, 1, 2, 6]
    descending = kernels.sort_rows(mixed, [("k", "desc"), ("id", "asc")])
    assert [r["id"] for r in descending] == [1, 4, 3, 5, 2, 6]


def test_nest_unnest_round_trip():
    nested = kernels.nest_rows(ROWS, ["grp"], ["id", "v"], "members")
    assert nested[0]["grp"] == "a"
    assert nested[0]["members"] == [{"id": 1, "v": 10}, {"id": 3, "v": 30}]
    flat = kernels.unnest_rows(nested, "members", ["grp"])
    assert sorted(r["id"] for r in flat) == [1, 2, 3, 4, 5]


def test_hash_join_and_residual():
    left_rel = Relation("L", [Attribute("k", INTEGER), Attribute("s", STRING)])
    right_rel = Relation("R", [Attribute("k", INTEGER), Attribute("t", STRING)])
    left = [
        {"k": 1, "s": "x"},
        {"k": 2, "s": "y"},
        {"k": None, "s": "z"},
    ]
    right = [
        {"k": 1.0, "t": "hit"},
        {"k": None, "t": "nope"},
        {"k": 3, "t": "miss"},
    ]
    condition = parse("L.k = R.k")

    def merge(lr, rr):
        return {
            "k": None if lr is None else lr["k"],
            "s": None if lr is None else lr["s"],
            "t": None if rr is None else rr["t"],
        }

    for kind, expected in [
        ("inner", [("x", "hit")]),
        ("left", [("x", "hit"), ("y", None), ("z", None)]),
        ("full", [("x", "hit"), ("y", None), ("z", None), (None, "nope"), (None, "miss")]),
    ]:
        out = []
        kernels.hash_join(
            left, right, left_rel, right_rel, condition, kind,
            merge, out.append, ExpressionPlanner(),
        )
        assert [(r["s"], r["t"]) for r in out] == expected, kind


def test_kernels_record_row_counts():
    obs = Observability(stats=True)
    kernels.filter_rows(ROWS, PLANNER.predicate(parse("id < 3")), bind(), obs=obs)
    assert obs.metrics.counter("exec.kernel.filter.rows_in") == len(ROWS)
    assert obs.metrics.counter("exec.kernel.filter.rows_out") == 2
