"""Randomized evaluator ↔ compiler parity suite.

The compiled closures must be observationally identical to the
tree-walking oracle: same values (including SQL three-valued logic over
NULL), and an :class:`EvaluationError` exactly when the oracle raises
one. This suite generates expressions over sample rows with a seeded
generator and checks both directions, then pins the classic
three-valued-logic corner cases explicitly.
"""

import random

import pytest

from repro.errors import EvaluationError
from repro.exec import ExpressionPlanner
from repro.exec.compile_expr import (
    compile_aggregate,
    compile_expr,
    compile_predicate,
)
from repro.expr.ast import (
    AggregateCall,
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.expr.evaluator import (
    Environment,
    evaluate,
    evaluate_aggregate,
    evaluate_predicate,
)

RELATION = "T"

#: NULL-heavy sample rows: every column is NULL somewhere.
ROWS = [
    {"a": 1, "b": 2, "f": 1.5, "s": "alpha", "flag": True},
    {"a": 0, "b": None, "f": -2.25, "s": "Beta", "flag": False},
    {"a": -7, "b": 100, "f": 0.0, "s": None, "flag": None},
    {"a": None, "b": 3, "f": None, "s": "", "flag": True},
    {"a": 42, "b": -1, "f": 3.5, "s": "a%b_c", "flag": None},
    {"a": None, "b": None, "f": None, "s": None, "flag": None},
]

INT_COLUMNS = ["a", "b"]
FLOAT_COLUMNS = ["f"]
STR_COLUMNS = ["s"]


def env_for(row):
    return Environment(row).bind(RELATION, row)


def oracle(expr, row):
    """(value, error_type) of the interpreter on one row."""
    try:
        return evaluate(expr, env_for(row)), None
    except EvaluationError as exc:
        return None, type(exc)


def check_parity(expr, rows=ROWS):
    compiled = compile_expr(expr)
    predicate = compile_predicate(expr)
    for row in rows:
        expected, error = oracle(expr, row)
        if error is not None:
            with pytest.raises(error):
                compiled(env_for(row))
            continue
        actual = compiled(env_for(row))
        assert actual == expected, (expr.to_sql(), row, actual, expected)
        assert type(actual) is type(expected), (expr.to_sql(), row)
        assert predicate(env_for(row)) == evaluate_predicate(
            expr, env_for(row)
        )


# --- random expression generator ---------------------------------------------


def gen_numeric(rng, depth):
    if depth <= 0 or rng.random() < 0.3:
        choice = rng.random()
        if choice < 0.4:
            return ColumnRef(
                rng.choice(INT_COLUMNS + FLOAT_COLUMNS),
                qualifier=RELATION if rng.random() < 0.3 else None,
            )
        if choice < 0.5:
            return Literal(None)
        if choice < 0.8:
            return Literal(rng.randint(-10, 10))
        return Literal(round(rng.uniform(-5, 5), 2))
    choice = rng.random()
    if choice < 0.6:
        op = rng.choice(["+", "-", "*", "/", "%"])
        return BinaryOp(
            op, gen_numeric(rng, depth - 1), gen_numeric(rng, depth - 1)
        )
    if choice < 0.7:
        return UnaryOp("-", gen_numeric(rng, depth - 1))
    if choice < 0.85:
        return FunctionCall("ABS", [gen_numeric(rng, depth - 1)])
    return Case(
        [(gen_boolean(rng, depth - 1), gen_numeric(rng, depth - 1))],
        gen_numeric(rng, depth - 1),
    )


def gen_string(rng, depth):
    if depth <= 0 or rng.random() < 0.4:
        if rng.random() < 0.6:
            return ColumnRef(rng.choice(STR_COLUMNS))
        return Literal(rng.choice(["x", "alpha", "", "%", None]))
    choice = rng.random()
    if choice < 0.4:
        return BinaryOp(
            "||", gen_string(rng, depth - 1), gen_string(rng, depth - 1)
        )
    if choice < 0.7:
        return FunctionCall(
            rng.choice(["UPPER", "LOWER", "TRIM"]),
            [gen_string(rng, depth - 1)],
        )
    return FunctionCall(
        "COALESCE", [gen_string(rng, depth - 1), gen_string(rng, depth - 1)]
    )


def gen_boolean(rng, depth):
    if depth <= 0 or rng.random() < 0.25:
        if rng.random() < 0.5:
            return ColumnRef("flag")
        return Literal(rng.choice([True, False, None]))
    choice = rng.random()
    if choice < 0.3:
        op = rng.choice(["AND", "OR"])
        return BinaryOp(
            op, gen_boolean(rng, depth - 1), gen_boolean(rng, depth - 1)
        )
    if choice < 0.45:
        return UnaryOp("NOT", gen_boolean(rng, depth - 1))
    if choice < 0.6:
        op = rng.choice(["=", "<>", "<", "<=", ">", ">="])
        return BinaryOp(
            op, gen_numeric(rng, depth - 1), gen_numeric(rng, depth - 1)
        )
    if choice < 0.7:
        return IsNull(
            gen_numeric(rng, depth - 1), negated=rng.random() < 0.5
        )
    if choice < 0.8:
        return InList(
            gen_numeric(rng, depth - 1),
            [
                Literal(rng.choice([1, 2, 42, None, -7]))
                for _ in range(rng.randint(1, 3))
            ],
            negated=rng.random() < 0.5,
        )
    if choice < 0.9:
        return Between(
            gen_numeric(rng, depth - 1),
            gen_numeric(rng, depth - 1),
            gen_numeric(rng, depth - 1),
            negated=rng.random() < 0.5,
        )
    return Like(
        gen_string(rng, depth - 1),
        Literal(rng.choice(["%a%", "a_b%", "", "%", "alpha"])),
        negated=rng.random() < 0.5,
    )


@pytest.mark.parametrize("seed", range(40))
def test_random_numeric_parity(seed):
    rng = random.Random(seed)
    for _ in range(8):
        check_parity(gen_numeric(rng, rng.randint(1, 4)))


@pytest.mark.parametrize("seed", range(40))
def test_random_boolean_parity(seed):
    rng = random.Random(seed + 1000)
    for _ in range(8):
        check_parity(gen_boolean(rng, rng.randint(1, 4)))


@pytest.mark.parametrize("seed", range(20))
def test_random_string_parity(seed):
    rng = random.Random(seed + 2000)
    for _ in range(8):
        check_parity(gen_string(rng, rng.randint(1, 4)))


def test_interpreting_planner_matches_compiling_planner():
    rng = random.Random(7)
    compiled = ExpressionPlanner(compiled=True)
    interpreted = ExpressionPlanner(compiled=False)
    for _ in range(50):
        expr = gen_boolean(rng, 3)
        for row in ROWS:
            try:
                a = compiled.scalar(expr)(env_for(row))
                a_err = None
            except EvaluationError as exc:
                a, a_err = None, type(exc)
            try:
                b = interpreted.scalar(expr)(env_for(row))
                b_err = None
            except EvaluationError as exc:
                b, b_err = None, type(exc)
            assert a_err == b_err and a == b, expr.to_sql()


# --- pinned three-valued-logic corner cases ----------------------------------


TVL = [True, False, None]


def test_and_or_not_truth_tables():
    for x in TVL:
        for y in TVL:
            check_parity(
                BinaryOp("AND", Literal(x), Literal(y)), rows=[ROWS[0]]
            )
            check_parity(
                BinaryOp("OR", Literal(x), Literal(y)), rows=[ROWS[0]]
            )
        check_parity(UnaryOp("NOT", Literal(x)), rows=[ROWS[0]])


def test_null_comparisons_are_unknown():
    expr = BinaryOp("=", ColumnRef("b"), Literal(2))
    compiled = compile_expr(expr)
    assert compiled(env_for(ROWS[1])) is None  # b is NULL → unknown
    assert compile_predicate(expr)(env_for(ROWS[1])) is False


def test_in_list_null_semantics():
    # 5 IN (1, NULL) is unknown, 1 IN (1, NULL) is true
    assert compile_expr(
        InList(Literal(5), [Literal(1), Literal(None)])
    )({}) is None
    assert compile_expr(
        InList(Literal(1), [Literal(1), Literal(None)])
    )({}) is True
    # NOT IN flips true/false but keeps unknown
    assert compile_expr(
        InList(Literal(5), [Literal(1), Literal(None)], negated=True)
    )({}) is None


def test_between_null_semantics():
    # 5 BETWEEN NULL AND 10 is unknown; 20 BETWEEN NULL AND 10 is false
    assert compile_expr(
        Between(Literal(5), Literal(None), Literal(10))
    )({}) is None
    assert compile_expr(
        Between(Literal(20), Literal(None), Literal(10))
    )({}) is False


def test_like_null_semantics():
    assert compile_expr(
        Like(Literal(None), Literal("%a%"))
    )({}) is None
    assert compile_expr(Like(Literal("abc"), Literal("a%")))({}) is True


def test_error_parity_division_by_zero():
    expr = BinaryOp("/", ColumnRef("a"), Literal(0))
    check_parity(expr)


def test_error_parity_unknown_column():
    expr = ColumnRef("nope")
    check_parity(expr)


def test_error_parity_incomparable_types():
    expr = BinaryOp(">", Literal("x"), Literal(1))
    check_parity(expr)


def test_null_propagating_call_still_evaluates_later_args():
    # the oracle evaluates LENGTH(s) even when the first argument is
    # NULL — an error in a later argument must surface identically
    expr = FunctionCall(
        "MOD", [Literal(None), BinaryOp("/", Literal(1), Literal(0))]
    )
    check_parity(expr, rows=[ROWS[0]])


def test_aggregate_parity():
    rows = [
        {"v": 3},
        {"v": None},
        {"v": 3},
        {"v": 1.5},
        {"v": None},
        {"v": 7},
    ]
    for func in ["COUNT", "SUM", "AVG", "MIN", "MAX", "FIRST", "LAST"]:
        for distinct in (False, True):
            agg = AggregateCall(func, ColumnRef("v"), distinct)
            assert compile_aggregate(agg)(rows) == evaluate_aggregate(
                agg, rows
            ), (func, distinct)
    star = AggregateCall("COUNT", None)
    assert compile_aggregate(star)(rows) == evaluate_aggregate(star, rows)
    empty = AggregateCall("SUM", ColumnRef("v"))
    assert compile_aggregate(empty)([]) is None
    assert evaluate_aggregate(empty, []) is None
