"""Randomized row ↔ block compiler and engine-mode parity suite.

The columnar tier must be observationally identical to the row tier:
:func:`compile_block_expr` evaluated over a :class:`RowBlock` must
return exactly what the tree-walking oracle returns row by row
(values, Python types, SQL three-valued logic, and errors), and the
three engine modes (interpreted / compiled-row / batched) must compute
identical instances for every runtime at every batch size.

Reuses the seeded expression generators and NULL-heavy sample rows from
:mod:`tests.exec.test_parity`.
"""

import random

import pytest

from repro.errors import EvaluationError
from repro.etl.engine import EtlEngine
from repro.exec.block import RowBlock, relation_resolver
from repro.exec.compile_block import (
    aggregate_values_reducer,
    compile_block_expr,
    compile_block_predicate,
)
from repro.exec.compile_expr import compile_aggregate
from repro.expr.ast import (
    AggregateCall,
    BinaryOp,
    ColumnRef,
    FunctionCall,
    InList,
    Literal,
)
from repro.expr.evaluator import evaluate_predicate
from repro.fasttrack.orchid import Orchid
from repro.mapping.executor import MappingExecutor
from repro.obs import Observability
from repro.ohm.engine import OhmExecutor
from repro.workloads import (
    build_example_job,
    build_kitchen_sink_job,
    generate_instance,
    generate_kitchen_sink_instance,
)
from tests.exec.test_parity import (
    RELATION,
    ROWS,
    env_for,
    gen_boolean,
    gen_numeric,
    gen_string,
    oracle,
)

NAMES = list(ROWS[0])


def block_for(rows):
    return RowBlock.from_rows(NAMES, rows)


def check_block_parity(expr, rows=ROWS):
    """The block compiler must agree with the row oracle on every row:
    same value, same Python type, same error class, same WHERE flag."""
    resolve = relation_resolver(RELATION, NAMES)
    fn = compile_block_expr(expr, None, resolve)
    predicate = compile_block_predicate(expr, None, resolve)
    # everything the generators emit is lowerable — a silent fallback
    # here would quietly skip the whole parity check
    assert fn is not None, expr.to_sql()
    expected = [oracle(expr, row) for row in rows]
    for row, (value, error) in zip(rows, expected):
        single = block_for([row])
        if error is not None:
            with pytest.raises(error):
                fn(single)
            continue
        (actual,) = fn(single)
        assert actual == value, (expr.to_sql(), row, actual, value)
        assert type(actual) is type(value), (expr.to_sql(), row)
        (flag,) = predicate(single)
        assert flag == evaluate_predicate(expr, env_for(row))
    if not any(error for _v, error in expected):
        # whole-block evaluation must equal the row-wise transcript too
        # (chunking/zip bugs don't show up on single-row blocks)
        assert fn(block_for(rows)) == [value for value, _e in expected]


@pytest.mark.parametrize("seed", range(30))
def test_random_numeric_block_parity(seed):
    rng = random.Random(seed + 5000)
    for _ in range(8):
        check_block_parity(gen_numeric(rng, rng.randint(1, 4)))


@pytest.mark.parametrize("seed", range(30))
def test_random_boolean_block_parity(seed):
    rng = random.Random(seed + 6000)
    for _ in range(8):
        check_block_parity(gen_boolean(rng, rng.randint(1, 4)))


@pytest.mark.parametrize("seed", range(15))
def test_random_string_block_parity(seed):
    rng = random.Random(seed + 7000)
    for _ in range(8):
        check_block_parity(gen_string(rng, rng.randint(1, 4)))


# --- fallback and error-deferral contracts ------------------------------------


def test_unresolvable_column_falls_back_to_rows():
    expr = ColumnRef("nope")
    resolve = relation_resolver(RELATION, NAMES)
    assert compile_block_expr(expr, None, resolve) is None
    assert compile_block_predicate(expr, None, resolve) is None


def test_non_constant_in_list_falls_back_to_rows():
    # the row path evaluates IN items lazily per row — only a constant
    # list is expressible as a column function
    expr = InList(ColumnRef("a"), [ColumnRef("b")])
    assert (
        compile_block_expr(expr, None, relation_resolver(RELATION, NAMES))
        is None
    )


def test_aggregate_call_falls_back_to_rows():
    expr = AggregateCall("SUM", ColumnRef("a"))
    assert (
        compile_block_expr(expr, None, relation_resolver(RELATION, NAMES))
        is None
    )


def test_foldable_error_defers_and_skips_empty_blocks():
    # the row path raises 1/0 once per row — and therefore not at all
    # over zero rows; the block function must match both behaviours
    expr = BinaryOp("/", Literal(1), Literal(0))
    fn = compile_block_expr(expr, None, relation_resolver(RELATION, NAMES))
    assert fn(block_for([])) == []
    with pytest.raises(EvaluationError):
        fn(block_for(ROWS))


def test_case_laziness_matches_row_path():
    # CASE must evaluate each WHEN's value only on matching rows: the
    # row oracle never divides by zero for a = 1, so neither may the
    # block path even though other rows take the error-free branch
    from repro.expr.ast import Case

    expr = Case(
        [
            (
                BinaryOp("=", ColumnRef("a"), Literal(1)),
                Literal(99),
            )
        ],
        BinaryOp("/", Literal(100), ColumnRef("a")),
    )
    rows = [{**ROWS[0], "a": 1}, {**ROWS[0], "a": 4}]
    fn = compile_block_expr(expr, None, relation_resolver(RELATION, NAMES))
    assert fn(block_for(rows)) == [99, 25.0]
    with pytest.raises(EvaluationError):
        # a = 0 falls through to the default → division by zero, exactly
        # like the oracle
        fn(block_for([{**ROWS[0], "a": 0}]))


def test_qualified_references_resolve_like_environment_lookup():
    expr = BinaryOp(
        "+",
        ColumnRef("a", qualifier=RELATION),
        ColumnRef("b"),
    )
    check_block_parity(expr)
    # an unknown qualifier falls through to the plain anonymous column,
    # exactly like Environment.lookup
    check_block_parity(ColumnRef("a", qualifier="Other"))
    # but a qualified miss on every fall-through → row fallback (the row
    # path raises its own unbound-column error), never a guess
    assert (
        compile_block_expr(
            ColumnRef("nope", qualifier="Other"),
            None,
            relation_resolver(RELATION, NAMES),
        )
        is None
    )


def test_aggregate_reducer_matches_row_aggregates():
    rows = [{"v": 3}, {"v": None}, {"v": 3}, {"v": 1.5}, {"v": None}, {"v": 7}]
    values = [row["v"] for row in rows]
    for func in ["COUNT", "SUM", "AVG", "MIN", "MAX", "FIRST", "LAST"]:
        for distinct in (False, True):
            agg = AggregateCall(func, ColumnRef("v"), distinct)
            assert aggregate_values_reducer(agg)(values) == compile_aggregate(
                agg
            )(rows), (func, distinct)
    empty = AggregateCall("SUM", ColumnRef("v"))
    assert aggregate_values_reducer(empty)([]) is None
    assert aggregate_values_reducer(AggregateCall("COUNT", ColumnRef("v")))(
        []
    ) == 0


# --- engine-level three-mode agreement ----------------------------------------


def test_three_modes_agree_on_kitchen_sink():
    job = build_kitchen_sink_job()
    instance = generate_kitchen_sink_instance(n_orders=150)
    interpreted = EtlEngine(compiled=False).execute(job, instance)
    compiled = EtlEngine(compiled=True, batched=False).execute(job, instance)
    batched = EtlEngine(compiled=True, batched=True).execute(job, instance)
    assert compiled.same_bags(interpreted)
    assert batched.same_bags(interpreted)


def test_all_three_runtimes_agree_batched():
    job = build_example_job()
    instance = generate_instance(n_customers=80)
    orchid = Orchid()
    graph = orchid.import_etl(job)
    mappings = orchid.to_mappings(graph)
    baseline = EtlEngine(compiled=False).execute(job, instance)
    assert (
        EtlEngine(compiled=True, batched=True)
        .execute(job, instance)
        .same_bags(baseline)
    )
    assert (
        OhmExecutor(compiled=True, batched=True)
        .execute(graph, instance)
        .same_bags(baseline)
    )
    assert (
        MappingExecutor(compiled=True, batched=True)
        .execute(mappings, instance)
        .same_bags(baseline)
    )


@pytest.mark.parametrize("batch_size", [3, 256, 1024])
def test_batch_sizes_agree(batch_size):
    job = build_kitchen_sink_job()
    instance = generate_kitchen_sink_instance(n_orders=90)
    baseline = EtlEngine(compiled=True, batched=False).execute(job, instance)
    batched = EtlEngine(
        compiled=True, batched=True, batch_size=batch_size
    ).execute(job, instance)
    assert batched.same_bags(baseline)


def test_batched_mode_emits_block_metrics_row_mode_does_not():
    job = build_kitchen_sink_job()
    instance = generate_kitchen_sink_instance(n_orders=40)

    obs = Observability(stats=True)
    EtlEngine(obs=obs, compiled=True, batched=True).execute(job, instance)
    block_counters = [
        name
        for name in obs.metrics.snapshot()["counters"]
        if name.startswith("exec.block.")
    ]
    assert block_counters, "batched run must report exec.block.* counters"

    obs = Observability(stats=True)
    EtlEngine(obs=obs, compiled=True, batched=False).execute(job, instance)
    assert not any(
        name.startswith("exec.block.")
        for name in obs.metrics.snapshot()["counters"]
    )


def test_coalesce_block_parity_over_nulls():
    expr = FunctionCall("COALESCE", [ColumnRef("s"), Literal("fallback")])
    check_block_parity(expr)
