"""Determinism audit for the parallel tier: serial vs ``workers`` ∈
{2, 4, 8} must agree on the accepted AND the rejected row multisets
across all three runtimes (ETL engine, OHM executor, mapping executor),
and the merge order of every materialized link must be *exactly* the
serial order — not just bag-equal. The partitioned-kernel threshold is
dropped to 1 row so the small seeded workloads actually exercise
partitioning (see ``docs/execution-model.md``).
"""

from collections import Counter

import pytest

from repro.compile import compile_job
from repro.etl import EtlEngine
from repro.exec.parallel import set_parallel_threshold
from repro.faults import FaultPlan
from repro.mapping import MappingExecutor, ohm_to_mappings
from repro.obs import Observability
from repro.ohm import OhmExecutor
from repro.resilience import format_row
from repro.workloads import (
    build_example_job,
    build_faulty_job,
    build_star_join_job,
    generate_faulty_instance,
    generate_instance,
    generate_star_instance,
)

WORKER_COUNTS = [2, 4, 8]


@pytest.fixture(autouse=True)
def _engage_partitioning():
    # partition counts derive from data size alone; dropping the
    # threshold makes the seeded workloads large enough to partition
    set_parallel_threshold(1)
    yield
    set_parallel_threshold(None)


def run_etl(instance, policy, workers):
    engine = EtlEngine(
        compiled=True, batched=True, on_error=policy,
        parallel=workers is not None, workers=workers or 1,
    )
    targets, _ = engine.run(build_faulty_job(), instance)
    accepted = Counter(format_row(r) for r in targets.dataset("Premium").rows)
    rejected = Counter(format_row(r.row) for r in engine.last_run.rejected)
    return accepted, rejected


def run_ohm(instance, policy, workers):
    graph = compile_job(build_faulty_job())
    executor = OhmExecutor(
        compiled=True, batched=True, on_error=policy,
        parallel=workers is not None, workers=workers or 1,
    )
    targets, _edges, rejects = executor.run_with_rejects(graph, instance)
    accepted = Counter(format_row(r) for r in targets.dataset("Premium").rows)
    rejected = Counter(r["row"] for r in rejects.rows)
    return accepted, rejected


def run_mapping(instance, policy, workers):
    mappings = ohm_to_mappings(compile_job(build_faulty_job()))
    executor = MappingExecutor(
        compiled=True, batched=True, on_error=policy,
        parallel=workers is not None, workers=workers or 1,
    )
    targets, _inter, rejects = executor.run_with_rejects(mappings, instance)
    accepted = Counter(format_row(r) for r in targets.dataset("Premium").rows)
    rejected = Counter(r["row"] for r in rejects.rows)
    return accepted, rejected


RUNTIMES = [("etl", run_etl), ("ohm", run_ohm), ("mapping", run_mapping)]


class TestWorkerCountParity:
    """Accepted and rejected multisets must be invariant under the
    worker count — the rejected channel included, because row-error
    policies run inside worker tasks."""

    @pytest.mark.parametrize("runtime", RUNTIMES, ids=lambda r: r[0])
    def test_rejected_multiset_matches_serial(self, runtime):
        _name, runner = runtime
        instance, plan = generate_faulty_instance(n=60, seed=11, poison=7)
        serial = runner(instance, "reject", None)
        assert sum(serial[1].values()) == 7
        for workers in WORKER_COUNTS:
            result = runner(instance, "reject", workers)
            assert result == serial, f"{_name} diverged at workers={workers}"

    @pytest.mark.parametrize("runtime", RUNTIMES, ids=lambda r: r[0])
    def test_skip_policy_matches_serial(self, runtime):
        _name, runner = runtime
        instance, _ = generate_faulty_instance(n=45, seed=12, poison=5)
        serial = runner(instance, "skip", None)
        for workers in WORKER_COUNTS:
            assert runner(instance, "skip", workers) == serial

    def test_three_runtimes_agree_under_parallelism(self):
        instance, _ = generate_faulty_instance(n=60, seed=19, poison=6)
        reference = run_etl(instance, "reject", None)
        for _name, runner in RUNTIMES:
            assert runner(instance, "reject", 4) == reference, _name


class TestExactOrder:
    """Stronger than bag equality: every materialized link/edge must
    carry its rows in the exact serial order, so order-sensitive
    downstream operators (dedup ``retain=first``, stable sorts) cannot
    tell the tiers apart."""

    def test_etl_links_byte_identical(self):
        job = build_example_job()
        instance = generate_instance(n_customers=250, seed=23)
        _t, serial_links = EtlEngine(compiled=True, batched=True).run(
            job, instance
        )
        for workers in WORKER_COUNTS:
            _t, links = EtlEngine(
                compiled=True, batched=True, parallel=True, workers=workers
            ).run(job, instance)
            assert set(links) == set(serial_links)
            for name in serial_links:
                assert links[name].rows == serial_links[name].rows, (
                    f"link {name} reordered at workers={workers}"
                )

    def test_ohm_edges_byte_identical(self):
        graph = compile_job(build_example_job())
        instance = generate_instance(n_customers=250, seed=23)
        _t, serial_edges = OhmExecutor(compiled=True, batched=True).run(
            graph, instance
        )
        for workers in WORKER_COUNTS:
            _t, edges = OhmExecutor(
                compiled=True, batched=True, parallel=True, workers=workers
            ).run(graph, instance)
            for name in serial_edges:
                assert edges[name].rows == serial_edges[name].rows, (
                    f"edge {name} reordered at workers={workers}"
                )

    def test_wide_graph_runs_real_waves(self):
        # the star join has genuinely independent sources: assert the
        # wavefront actually fans out AND the result is still exact
        job = build_star_join_job(4)
        instance = generate_star_instance(4, n_facts=300, seed=5)
        serial_t, serial_links = EtlEngine(compiled=True, batched=True).run(
            job, instance
        )
        obs = Observability(stats=True)
        engine = EtlEngine(
            compiled=True, batched=True, parallel=True, workers=4, obs=obs
        )
        _t, links = engine.run(job, instance)
        counters = obs.metrics.snapshot()["counters"]
        assert counters.get("exec.parallel.waves", 0) >= 1
        assert counters.get("exec.parallel.tasks", 0) >= 4
        for name in serial_links:
            assert links[name].rows == serial_links[name].rows, name


class TestWorkerFailureDegradation:
    """Injected per-partition faults (``tier="parallel"``) and broken
    executors must degrade to serial execution without changing any
    result, counted in ``exec.degrade.parallel_to_serial``."""

    # the mapping executor's block path only lowers single-source,
    # non-grouping mappings, so it never spawns partition tasks — its
    # parallel tier is wavefront-only (covered by the broken-executor
    # test below)
    @pytest.mark.parametrize("runtime", ["etl", "ohm"])
    def test_partition_faults_keep_parity(self, runtime):
        # the example job joins and aggregates, so its partitioned
        # kernels spawn the partition tasks the "parallel" tier faults
        job = build_example_job()
        instance = generate_instance(n_customers=250, seed=14)
        graph = compile_job(job)

        def run(workers):
            kwargs = dict(
                compiled=True, batched=True,
                parallel=workers is not None, workers=workers or 1,
            )
            if runtime == "etl":
                return EtlEngine(**kwargs).execute(job, instance)
            return OhmExecutor(**kwargs).execute(graph, instance)

        serial = run(None)
        plan = FaultPlan(seed=14).fault_kernels(tier="parallel", first=3)
        with plan.injected():
            result = run(4)
        assert plan.kernel_faults_fired.get("parallel", 0) >= 1
        assert result.same_bags(serial), (
            f"{runtime} changed results under faults"
        )

    def test_degrade_counter_fires(self):
        job = build_example_job()
        instance = generate_instance(n_customers=250, seed=23)
        serial_t, _ = EtlEngine(compiled=True, batched=True).run(
            job, instance
        )
        obs = Observability(stats=True)
        plan = FaultPlan(seed=7).fault_kernels(tier="parallel", first=2)
        with plan.injected():
            targets, _ = EtlEngine(
                compiled=True, batched=True, parallel=True, workers=4, obs=obs
            ).run(job, instance)
        assert targets.same_bags(serial_t)
        counters = obs.metrics.snapshot()["counters"]
        assert counters.get("exec.degrade.parallel_to_serial", 0) >= 1

    def test_broken_executor_degrades_every_wave(self):
        from repro.exec.parallel import set_default_executor

        class _Broken:
            def submit(self, fn):
                raise RuntimeError("pool shut down")

        job = build_example_job()
        instance = generate_instance(n_customers=120, seed=3)
        serial_t, serial_links = EtlEngine(compiled=True, batched=True).run(
            job, instance
        )
        obs = Observability(stats=True)
        set_default_executor(_Broken())
        try:
            _t, links = EtlEngine(
                compiled=True, batched=True, parallel=True, workers=4, obs=obs
            ).run(job, instance)
        finally:
            set_default_executor(None)
        for name in serial_links:
            assert links[name].rows == serial_links[name].rows, name
        counters = obs.metrics.snapshot()["counters"]
        assert counters.get("exec.degrade.parallel_to_serial", 0) >= 1
