"""Cross-runtime checks of the compiled/interpreted escape hatch and the
re-entrancy fix.

The three runtimes must produce identical results in both execution
modes (the interpreter is the semantic oracle), and executors must carry
no run-scoped state that a concurrent or recursive run could stomp.
"""

from repro.data.dataset import Dataset, Instance
from repro.etl.engine import EtlEngine
from repro.fasttrack.orchid import Orchid
from repro.mapping.executor import MappingExecutor
from repro.ohm.engine import OhmExecutor
from repro.ohm.graph import OhmGraph
from repro.ohm.operators import Filter, Source, Target, Unknown
from repro.schema.model import Attribute, Relation
from repro.schema.types import INTEGER
from repro.workloads import (
    build_example_job,
    build_kitchen_sink_job,
    generate_instance,
    generate_kitchen_sink_instance,
)


def test_etl_engine_modes_agree_on_kitchen_sink():
    job = build_kitchen_sink_job()
    instance = generate_kitchen_sink_instance(n_orders=120)
    compiled = EtlEngine(compiled=True).execute(job, instance)
    interpreted = EtlEngine(compiled=False).execute(job, instance)
    assert compiled.same_bags(interpreted)


def test_all_three_runtimes_agree_in_both_modes():
    job = build_example_job()
    instance = generate_instance(n_customers=60)
    orchid = Orchid()
    graph = orchid.import_etl(job)
    mappings = orchid.to_mappings(graph)
    baseline = EtlEngine(compiled=False).execute(job, instance)
    for compiled in (True, False):
        assert OhmExecutor(compiled=compiled).execute(
            graph, instance
        ).same_bags(baseline)
        assert MappingExecutor(compiled=compiled).execute(
            mappings, instance
        ).same_bags(baseline)
    assert EtlEngine(compiled=True).execute(job, instance).same_bags(baseline)


def _passthrough_graph(source_name: str) -> OhmGraph:
    relation = Relation(source_name, [Attribute("x", INTEGER)])
    graph = OhmGraph(f"g_{source_name}")
    src = graph.add(Source(relation))
    flt = graph.add(Filter("x >= 0"))
    tgt = graph.add(Target(relation.renamed(f"{source_name}_out")))
    graph.connect(src, flt)
    graph.connect(flt, tgt)
    return graph


def test_ohm_executor_is_reentrant():
    # an UNKNOWN operator whose behaviour runs ANOTHER graph on the SAME
    # executor mid-run — with class-level run state this would stomp the
    # outer run's source instance
    executor = OhmExecutor()

    inner_graph = _passthrough_graph("Inner")
    inner_relation = Relation("Inner", [Attribute("x", INTEGER)])
    inner_instance = Instance()
    inner_data = Dataset(inner_relation)
    for value in (10, 20):
        inner_data.append({"x": value})
    inner_instance.put(inner_data)

    def nested_run(inputs):
        targets = executor.execute(inner_graph, inner_instance)
        assert sorted(r["x"] for r in targets.dataset("Inner_out")) == [10, 20]
        return [[dict(r) for r in inputs[0]]]

    outer_relation = Relation("Outer", [Attribute("x", INTEGER)])
    graph = OhmGraph("outer")
    src = graph.add(Source(outer_relation))
    unknown = graph.add(
        Unknown([outer_relation], "nested", executor=nested_run)
    )
    tgt = graph.add(Target(outer_relation.renamed("Outer_out")))
    graph.connect(src, unknown)
    graph.connect(unknown, tgt)

    outer_instance = Instance()
    outer_data = Dataset(outer_relation)
    for value in (1, 2, 3):
        outer_data.append({"x": value})
    outer_instance.put(outer_data)

    targets = executor.execute(graph, outer_instance)
    assert sorted(r["x"] for r in targets.dataset("Outer_out")) == [1, 2, 3]


def test_ohm_executor_keeps_no_run_state():
    assert not hasattr(OhmExecutor, "_source_instance")
