"""Parity audit for the fused (selection-vector) tier.

Fusion must be invisible: for every runtime (ETL engine, OHM executor,
mapping executor), serial or parallel, under the skip and reject row
policies, a fused run must produce byte-identical accepted rows and the
identical rejected multiset as the unfused block tier — including NULL
three-valued logic and rows erroring mid-chain. Randomized linear chains
(length 1–6, NULL-heavy data, optional non-fusable breakers mid-chain)
stress the chain compiler beyond the fixed workloads, and a poisoned
fused chain must fall back to the block kernels with identical output
(``exec.degrade.fused_to_block``).
"""

import random
from collections import Counter

import pytest

from repro.compile import compile_job
from repro.data.dataset import Dataset, Instance
from repro.etl import EtlEngine
from repro.etl.model import Job
from repro.etl.stages import (
    AggregatorStage,
    CopyStage,
    FilterOutput,
    FilterStage,
    Modify,
    RemoveDuplicatesStage,
    SortStage,
    SwitchStage,
    TableSource,
    TableTarget,
    Transformer,
)
from repro.etl.stages.transform import OutputLink
from repro.exec.fuse import FusedBlock, fuse_source, materialize_fused
from repro.faults import FaultPlan
from repro.mapping import MappingExecutor, ohm_to_mappings
from repro.obs import Observability
from repro.ohm import OhmExecutor
from repro.resilience import format_row
from repro.schema.model import relation
from repro.workloads import build_faulty_job, generate_faulty_instance


# -- the three runtimes, fused on/off ----------------------------------------


def run_etl(instance, policy, workers, fused):
    engine = EtlEngine(
        compiled=True, batched=True, on_error=policy, fused=fused,
        parallel=workers is not None, workers=workers or 1,
    )
    targets, _ = engine.run(build_faulty_job(), instance)
    accepted = Counter(format_row(r) for r in targets.dataset("Premium").rows)
    rejected = Counter(format_row(r.row) for r in engine.last_run.rejected)
    return accepted, rejected


def run_ohm(instance, policy, workers, fused):
    graph = compile_job(build_faulty_job())
    executor = OhmExecutor(
        compiled=True, batched=True, on_error=policy, fused=fused,
        parallel=workers is not None, workers=workers or 1,
    )
    targets, _edges, rejects = executor.run_with_rejects(graph, instance)
    accepted = Counter(format_row(r) for r in targets.dataset("Premium").rows)
    rejected = Counter(r["row"] for r in rejects.rows)
    return accepted, rejected


def run_mapping(instance, policy, workers, fused):
    mappings = ohm_to_mappings(compile_job(build_faulty_job()))
    executor = MappingExecutor(
        compiled=True, batched=True, on_error=policy, fused=fused,
        parallel=workers is not None, workers=workers or 1,
    )
    targets, _inter, rejects = executor.run_with_rejects(mappings, instance)
    accepted = Counter(format_row(r) for r in targets.dataset("Premium").rows)
    rejected = Counter(r["row"] for r in rejects.rows)
    return accepted, rejected


RUNTIMES = [("etl", run_etl), ("ohm", run_ohm), ("mapping", run_mapping)]


class TestFusedUnfusedParity:
    """accepted AND rejected multisets must be invariant under fusion,
    per runtime, serial and parallel, for both absorbing policies."""

    @pytest.mark.parametrize("runtime", RUNTIMES, ids=lambda r: r[0])
    @pytest.mark.parametrize("workers", [None, 4], ids=["serial", "parallel"])
    @pytest.mark.parametrize("policy", ["skip", "reject"])
    def test_matches_unfused(self, runtime, workers, policy):
        name, runner = runtime
        instance, _plan = generate_faulty_instance(n=60, seed=21, poison=7)
        unfused = runner(instance, policy, workers, False)
        fused = runner(instance, policy, workers, True)
        assert fused == unfused, (
            f"{name} diverged under fusion "
            f"(workers={workers}, policy={policy})"
        )

    def test_reject_channel_carries_the_poison(self):
        # guard against vacuous parity: the workload really rejects
        instance, _plan = generate_faulty_instance(n=60, seed=21, poison=7)
        _accepted, rejected = run_etl(instance, "reject", None, True)
        assert sum(rejected.values()) == 7


# -- randomized chains --------------------------------------------------------


def _chain_schema():
    return relation(
        "Orders",
        ("orderID", "int", False),
        ("customerID", "int"),
        ("region", "varchar"),
        ("amount", "float"),
        ("status", "varchar"),
    )


def _chain_instance(rng, n=120):
    """NULL-heavy synthetic orders: every nullable column goes NULL
    often, and some amounts are exactly zero so division derivations
    error under a row policy."""
    orders = _chain_schema()
    data = Dataset(orders)
    for order_id in range(1, n + 1):
        data.append(
            {
                "orderID": order_id,
                "customerID": (
                    None if rng.random() < 0.2 else rng.randint(1, 30)
                ),
                "region": (
                    None
                    if rng.random() < 0.25
                    else rng.choice(["EU", "US", "APAC"])
                ),
                "amount": (
                    None
                    if rng.random() < 0.25
                    else 0.0
                    if rng.random() < 0.1
                    else round(rng.uniform(-100, 1500), 2)
                ),
                "status": (
                    None if rng.random() < 0.2 else rng.choice(["ok", "X"])
                ),
            }
        )
    instance = Instance()
    instance.put(data)
    return instance


_ALL_COLUMNS = ["orderID", "customerID", "region", "amount", "status"]

_PREDICATES = [
    "amount > 100",
    "region = 'EU' OR region = 'US'",
    "status <> 'X'",
    "amount IS NOT NULL",
    "amount > 100 OR customerID < 10",
]


def _passthrough(except_for=None):
    derivations = [(c, c) for c in _ALL_COLUMNS]
    if except_for:
        derivations = [
            (c, except_for.get(c, c)) for c, _ in derivations
        ]
    return derivations


def _random_stage(rng, i):
    """One schema-preserving link of a random chain."""
    kind = rng.choice(["filter", "transform", "sort", "dedup", "copy"])
    name = f"s{i}_{kind}"
    if kind == "filter":
        return FilterStage(
            [FilterOutput(rng.choice(_PREDICATES))], name=name
        )
    if kind == "transform":
        amount = rng.choice(
            [
                "amount * 2",
                "CASE WHEN amount > 500 THEN amount ELSE 0 END",
                "1000.0 / amount",  # errors on the zero amounts
                "amount",
            ]
        )
        return Transformer(
            [OutputLink(_passthrough({"amount": amount}))],
            stage_variables=(
                [("doubled", "amount * 2")] if rng.random() < 0.5 else []
            ),
            name=name,
        )
    if kind == "sort":
        key = rng.choice(["orderID", "amount", "region"])
        return SortStage([(key, rng.choice(["asc", "desc"]))], name=name)
    if kind == "dedup":
        key = rng.choice(["customerID", "region", "status"])
        return RemoveDuplicatesStage(
            [key], retain=rng.choice(["first", "last"]), name=name
        )
    return CopyStage(name=name)


def build_chain_job(rng):
    """A linear source → N fusable stages → target job, N ∈ [1, 6],
    with a non-fusable breaker (Modify) spliced mid-chain half the time
    and an Aggregator terminal a third of the time."""
    orders = _chain_schema()
    job = Job("random-chain")
    src = job.add(TableSource(orders, name="Orders"))
    previous = src
    n_stages = rng.randint(1, 6)
    breaker_at = rng.randrange(n_stages) if rng.random() < 0.5 else None
    for i in range(n_stages):
        if i == breaker_at:
            breaker = job.add(Modify(keep=_ALL_COLUMNS, name=f"s{i}_break"))
            job.link(previous, breaker)
            previous = breaker
            continue
        stage = job.add(_random_stage(rng, i))
        job.link(previous, stage)
        previous = stage
    if rng.random() < 0.33:
        rollup = job.add(
            AggregatorStage(
                ["region"],
                [("total", "sum", "amount"), ("n", "count", None)],
                name="rollup",
            )
        )
        job.link(previous, rollup)
        previous = rollup
        out = relation(
            "Out", ("region", "varchar"), ("total", "float"), ("n", "int")
        )
    else:
        out = orders.renamed("Out")
    target = job.add(TableTarget(out, name="Out"))
    job.link(previous, target)
    return job


class TestRandomizedChains:
    """Byte-identical target rows (exact order, not just bags) and
    identical reject multisets across dozens of random chains."""

    @pytest.mark.parametrize("seed", range(12))
    def test_fused_matches_unfused_exactly(self, seed):
        rng = random.Random(seed)
        job = build_chain_job(rng)
        instance = _chain_instance(random.Random(seed + 1000))
        policy = "reject" if seed % 2 else "skip"

        def run(fused):
            engine = EtlEngine(
                compiled=True, batched=True, on_error=policy, fused=fused
            )
            targets, _ = engine.run(job, instance)
            rejected = Counter(
                format_row(r.row) for r in engine.last_run.rejected
            )
            return targets.dataset("Out").rows, rejected

        unfused_rows, unfused_rejects = run(False)
        fused_rows, fused_rejects = run(True)
        assert fused_rows == unfused_rows, f"seed={seed} rows diverged"
        assert fused_rejects == unfused_rejects, f"seed={seed} rejects"

    def test_chains_actually_fuse(self):
        # guard against vacuous parity: a breaker-free chain must build
        # at least one multi-operator chain and skip intermediates
        rng = random.Random(3)
        job = build_chain_job(rng)
        instance = _chain_instance(random.Random(1003))
        obs = Observability(stats=True)
        EtlEngine(
            compiled=True, batched=True, obs=obs, on_error="skip"
        ).run(job, instance)
        counters = obs.metrics.snapshot()["counters"]
        assert counters.get("exec.fuse.chains", 0) >= 1
        assert counters.get("exec.fuse.operators", 0) >= 1


# -- degradation --------------------------------------------------------------


class TestFusedDegradation:
    """A poisoned fused chain must fall back to the unfused block
    kernels with identical output, counted in
    ``exec.degrade.fused_to_block``."""

    def test_fused_fault_falls_back_to_block(self):
        instance, _plan = generate_faulty_instance(n=40, seed=31)
        baseline_engine = EtlEngine(compiled=True, batched=True, fused=False)
        baseline, _ = baseline_engine.run(build_faulty_job(), instance)
        plan = FaultPlan(seed=31).fault_kernels(tier="fused", first=1)
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, compiled=True, batched=True)
        with plan.injected():
            targets, _ = engine.run(build_faulty_job(), instance)
        assert plan.kernel_faults_fired.get("fused", 0) >= 1
        assert sorted(
            map(format_row, targets.dataset("Premium").rows)
        ) == sorted(map(format_row, baseline.dataset("Premium").rows))
        counters = obs.metrics.snapshot()["counters"]
        assert counters.get("exec.degrade.fused_to_block", 0) >= 1

    def test_block_fault_does_not_hit_the_fused_tier_twice(self):
        # a "fused" plan targets only fused chains: the block tier the
        # engine degrades to must run clean and stop the ladder there
        instance, _plan = generate_faulty_instance(n=40, seed=32)
        plan = FaultPlan(seed=32).fault_kernels(tier="fused", first=100)
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, compiled=True, batched=True)
        with plan.injected():
            engine.run(build_faulty_job(), instance)
        counters = obs.metrics.snapshot()["counters"]
        assert counters.get("exec.degrade.fused_to_block", 0) >= 1
        assert counters.get("exec.degrade.block_to_rows", 0) == 0


# -- metrics and laziness -----------------------------------------------------


class TestFusedObservability:
    def test_fused_metrics_present_only_when_fusing(self):
        instance, _plan = generate_faulty_instance(n=40, seed=33)
        for fused in (True, False):
            obs = Observability(stats=True)
            EtlEngine(
                obs=obs, compiled=True, batched=True, fused=fused
            ).run(build_faulty_job(), instance)
            counters = obs.metrics.snapshot()["counters"]
            fuse_counters = {
                k: v for k, v in counters.items() if k.startswith("exec.fuse.")
            }
            if fused:
                assert fuse_counters.get("exec.fuse.chains", 0) >= 1
                assert fuse_counters.get("exec.fuse.operators", 0) >= 1
                assert (
                    fuse_counters.get(
                        "exec.fuse.intermediate_rows_avoided", 0
                    )
                    > 0
                )
            else:
                assert fuse_counters == {}


class TestSelectionVectorLaziness:
    """Unit-level guarantees of the FusedBlock container itself."""

    def _block(self):
        from repro.exec.block import RowBlock

        return RowBlock(
            {
                "a": [1, 2, 3, 4],
                "b": ["w", "x", "y", "z"],
                "dead": [10, 20, 30, 40],
            },
            4,
        )

    def test_narrow_never_copies_columns(self):
        chain = fuse_source(self._block())
        child = chain.narrow([1, 3])
        assert isinstance(child, FusedBlock)
        assert child.length == 2
        # handles still point at the base columns — nothing gathered
        assert all(isinstance(h, str) for h in child.handles.values())
        assert child.column("a") == [2, 4]

    def test_dead_columns_are_never_gathered(self):
        chain = fuse_source(self._block()).narrow([0, 2])
        out = materialize_fused(chain, names=["a", "b"])
        assert out.columns == {"a": [1, 3], "b": ["w", "y"]}
        # the dead column was pruned before the gather
        assert "dead" not in out.columns

    def test_fill_missing_broadcasts_null(self):
        chain = fuse_source(self._block()).narrow([0, 1])
        out = materialize_fused(
            chain, names=["a", "extra"], fill_missing=True
        )
        assert out.columns == {"a": [1, 2], "extra": [None, None]}

    def test_project_renames_without_gathering(self):
        chain = fuse_source(self._block())
        renamed = chain.project([("left", "a"), ("right", "b")])
        assert sorted(renamed.names) == ["left", "right"]
        assert renamed.column("left") == [1, 2, 3, 4]
