"""Unit tests for the RowBlock container and the block kernels.

Mirrors :mod:`tests.exec.test_kernels` over the columnar tier: the same
fixtures, the same expected outputs (the kernels must agree row-for-row
with the row path), plus the container's structural contracts — column
aliasing survives slice/take, defaults broadcast, NULL keys group.
"""

import pytest

from repro.errors import ExecutionError
from repro.exec import ExpressionPlanner, block, kernels
from repro.exec.block import RowBlock, relation_resolver
from repro.exec.compile_block import (
    aggregate_values_reducer,
    compile_block_expr,
    compile_block_predicate,
)
from repro.expr.ast import AggregateCall, ColumnRef
from repro.expr.parser import parse
from repro.obs import Observability
from repro.schema.model import Attribute, Relation
from repro.schema.types import INTEGER, STRING

ROWS = [
    {"id": 1, "grp": "a", "v": 10},
    {"id": 2, "grp": "b", "v": None},
    {"id": 3, "grp": "a", "v": 30},
    {"id": 4, "grp": None, "v": 40},
    {"id": 5, "grp": None, "v": 50},
]
NAMES = ["id", "grp", "v"]
RESOLVE = relation_resolver("T", NAMES)


def make_block(rows=ROWS):
    return RowBlock.from_rows(NAMES, rows)


def predicate(sql):
    fn = compile_block_predicate(parse(sql), None, RESOLVE)
    assert fn is not None, sql
    return fn


def scalar(sql):
    fn = compile_block_expr(parse(sql), None, RESOLVE)
    assert fn is not None, sql
    return fn


def ids(blk):
    return blk.columns["id"]


# --- container ----------------------------------------------------------------


def test_from_rows_to_rows_round_trip():
    blk = make_block()
    assert blk.length == len(blk) == len(ROWS)
    assert blk.names == NAMES
    assert blk.to_rows() == ROWS
    # explicit name order prevails and missing keys are an error upstream
    assert blk.to_rows(["v", "id"]) == [
        {"v": r["v"], "id": r["id"]} for r in ROWS
    ]
    assert RowBlock({}, 0).to_rows() == []


def test_null_mask_is_the_in_band_none_entries():
    blk = make_block()
    assert blk.null_mask("v") == [False, True, False, False, False]
    assert blk.null_mask("grp") == [False, False, False, True, True]


def test_slice_clamps_and_preserves_aliasing():
    shared = [1, 2, 3, 4, 5]
    blk = RowBlock({"x": shared, "y": shared}, 5)
    cut = blk.slice(1, 3)
    assert cut.length == 2
    assert cut.columns["x"] == [2, 3]
    assert cut.columns["x"] is cut.columns["y"]  # aliased stays aliased
    assert blk.slice(-10, 99).columns["x"] == shared
    assert blk.slice(4, 2).length == 0


def test_take_gathers_aliased_columns_once():
    shared = ["a", "b", "c"]
    blk = RowBlock({"x": shared, "y": shared, "z": [1, 2, 3]}, 3)
    out = blk.take([2, 0])
    assert out.columns["x"] == ["c", "a"]
    assert out.columns["x"] is out.columns["y"]
    assert out.columns["z"] == [3, 1]
    assert out.length == 2


def test_chunks_split_and_whole_block_shortcut():
    blk = make_block()
    assert list(blk.chunks(None)) == [blk]  # no copy when it fits
    assert list(blk.chunks(10)) == [blk]
    sizes = [c.length for c in blk.chunks(2)]
    assert sizes == [2, 2, 1]
    assert [ids(c) for c in blk.chunks(2)] == [[1, 2], [3, 4], [5]]


def test_concat_and_with_columns_share_lists():
    blk = make_block()
    assert RowBlock.concat([blk]) is blk
    assert RowBlock.concat([]).length == 0
    both = RowBlock.concat([blk.slice(0, 2), blk.slice(2, 5)])
    assert ids(both) == [1, 2, 3, 4, 5]
    extra = blk.with_columns({"doubled": [i * 2 for i in ids(blk)]})
    assert extra.columns["id"] is blk.columns["id"]  # no copies
    assert extra.columns["doubled"] == [2, 4, 6, 8, 10]


# --- selection kernels --------------------------------------------------------


def test_filter_block_drops_unknown():
    out = block.filter_block(make_block(), predicate("v > 15"))
    assert ids(out) == [3, 4, 5]  # NULL v filters out


@pytest.mark.parametrize("batch_size", [None, 1, 2, 100])
def test_filter_block_chunking_is_invisible(batch_size):
    out = block.filter_block(make_block(), predicate("T.id <= 2"), batch_size)
    assert ids(out) == [1, 2]


def test_project_block_defaults_and_pass_through_aliasing():
    blk = make_block()
    out = block.project_block(
        blk,
        [("double", scalar("id * 2")), ("v", scalar("v"))],
        defaults={"extra": None, "double": 0},
    )
    assert out.to_rows(["extra", "double", "v"]) == [
        {"extra": None, "double": r["id"] * 2, "v": r["v"]} for r in ROWS
    ]
    # a bare column reference costs nothing: the output aliases the input
    assert out.columns["v"] is blk.columns["v"]


def test_route_block_fallback_and_only_once():
    specs = [
        ("pred", predicate("id < 3")),
        ("pred", predicate("id < 5")),
        ("fallback", None),
    ]
    blk = make_block()
    outs = block.route_block(blk, specs)
    assert outs == [[0, 1], [0, 1, 2, 3], [4]]
    once = block.route_block(blk, specs, only_once=True)
    assert once == [[0, 1], [2, 3], [4]]


def test_route_block_always_does_not_count_as_match():
    specs = [
        ("always", None),
        ("pred", predicate("id = 1")),
        ("fallback", None),
    ]
    outs = block.route_block(make_block(), specs)
    assert outs == [[0, 1, 2, 3, 4], [0], [1, 2, 3, 4]]


def test_route_block_no_predicates_never_falls_back():
    outs = block.route_block(
        make_block(), [("always", None), ("fallback", None)]
    )
    assert outs == [[0, 1, 2, 3, 4], []]


def test_switch_block_first_match_and_default():
    outs = block.switch_block(
        make_block(), scalar("grp"), ["a", "b"], True
    )
    assert outs == [[0, 2], [1], [3, 4]]  # NULL selector → default
    no_default = block.switch_block(
        make_block(), scalar("grp"), ["a", "b"], False
    )
    assert no_default == [[0, 2], [1]]


# --- grouping kernels ---------------------------------------------------------


def _sum_aggregate(name, column):
    return (
        name,
        scalar(column),
        aggregate_values_reducer(AggregateCall("SUM", ColumnRef(column))),
    )


def test_group_aggregate_block_null_keys_and_count_star():
    out = block.group_aggregate_block(
        make_block(), ["grp"], [_sum_aggregate("total", "v"), ("n", None, None)]
    )
    assert out.to_rows(["grp", "total", "n"]) == [
        {"grp": "a", "total": 40, "n": 2},
        {"grp": "b", "total": None, "n": 1},
        {"grp": None, "total": 90, "n": 2},
    ]


def test_group_aggregate_block_numeric_keys_collide_like_rows():
    rows = [{"id": 1, "grp": 1, "v": 5}, {"id": 2, "grp": 1.0, "v": 7}]
    out = block.group_aggregate_block(
        RowBlock.from_rows(NAMES, rows), ["grp"], [("n", None, None)]
    )
    assert out.length == 1  # 1 and 1.0 are one group, like the row kernel
    assert out.columns["n"] == [2]


def test_dedup_block_first_and_last():
    first = block.dedup_block(make_block(), ["grp"], "first")
    assert ids(first) == [1, 2, 4]
    last = block.dedup_block(make_block(), ["grp"], "last")
    assert ids(last) == [3, 2, 5]


def test_union_block_distinct():
    a = RowBlock.from_rows(["x", "y"], [{"x": 1, "y": "p"}])
    b = RowBlock.from_rows(
        ["x", "y"], [{"x": 1, "y": "p"}, {"x": None, "y": "q"}]
    )
    out = block.union_block([a, b], ["x", "y"], distinct=True)
    assert out.to_rows() == [{"x": 1, "y": "p"}, {"x": None, "y": "q"}]
    bag = block.union_block([a, b], ["x", "y"])
    assert bag.length == 3


def test_sort_block_matches_row_kernel_permutation():
    for keys in [
        [("grp", "asc"), ("id", "desc")],
        [("grp", "desc"), ("id", "asc")],
        [("v", "desc")],
    ]:
        expected = [r["id"] for r in kernels.sort_rows(ROWS, keys)]
        assert ids(block.sort_block(make_block(), keys)) == expected, keys


# --- joins --------------------------------------------------------------------

LEFT_REL = Relation("L", [Attribute("k", INTEGER), Attribute("s", STRING)])
RIGHT_REL = Relation("R", [Attribute("k", INTEGER), Attribute("t", STRING)])
LEFT_ROWS = [
    {"k": 1, "s": "x"},
    {"k": 2, "s": "y"},
    {"k": None, "s": "z"},
]
RIGHT_ROWS = [
    {"k": 1.0, "t": "hit"},
    {"k": None, "t": "nope"},
    {"k": 3, "t": "miss"},
]
JOIN_PLAN = [("s", "left", "s"), ("t", "right", "t")]


def _join(kind, condition="L.k = R.k"):
    return block.hash_join_block(
        RowBlock.from_rows(["k", "s"], LEFT_ROWS),
        RowBlock.from_rows(["k", "t"], RIGHT_ROWS),
        LEFT_REL,
        RIGHT_REL,
        parse(condition),
        kind,
        JOIN_PLAN,
        # pinned so the kernel is exercised regardless of the process
        # mode defaults (REPRO_COMPILED=0 would otherwise disable it)
        ExpressionPlanner(compiled=True, batched=True),
    )


def test_hash_join_block_kinds_match_row_kernel():
    for kind, expected in [
        ("inner", [("x", "hit")]),
        ("left", [("x", "hit"), ("y", None), ("z", None)]),
        ("right", [("x", "hit"), (None, "nope"), (None, "miss")]),
        (
            "full",
            [
                ("x", "hit"),
                ("y", None),
                ("z", None),
                (None, "nope"),
                (None, "miss"),
            ],
        ),
    ]:
        out = _join(kind)
        assert out is not None, kind
        assert list(zip(out.columns["s"], out.columns["t"])) == expected, kind


def test_hash_join_block_falls_back_without_equi_keys():
    assert _join("inner", "L.k < R.k") is None  # no equi-conjunct
    assert _join("inner", "L.k = R.k AND L.s <> R.t") is None  # residual


def test_lookup_block_failure_modes():
    stream = RowBlock.from_rows(["k", "s"], LEFT_ROWS)
    reference = RowBlock.from_rows(["k", "t"], RIGHT_ROWS)
    kept = block.lookup_block(
        stream, reference, [("k", "k")], ["t"], "continue"
    )
    # raw-tuple keys: 1 matches 1.0 and NULL matches NULL — exactly the
    # row-path Lookup stage's dict semantics
    assert kept.to_rows(["s", "t"]) == [
        {"s": "x", "t": "hit"},
        {"s": "y", "t": None},
        {"s": "z", "t": "nope"},
    ]
    dropped = block.lookup_block(
        stream, reference, [("k", "k")], ["t"], "drop"
    )
    assert dropped.to_rows(["s", "t"]) == [
        {"s": "x", "t": "hit"},
        {"s": "z", "t": "nope"},
    ]
    with pytest.raises(ExecutionError, match="Lookup"):
        block.lookup_block(
            stream, reference, [("k", "k")], ["t"], "fail", label="lk"
        )


def test_lookup_block_first_reference_match_wins():
    stream = RowBlock.from_rows(["k"], [{"k": 7}])
    reference = RowBlock.from_rows(
        ["k", "t"], [{"k": 7, "t": "first"}, {"k": 7, "t": "second"}]
    )
    out = block.lookup_block(stream, reference, [("k", "k")], ["t"], "fail")
    assert out.columns["t"] == ["first"]


# --- observability ------------------------------------------------------------


def test_block_kernels_record_row_counts():
    obs = Observability(stats=True)
    block.filter_block(make_block(), predicate("id < 3"), 2, obs=obs)
    assert obs.metrics.counter("exec.block.filter.rows_in") == len(ROWS)
    assert obs.metrics.counter("exec.block.filter.rows_out") == 2
    assert obs.metrics.counter("exec.block.filter.blocks_in") == 3  # chunks
    assert obs.metrics.counter("exec.block.filter.blocks_out") == 1
