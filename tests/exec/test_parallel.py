"""Unit tests for the parallel execution tier (``repro.exec.parallel``).

The tier's contract is determinism: partitioned kernels must be
*bit-identical* to the serial block kernels (same rows, same order, same
float reduction order), wave grouping must preserve topological order,
and every failure mode must degrade without changing results. These
tests exercise the pieces in isolation; the engine-level parity suite
lives in ``tests/exec/test_parallel_parity.py``.
"""

import random

import pytest

from repro.exec import ExpressionPlanner, block, parallel
from repro.exec.block import RowBlock
from repro.exec.compile_block import aggregate_values_reducer
from repro.exec.parallel import (
    MAX_PARTITIONS,
    WorkerPool,
    WorkerUnavailable,
    max_wavefront,
    partitions_for,
    resolve_parallel,
    resolve_workers,
    set_default_executor,
    set_default_parallel,
    set_default_workers,
    set_parallel_threshold,
    topological_waves,
)
from repro.expr.ast import AggregateCall, ColumnRef
from repro.expr.parser import parse
from repro.faults import FaultPlan
from repro.obs import Observability
from repro.schema.model import Attribute, Relation
from repro.schema.types import INTEGER, STRING


@pytest.fixture(autouse=True)
def _restore_process_defaults():
    yield
    set_default_parallel(None)
    set_default_workers(None)
    set_parallel_threshold(None)
    set_default_executor(None)


# --- resolution triads --------------------------------------------------------


class TestResolution:
    def test_parallel_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert resolve_parallel(None) is False
        assert resolve_parallel(True) is True

    def test_parallel_env_boolish(self, monkeypatch):
        for raw, expected in [
            ("1", True), ("true", True), ("4", True),
            ("0", False), ("false", False), ("off", False),
        ]:
            monkeypatch.setenv("REPRO_PARALLEL", raw)
            assert resolve_parallel(None) is expected, raw

    def test_explicit_kwarg_beats_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        set_default_parallel(True)
        assert resolve_parallel(False) is False

    def test_set_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        set_default_parallel(True)
        assert resolve_parallel(None) is True

    def test_workers_resolution_order(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        set_default_workers(3)
        assert resolve_workers(None) == 3
        assert resolve_workers(7) == 7

    def test_integer_parallel_env_sizes_the_pool(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setenv("REPRO_PARALLEL", "6")
        assert resolve_parallel(None) is True
        assert resolve_workers(None) == 6

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            resolve_workers(0)
        with pytest.raises(ValueError):
            set_default_workers(-1)

    def test_threshold_env_and_hook(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "10")
        assert parallel.parallel_threshold() == 10
        set_parallel_threshold(4)
        assert parallel.parallel_threshold() == 4


class TestPartitionsFor:
    def test_below_threshold_stays_serial(self):
        set_parallel_threshold(100)
        assert partitions_for(99) == 0

    def test_scales_with_data_and_caps(self):
        set_parallel_threshold(100)
        assert partitions_for(100) == 2
        assert partitions_for(399) == 3
        assert partitions_for(100 * MAX_PARTITIONS * 10) == MAX_PARTITIONS

    def test_independent_of_worker_count(self):
        # the contract behind determinism: partitioning is a function of
        # the data alone, so any worker count splits identically
        set_parallel_threshold(50)
        set_default_workers(2)
        two = [partitions_for(n) for n in range(0, 1000, 37)]
        set_default_workers(8)
        eight = [partitions_for(n) for n in range(0, 1000, 37)]
        assert two == eight


# --- wave grouping ------------------------------------------------------------


class TestTopologicalWaves:
    def test_diamond(self):
        #    a
        #   / \
        #  b   c
        #   \ /
        #    d
        parents = {"a": [], "b": ["a"], "c": ["a"], "d": ["b", "c"]}
        waves = topological_waves(
            ["a", "b", "c", "d"], lambda n: n, lambda n: parents[n]
        )
        assert waves == [["a"], ["b", "c"], ["d"]]
        assert max_wavefront(waves) == 2

    def test_within_wave_order_is_input_order(self):
        parents = {n: [] for n in "zyxw"}
        waves = topological_waves("zyxw", lambda n: n, lambda n: parents[n])
        assert waves == [["z", "y", "x", "w"]]

    def test_unknown_parents_are_ignored(self):
        # engines pass graph-wide parent uids; nodes outside `order`
        # (e.g. pruned operators) must not block wave assignment
        waves = topological_waves(
            ["a", "b"], lambda n: n, lambda n: ["ghost"] if n == "b" else []
        )
        assert waves == [["a", "b"]]

    def test_chain_is_fully_serial(self):
        order = list(range(6))
        waves = topological_waves(
            order, lambda n: n, lambda n: [n - 1] if n else []
        )
        assert waves == [[n] for n in order]


# --- the worker pool ----------------------------------------------------------


class _InlineExecutor:
    """submit() runs the task immediately; records call count."""

    def __init__(self):
        self.submitted = 0

    def submit(self, fn):
        self.submitted += 1

        class _Done:
            def __init__(self, value=None, error=None):
                self._value, self._error = value, error

            def result(self):
                if self._error is not None:
                    raise self._error
                return self._value

        try:
            return _Done(value=fn())
        except Exception as exc:  # noqa: BLE001 — test double
            return _Done(error=exc)


class _BrokenExecutor:
    def submit(self, fn):
        raise RuntimeError("pool shut down")


class TestWorkerPool:
    def test_run_all_preserves_task_order(self):
        pool = WorkerPool(workers=4)
        entries = pool.run_all([lambda i=i: i * i for i in range(10)])
        assert entries == [(None, i * i) for i in range(10)]

    def test_nested_batches_run_inline_without_deadlock(self):
        # a wave can fill every worker with compute tasks that each run
        # a partitioned kernel through the SAME shared pool; the inner
        # batches must run inline on the worker thread — submitting them
        # would starve the executor into deadlock (every thread blocked
        # on chunks queued behind itself)
        import threading

        pool = WorkerPool(workers=2)

        def outer(base):
            return pool.run([lambda i=i: base * 10 + i for i in range(3)])

        results = []

        def scenario():
            results.append(pool.run([lambda b=b: outer(b) for b in (1, 2)]))

        worker = threading.Thread(target=scenario, daemon=True)
        worker.start()
        worker.join(timeout=30)
        assert not worker.is_alive(), "nested WorkerPool batches deadlocked"
        assert results == [[[10, 11, 12], [20, 21, 22]]]

    def test_single_task_runs_inline(self):
        pool = WorkerPool(workers=4, executor=_BrokenExecutor())
        # a broken executor is irrelevant for one task: no fan-out
        assert pool.run_all([lambda: 42]) == [(None, 42)]

    def test_task_errors_are_entries_not_raises(self):
        def boom():
            raise ValueError("task failed")

        pool = WorkerPool(workers=2)
        entries = pool.run_all([lambda: 1, boom, lambda: 3])
        assert entries[0] == (None, 1)
        assert isinstance(entries[1][0], ValueError)
        assert entries[2] == (None, 3)

    def test_run_raises_first_error_in_task_order(self):
        def boom(msg):
            def task():
                raise ValueError(msg)

            return task

        pool = WorkerPool(workers=2)
        with pytest.raises(ValueError, match="first"):
            pool.run([boom("first"), boom("second"), lambda: 1])

    def test_broken_executor_yields_worker_unavailable(self):
        pool = WorkerPool(workers=2, executor=_BrokenExecutor())
        entries = pool.run_all([lambda: 1, lambda: 2])
        assert all(isinstance(e, WorkerUnavailable) for e, _r in entries)

    def test_injected_default_executor_is_used(self):
        executor = _InlineExecutor()
        set_default_executor(executor)
        pool = WorkerPool(workers=3)
        assert pool.run([lambda: "a", lambda: "b"]) == ["a", "b"]
        assert executor.submitted == 2

    def test_explicit_executor_beats_injected_default(self):
        set_default_executor(_BrokenExecutor())
        pool = WorkerPool(workers=2, executor=_InlineExecutor())
        assert pool.run_all([lambda: 1, lambda: 2]) == [(None, 1), (None, 2)]


# --- partitioned kernels vs the serial kernels --------------------------------

LEFT_REL = Relation("L", [Attribute("k", INTEGER), Attribute("s", STRING)])
RIGHT_REL = Relation("R", [Attribute("k", INTEGER), Attribute("t", STRING)])
JOIN_PLAN = [
    ("lk", "left", "k"),
    ("s", "left", "s"),
    ("rk", "right", "k"),
    ("t", "right", "t"),
]


def _join_fixture(seed=7, n_left=500, n_right=300, key_space=80):
    """Dup-heavy key columns with ~8% NULLs on both sides — exercises
    the one-to-many merge path, NULL-key exclusion, and every pad."""
    rng = random.Random(seed)

    def keys(n):
        return [
            None if rng.random() < 0.08 else rng.randrange(key_space)
            for _ in range(n)
        ]

    left = RowBlock(
        {"k": keys(n_left), "s": [f"l{i}" for i in range(n_left)]}, n_left
    )
    right = RowBlock(
        {"k": keys(n_right), "t": [f"r{i}" for i in range(n_right)]}, n_right
    )
    return left, right


def _run_join(kind, planner, left, right):
    out = block.hash_join_block(
        left, right, LEFT_REL, RIGHT_REL, parse("L.k = R.k"),
        kind, JOIN_PLAN, planner,
    )
    assert out is not None, kind
    return out


def _parallel_planner(workers=3):
    planner = ExpressionPlanner(
        compiled=True, batched=True, parallel=True, workers=workers
    )
    assert planner.parallel
    return planner


@pytest.mark.parametrize("kind", ["inner", "left", "right", "full"])
def test_partitioned_join_bit_identical_to_serial(kind):
    left, right = _join_fixture()
    serial = _run_join(
        kind, ExpressionPlanner(compiled=True, batched=True), left, right
    )
    set_parallel_threshold(1)
    obs = Observability(stats=True)
    out = block.hash_join_block(
        left, right, LEFT_REL, RIGHT_REL, parse("L.k = R.k"),
        kind, JOIN_PLAN, _parallel_planner(), obs=obs,
    )
    assert out.length == serial.length
    for name in ("lk", "s", "rk", "t"):
        assert out.columns[name] == serial.columns[name], (kind, name)
    counters = obs.metrics.snapshot()["counters"]
    assert counters["exec.parallel.join.partitions"] >= 2
    assert counters["exec.parallel.join.rows_out"] == serial.length


def test_partitioned_join_unique_keys_fast_path():
    # unique build keys take the scatter fast path (no dict-of-lists)
    left = RowBlock.from_rows(
        ["k", "s"], [{"k": i, "s": f"l{i}"} for i in range(200)]
    )
    right = RowBlock.from_rows(
        ["k", "t"], [{"k": i * 2, "t": f"r{i}"} for i in range(150)]
    )
    for kind in ("inner", "left", "right", "full"):
        serial = _run_join(
            kind, ExpressionPlanner(compiled=True, batched=True), left, right
        )
        set_parallel_threshold(1)
        out = _run_join(kind, _parallel_planner(), left, right)
        set_parallel_threshold(None)
        assert out.columns == serial.columns, kind


def _aggregates(planner):
    from repro.exec.block import relation_resolver
    from repro.exec.compile_block import compile_block_expr

    resolve = relation_resolver("T", ["g", "h", "v"])

    def agg(name, func, column):
        return (
            name,
            compile_block_expr(parse(column), None, resolve),
            aggregate_values_reducer(AggregateCall(func, ColumnRef(column))),
        )

    return [
        agg("total", "SUM", "v"),
        agg("lowest", "MIN", "v"),
        agg("mean", "AVG", "v"),
        ("n", None, None),  # COUNT(*)
    ]


@pytest.mark.parametrize("keys", [["g"], ["g", "h"]])
def test_partitioned_group_aggregate_bit_identical_to_serial(keys):
    rng = random.Random(13)
    rows = [
        {
            "g": None if rng.random() < 0.06 else rng.randrange(40),
            "h": rng.choice(["x", "y", None]),
            # floats make reduction order observable: a different member
            # order would change the accumulated bits
            "v": rng.random() * 1000,
        }
        for _ in range(900)
    ]
    blk = RowBlock.from_rows(["g", "h", "v"], rows)
    serial_planner = ExpressionPlanner(compiled=True, batched=True)
    serial = block.group_aggregate_block(
        blk, keys, _aggregates(serial_planner)
    )
    set_parallel_threshold(1)
    obs = Observability(stats=True)
    planner = _parallel_planner()
    out = block.group_aggregate_block(
        blk, keys, _aggregates(planner), obs=obs, planner=planner
    )
    assert out.length == serial.length
    for name in keys + ["total", "lowest", "mean", "n"]:
        assert out.columns[name] == serial.columns[name], name
    counters = obs.metrics.snapshot()["counters"]
    assert counters["exec.parallel.group.partitions"] >= 2


def test_small_inputs_stay_serial():
    # under the threshold the planner reports zero partitions and the
    # kernels never touch the pool
    planner = _parallel_planner()
    assert planner.partitions_for(100) == 0
    left, right = _join_fixture(n_left=30, n_right=20)
    obs = Observability(stats=True)
    out = block.hash_join_block(
        left, right, LEFT_REL, RIGHT_REL, parse("L.k = R.k"),
        "inner", JOIN_PLAN, planner, obs=obs,
    )
    assert out is not None
    assert "exec.parallel.join.partitions" not in (
        obs.metrics.snapshot()["counters"]
    )


# --- worker-failure degradation ----------------------------------------------


def test_faulted_partitions_degrade_to_serial_kernel():
    left, right = _join_fixture()
    serial = _run_join(
        "left", ExpressionPlanner(compiled=True, batched=True), left, right
    )
    set_parallel_threshold(1)
    plan = FaultPlan(seed=5).fault_kernels(tier="parallel", first=2)
    obs = Observability(stats=True)
    with plan.injected():
        out = block.hash_join_block(
            left, right, LEFT_REL, RIGHT_REL, parse("L.k = R.k"),
            "left", JOIN_PLAN, _parallel_planner(), obs=obs,
        )
    assert plan.kernel_faults_fired.get("parallel", 0) >= 1
    assert out.columns == serial.columns  # identical despite the faults
    counters = obs.metrics.snapshot()["counters"]
    assert counters["exec.degrade.parallel_to_serial"] >= 1


def test_planner_gates_parallelism_on_batched():
    # kernel partitioning needs the columnar tier: a row-mode planner
    # never reports itself parallel even when asked
    planner = ExpressionPlanner(
        compiled=True, batched=False, parallel=True, workers=4
    )
    assert not planner.parallel
    assert planner.partitions_for(10**6) == 0
