"""Per-stage compiler tests: every stage type compiles to the documented
OHM shape AND the compiled graph computes the same result as the stage
(ETL engine vs OHM engine)."""

import pytest

from repro.compile import compile_job
from repro.data.dataset import Dataset, Instance
from repro.etl import (
    AggregatorStage,
    CopyStage,
    CustomStage,
    FilterOutput,
    FilterStage,
    FunnelStage,
    Job,
    JoinStage,
    LookupStage,
    Modify,
    PeekStage,
    RemoveDuplicatesStage,
    RowGenerator,
    SortStage,
    SurrogateKey,
    SwitchStage,
    TableSource,
    TableTarget,
    Transformer,
    run_job,
)
from repro.etl.stages.transform import OutputLink
from repro.ohm import execute, reset_keygen_sequences
from repro.schema import relation


@pytest.fixture
def rel():
    return relation(
        "R", ("id", "int", False), ("v", "float"), ("kind", "varchar")
    )


@pytest.fixture
def instance(rel):
    return Instance(
        [
            Dataset(
                rel,
                [
                    {"id": 1, "v": 5.0, "kind": "a"},
                    {"id": 2, "v": 15.0, "kind": "b"},
                    {"id": 3, "v": 25.0, "kind": "a"},
                    {"id": 4, "v": None, "kind": None},
                    {"id": 5, "v": 15.0, "kind": "a"},
                ],
            )
        ]
    )


def single_stage_job(rel, stage, out_rel, n_outputs=1):
    job = Job(f"single_{stage.STAGE_TYPE}")
    src = job.add(TableSource(rel))
    job.add(stage)
    job.link(src, stage)
    for i in range(n_outputs):
        tgt = job.add(TableTarget(out_rel.renamed(f"Out{i}")))
        job.link(stage, tgt, src_port=i)
    return job


def assert_equivalent(job, instance, raw_kinds=None, clean_kinds=None):
    raw = compile_job(job, cleanup=False)
    if raw_kinds is not None:
        processing = [
            k for k in raw.kinds_in_order() if k not in ("SOURCE", "TARGET")
        ]
        assert processing == raw_kinds
    graph = compile_job(job)
    if clean_kinds is not None:
        processing = [
            k for k in graph.kinds_in_order() if k not in ("SOURCE", "TARGET")
        ]
        assert processing == clean_kinds
    assert execute(graph, instance).same_bags(run_job(job, instance))
    return graph


class TestFilterCompiler:
    def test_single_output_is_bare_filter(self, rel, instance):
        job = single_stage_job(rel, FilterStage.single("v > 10"), rel)
        assert_equivalent(job, instance, clean_kinds=["FILTER"])

    def test_projection_adds_basic_project(self, rel, instance):
        stage = FilterStage(
            [FilterOutput("v > 10", columns=[("id", "id"), ("v", "v")])]
        )
        out = relation("O", ("id", "int"), ("v", "float"))
        job = single_stage_job(rel, stage, out)
        assert_equivalent(
            job, instance, raw_kinds=["FILTER", "BASIC PROJECT"]
        )

    def test_multi_output_figure6_shape(self, rel, instance):
        stage = FilterStage(
            [FilterOutput("v > 10"), FilterOutput("kind = 'a'")]
        )
        job = single_stage_job(rel, stage, rel, n_outputs=2)
        assert_equivalent(
            job, instance, raw_kinds=["SPLIT", "FILTER", "FILTER"]
        )

    def test_row_only_once_negates_earlier_predicates(self, rel, instance):
        stage = FilterStage(
            [FilterOutput("v > 10"), FilterOutput("kind = 'a'")],
            row_only_once=True,
        )
        job = single_stage_job(rel, stage, rel, n_outputs=2)
        graph = assert_equivalent(job, instance)
        filters = graph.operators_of_kind("FILTER")
        rendered = sorted(f.condition.to_sql() for f in filters)
        # v is nullable here, so the negation of the earlier predicate is
        # the null-safe form (a NULL row must not satisfy either output)
        assert rendered[0] == (
            "(((v <= 10) OR ((v > 10) IS NULL)) AND (kind = 'a'))"
        )

    def test_row_only_once_plain_negation_when_not_nullable(self, instance):
        non_null = relation(
            "R", ("id", "int", False), ("v", "float", False),
            ("kind", "varchar"),
        )
        stage = FilterStage(
            [FilterOutput("v > 10"), FilterOutput("kind = 'a'")],
            row_only_once=True,
        )
        job = single_stage_job(non_null, stage, non_null, n_outputs=2)
        graph = compile_job(job)
        filters = graph.operators_of_kind("FILTER")
        rendered = sorted(f.condition.to_sql() for f in filters)
        assert rendered[0] == "((v <= 10) AND (kind = 'a'))"

    def test_reject_output_gets_all_negations(self, rel, instance):
        stage = FilterStage(
            [FilterOutput("v > 10"), FilterOutput(reject=True)]
        )
        job = single_stage_job(rel, stage, rel, n_outputs=2)
        graph = assert_equivalent(job, instance)
        filters = graph.operators_of_kind("FILTER")
        assert "((v <= 10) OR ((v > 10) IS NULL))" in [
            f.condition.to_sql() for f in filters
        ]


class TestTransformerCompiler:
    def test_plain_derivations_become_project(self, rel, instance):
        stage = Transformer.single([("id", "id"), ("vv", "v * 2")])
        out = relation("O", ("id", "int"), ("vv", "float"))
        job = single_stage_job(rel, stage, out)
        assert_equivalent(job, instance, clean_kinds=["PROJECT"])

    def test_constraint_becomes_filter(self, rel, instance):
        stage = Transformer.single([("id", "id")], constraint="v > 10")
        out = relation("O", ("id", "int"))
        job = single_stage_job(rel, stage, out)
        assert_equivalent(job, instance, raw_kinds=["FILTER", "PROJECT"])

    def test_stage_variables_expand(self, rel, instance):
        stage = Transformer(
            [OutputLink([("id", "id"), ("b", "bucket + 1")])],
            stage_variables=[("bucket", "id * 10")],
        )
        out = relation("O", ("id", "int"), ("b", "int"))
        job = single_stage_job(rel, stage, out)
        graph = assert_equivalent(job, instance)
        (project,) = graph.operators_of_kind("PROJECT")
        assert dict(project.derivations)["b"].to_sql() == "((id * 10) + 1)"

    def test_otherwise_link(self, rel, instance):
        stage = Transformer(
            [
                OutputLink([("id", "id")], constraint="v > 10"),
                OutputLink([("id", "id")], otherwise=True),
            ]
        )
        out = relation("O", ("id", "int"))
        job = single_stage_job(rel, stage, out, n_outputs=2)
        assert_equivalent(job, instance)


class TestRoutingCompilers:
    def test_switch(self, rel, instance):
        stage = SwitchStage("kind", cases=["a", "b"], has_default=True)
        job = single_stage_job(rel, stage, rel, n_outputs=3)
        assert_equivalent(job, instance)

    def test_copy(self, rel, instance):
        stage = CopyStage(keep_columns=[None, ["id"]])
        job = Job("copytest")
        src = job.add(TableSource(rel))
        job.add(stage)
        job.link(src, stage)
        t0 = job.add(TableTarget(rel.renamed("Out0")))
        t1 = job.add(TableTarget(relation("Out1", ("id", "int"))))
        job.link(stage, t0, src_port=0)
        job.link(stage, t1, src_port=1)
        assert_equivalent(job, instance)


class TestJoinCompilers:
    def _two_source_job(self, stage, out_rel):
        left = relation("L", ("id", "int", False), ("v", "float"))
        right = relation("Rt", ("id", "int", False), ("w", "float"))
        job = Job("joins")
        s1 = job.add(TableSource(left))
        s2 = job.add(TableSource(right))
        job.add(stage)
        job.link(s1, stage)
        job.link(s2, stage, dst_port=1)
        tgt = job.add(TableTarget(out_rel))
        job.link(stage, tgt)
        instance = Instance(
            [
                Dataset(left, [{"id": 1, "v": 1.0}, {"id": 2, "v": 2.0}]),
                Dataset(right, [{"id": 1, "w": 9.0}, {"id": 3, "w": 8.0}]),
            ]
        )
        return job, instance

    def test_keys_join_compiles_to_join_plus_project(self):
        out = relation("O", ("id", "int"), ("v", "float"), ("w", "float"))
        job, instance = self._two_source_job(
            JoinStage(keys=[("id", "id")]), out
        )
        raw = compile_job(job, cleanup=False)
        kinds = [k for k in raw.kinds_in_order()
                 if k not in ("SOURCE", "TARGET")]
        assert kinds == ["JOIN", "BASIC PROJECT"]
        assert execute(raw, instance).same_bags(run_job(job, instance))

    def test_left_join(self):
        out = relation("O", ("id", "int"), ("v", "float"), ("w", "float"))
        job, instance = self._two_source_job(
            JoinStage(keys=[("id", "id")], join_type="left"), out
        )
        assert_equivalent(job, instance)

    def test_lookup_continue(self):
        out = relation("O", ("id", "int"), ("v", "float"), ("w", "float"))
        job, instance = self._two_source_job(
            LookupStage(keys=[("id", "id")]), out
        )
        graph = assert_equivalent(job, instance)
        (join,) = graph.operators_of_kind("JOIN")
        assert join.kind == "left"

    def test_lookup_drop(self):
        out = relation("O", ("id", "int"), ("v", "float"), ("w", "float"))
        job, instance = self._two_source_job(
            LookupStage(keys=[("id", "id")], on_failure="drop"), out
        )
        graph = assert_equivalent(job, instance)
        (join,) = graph.operators_of_kind("JOIN")
        assert join.kind == "inner"

    def test_funnel(self, rel):
        other = rel.renamed("R2")
        job = Job("funnel")
        s1 = job.add(TableSource(rel))
        s2 = job.add(TableSource(other))
        funnel = job.add(FunnelStage())
        tgt = job.add(TableTarget(rel.renamed("Out")))
        job.link(s1, funnel)
        job.link(s2, funnel, dst_port=1)
        job.link(funnel, tgt)
        rows = [{"id": 1, "v": 1.0, "kind": "x"}]
        instance = Instance([Dataset(rel, rows), Dataset(other, rows)])
        graph = assert_equivalent(job, instance)
        assert len(graph.operators_of_kind("UNION")) == 1


class TestGroupingCompilers:
    def test_aggregator_becomes_group(self, rel, instance):
        stage = AggregatorStage(["kind"], [("total", "sum", "v")])
        out = relation("O", ("kind", "varchar"), ("total", "float"))
        job = single_stage_job(rel, stage, out)
        assert_equivalent(job, instance, clean_kinds=["GROUP"])

    def test_remove_duplicates_becomes_group_with_first(self, rel, instance):
        stage = RemoveDuplicatesStage(["kind"])
        job = single_stage_job(rel, stage, rel)
        graph = assert_equivalent(job, instance, clean_kinds=["GROUP"])
        (group,) = graph.operators_of_kind("GROUP")
        assert all(agg.func == "FIRST" for _c, agg in group.aggregates)

    def test_remove_duplicates_last(self, rel, instance):
        stage = RemoveDuplicatesStage(["kind"], retain="last")
        job = single_stage_job(rel, stage, rel)
        assert_equivalent(job, instance)


class TestColumnSurgeryCompilers:
    def test_modify_becomes_basic_project(self, rel, instance):
        stage = Modify(keep=["id", "v"], rename={"value": "v"})
        out = relation("O", ("id", "int"), ("value", "float"))
        job = single_stage_job(rel, stage, out)
        assert_equivalent(job, instance, clean_kinds=["BASIC PROJECT"])

    def test_modify_with_conversion_becomes_project(self, rel, instance):
        stage = Modify(keep=["id"], convert={"id": "varchar"})
        out = relation("O", ("id", "varchar"))
        job = single_stage_job(rel, stage, out)
        assert_equivalent(job, instance, clean_kinds=["PROJECT"])

    def test_surrogate_key_becomes_keygen(self, rel, instance):
        reset_keygen_sequences()
        stage = SurrogateKey("sk", start=1, name="skgen")
        out = rel.extended([], "O").extended(
            [__import__("repro.schema", fromlist=["Attribute"]).Attribute("sk", "int")]
        )
        job = single_stage_job(rel, stage, out)
        graph = compile_job(job)
        assert "KEYGEN" in graph.kinds_in_order()
        reset_keygen_sequences()
        etl_result = run_job(job, instance)
        reset_keygen_sequences()
        ohm_result = execute(graph, instance)
        assert ohm_result.same_bags(etl_result)


class TestPassThroughCompilers:
    def test_sort_compiles_away(self, rel, instance):
        stage = SortStage([("id", "desc")])
        job = single_stage_job(rel, stage, rel)
        assert_equivalent(job, instance, clean_kinds=[])

    def test_peek_compiles_away(self, rel, instance):
        stage = PeekStage()
        job = single_stage_job(rel, stage, rel)
        assert_equivalent(job, instance, clean_kinds=[])


class TestGeneratedAndOpaque:
    def test_row_generator_becomes_source_with_provider(self, rel):
        gen_rel = relation("G", ("n", "int"))
        stage = RowGenerator(
            gen_rel, count=3, generators={"n": {"initial": 1, "increment": 1}}
        )
        job = Job("gen")
        job.add(stage)
        tgt = job.add(TableTarget(gen_rel.renamed("Out")))
        job.link(stage, tgt)
        graph = compile_job(job)
        (source,) = graph.sources()
        assert source.provider is not None
        assert execute(graph, Instance()).same_bags(run_job(job, Instance()))

    def test_custom_stage_becomes_unknown(self, rel, instance):
        def implementation(inputs):
            return [[dict(r) for r in inputs[0]]]

        stage = CustomStage(
            [rel.renamed("co")], reference="passthru",
            implementation=implementation,
        )
        job = single_stage_job(rel, stage, rel)
        graph = assert_equivalent(job, instance, clean_kinds=["UNKNOWN"])
        (unknown,) = graph.operators_of_kind("UNKNOWN")
        assert unknown.reference == "passthru"
