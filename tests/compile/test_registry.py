"""Compiler plug-in registry tests: MRO lookup, hierarchy, extension."""

import pytest

from repro.compile import (
    CompiledStage,
    CompilerRegistry,
    DEFAULT_COMPILERS,
    StageCompiler,
    compile_job,
    compiler_for,
)
from repro.compile.stages import JoinStageCompiler, LookupCompiler
from repro.errors import CompilationError
from repro.etl import (
    Job,
    LookupStage,
    PeekStage,
    SequentialFileSource,
    Stage,
    TableSource,
    TableTarget,
)
from repro.ohm.subtypes import BasicProject
from repro.schema import relation


class TestLookup:
    def test_all_builtin_stage_types_covered(self):
        # the paper's "15 DataStage processing stages" claim: every stage
        # in the shipped library has a compiler
        from repro.etl.stages import STAGE_CLASSES

        for stage_class in STAGE_CLASSES.values():
            found = None
            for klass in stage_class.__mro__:
                for registered in DEFAULT_COMPILERS.supported_stage_classes():
                    if registered is klass:
                        found = registered
                        break
                if found:
                    break
            assert found is not None, f"no compiler for {stage_class}"

    def test_mro_fallback(self):
        # SequentialFileSource has no dedicated compiler; the TableSource
        # compiler serves it through the class hierarchy
        stage = SequentialFileSource(relation("R", ("a", "int")), "/tmp/x.csv")
        compiler = DEFAULT_COMPILERS.lookup(stage)
        assert type(compiler).__name__ == "TableSourceCompiler"

    def test_compiler_hierarchy_exists(self):
        # "compilers can be designed to form a hierarchy of compiler
        # classes" — the Lookup compiler specializes the Join compiler
        assert issubclass(LookupCompiler, JoinStageCompiler)
        lookup = DEFAULT_COMPILERS.lookup(
            LookupStage(keys=[("a", "a")])
        )
        assert isinstance(lookup, JoinStageCompiler)

    def test_unregistered_stage_raises(self):
        class MysteryStage(Stage):
            STAGE_TYPE = "Mystery"

        registry = CompilerRegistry()
        with pytest.raises(CompilationError):
            registry.lookup(MysteryStage())

    def test_duplicate_registration_rejected(self):
        registry = CompilerRegistry()

        class C(StageCompiler):
            pass

        registry.register(PeekStage, C())
        with pytest.raises(CompilationError):
            registry.register(PeekStage, C())


class TestExtension:
    def test_new_stage_with_new_compiler(self):
        """The paper's extensibility claim: adding a stage type requires a
        compiler plug-in and nothing else."""
        registry = CompilerRegistry()
        # borrow all default compilers
        for klass in DEFAULT_COMPILERS.supported_stage_classes():
            registry.register(klass, DEFAULT_COMPILERS._compilers[klass])

        class UppercaseStage(Stage):
            """A vendor-specific stage uppercasing every string column."""

            STAGE_TYPE = "Uppercase"

            def output_relations(self, inputs, out_names):
                return [inputs[0].renamed(out_names[0])]

            def execute(self, inputs, out_relations, reg):
                from repro.data.dataset import Dataset

                rows = [
                    {
                        k: v.upper() if isinstance(v, str) else v
                        for k, v in row.items()
                    }
                    for row in inputs[0]
                ]
                return [Dataset(out_relations[0], rows, validate=False)]

        @compiler_for(UppercaseStage, registry=registry)
        class UppercaseCompiler(StageCompiler):
            def compile(self, stage, input_schemas, input_names,
                        output_names, graph):
                from repro.ohm.operators import Project
                from repro.expr.ast import ColumnRef, FunctionCall
                from repro.schema.types import STRING

                (incoming,) = input_schemas
                derivations = []
                for attr in incoming:
                    expr = ColumnRef(attr.name)
                    if attr.dtype is STRING:
                        expr = FunctionCall("UPPER", [expr])
                    derivations.append((attr.name, expr))
                op = graph.add(Project(derivations, label=stage.name))
                return CompiledStage([(op, 0)], [(op, 0)])

        rel = relation("R", ("id", "int", False), ("name", "varchar"))
        job = Job("ext")
        src = job.add(TableSource(rel))
        upper = job.add(UppercaseStage(name="up"))
        tgt = job.add(TableTarget(rel.renamed("Out")))
        job.link(src, upper)
        job.link(upper, tgt)

        graph = compile_job(job, registry=registry)
        assert "PROJECT" in graph.kinds_in_order()

        from repro.data.dataset import Dataset, Instance
        from repro.etl import run_job
        from repro.ohm import execute

        instance = Instance([Dataset(rel, [{"id": 1, "name": "ada"}])])
        assert execute(graph, instance).same_bags(run_job(job, instance))
