"""Checkpointed resume: the value codec, the store, and the ETL
engine's restore-from-frontier behaviour (resume equals fresh)."""

import datetime
import os

import pytest

from repro.data.dataset import Dataset
from repro.errors import ExecutionError, SerializationError
from repro.etl import EtlEngine
from repro.obs import Observability
from repro.resilience import (
    CheckpointStore,
    format_row,
    resolve_checkpoint,
    set_default_checkpoint_dir,
)
from repro.resilience.checkpoint import decode_value, encode_value
from repro.schema.model import relation
from repro.workloads import build_faulty_job, generate_faulty_instance


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            3.5,
            "text",
            [1, "two", None],
            datetime.date(2008, 4, 7),
            datetime.datetime(2008, 4, 7, 12, 30, 15),
            {"nested": {"deep": [datetime.date(2008, 4, 7)]}},
        ],
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_tuples_come_back_as_lists(self):
        assert decode_value(encode_value((1, 2))) == [1, 2]

    def test_unencodable_values_fail_loudly(self):
        with pytest.raises(SerializationError):
            encode_value(object())

    def test_unrecognized_tagged_dict_fails(self):
        with pytest.raises(SerializationError):
            decode_value({"$mystery": 1})


class TestCheckpointStore:
    @staticmethod
    def _dataset(n=3):
        rel = relation("R", ("id", "int", False), ("v", "float"))
        return Dataset(rel, [{"id": i, "v": i * 1.5} for i in range(n)])

    def test_save_and_load_frontier(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        job = build_faulty_job()
        data = self._dataset()
        store.save_stage(job, "ComputeUnit", [("units", data)])
        frontier = store.load_frontier(job)
        outputs, delivered = frontier["ComputeUnit"]
        assert delivered is None
        assert [format_row(r) for r in outputs["units"].rows] == [
            format_row(r) for r in data.rows
        ]

    def test_delivered_dataset_round_trips(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        job = build_faulty_job()
        data = self._dataset()
        store.save_stage(job, "tgt_Premium", [], delivered=data)
        _outputs, delivered = store.load_frontier(job)["tgt_Premium"]
        assert len(delivered) == len(data)

    def test_clear_removes_the_job_directory(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        job = build_faulty_job()
        store.save_stage(job, "ComputeUnit", [("units", self._dataset())])
        assert os.path.isdir(os.path.join(str(tmp_path), store.fingerprint(job)))
        store.clear(job)
        assert store.load_frontier(job) == {}
        assert not os.path.isdir(
            os.path.join(str(tmp_path), store.fingerprint(job))
        )

    def test_corrupt_snapshot_is_treated_as_not_done(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        job = build_faulty_job()
        store.save_stage(job, "ComputeUnit", [("units", self._dataset())])
        job_dir = os.path.join(str(tmp_path), store.fingerprint(job))
        (entry,) = os.listdir(job_dir)
        with open(os.path.join(job_dir, entry), "w") as handle:
            handle.write("{not json")
        assert store.load_frontier(job) == {}

    def test_fingerprint_tracks_job_structure(self):
        assert CheckpointStore.fingerprint(build_faulty_job()) == \
            CheckpointStore.fingerprint(build_faulty_job())
        edited = build_faulty_job()
        next(s for s in edited.stages if s.name == "ComputeUnit").on_error = \
            "skip"
        assert CheckpointStore.fingerprint(edited) != \
            CheckpointStore.fingerprint(build_faulty_job())
        assert CheckpointStore.fingerprint(
            build_faulty_job(with_reject_link=True)
        ) != CheckpointStore.fingerprint(build_faulty_job())

    def test_resolve_triad(self, tmp_path, monkeypatch):
        assert resolve_checkpoint(None) is None
        store = CheckpointStore(str(tmp_path))
        assert resolve_checkpoint(store) is store
        assert resolve_checkpoint(str(tmp_path)).directory == str(tmp_path)
        set_default_checkpoint_dir(str(tmp_path))
        try:
            assert resolve_checkpoint(None).directory == str(tmp_path)
        finally:
            set_default_checkpoint_dir(None)
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path / "env"))
        assert resolve_checkpoint(None).directory == str(tmp_path / "env")


class TestEngineResume:
    def test_resume_equals_fresh_after_target_crash(self, tmp_path, monkeypatch):
        instance, _ = generate_faulty_instance(n=40, seed=11, poison=3)
        job = build_faulty_job()
        fresh, _ = EtlEngine(on_error="skip").run(
            build_faulty_job(), instance
        )

        target = next(s for s in job.stages if s.name == "tgt_Premium")

        def crash(data, trusted=False, errors=None):
            raise ExecutionError("disk full", stage="tgt_Premium")

        monkeypatch.setattr(target, "load", crash)
        engine = EtlEngine(on_error="skip", checkpoint=str(tmp_path))
        with pytest.raises(ExecutionError, match="disk full"):
            engine.run(job, instance)
        # the completed frontier survived the crash
        frontier = engine.checkpoint.load_frontier(job)
        assert "src_Orders" in frontier and "ComputeUnit" in frontier

        monkeypatch.undo()
        obs = Observability(stats=True)
        resumed_engine = EtlEngine(
            obs=obs, on_error="skip", checkpoint=str(tmp_path)
        )
        resumed, _ = resumed_engine.run(job, instance)
        assert sorted(map(format_row, resumed.dataset("Premium").rows)) == \
            sorted(map(format_row, fresh.dataset("Premium").rows))
        assert "src_Orders" in resumed_engine.last_run.restored_stages
        assert obs.metrics.counter("exec.checkpoint.restored") >= 2
        # a successful run clears its snapshots
        assert resumed_engine.checkpoint.load_frontier(job) == {}

    def test_successful_run_leaves_no_snapshots(self, tmp_path):
        instance, _ = generate_faulty_instance(n=10, seed=2)
        engine = EtlEngine(checkpoint=str(tmp_path))
        engine.run(build_faulty_job(), instance)
        assert engine.checkpoint.load_frontier(build_faulty_job()) == {}
        assert engine.last_run.restored_stages == []

    def test_saved_metric_counts_stages(self, tmp_path, monkeypatch):
        instance, _ = generate_faulty_instance(n=10, seed=2)
        job = build_faulty_job()
        target = next(s for s in job.stages if s.name == "tgt_Premium")
        monkeypatch.setattr(
            target,
            "load",
            lambda data, trusted=False, errors=None: (_ for _ in ()).throw(
                ExecutionError("boom")
            ),
        )
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, checkpoint=str(tmp_path))
        with pytest.raises(ExecutionError):
            engine.run(job, instance)
        assert obs.metrics.counter("exec.checkpoint.saved") >= 2
        engine.checkpoint.clear(job)

    def test_edited_job_ignores_stale_snapshots(self, tmp_path, monkeypatch):
        instance, _ = generate_faulty_instance(n=10, seed=2)
        job = build_faulty_job()
        target = next(s for s in job.stages if s.name == "tgt_Premium")

        def crash(data, trusted=False, errors=None):
            raise ExecutionError("boom")

        monkeypatch.setattr(target, "load", crash)
        engine = EtlEngine(checkpoint=str(tmp_path))
        with pytest.raises(ExecutionError):
            engine.run(job, instance)
        monkeypatch.undo()
        # a structurally different job must not pick up the old frontier
        edited = build_faulty_job()
        next(
            s for s in edited.stages if s.name == "ComputeUnit"
        ).on_error = "skip"
        resumed_engine = EtlEngine(checkpoint=str(tmp_path))
        resumed_engine.run(edited, instance)
        assert resumed_engine.last_run.restored_stages == []


class TestTornWriteHardening:
    """Snapshots carry a checksum and survive torn writes: any
    truncated, tampered, or type-mangled file is treated as absent —
    the stage silently re-runs — never as a parse error."""

    @staticmethod
    def _dataset(n=3):
        rel = relation("R", ("id", "int", False), ("v", "float"))
        return Dataset(rel, [{"id": i, "v": i * 1.5} for i in range(n)])

    def _snapshot_path(self, store, job, tmp_path):
        job_dir = os.path.join(str(tmp_path), store.fingerprint(job))
        (entry,) = os.listdir(job_dir)
        return os.path.join(job_dir, entry)

    def test_truncated_snapshot_is_treated_as_not_done(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        job = build_faulty_job()
        store.save_stage(job, "ComputeUnit", [("units", self._dataset())])
        path = self._snapshot_path(store, job, tmp_path)
        with open(path, "r") as handle:
            text = handle.read()
        # tear the file mid-write: keep only the first half of the bytes
        with open(path, "w") as handle:
            handle.write(text[: len(text) // 2])
        assert store.load_frontier(job) == {}

    def test_checksum_mismatch_is_treated_as_not_done(self, tmp_path):
        import json as jsonlib

        store = CheckpointStore(str(tmp_path))
        job = build_faulty_job()
        store.save_stage(job, "ComputeUnit", [("units", self._dataset())])
        path = self._snapshot_path(store, job, tmp_path)
        with open(path, "r") as handle:
            record = jsonlib.load(handle)
        # valid JSON, wrong content: flip a value under the checksum
        record["payload"]["outputs"][0]["rows"][0]["id"] = 999
        with open(path, "w") as handle:
            jsonlib.dump(record, handle)
        assert store.load_frontier(job) == {}

    def test_non_object_snapshot_is_treated_as_not_done(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        job = build_faulty_job()
        store.save_stage(job, "ComputeUnit", [("units", self._dataset())])
        path = self._snapshot_path(store, job, tmp_path)
        with open(path, "w") as handle:
            handle.write('["not", "a", "snapshot"]')
        assert store.load_frontier(job) == {}

    def test_intact_snapshot_still_loads(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        job = build_faulty_job()
        data = self._dataset()
        store.save_stage(job, "ComputeUnit", [("units", data)])
        outputs, _ = store.load_frontier(job)["ComputeUnit"]
        assert [format_row(r) for r in outputs["units"].rows] == [
            format_row(r) for r in data.rows
        ]
