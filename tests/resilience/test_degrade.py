"""Graceful kernel degradation: fused chains → batched → row kernels →
interpreted oracle. A kernel fault at a tier never changes results — it
only shows up in the ``exec.degrade.*`` counters.

A block-tier fault plan also fires inside the fused tier (fused chains
run the block kernels' lowered functions), so a batched+fused engine
degrades fused → block on the first block fault; the block tier then
succeeds once the fault budget is spent."""

import pytest

from repro.compile import compile_job
from repro.errors import FaultInjected
from repro.etl import EtlEngine
from repro.faults import FaultPlan
from repro.mapping import MappingExecutor, ohm_to_mappings
from repro.obs import Observability
from repro.ohm import OhmExecutor
from repro.resilience import format_row
from repro.workloads import build_faulty_job, generate_faulty_instance


def _premium_rows(targets):
    return sorted(map(format_row, targets.dataset("Premium").rows))


@pytest.fixture
def instance():
    instance, _plan = generate_faulty_instance(n=40, seed=13)
    return instance


@pytest.fixture
def baseline(instance):
    targets, _ = EtlEngine().run(build_faulty_job(), instance)
    return _premium_rows(targets)


class TestEtlDegrade:
    def test_block_fault_degrades_to_row_kernels(self, instance, baseline):
        plan = FaultPlan(seed=1).fault_kernels(tier="block", first=1)
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, compiled=True, batched=True)
        with plan.injected():
            targets, _ = engine.run(build_faulty_job(), instance)
        assert _premium_rows(targets) == baseline
        assert obs.metrics.counter("exec.degrade.fused_to_block") >= 1
        assert plan.kernel_faults_fired.get("block", 0) >= 1

    def test_compiled_fault_degrades_to_oracle(self, instance, baseline):
        plan = FaultPlan(seed=2).fault_kernels(tier="compiled", first=1)
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, compiled=True, batched=False)
        with plan.injected():
            targets, _ = engine.run(build_faulty_job(), instance)
        assert _premium_rows(targets) == baseline
        assert obs.metrics.counter("exec.degrade.rows_to_oracle") >= 1

    def test_batched_engine_falls_all_the_way_to_oracle(
        self, instance, baseline
    ):
        plan = (
            FaultPlan(seed=3)
            .fault_kernels(tier="block", first=100)
            .fault_kernels(tier="compiled", first=100)
        )
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, compiled=True, batched=True)
        with plan.injected():
            targets, _ = engine.run(build_faulty_job(), instance)
        assert _premium_rows(targets) == baseline
        assert obs.metrics.counter("exec.degrade.block_to_rows") >= 1
        assert obs.metrics.counter("exec.degrade.rows_to_oracle") >= 1

    def test_all_tiers_faulted_surfaces_the_error(self, instance):
        plan = (
            FaultPlan(seed=4)
            .fault_kernels(tier="block", first=100)
            .fault_kernels(tier="compiled", first=100)
            .fault_kernels(tier="oracle", first=100)
        )
        engine = EtlEngine(compiled=True, batched=True)
        with plan.injected():
            with pytest.raises(FaultInjected):
                engine.run(build_faulty_job(), instance)

    def test_degrade_disabled_surfaces_the_first_fault(self, instance):
        plan = FaultPlan(seed=5).fault_kernels(tier="block", first=1)
        engine = EtlEngine(compiled=True, batched=True, degrade=False)
        with plan.injected():
            with pytest.raises(FaultInjected):
                engine.run(build_faulty_job(), instance)

    def test_degraded_run_with_rejects_keeps_parity(self, instance):
        poisoned, _ = generate_faulty_instance(n=40, seed=13, poison=4)
        clean_engine = EtlEngine(on_error="reject")
        clean, _ = clean_engine.run(build_faulty_job(), poisoned)
        clean_rejects = sorted(
            format_row(r.row) for r in clean_engine.last_run.rejected
        )
        plan = FaultPlan(seed=6).fault_kernels(tier="block", first=1)
        engine = EtlEngine(compiled=True, batched=True, on_error="reject")
        with plan.injected():
            degraded, _ = engine.run(build_faulty_job(), poisoned)
        assert _premium_rows(degraded) == _premium_rows(clean)
        assert sorted(
            format_row(r.row) for r in engine.last_run.rejected
        ) == clean_rejects


class TestInfrastructureErrorsAreNotAbsorbed:
    """Regression: an injected kernel fault under policy=reject must
    degrade the whole stage, not masquerade as per-row data errors on
    the reject channel."""

    def test_kernel_faults_do_not_leak_onto_the_reject_channel(self):
        poisoned, plan = generate_faulty_instance(n=40, seed=15, poison=4)
        clean_engine = EtlEngine(compiled=False, on_error="reject")
        clean, _ = clean_engine.run(build_faulty_job(), poisoned)
        clean_rejects = sorted(
            format_row(r.row) for r in clean_engine.last_run.rejected
        )
        fault_plan = FaultPlan(seed=15).fault_kernels(
            tier="compiled", rate=0.5
        )
        engine = EtlEngine(compiled=True, batched=False, on_error="reject")
        with fault_plan.injected():
            targets, _ = engine.run(build_faulty_job(), poisoned)
        assert _premium_rows(targets) == _premium_rows(clean)
        rejects = engine.last_run.rejected
        assert sorted(format_row(r.row) for r in rejects) == clean_rejects
        assert all(r.error_code != "FaultInjected" for r in rejects)


class TestOhmAndMappingDegrade:
    def test_ohm_block_fault_degrades(self, instance, baseline):
        graph = compile_job(build_faulty_job())
        plan = FaultPlan(seed=7).fault_kernels(tier="block", first=1)
        obs = Observability(stats=True)
        executor = OhmExecutor(obs=obs, compiled=True, batched=True)
        with plan.injected():
            targets, _ = executor.run(graph, instance)
        assert _premium_rows(targets) == baseline
        assert obs.metrics.counter("exec.degrade.fused_to_block") >= 1

    def test_ohm_degrade_disabled_surfaces_the_fault(self, instance):
        graph = compile_job(build_faulty_job())
        plan = FaultPlan(seed=8).fault_kernels(tier="block", first=1)
        executor = OhmExecutor(compiled=True, batched=True, degrade=False)
        with plan.injected():
            with pytest.raises(FaultInjected):
                executor.run(graph, instance)

    def test_mapping_compiled_fault_degrades(self, instance, baseline):
        mappings = ohm_to_mappings(compile_job(build_faulty_job()))
        plan = FaultPlan(seed=9).fault_kernels(tier="compiled", first=1)
        obs = Observability(stats=True)
        executor = MappingExecutor(obs=obs, compiled=True, batched=False)
        with plan.injected():
            targets, _ = executor.run(mappings, instance)
        assert _premium_rows(targets) == baseline
        assert obs.metrics.counter("exec.degrade.rows_to_oracle") >= 1
