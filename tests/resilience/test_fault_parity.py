"""The fault-injection parity matrix: 3 runtimes (ETL engine, OHM
executor, mapping executor) × 3 execution modes (interpreted oracle,
compiled rows, batched blocks) must agree on the accepted AND the
rejected row multisets under injected faults. This is the paper's
semantic-equivalence claim extended to the error path."""

import os
from collections import Counter

import pytest

from repro.compile import compile_job
from repro.etl import EtlEngine
from repro.faults import FaultPlan
from repro.mapping import MappingExecutor, ohm_to_mappings
from repro.ohm import OhmExecutor
from repro.resilience import format_row
from repro.workloads import build_faulty_job, generate_faulty_instance

#: (mode name, compiled, batched)
MODES = [
    ("interpreted", False, False),
    ("compiled", True, False),
    ("batched", True, True),
]


def run_etl(instance, compiled, batched, policy):
    engine = EtlEngine(
        compiled=compiled, batched=batched, on_error=policy
    )
    targets, _ = engine.run(build_faulty_job(), instance)
    accepted = Counter(
        format_row(r) for r in targets.dataset("Premium").rows
    )
    rejected = Counter(
        format_row(r.row) for r in engine.last_run.rejected
    )
    return accepted, rejected


def run_ohm(instance, compiled, batched, policy):
    graph = compile_job(build_faulty_job())
    executor = OhmExecutor(
        compiled=compiled, batched=batched, on_error=policy
    )
    targets, _edges, rejects = executor.run_with_rejects(graph, instance)
    accepted = Counter(
        format_row(r) for r in targets.dataset("Premium").rows
    )
    rejected = Counter(r["row"] for r in rejects.rows)
    return accepted, rejected


def run_mapping(instance, compiled, batched, policy):
    mappings = ohm_to_mappings(compile_job(build_faulty_job()))
    executor = MappingExecutor(
        compiled=compiled, batched=batched, on_error=policy
    )
    targets, _inter, rejects = executor.run_with_rejects(mappings, instance)
    accepted = Counter(
        format_row(r) for r in targets.dataset("Premium").rows
    )
    rejected = Counter(r["row"] for r in rejects.rows)
    return accepted, rejected


RUNTIMES = [("etl", run_etl), ("ohm", run_ohm), ("mapping", run_mapping)]


def matrix(instance, policy="reject"):
    """{(runtime, mode): (accepted Counter, rejected Counter)}."""
    results = {}
    for runtime_name, runner in RUNTIMES:
        for mode_name, compiled, batched in MODES:
            results[(runtime_name, mode_name)] = runner(
                instance, compiled, batched, policy
            )
    return results


class TestParityMatrix:
    def test_reject_parity_across_all_nine_combinations(self):
        instance, plan = generate_faulty_instance(n=60, seed=11, poison=7)
        results = matrix(instance, policy="reject")
        reference_accepted, reference_rejected = results[("etl", "interpreted")]
        assert sum(reference_rejected.values()) == 7
        source_rows = instance.dataset("Orders").rows
        assert reference_rejected == Counter(
            format_row(source_rows[i]) for i in plan.poisoned["Orders"]
        )
        for key, (accepted, rejected) in results.items():
            assert accepted == reference_accepted, f"accepted mismatch at {key}"
            assert rejected == reference_rejected, f"rejected mismatch at {key}"

    def test_skip_parity_accepts_the_same_rows(self):
        instance, _ = generate_faulty_instance(n=45, seed=12, poison=5)
        skip_results = matrix(instance, policy="skip")
        reject_results = matrix(instance, policy="reject")
        reference, _ = reject_results[("etl", "interpreted")]
        for key, (accepted, rejected) in skip_results.items():
            assert accepted == reference, f"accepted mismatch at {key}"
            assert not rejected, f"skip must not reject at {key}"

    def test_clean_input_has_empty_reject_channel(self):
        instance, _ = generate_faulty_instance(n=25, seed=13, poison=0)
        for key, (accepted, rejected) in matrix(instance).items():
            assert sum(accepted.values()) > 0
            assert not rejected, f"spurious rejects at {key}"

    def test_parity_survives_kernel_degradation(self):
        instance, _ = generate_faulty_instance(n=40, seed=14, poison=4)
        clean = run_etl(instance, False, False, "reject")
        plan = FaultPlan(seed=14).fault_kernels(tier="block", first=2)
        with plan.injected():
            degraded = run_etl(instance, True, True, "reject")
        assert degraded == clean


@pytest.mark.skipif(
    not os.environ.get("REPRO_FAULTS"),
    reason="extended fault sweep; set REPRO_FAULTS=1 to run",
)
class TestExtendedFaultSweep:
    """The long matrix: several seeds, and kernel faults layered on top
    of poisoned rows. Run in CI under REPRO_FAULTS=1."""

    @pytest.mark.parametrize("seed", range(5))
    def test_multi_seed_parity(self, seed):
        instance, _ = generate_faulty_instance(n=80, seed=seed, poison=9)
        results = matrix(instance, policy="reject")
        reference = results[("etl", "interpreted")]
        assert sum(reference[1].values()) == 9
        for key, result in results.items():
            assert result == reference, f"mismatch at {key} (seed {seed})"

    @pytest.mark.parametrize("tier", ["block", "compiled"])
    def test_parity_under_kernel_fault_rates(self, tier):
        instance, _ = generate_faulty_instance(n=80, seed=21, poison=6)
        reference = run_etl(instance, False, False, "reject")
        for runtime_name, runner in RUNTIMES:
            plan = FaultPlan(seed=21).fault_kernels(tier=tier, rate=0.5)
            with plan.injected():
                result = runner(instance, True, True, "reject")
            assert result == reference, f"mismatch at {runtime_name}/{tier}"
