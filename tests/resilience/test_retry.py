"""Retry with exponential backoff: the policy in isolation (fake clock
and sleep), through the ETL engine's endpoints, and in the SQL runner."""

import pytest

from repro.errors import ExecutionError, TransientError, ValidationError
from repro.etl import EtlEngine
from repro.etl.model import Job
from repro.etl.stages import TableSource, TableTarget
from repro.faults import FaultPlan
from repro.obs import Observability
from repro.resilience import (
    RetryPolicy,
    resolve_retry,
    set_default_max_retries,
)
from repro.workloads import generate_faulty_instance, orders_schema


class FakeClock:
    """A clock that only moves when told to (or when sleep is called)."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


def flaky(failures, result="ok", exc=TransientError):
    state = {"left": failures, "calls": 0}

    def fn():
        state["calls"] += 1
        if state["left"] > 0:
            state["left"] -= 1
            raise exc("injected")
        return result

    fn.state = state
    return fn


class TestRetryPolicy:
    def test_delays_schedule(self):
        policy = RetryPolicy(
            max_retries=4, base_delay=0.05, multiplier=2.0, max_delay=0.3
        )
        assert policy.delays() == (0.05, 0.1, 0.2, 0.3)

    def test_recovers_after_transient_failures(self):
        clock = FakeClock()
        obs = Observability(stats=True)
        policy = RetryPolicy(max_retries=3, clock=clock, sleep=clock.sleep)
        fn = flaky(2)
        assert policy.call(fn, name="src", obs=obs) == "ok"
        assert fn.state["calls"] == 3
        assert clock.sleeps == [0.05, 0.1]
        assert obs.metrics.counter("exec.retry.src.attempts") == 2
        assert obs.metrics.counter("exec.retry.src.recovered") == 1
        assert obs.metrics.counter("exec.retry.src.exhausted") == 0

    def test_exhausts_the_attempt_budget(self):
        clock = FakeClock()
        obs = Observability(stats=True)
        policy = RetryPolicy(max_retries=2, clock=clock, sleep=clock.sleep)
        with pytest.raises(TransientError):
            policy.call(flaky(10), name="src", obs=obs)
        assert clock.sleeps == [0.05, 0.1]  # two retries, then give up
        assert obs.metrics.counter("exec.retry.src.exhausted") == 1
        assert obs.metrics.counter("exec.retry.src.recovered") == 0

    def test_deadline_stops_retrying_early(self):
        clock = FakeClock()
        obs = Observability(stats=True)
        policy = RetryPolicy(
            max_retries=10,
            base_delay=0.5,
            deadline=0.4,
            clock=clock,
            sleep=clock.sleep,
        )
        with pytest.raises(TransientError):
            policy.call(flaky(10), name="src", obs=obs)
        # the very first 0.5s pause would cross the 0.4s deadline
        assert clock.sleeps == []
        assert obs.metrics.counter("exec.retry.src.exhausted") == 1

    def test_permanent_errors_are_not_retried(self):
        clock = FakeClock()
        policy = RetryPolicy(max_retries=5, clock=clock, sleep=clock.sleep)
        fn = flaky(10, exc=ExecutionError)
        with pytest.raises(ExecutionError):
            policy.call(fn, name="src")
        assert fn.state["calls"] == 1
        assert clock.sleeps == []

    def test_extra_retry_on_types(self):
        clock = FakeClock()
        policy = RetryPolicy(max_retries=2, clock=clock, sleep=clock.sleep)
        fn = flaky(1, exc=OSError)
        assert policy.call(fn, retry_on=(OSError,)) == "ok"

    def test_backoff_is_capped_at_max_delay(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_retries=4, base_delay=0.1, max_delay=0.25,
            clock=clock, sleep=clock.sleep,
        )
        with pytest.raises(TransientError):
            policy.call(flaky(10))
        assert clock.sleeps == [0.1, 0.2, 0.25, 0.25]

    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValidationError):
            RetryPolicy(multiplier=0.5)


class TestResolveRetry:
    def test_zero_budget_means_no_wrapper(self):
        assert resolve_retry(None) is None
        assert resolve_retry(0) is None

    def test_int_shorthand(self):
        policy = resolve_retry(2)
        assert isinstance(policy, RetryPolicy)
        assert policy.max_retries == 2

    def test_policy_used_as_is(self):
        policy = RetryPolicy(max_retries=1)
        assert resolve_retry(policy) is policy

    def test_process_default_budget(self):
        set_default_max_retries(3)
        try:
            assert resolve_retry(None).max_retries == 3
        finally:
            set_default_max_retries(None)
        assert resolve_retry(None) is None

    def test_env_var_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "2")
        assert resolve_retry(None).max_retries == 2
        monkeypatch.setenv("REPRO_MAX_RETRIES", "nope")
        with pytest.raises(ValidationError):
            resolve_retry(None)


def _passthrough_job(source):
    job = Job("passthrough")
    job.add(source)
    target = job.add(TableTarget(orders_schema().renamed("Copied")))
    job.link(source, target, name="rows")
    return job


class TestEngineRetry:
    def test_flaky_source_recovers(self):
        plan = FaultPlan(seed=1)
        source = plan.flaky_source(TableSource(orders_schema()), failures=2)
        clock = FakeClock()
        obs = Observability(stats=True)
        engine = EtlEngine(
            obs=obs,
            retry=RetryPolicy(max_retries=3, clock=clock, sleep=clock.sleep),
        )
        instance, _ = generate_faulty_instance(n=20, seed=1)
        targets, _ = engine.run(_passthrough_job(source), instance)
        assert len(targets.dataset("Copied")) == 20
        assert clock.sleeps == [0.05, 0.1]
        assert obs.metrics.counter("exec.retry.src_Orders.recovered") == 1

    def test_without_retry_the_transient_error_surfaces(self):
        plan = FaultPlan(seed=1)
        source = plan.flaky_source(TableSource(orders_schema()), failures=1)
        instance, _ = generate_faulty_instance(n=5, seed=1)
        with pytest.raises(TransientError):
            EtlEngine().run(_passthrough_job(source), instance)

    def test_permanent_source_failure_is_not_absorbed(self):
        plan = FaultPlan(seed=1)
        source = plan.flaky_source(
            TableSource(orders_schema()), permanent=True
        )
        clock = FakeClock()
        engine = EtlEngine(
            retry=RetryPolicy(max_retries=5, clock=clock, sleep=clock.sleep)
        )
        instance, _ = generate_faulty_instance(n=5, seed=1)
        with pytest.raises(ExecutionError):
            engine.run(_passthrough_job(source), instance)
        assert clock.sleeps == []

    def test_flaky_target_recovers(self):
        plan = FaultPlan(seed=2)
        target = plan.flaky_target(
            TableTarget(orders_schema().renamed("Copied")), failures=1
        )
        job = Job("passthrough")
        source = job.add(TableSource(orders_schema()))
        job.add(target)
        job.link(source, target, name="rows")
        clock = FakeClock()
        obs = Observability(stats=True)
        engine = EtlEngine(
            obs=obs,
            retry=RetryPolicy(max_retries=2, clock=clock, sleep=clock.sleep),
        )
        instance, _ = generate_faulty_instance(n=8, seed=2)
        targets, _ = engine.run(job, instance)
        assert len(targets.dataset("Copied")) == 8
        assert obs.metrics.counter("exec.retry.tgt_Copied.recovered") == 1


class TestSqlRunnerRetry:
    @staticmethod
    def _runner(retry):
        from repro.deploy.sql import SqliteRunner

        instance, _ = generate_faulty_instance(n=10, seed=3)
        return SqliteRunner(instance, retry=retry)

    class _FlakyConnection:
        def __init__(self, inner, failures):
            self._inner = inner
            self.failures_remaining = failures

        def execute(self, sql):
            if self.failures_remaining > 0:
                self.failures_remaining -= 1
                raise TransientError("injected busy database")
            return self._inner.execute(sql)

        def __getattr__(self, name):
            return getattr(self._inner, name)

    def test_query_retries_transient_failures(self):
        clock = FakeClock()
        runner = self._runner(
            RetryPolicy(max_retries=2, clock=clock, sleep=clock.sleep)
        )
        runner.connection = self._FlakyConnection(runner.connection, 1)
        result = runner.query('SELECT * FROM "Orders"', orders_schema())
        assert len(result) == 10
        assert clock.sleeps == [0.05]

    def test_query_without_retry_wraps_into_execution_error(self):
        runner = self._runner(None)
        with pytest.raises(ExecutionError):
            runner.query("SELECT * FROM missing_table", orders_schema())


class TestFullJitter:
    """Opt-in full jitter: each pause is drawn uniformly from
    [0, scheduled_pause] by an injectable RNG, so seeded runs are
    deterministic and unjittered schedules are unchanged."""

    def test_jitter_defaults_off_and_schedule_is_exact(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_retries=2, base_delay=0.05, clock=clock, sleep=clock.sleep
        )
        assert policy.call(flaky(2)) == "ok"
        assert clock.sleeps == [0.05, 0.1]

    def test_jittered_pauses_are_bounded_by_the_schedule(self):
        import random

        clock = FakeClock()
        policy = RetryPolicy(
            max_retries=4,
            base_delay=0.05,
            clock=clock,
            sleep=clock.sleep,
            jitter=True,
            rng=random.Random(7),
        )
        assert policy.call(flaky(4)) == "ok"
        assert len(clock.sleeps) == 4
        for pause, scheduled in zip(clock.sleeps, policy.delays()):
            assert 0.0 <= pause <= scheduled

    def test_seeded_jitter_is_deterministic(self):
        import random

        def run():
            clock = FakeClock()
            policy = RetryPolicy(
                max_retries=3,
                base_delay=0.05,
                clock=clock,
                sleep=clock.sleep,
                jitter=True,
                rng=random.Random(42),
            )
            policy.call(flaky(3))
            return clock.sleeps

        assert run() == run()

    def test_two_seeds_decorrelate(self):
        import random

        sleeps = []
        for seed in (1, 2):
            clock = FakeClock()
            policy = RetryPolicy(
                max_retries=3,
                base_delay=0.05,
                clock=clock,
                sleep=clock.sleep,
                jitter=True,
                rng=random.Random(seed),
            )
            policy.call(flaky(3))
            sleeps.append(clock.sleeps)
        assert sleeps[0] != sleeps[1]

    def test_delays_reports_the_unjittered_schedule(self):
        import random

        policy = RetryPolicy(
            max_retries=3, base_delay=0.05, jitter=True, rng=random.Random(0)
        )
        assert policy.delays() == (0.05, 0.1, 0.2)
