"""Row-level error policies: the triad, ErrorContext, and the reject
channel across the ETL engine (run-level, per-stage, and in-job reject
links)."""

import pytest

from repro.data.dataset import Dataset, Instance
from repro.errors import EvaluationError, ExecutionError, ValidationError
from repro.etl import EtlEngine
from repro.etl.stages import FilterOutput, FilterStage
from repro.etl.xmlio import job_from_xml, job_to_xml
from repro.expr.functions import DEFAULT_REGISTRY
from repro.obs import Observability
from repro.resilience import (
    FAIL_FAST,
    POLICIES,
    REJECT,
    SKIP,
    ErrorContext,
    check_policy,
    default_on_error,
    format_row,
    reject_relation,
    rejects_dataset,
    resolve_on_error,
    set_default_on_error,
)
from repro.schema.model import relation
from repro.workloads import build_faulty_job, generate_faulty_instance


class TestPolicyTriad:
    def test_check_policy_accepts_the_three_policies(self):
        for policy in POLICIES:
            assert check_policy(policy) == policy

    def test_check_policy_rejects_unknown(self):
        with pytest.raises(ValidationError, match="unknown error policy"):
            check_policy("explode")

    def test_default_is_fail_fast(self):
        assert default_on_error() == FAIL_FAST
        assert resolve_on_error(None) == FAIL_FAST

    def test_explicit_argument_wins(self):
        assert resolve_on_error("reject") == REJECT

    def test_set_default_override_and_restore(self):
        set_default_on_error("skip")
        try:
            assert resolve_on_error(None) == SKIP
        finally:
            set_default_on_error(None)
        assert resolve_on_error(None) == FAIL_FAST

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_ON_ERROR", "reject")
        assert default_on_error() == REJECT

    def test_env_var_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_ON_ERROR", "bogus")
        with pytest.raises(ValidationError):
            default_on_error()

    def test_engine_picks_up_process_default(self):
        set_default_on_error("skip")
        try:
            assert EtlEngine().on_error == SKIP
        finally:
            set_default_on_error(None)


class TestErrorContext:
    def test_fail_fast_has_no_handler(self):
        ctx = ErrorContext("S", FAIL_FAST)
        assert not ctx.handling
        assert ctx.kernel_handler() is None

    def test_skip_counts_without_capturing(self):
        ctx = ErrorContext("S", SKIP)
        handle = ctx.kernel_handler()
        handle(3, {"a": 1}, ValueError("boom"))
        assert ctx.skipped == 1
        assert ctx.rejected == []

    def test_reject_captures_structured_records(self):
        ctx = ErrorContext("S", REJECT)
        handle = ctx.kernel_handler(link="out0")
        handle(7, {"a": 1}, EvaluationError("division by zero"))
        (record,) = ctx.rejected
        assert record.stage == "S"
        assert record.link == "out0"
        assert record.row_index == 7
        assert record.row == {"a": 1}
        assert record.error_code == "EvaluationError"
        assert "division by zero" in record.message

    def test_row_of_maps_kernel_items_back_to_rows(self):
        ctx = ErrorContext("S", REJECT)
        handle = ctx.kernel_handler(row_of=lambda item: item["env"])
        handle(0, {"env": {"k": 2}}, ValueError("x"))
        assert ctx.rejected[0].row == {"k": 2}

    def test_reset_drops_pending_state(self):
        ctx = ErrorContext("S", REJECT)
        ctx.record(0, {"a": 1}, ValueError("x"))
        ctx.redirected = 2
        ctx.reset()
        assert ctx.rejected == [] and ctx.skipped == 0 and ctx.redirected == 0

    def test_publish_emits_counters(self):
        obs = Observability(stats=True)
        ctx = ErrorContext("S", REJECT)
        ctx.record(0, {"a": 1}, ValueError("x"))
        ctx.redirected = 3
        ctx.publish(obs.metrics)
        assert obs.metrics.counter("exec.errors.S.rejected") == 1
        assert obs.metrics.counter("exec.errors.S.redirected") == 3
        assert obs.metrics.counter("exec.errors.total") == 4

    def test_publish_is_silent_when_clean(self):
        obs = Observability(stats=True)
        ErrorContext("S", REJECT).publish(obs.metrics)
        assert obs.metrics.counter("exec.errors.total") == 0


class TestRejectChannelPlumbing:
    def test_format_row_is_key_order_independent(self):
        assert format_row({"b": 2, "a": "x"}) == format_row({"a": "x", "b": 2})
        assert format_row({"a": "x", "b": 2}) == "{a: 'x', b: 2}"

    def test_rejects_dataset_uses_the_standard_relation(self):
        ctx = ErrorContext("S", REJECT)
        ctx.record(5, {"a": 1}, ValueError("boom"), link="L")
        data = rejects_dataset(ctx.rejected, "Rejects")
        assert data.relation.name == "Rejects"
        assert [a.name for a in data.relation] == [
            a.name for a in reject_relation("Rejects")
        ]
        (row,) = data.rows
        assert row["stage"] == "S" and row["link"] == "L"
        assert row["row"] == format_row({"a": 1})


class TestEnginePolicies:
    def test_fail_fast_aborts_on_the_first_poisoned_row(self):
        instance, _ = generate_faulty_instance(n=30, seed=3, poison=2)
        with pytest.raises(EvaluationError, match="division"):
            EtlEngine().run(build_faulty_job(), instance)

    def test_execution_error_carries_structured_context(self):
        error = ExecutionError(
            "output mismatch",
            stage="ComputeUnit",
            link="units",
            row_index=7,
            row={"qty": 0},
        )
        assert error.context() == {
            "stage": "ComputeUnit",
            "link": "units",
            "row_index": 7,
            "row": {"qty": 0},
        }
        # the original message stays a prefix so match= keeps working
        assert str(error).startswith("output mismatch")
        assert "stage='ComputeUnit'" in str(error)

    def test_skip_drops_poisoned_rows(self):
        instance, plan = generate_faulty_instance(n=40, seed=5, poison=4)
        engine = EtlEngine(on_error="skip")
        targets, _links = engine.run(build_faulty_job(), instance)
        run = engine.last_run
        assert run.skip_counts.get("ComputeUnit") == 4
        assert run.rejected == []
        # the survivors still flow: delivered = filtered non-poisoned rows
        clean_engine = EtlEngine()
        clean_instance, _ = generate_faulty_instance(n=40, seed=5, poison=0)
        clean, _ = clean_engine.run(build_faulty_job(), clean_instance)
        poisoned_ids = {
            clean_instance.dataset("Orders").rows[i]["orderID"]
            for i in plan.poisoned["Orders"]
        }
        expected = [
            r for r in clean.dataset("Premium").rows
            if r["orderID"] not in poisoned_ids
        ]
        assert sorted(
            r["orderID"] for r in targets.dataset("Premium").rows
        ) == sorted(r["orderID"] for r in expected)

    def test_reject_collects_the_poisoned_rows(self):
        instance, plan = generate_faulty_instance(n=40, seed=6, poison=5)
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, on_error="reject")
        engine.run(build_faulty_job(), instance)
        run = engine.last_run
        assert run.total_rejected == 5
        assert run.reject_counts.get("ComputeUnit") == 5
        source_rows = instance.dataset("Orders").rows
        expected = {
            format_row(source_rows[i]) for i in plan.poisoned["Orders"]
        }
        assert {format_row(r.row) for r in run.rejected} == expected
        for record in run.rejected:
            assert record.stage == "ComputeUnit"
            assert record.error_code == "EvaluationError"
        assert obs.metrics.counter("exec.errors.ComputeUnit.rejected") == 5
        assert obs.metrics.counter("exec.errors.total") == 5

    def test_per_stage_override_beats_run_level_policy(self):
        instance, _ = generate_faulty_instance(n=30, seed=7, poison=3)
        job = build_faulty_job()
        stage = next(s for s in job.stages if s.name == "ComputeUnit")
        stage.on_error = "skip"
        engine = EtlEngine()  # run level stays fail_fast
        engine.run(job, instance)
        assert engine.last_run.skip_counts.get("ComputeUnit") == 3

    def test_results_match_across_policies_on_survivors(self):
        instance, _ = generate_faulty_instance(n=50, seed=8, poison=6)
        skip_engine = EtlEngine(on_error="skip")
        skipped, _ = skip_engine.run(build_faulty_job(), instance)
        reject_engine = EtlEngine(on_error="reject")
        rejected, _ = reject_engine.run(build_faulty_job(), instance)
        assert sorted(map(format_row, skipped.dataset("Premium").rows)) == \
            sorted(map(format_row, rejected.dataset("Premium").rows))


class TestRejectLink:
    def test_reject_link_delivers_rows_in_band(self):
        instance, plan = generate_faulty_instance(n=40, seed=9, poison=4)
        engine = EtlEngine()  # fail_fast run level; the link carries policy
        targets, links = engine.run(
            build_faulty_job(with_reject_link=True), instance
        )
        # rows land on the dedicated link/target, not the run-level list
        assert engine.last_run.rejected == []
        assert engine.last_run.total_rejected == 4
        rejects = targets.dataset("Rejects")
        assert len(rejects) == 4
        source_rows = instance.dataset("Orders").rows
        assert {r["row"] for r in rejects.rows} == {
            format_row(source_rows[i]) for i in plan.poisoned["Orders"]
        }
        assert {r["stage"] for r in rejects.rows} == {"ComputeUnit"}
        assert "Rejects" in links

    def test_reject_link_is_out_of_band_for_port_counts(self):
        # the job validates: the Transformer still has exactly one data
        # output even though a second (reject) link hangs off it
        job = build_faulty_job(with_reject_link=True)
        instance, _ = generate_faulty_instance(n=10, seed=1, poison=0)
        targets, _ = EtlEngine().run(job, instance)
        assert len(targets.dataset("Rejects")) == 0


class TestFilterStageInBandReject:
    """Regression: a FilterStage that already has a reject output keeps
    *erroring* rows in-band under policy=reject — they land on the same
    reject link as unroutable rows instead of the generic channel."""

    @staticmethod
    def _stage_and_data():
        rel = relation("R", ("id", "int", False), ("v", "int", False))
        stage = FilterStage(
            [FilterOutput("10 / v > 3"), FilterOutput(reject=True)],
            name="F",
        )
        rows = [
            {"id": 1, "v": 1},   # 10/1 > 3 → out0
            {"id": 2, "v": 0},   # errors → reject output (redirected)
            {"id": 3, "v": 9},   # 10/9 < 3 → reject output (no match)
        ]
        data = Dataset(rel, rows)
        stage.validate([rel])
        out_relations = stage.output_relations([rel], ["hi", "rej"])
        return stage, data, out_relations

    def test_error_rows_land_on_the_reject_output(self):
        stage, data, out_relations = self._stage_and_data()
        ctx = ErrorContext("F", REJECT)
        hi, rej = stage.execute(
            [data], out_relations, DEFAULT_REGISTRY, errors=ctx
        )
        assert [r["id"] for r in hi.rows] == [1]
        assert sorted(r["id"] for r in rej.rows) == [2, 3]
        assert ctx.redirected == 1
        assert ctx.rejected == []  # in-band, not on the generic channel

    def test_skip_policy_still_drops_error_rows(self):
        stage, data, out_relations = self._stage_and_data()
        ctx = ErrorContext("F", SKIP)
        hi, rej = stage.execute(
            [data], out_relations, DEFAULT_REGISTRY, errors=ctx
        )
        assert [r["id"] for r in hi.rows] == [1]
        assert [r["id"] for r in rej.rows] == [3]
        assert ctx.skipped == 1


class TestXmlRoundTrip:
    def test_on_error_and_reject_link_survive_xml(self):
        job = build_faulty_job(with_reject_link=True)
        parsed = job_from_xml(job_to_xml(job))
        stage = next(s for s in parsed.stages if s.name == "ComputeUnit")
        assert stage.on_error == "reject"
        (reject_edge,) = [e for e in parsed.links if e.is_reject]
        assert reject_edge.name == "Rejects"
        assert reject_edge.kind == "reject"

    def test_round_tripped_job_executes_identically(self):
        job = build_faulty_job(with_reject_link=True)
        parsed = job_from_xml(job_to_xml(job))
        instance, _ = generate_faulty_instance(n=30, seed=4, poison=3)
        original, _ = EtlEngine().run(job, instance)
        reparsed, _ = EtlEngine().run(parsed, instance)
        for name in ("Premium", "Rejects"):
            assert sorted(map(format_row, original.dataset(name).rows)) == \
                sorted(map(format_row, reparsed.dataset(name).rows))

    def test_invalid_on_error_attribute_is_rejected(self):
        text = job_to_xml(build_faulty_job(with_reject_link=True))
        with pytest.raises(ValidationError):
            job_from_xml(text.replace('onError="reject"', 'onError="nope"'))
