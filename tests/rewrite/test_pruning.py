"""Dead-column elimination tests."""

import pytest

from repro.compile import compile_job
from repro.data.dataset import Dataset, Instance
from repro.etl import run_job
from repro.ohm import (
    BasicProject,
    Filter,
    Group,
    Join,
    OhmGraph,
    Project,
    Source,
    Split,
    Target,
    Union,
    execute,
)
from repro.rewrite import prune_unused_columns, required_columns
from repro.schema import relation
from repro.workloads import build_example_job, generate_instance


@pytest.fixture
def rel():
    return relation(
        "R", ("id", "int", False), ("a", "float", False), ("b", "varchar"),
        ("c", "varchar"),
    )


def data(rel):
    return Dataset(
        rel,
        [
            {"id": 1, "a": 2.0, "b": "x", "c": "p"},
            {"id": 2, "a": 5.0, "b": "y", "c": "q"},
        ],
    )


class TestRequiredColumns:
    def test_target_requires_its_attributes(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        t = g.add(Target(relation("Out", ("id", "int"), ("a", "float"))))
        edge = g.connect(s, t)
        needed = required_columns(g)
        assert needed[(s.uid, 0)] == {"id", "a"}

    def test_filter_adds_condition_columns(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        f = g.add(Filter("b = 'x'"))
        t = g.add(Target(relation("Out", ("id", "int"))))
        g.chain(s, f, t)
        needed = required_columns(g)
        assert needed[(s.uid, 0)] == {"id", "b"}

    def test_group_requires_all_keys(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        gr = g.add(Group(["b", "c"], [("total", "SUM(a)")]))
        # the target only reads b + total, but grouping by c still
        # requires c upstream
        t = g.add(Target(relation("Out", ("b", "varchar"),
                                  ("total", "float"))))
        g.chain(s, gr, t)
        needed = required_columns(g)
        assert needed[(s.uid, 0)] == {"a", "b", "c"}

    def test_join_requirements_split_by_side(self, rel):
        other = relation("S", ("id", "int", False), ("d", "varchar"))
        g = OhmGraph()
        s1 = g.add(Source(rel))
        s2 = g.add(Source(other))
        j = g.add(Join("L.id = Rt.id"))
        bp = g.add(BasicProject([("a", "a"), ("d", "d")]))
        t = g.add(Target(relation("Out", ("a", "float"), ("d", "varchar"))))
        g.connect(s1, j, name="L")
        g.connect(s2, j, dst_port=1, name="Rt")
        g.chain(j, bp, t)
        needed = required_columns(g)
        assert needed[(s1.uid, 0)] == {"id", "a"}
        assert needed[(s2.uid, 0)] == {"id", "d"}

    def test_split_unions_branch_requirements(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        sp = g.add(Split())
        t1 = g.add(Target(relation("O1", ("id", "int"))))
        t2 = g.add(Target(relation("O2", ("b", "varchar"))))
        g.connect(s, sp)
        g.connect(sp, t1, src_port=0)
        g.connect(sp, t2, src_port=1)
        needed = required_columns(g)
        assert needed[(s.uid, 0)] == {"id", "b"}


class TestPruning:
    def test_unused_derivation_dropped(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        p = g.add(Project([("id", "id"), ("x", "a * 2"),
                           ("wasted", "UPPER(b)")]))
        t = g.add(Target(relation("Out", ("id", "int"), ("x", "float"))))
        g.chain(s, p, t)
        assert prune_unused_columns(g) == 1
        (project,) = g.operators_of_kind("PROJECT")
        assert [c for c, _e in project.derivations] == ["id", "x"]

    def test_semantics_preserved(self, rel):
        def build():
            g = OhmGraph()
            s = g.add(Source(rel))
            p = g.add(Project([("id", "id"), ("x", "a * 2"),
                               ("wasted", "UPPER(b)")]))
            f = g.add(Filter("x > 3"))
            t = g.add(Target(relation("Out", ("id", "int"), ("x", "float"))))
            g.chain(s, p, f, t)
            return g

        pruned = build()
        prune_unused_columns(pruned)
        plain = build()
        instance = Instance([data(rel)])
        assert execute(pruned, instance).same_bags(execute(plain, instance))

    def test_idempotent(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        p = g.add(Project([("id", "id"), ("wasted", "b")]))
        t = g.add(Target(relation("Out", ("id", "int"))))
        g.chain(s, p, t)
        assert prune_unused_columns(g) == 1
        assert prune_unused_columns(g) == 0

    def test_keeps_one_column_minimum(self, rel):
        # a COUNT(*)-style consumer needs no particular column; the
        # projection must still produce a non-empty relation
        g = OhmGraph()
        s = g.add(Source(rel))
        p = g.add(BasicProject([("b", "b"), ("c", "c")]))
        gr = g.add(Group([], [("n", "COUNT(*)")]))
        t = g.add(Target(relation("Out", ("n", "int"))))
        g.chain(s, p, gr, t)
        prune_unused_columns(g)
        (project,) = g.operators_of_kind("BASIC PROJECT")
        assert len(project.derivations) >= 1
        instance = Instance([data(rel)])
        result = execute(g, instance)
        assert result.dataset("Out").rows == [{"n": 2}]

    def test_basic_project_columns_stay_consistent(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        p = g.add(BasicProject([("id", "id"), ("bb", "b")]))
        t = g.add(Target(relation("Out", ("id", "int"))))
        g.chain(s, p, t)
        prune_unused_columns(g)
        (project,) = g.operators_of_kind("BASIC PROJECT")
        assert project.columns == [("id", "id")]

    def test_filter_condition_columns_survive(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        p = g.add(Project([("id", "id"), ("x", "a * 2")]))
        f = g.add(Filter("x > 3"))
        bp = g.add(BasicProject([("id", "id")]))
        t = g.add(Target(relation("Out", ("id", "int"))))
        g.chain(s, p, f, bp, t)
        prune_unused_columns(g)
        (project,) = g.operators_of_kind("PROJECT")
        # x is not in the target but the filter reads it
        assert dict(project.derivations).keys() == {"id", "x"}
        instance = Instance([data(rel)])
        assert sorted(
            r["id"] for r in execute(g, instance).dataset("Out")
        ) == [1, 2]  # x = 4 and 10, both above the threshold

    def test_example_job_has_no_dead_columns(self):
        graph = compile_job(build_example_job())
        assert prune_unused_columns(graph) == 0

    def test_example_with_wide_source_prunes_nothing_needed(self):
        # widen the target requirements test: drop a target column from
        # the example and the corresponding derivation gets pruned
        from repro.etl import TableTarget

        job = build_example_job()
        narrow = relation(
            "BigCustomers", ("customerID", "int", False),
            ("totalBalance", "float"),
        )
        old = job.stage("BigCustomers")
        # rebuild the target stage with a narrower relation
        old.relation = narrow
        graph = compile_job(job)
        dropped = prune_unused_columns(graph)
        assert dropped == 0  # OtherCustomers still needs every column

    def test_union_branches_stay_compatible(self, rel):
        other = rel.renamed("R2")
        g = OhmGraph()
        s1 = g.add(Source(rel))
        s2 = g.add(Source(other))
        p1 = g.add(BasicProject([("id", "id"), ("b", "b")]))
        p2 = g.add(BasicProject([("id", "id"), ("b", "b")]))
        u = g.add(Union())
        t = g.add(Target(relation("Out", ("id", "int"))))
        g.connect(s1, p1)
        g.connect(s2, p2)
        g.connect(p1, u, dst_port=0)
        g.connect(p2, u, dst_port=1)
        g.connect(u, t)
        prune_unused_columns(g)
        g.propagate_schemas()  # union compatibility still holds
        instance = Instance([data(rel), Dataset(other, data(rel).rows)])
        assert len(execute(g, instance).dataset("Out")) == 4
