"""Optimizer driver tests: fixpoint behaviour and semantic preservation
on whole compiled jobs."""

import pytest

from repro.compile import compile_job
from repro.ohm import execute
from repro.rewrite import CLEANUP_RULES, Optimizer, cleanup, optimize
from repro.workloads import (
    build_chain_job,
    build_example_job,
    build_star_join_job,
    generate_chain_instance,
    generate_instance,
    generate_star_instance,
)
from repro.etl import run_job


class TestDriver:
    def test_reaches_fixpoint_and_reports(self):
        graph = compile_job(build_example_job(), cleanup=False)
        report = optimize(graph)
        assert report.total >= 0
        # a second run has nothing left to do
        assert optimize(graph).total == 0

    def test_report_counts(self):
        graph = compile_job(build_chain_job(12), cleanup=False)
        report = optimize(graph)
        assert report.count("merge-adjacent-filters") == report.firings.count(
            "merge-adjacent-filters"
        )

    def test_cleanup_uses_only_cleanup_rules(self):
        graph = compile_job(build_chain_job(8), cleanup=False)
        report = cleanup(graph)
        allowed = {rule.name for rule in CLEANUP_RULES}
        assert set(report.firings) <= allowed

    def test_custom_rule_list(self):
        graph = compile_job(build_example_job(), cleanup=False)
        report = Optimizer(rules=[]).optimize(graph)
        assert report.total == 0


class TestSemanticPreservation:
    @pytest.mark.parametrize("n_stages", [4, 12, 24])
    def test_chain_jobs(self, n_stages):
        job = build_chain_job(n_stages)
        instance = generate_chain_instance(120)
        baseline = run_job(job, instance)
        graph = compile_job(job, cleanup=False)
        optimize(graph)
        assert execute(graph, instance).same_bags(baseline)

    def test_example_job(self):
        job = build_example_job()
        instance = generate_instance(50)
        baseline = run_job(job, instance)
        graph = compile_job(job)
        optimize(graph)
        assert execute(graph, instance).same_bags(baseline)

    def test_star_join(self):
        job = build_star_join_job(3)
        instance = generate_star_instance(3, 150)
        baseline = run_job(job, instance)
        graph = compile_job(job)
        optimize(graph)
        assert execute(graph, instance).same_bags(baseline)


class TestOptimizationEffect:
    def test_chain_shrinks(self):
        graph = compile_job(build_chain_job(24), cleanup=False)
        before = len(graph)
        optimize(graph)
        assert len(graph) < before

    def test_filters_merge_along_chain(self):
        # chain jobs alternate filter/transform/modify/sort; after
        # optimization consecutive filters are merged and sorts are gone
        graph = compile_job(build_chain_job(16), cleanup=False)
        optimize(graph)
        kinds = graph.kinds_in_order()
        for a, b in zip(kinds, kinds[1:]):
            assert not (a == "FILTER" and b == "FILTER")
