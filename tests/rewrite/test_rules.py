"""Rewrite-rule unit tests: each rule's effect and its semantic safety."""

import pytest

from repro.data.dataset import Dataset, Instance
from repro.ohm import (
    BasicProject,
    Filter,
    Join,
    OhmGraph,
    Project,
    Source,
    Split,
    Target,
    execute,
)
from repro.rewrite.rules import (
    MergeAdjacentFilters,
    MergeAdjacentProjects,
    PushFilterThroughJoin,
    PushFilterThroughProject,
    RemoveIdentityProject,
    RemoveTrivialSplit,
    RemoveTrueFilter,
)
from repro.schema import relation


@pytest.fixture
def rel():
    return relation("R", ("id", "int", False), ("v", "float"),
                    ("name", "varchar"))


def data(rel):
    return Dataset(
        rel,
        [
            {"id": 1, "v": 10.0, "name": "a"},
            {"id": 2, "v": 20.0, "name": "b"},
            {"id": 3, "v": None, "name": "A"},
        ],
    )


def run(graph, rel):
    return execute(graph, Instance([data(rel)]))


class TestRemoveIdentityProject:
    def test_fires_on_identity(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        bp = g.add(BasicProject.identity(rel))
        t = g.add(Target(rel.renamed("Out")))
        g.chain(s, bp, t)
        g.propagate_schemas()
        assert RemoveIdentityProject()(g) is True
        assert g.kinds_in_order() == ["SOURCE", "TARGET"]

    def test_skips_renaming_project(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        bp = g.add(BasicProject([("ident", "id"), ("v", "v"), ("name", "name")]))
        t = g.add(Target(relation("Out", ("ident", "int"), ("v", "float"),
                                  ("name", "varchar"))))
        g.chain(s, bp, t)
        g.propagate_schemas()
        assert RemoveIdentityProject()(g) is False

    def test_skips_dropping_project(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        bp = g.add(BasicProject([("id", "id")]))
        t = g.add(Target(relation("Out", ("id", "int"))))
        g.chain(s, bp, t)
        g.propagate_schemas()
        assert RemoveIdentityProject()(g) is False


class TestRemoveTrivialSplit:
    def test_fires_on_single_output_split(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        sp = g.add(Split())
        t = g.add(Target(rel.renamed("Out")))
        g.chain(s, sp, t)
        g.propagate_schemas()
        assert RemoveTrivialSplit()(g) is True
        assert "SPLIT" not in g.kinds_in_order()

    def test_skips_real_split(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        sp = g.add(Split())
        t1 = g.add(Target(rel.renamed("A")))
        t2 = g.add(Target(rel.renamed("B")))
        g.connect(s, sp)
        g.connect(sp, t1, src_port=0)
        g.connect(sp, t2, src_port=1)
        g.propagate_schemas()
        assert RemoveTrivialSplit()(g) is False


class TestRemoveTrueFilter:
    def test_fires_on_true(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        f = g.add(Filter("TRUE"))
        t = g.add(Target(rel.renamed("Out")))
        g.chain(s, f, t)
        g.propagate_schemas()
        assert RemoveTrueFilter()(g) is True

    def test_skips_tautology_it_cannot_see(self, rel):
        g = OhmGraph()
        s = g.add(Source(rel))
        f = g.add(Filter("1 = 1"))  # not the literal TRUE
        t = g.add(Target(rel.renamed("Out")))
        g.chain(s, f, t)
        g.propagate_schemas()
        assert RemoveTrueFilter()(g) is False


class TestMergeAdjacentFilters:
    def test_merges_and_preserves_semantics(self, rel):
        def build(merged):
            g = OhmGraph()
            s = g.add(Source(rel))
            f1 = g.add(Filter("v > 5"))
            f2 = g.add(Filter("id < 3"))
            t = g.add(Target(rel.renamed("Out")))
            g.chain(s, f1, f2, t)
            g.propagate_schemas()
            if merged:
                assert MergeAdjacentFilters()(g) is True
            return g

        merged = build(True)
        plain = build(False)
        assert merged.kinds_in_order().count("FILTER") == 1
        assert run(merged, rel).same_bags(run(plain, rel))


class TestMergeAdjacentProjects:
    def test_composes_derivations(self, rel):
        def build(merged):
            g = OhmGraph()
            s = g.add(Source(rel))
            p1 = g.add(Project([("doubled", "v * 2"), ("name", "name")]))
            p2 = g.add(Project([("final", "doubled + 1")]))
            t = g.add(Target(relation("Out", ("final", "float"))))
            g.chain(s, p1, p2, t)
            g.propagate_schemas()
            if merged:
                assert MergeAdjacentProjects()(g) is True
            return g

        merged = build(True)
        plain = build(False)
        assert merged.kinds_in_order().count("PROJECT") == 1
        assert run(merged, rel).same_bags(run(plain, rel))


class TestPushFilterThroughProject:
    def test_pushes_and_preserves_semantics(self, rel):
        def build(pushed):
            g = OhmGraph()
            s = g.add(Source(rel))
            p = g.add(Project([("doubled", "v * 2"), ("name", "name")]))
            f = g.add(Filter("doubled > 25"))
            t = g.add(Target(relation("Out", ("doubled", "float"),
                                      ("name", "varchar"))))
            g.chain(s, p, f, t)
            g.propagate_schemas()
            if pushed:
                assert PushFilterThroughProject()(g) is True
            return g

        pushed = build(True)
        plain = build(False)
        kinds = pushed.kinds_in_order()
        assert kinds.index("FILTER") < kinds.index("PROJECT")
        assert run(pushed, rel).same_bags(run(plain, rel))

    def test_does_not_push_past_keygen_column(self, rel):
        # a filter on a column the project does not derive cannot move
        g = OhmGraph()
        s = g.add(Source(rel))
        p = g.add(Project([("doubled", "v * 2")]))
        f = g.add(Filter("doubled IS NULL"))
        t = g.add(Target(relation("Out", ("doubled", "float"))))
        g.chain(s, p, f, t)
        g.propagate_schemas()
        assert PushFilterThroughProject()(g) is True  # derivable: moves


class TestPushFilterThroughJoin:
    def _build(self, pushed):
        left = relation("L", ("id", "int", False), ("v", "float"))
        right = relation("R", ("id", "int", False), ("w", "float"))
        g = OhmGraph()
        s1 = g.add(Source(left))
        s2 = g.add(Source(right))
        j = g.add(Join("L.id = R.id"))
        f = g.add(Filter("w > 5 AND v < 100"))
        out = relation("Out", ("L.id", "int"), ("R.id", "int"),
                       ("v", "float"), ("w", "float"))
        t = g.add(Target(out))
        g.connect(s1, j, name="L")
        g.connect(s2, j, dst_port=1, name="R")
        g.chain(j, f, t)
        g.propagate_schemas()
        if pushed:
            assert PushFilterThroughJoin()(g) is True
        return g, left, right

    def _instance(self, left, right):
        return Instance([
            Dataset(left, [{"id": 1, "v": 50.0}, {"id": 2, "v": 150.0}]),
            Dataset(right, [{"id": 1, "w": 10.0}, {"id": 2, "w": 3.0}]),
        ])

    def test_pushes_single_side_conjuncts(self):
        g, left, right = self._build(True)
        kinds = g.kinds_in_order()
        # at least one filter now sits before the join
        assert kinds.index("FILTER") < kinds.index("JOIN")

    def test_semantics_preserved(self):
        pushed, left, right = self._build(True)
        plain, *_ = self._build(False)
        instance = self._instance(left, right)
        assert execute(pushed, instance).same_bags(execute(plain, instance))
