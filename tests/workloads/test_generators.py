"""Workload generator tests: determinism and structural guarantees."""

import pytest

from repro.etl import run_job
from repro.workloads import (
    BIG_BALANCE_THRESHOLD,
    build_chain_job,
    build_example_job,
    build_fanout_job,
    build_star_join_job,
    generate_chain_instance,
    generate_instance,
    generate_star_instance,
)


class TestPaperExample:
    def test_deterministic_instances(self):
        a = generate_instance(30, seed=1)
        b = generate_instance(30, seed=1)
        assert a.same_bags(b)
        c = generate_instance(30, seed=2)
        assert not a.same_bags(c)

    def test_loan_accounts_have_negative_balances(self):
        instance = generate_instance(100)
        for row in instance.dataset("Accounts"):
            if row["type"] == "L":
                assert row["balance"] < 0

    def test_some_customers_cross_the_threshold(self):
        instance = generate_instance(200)
        targets = run_job(build_example_job(), instance)
        assert len(targets.dataset("BigCustomers")) > 0
        assert len(targets.dataset("OtherCustomers")) > 0
        for row in targets.dataset("BigCustomers"):
            assert row["totalBalance"] > BIG_BALANCE_THRESHOLD

    def test_schemas_well_formed(self):
        job = build_example_job()
        job.propagate_schemas()  # stages validate against link schemas


class TestGeneratedJobs:
    @pytest.mark.parametrize("n", [1, 8, 40])
    def test_chain_job_has_n_stages(self, n):
        job = build_chain_job(n)
        assert len(job.stages) == n + 2  # + source and target

    def test_chain_job_runs(self):
        job = build_chain_job(12)
        result = run_job(job, generate_chain_instance(100))
        assert "Out" in result.names

    def test_chain_is_deterministic(self):
        from repro.etl import job_to_xml

        assert job_to_xml(build_chain_job(9, seed=4)) == job_to_xml(
            build_chain_job(9, seed=4)
        )

    @pytest.mark.parametrize("branches", [2, 5])
    def test_fanout_job(self, branches):
        job = build_fanout_job(branches)
        result = run_job(job, generate_chain_instance(50))
        assert len(result.names) == branches

    @pytest.mark.parametrize("dims", [1, 3])
    def test_star_join_job(self, dims):
        job = build_star_join_job(dims)
        result = run_job(job, generate_star_instance(dims, 100))
        rollup = result.dataset("Rollup")
        assert len(rollup) > 0
        total = sum(r["total"] for r in rollup)
        facts = generate_star_instance(dims, 100).dataset("Fact")
        assert total == pytest.approx(sum(r["amount"] for r in facts))
