"""The deterministic fault-injection harness: same seed, same faults."""

import pytest

from repro.errors import ExecutionError, FaultInjected, TransientError
from repro.etl.stages import TableSource, TableTarget
from repro.faults import TIERS, FaultPlan
from repro.workloads import generate_faulty_instance, orders_schema


class TestPoison:
    def test_same_seed_poisons_the_same_rows(self):
        a_instance, a_plan = generate_faulty_instance(n=50, seed=4, poison=6)
        b_instance, b_plan = generate_faulty_instance(n=50, seed=4, poison=6)
        assert a_plan.poisoned["Orders"] == b_plan.poisoned["Orders"]
        assert a_instance.dataset("Orders").rows == \
            b_instance.dataset("Orders").rows

    def test_different_seeds_differ(self):
        _, a = generate_faulty_instance(n=200, seed=1, poison=10)
        _, b = generate_faulty_instance(n=200, seed=2, poison=10)
        assert a.poisoned["Orders"] != b.poisoned["Orders"]

    def test_poison_replaces_only_the_chosen_cells(self):
        instance, plan = generate_faulty_instance(n=30, seed=5, poison=3)
        chosen = set(plan.poisoned["Orders"])
        assert len(chosen) == 3
        for i, row in enumerate(instance.dataset("Orders").rows):
            if i in chosen:
                assert row["qty"] == 0
            else:
                assert row["qty"] != 0

    def test_poison_does_not_mutate_the_original_instance(self):
        clean, _ = generate_faulty_instance(n=10, seed=6)
        plan = FaultPlan(seed=6)
        plan.poison(clean, "Orders", "qty", count=4, value=0)
        assert all(r["qty"] != 0 for r in clean.dataset("Orders").rows)

    def test_count_is_clamped_to_the_dataset(self):
        instance, plan = generate_faulty_instance(n=5, seed=7, poison=50)
        assert len(plan.poisoned["Orders"]) == 5
        assert all(r["qty"] == 0 for r in instance.dataset("Orders").rows)

    def test_rate_selection_is_seeded(self):
        clean, _ = generate_faulty_instance(n=100, seed=8)
        first = FaultPlan(seed=8)
        second = FaultPlan(seed=8)
        first.poison(clean, "Orders", "qty", rate=0.2, value=0)
        second.poison(clean, "Orders", "qty", rate=0.2, value=0)
        assert first.poisoned["Orders"] == second.poisoned["Orders"]
        assert 0 < len(first.poisoned["Orders"]) < 100

    def test_exactly_one_of_count_or_rate(self):
        clean, _ = generate_faulty_instance(n=10, seed=9)
        plan = FaultPlan(seed=9)
        with pytest.raises(ValueError, match="exactly one"):
            plan.poison(clean, "Orders", "qty", count=2, rate=0.5)
        with pytest.raises(ValueError, match="exactly one"):
            plan.poison(clean, "Orders", "qty")


class TestKernelFaults:
    def test_unknown_tier_is_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):
            FaultPlan().fault_kernels(tier="gpu", first=1)

    def test_exactly_one_of_first_or_rate(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultPlan().fault_kernels(tier="block", first=1, rate=0.5)
        with pytest.raises(ValueError, match="exactly one"):
            FaultPlan().fault_kernels(tier="block")

    def test_unconfigured_tier_passes_kernels_through(self):
        plan = FaultPlan(seed=1).fault_kernels(tier="block", first=5)
        fn = lambda: "ran"  # noqa: E731
        assert plan.hook("compiled", "scalar", fn) is fn

    def test_first_n_budget_fires_then_clears(self):
        plan = FaultPlan(seed=1).fault_kernels(tier="block", first=2)
        wrapped = plan.hook("block", "scalar", lambda: "ran")
        for _ in range(2):
            with pytest.raises(FaultInjected, match="seed=1"):
                wrapped()
        assert wrapped() == "ran"
        assert plan.kernel_faults_fired["block"] == 2

    def test_rate_schedule_is_reproducible(self):
        def schedule(seed):
            plan = FaultPlan(seed=seed).fault_kernels(tier="compiled", rate=0.5)
            wrapped = plan.hook("compiled", "scalar", lambda: "ran")
            fired = []
            for _ in range(32):
                try:
                    wrapped()
                    fired.append(False)
                except FaultInjected:
                    fired.append(True)
            return fired

        assert schedule(7) == schedule(7)
        assert any(schedule(7)) and not all(schedule(7))

    def test_tier_names_match_the_planner(self):
        assert TIERS == ("parallel", "fused", "block", "compiled", "oracle")


class TestFlakyEndpoints:
    def test_flaky_source_fails_then_delegates(self):
        instance, plan = generate_faulty_instance(n=6, seed=2)
        source = plan.flaky_source(TableSource(orders_schema()), failures=2)
        for _ in range(2):
            with pytest.raises(TransientError):
                source.extract(instance)
        assert len(source.extract(instance)) == 6
        assert source.name == "src_Orders"

    def test_permanent_source_raises_execution_error(self):
        instance, plan = generate_faulty_instance(n=3, seed=2)
        source = plan.flaky_source(
            TableSource(orders_schema()), permanent=True
        )
        with pytest.raises(ExecutionError) as info:
            source.extract(instance)
        assert not isinstance(info.value, TransientError)

    def test_flaky_target_fails_then_delegates(self):
        instance, plan = generate_faulty_instance(n=4, seed=3)
        target = plan.flaky_target(TableTarget(orders_schema()), failures=1)
        data = instance.dataset("Orders")
        with pytest.raises(TransientError):
            target.load(data)
        assert len(target.load(data)) == 4

    def test_flaky_callable(self):
        plan = FaultPlan(seed=4)
        fn = plan.flaky_callable(lambda: "ok", failures=1)
        with pytest.raises(TransientError):
            fn()
        assert fn() == "ok"
        always = plan.flaky_callable(lambda: "ok", permanent=True)
        with pytest.raises(ExecutionError):
            always()


class TestWriteSeam:
    """flaky_writes poisons the SQL runner's batched-write seam (the
    executemany path) without touching queries."""

    @staticmethod
    def _runner():
        from repro.deploy.sql import SqliteRunner

        instance, _ = generate_faulty_instance(n=5, seed=9)
        return SqliteRunner(instance)

    def test_transient_write_failures_then_recovery(self):
        from repro.data.dataset import Dataset
        from repro.schema.model import relation

        runner = self._runner()
        FaultPlan(seed=9).flaky_writes(runner, failures=1)
        rel = relation("T", ("id", "int", False))
        with pytest.raises(TransientError):
            runner.load_table(Dataset(rel, [{"id": 1}]))
        runner.load_table(Dataset(rel, [{"id": 1}]))  # fault spent
        got = runner.query('SELECT "id" FROM "T"', rel)
        assert [r["id"] for r in got.rows] == [1]
        runner.close()

    def test_permanent_write_failures_are_not_transient(self):
        from repro.data.dataset import Dataset
        from repro.schema.model import relation

        runner = self._runner()
        FaultPlan(seed=9).flaky_writes(runner, permanent=True)
        rel = relation("T", ("id", "int", False))
        with pytest.raises(ExecutionError) as info:
            runner.load_table(Dataset(rel, [{"id": 1}]))
        assert not isinstance(info.value, TransientError)
        runner.close()

    def test_queries_are_untouched_by_the_write_fault(self):
        runner = self._runner()
        FaultPlan(seed=9).flaky_writes(runner, permanent=True)
        got = runner.query('SELECT "orderID" FROM "Orders"', orders_schema())
        assert len(got) == 5
        runner.close()


class TestCrashTier:
    """CrashingStore / CrashingTarget: one-shot kill -9 simulators."""

    def test_crashing_store_kills_the_chosen_boundary(self, tmp_path):
        from repro.data.dataset import Dataset
        from repro.errors import InjectedCrash
        from repro.resilience import CheckpointStore
        from repro.schema.model import relation
        from repro.workloads import build_faulty_job

        job = build_faulty_job()
        first, second, third = (s.uid for s in list(job.stages)[:3])
        rel = relation("R", ("id", "int", False))
        data = Dataset(rel, [{"id": 1}])
        plan = FaultPlan(seed=1)
        store = plan.crashing_store(
            CheckpointStore(str(tmp_path)), after_saves=1
        )
        store.save_stage(job, first, [("x", data)])  # boundary 0 passes
        with pytest.raises(InjectedCrash):
            store.save_stage(job, second, [("y", data)])
        # the crash landed before persisting boundary 1
        assert set(store.load_frontier(job)) == {first}
        # crash spent: subsequent saves pass straight through
        store.save_stage(job, third, [("z", data)])
        assert set(store.load_frontier(job)) == {first, third}

    def test_crashing_store_persist_first_lands_the_snapshot(self, tmp_path):
        from repro.data.dataset import Dataset
        from repro.errors import InjectedCrash
        from repro.resilience import CheckpointStore
        from repro.schema.model import relation
        from repro.workloads import build_faulty_job

        job = build_faulty_job()
        first = next(iter(job.stages)).uid
        data = Dataset(relation("R", ("id", "int", False)), [{"id": 1}])
        plan = FaultPlan(seed=1)
        store = plan.crashing_store(
            CheckpointStore(str(tmp_path)), after_saves=0, persist_first=True
        )
        with pytest.raises(InjectedCrash):
            store.save_stage(job, first, [("x", data)])
        assert set(store.load_frontier(job)) == {first}

    def test_crashing_target_modes(self, tmp_path):
        from repro.errors import InjectedCrash
        from repro.etl.stages import SequentialFileTarget

        plan = FaultPlan(seed=1)
        with pytest.raises(ValueError):
            plan.crashing_target(TableTarget(orders_schema()), mode="nope")

        instance, _ = generate_faulty_instance(n=4, seed=1)
        data = instance.dataset("Orders")

        before = plan.crashing_target(
            SequentialFileTarget(orders_schema(), str(tmp_path / "b.csv")),
            mode="before",
        )
        with pytest.raises(InjectedCrash):
            before.load(data)
        assert not (tmp_path / "b.csv").exists()
        assert len(before.load(data)) == 4  # crash spent, write lands

        torn = plan.crashing_target(
            SequentialFileTarget(orders_schema(), str(tmp_path / "t.csv")),
            mode="torn",
        )
        with pytest.raises(InjectedCrash):
            torn.load(data)
        half = (tmp_path / "t.csv").read_bytes()
        torn.load(data)
        assert len((tmp_path / "t.csv").read_bytes()) > len(half)
