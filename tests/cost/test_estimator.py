"""CardinalityEstimator: clamping, monotonicity, parity, feedback."""

import math

import pytest

from repro.compile import compile_job
from repro.cost import CardinalityEstimator, StatisticsCatalog, catalog_for
from repro.expr.parser import parse
from repro.ohm import Filter, Group, Join, OhmGraph, Project, Source, Target
from repro.ohm import execute_with_edges
from repro.schema import relation
from repro.workloads import (
    build_example_job,
    build_kitchen_sink_job,
    generate_instance,
    generate_kitchen_sink_instance,
)

PREDICATES = [
    "a = 1",
    "a <> 1",
    "a < 5 AND b > 2",
    "a = 1 OR b = 2",
    "NOT (a = 1)",
    "a IS NULL",
    "a IS NOT NULL",
    "a IN (1, 2, 3)",
    "a NOT IN (1, 2, 3)",
    "a BETWEEN 1 AND 5",
    "name LIKE 'x%'",
    "name NOT LIKE 'x%'",
    "a = 1 AND a = 2 AND a = 3 AND b < 9",
    "a = 1 OR a = 2 OR a = 3 OR b < 9",
    "TRUE",
    "FALSE",
    "NULL",
    "a = b",
]


class TestSelectivity:
    @pytest.mark.parametrize("text", PREDICATES)
    def test_clamped_to_unit_interval(self, text):
        estimator = CardinalityEstimator()
        s = estimator.selectivity(parse(text))
        assert 0.0 <= s <= 1.0

    def test_conjunction_never_increases(self):
        estimator = CardinalityEstimator()
        base = estimator.selectivity(parse("a = 1"))
        both = estimator.selectivity(parse("a = 1 AND b = 2"))
        assert both <= base

    def test_disjunction_never_decreases(self):
        estimator = CardinalityEstimator()
        base = estimator.selectivity(parse("a = 1"))
        either = estimator.selectivity(parse("a = 1 OR b = 2"))
        assert either >= base

    def test_negation_complements(self):
        estimator = CardinalityEstimator()
        s = estimator.selectivity(parse("a BETWEEN 1 AND 5"))
        not_s = estimator.selectivity(parse("a NOT BETWEEN 1 AND 5"))
        assert s + not_s == pytest.approx(1.0)


def _chain_graph():
    rel = relation(
        "R", ("id", "int", False), ("v", "float"), ("k", "int"), keys=["id"]
    )
    j_rel = relation("S", ("k2", "int", False), ("w", "float"), keys=["k2"])
    g = OhmGraph()
    s = g.add(Source(rel))
    f = g.add(Filter("v > 10"))
    s2 = g.add(Source(j_rel))
    j = g.add(Join("left.k = right.k2"))
    grp = g.add(Group(["k"], aggregates=[("total", "SUM(v)")]))
    t = g.add(Target(relation("Out", ("k", "int"), ("total", "float"))))
    g.connect(s, f, name="in")
    g.connect(f, j, name="left")
    g.connect(s2, j, dst_port=1, name="right")
    g.chain(j, grp, t, names=["joined", "grouped"])
    g.propagate_schemas()
    return g


class TestGraphEstimates:
    def test_monotone_in_source_cardinality(self):
        graph = _chain_graph()
        previous = None
        for n in (100, 1000, 10000, 100000):
            catalog = StatisticsCatalog()
            catalog.observe_rows("R", n)
            catalog.observe_rows("S", 50)
            estimate = CardinalityEstimator(catalog).estimate_graph(graph)
            rows = [estimate.rows_out(op.uid) for op in graph.operators]
            assert all(r >= 0 for r in rows)
            if previous is not None:
                # growing the source never shrinks any estimate
                assert all(r >= p - 1e-6 for r, p in zip(rows, previous))
            previous = rows

    def test_filter_never_exceeds_input(self):
        graph = _chain_graph()
        catalog = StatisticsCatalog()
        catalog.observe_rows("R", 1000)
        catalog.observe_rows("S", 50)
        estimate = CardinalityEstimator(catalog).estimate_graph(graph)
        for op in graph.operators:
            if op.KIND in ("FILTER", "GROUP"):
                e = estimate.operators[op.uid]
                assert e.rows_out <= e.rows_in

    def test_sources_grounded_by_catalog(self):
        graph = _chain_graph()
        catalog = StatisticsCatalog()
        catalog.observe_rows("R", 777)
        catalog.observe_rows("S", 33)
        estimate = CardinalityEstimator(catalog).estimate_graph(graph)
        by_kind = {
            estimate.operators[op.uid].label: estimate.operators[op.uid]
            for op in graph.operators
        }
        assert by_kind["R"].rows_out == 777
        assert by_kind["R"].source == "catalog"
        assert by_kind["S"].rows_out == 33

    def test_unknown_sources_fall_back_to_default(self):
        graph = _chain_graph()
        estimate = CardinalityEstimator().estimate_graph(graph)
        for op in graph.operators:
            if op.KIND == "SOURCE":
                e = estimate.operators[op.uid]
                assert e.rows_out == CardinalityEstimator().default_rows
                assert e.source == "estimate"


class TestParity:
    """Estimates track reality on the repository's own workloads."""

    @pytest.mark.parametrize(
        "build,generate",
        [
            (build_example_job, lambda: generate_instance(200)),
            (build_kitchen_sink_job, generate_kitchen_sink_instance),
        ],
        ids=["paper-example", "kitchen-sink"],
    )
    def test_estimates_within_an_order_of_magnitude(self, build, generate):
        instance = generate()
        graph = compile_job(build())
        catalog = catalog_for(instance)
        estimate = CardinalityEstimator(catalog).estimate_graph(graph)
        _targets, edges = execute_with_edges(graph, instance)
        ratios = []
        for name, dataset in edges.items():
            actual = len(dataset)
            guessed = estimate.edge_rows(name)
            assert guessed > 0, f"edge {name} has no estimate"
            if actual == 0:
                continue
            ratio = max(guessed / actual, actual / guessed)
            assert ratio <= 10.0, (
                f"edge {name}: estimated {guessed:.0f} vs actual {actual}"
            )
            ratios.append(ratio)
        # the typical error is far tighter than the worst case
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        assert geomean <= 3.0


class TestFeedbackLoop:
    def test_observed_actuals_pin_the_estimate(self):
        instance = generate_instance(200)
        graph = compile_job(build_example_job())
        catalog = catalog_for(instance)
        estimator = CardinalityEstimator(catalog)
        before = estimator.estimate_graph(graph)

        from repro.obs import Observability
        from repro.ohm import OhmExecutor

        obs = Observability(stats=True)
        OhmExecutor(obs=obs, catalog=catalog).run(graph, instance)
        after = estimator.estimate_graph(graph)

        _targets, edges = execute_with_edges(graph, instance)
        pinned = 0
        for name, dataset in edges.items():
            if catalog.observed(name) is not None:
                assert after.edge_rows(name) == float(len(dataset))
                pinned += 1
        assert pinned > 0
        # re-planning with feedback is at least as accurate everywhere
        for name, dataset in edges.items():
            actual = float(len(dataset))
            err_after = abs(after.edge_rows(name) - actual)
            err_before = abs(before.edge_rows(name) - actual)
            assert err_after <= err_before + 1e-9

    def test_operator_estimates_carry_observed_source(self):
        graph = _chain_graph()
        catalog = StatisticsCatalog()
        catalog.observe_rows("R", 1000)
        catalog.observe_rows("S", 50)
        catalog.observe_link("joined", 123)
        estimate = CardinalityEstimator(catalog).estimate_graph(graph)
        joined = [
            e for e in estimate.operators.values() if e.kind == "JOIN"
        ]
        assert joined[0].rows_out == 123.0
        assert joined[0].source == "observed"

    def test_forgetting_restores_pure_estimation(self):
        graph = _chain_graph()
        catalog = StatisticsCatalog()
        catalog.observe_rows("R", 1000)
        catalog.observe_rows("S", 50)
        estimator = CardinalityEstimator(catalog)
        pure = estimator.estimate_graph(graph)
        catalog.observe_link("joined", 123)
        catalog.forget_observations()
        again = estimator.estimate_graph(graph)
        for uid, e in pure.operators.items():
            assert again.operators[uid].rows_out == e.rows_out
