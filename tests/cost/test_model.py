"""CostModel: tier crossovers and per-platform cost orderings."""

from repro.cost import (
    CostModel,
    DEFAULT_MODEL,
    choose_tier,
    derived_block_min_rows,
    derived_parallel_min_rows,
)
from repro.cost.model import (
    BLOCK_ROW_COST,
    BLOCK_SETUP_ROWS,
    PARALLEL_TASK_ROWS,
    ROW_COST,
    operator_factor,
)


class TestDerivedCrossovers:
    def test_parallel_threshold_is_the_dispatch_crossover(self):
        # n * BLOCK_ROW_COST / 2 > 2 * PARALLEL_TASK_ROWS
        assert derived_parallel_min_rows() == int(
            4 * PARALLEL_TASK_ROWS / BLOCK_ROW_COST
        )
        assert derived_parallel_min_rows() == 8000

    def test_block_threshold_is_the_setup_crossover(self):
        n = derived_block_min_rows()
        # at the crossover the per-row saving just covers the setup
        assert (n - 1) * (ROW_COST - BLOCK_ROW_COST) <= BLOCK_SETUP_ROWS
        assert n * (ROW_COST - BLOCK_ROW_COST) > BLOCK_SETUP_ROWS


class TestChooseTier:
    def test_small_inputs_stay_on_row_kernels(self):
        assert choose_tier(0) == "rows"
        assert choose_tier(derived_block_min_rows() - 1, workers=8) == "rows"

    def test_medium_inputs_use_block_kernels(self):
        assert choose_tier(derived_block_min_rows()) == "block"
        assert choose_tier(5000, workers=4) == "block"

    def test_large_inputs_partition_when_workers_exist(self):
        n = derived_parallel_min_rows()
        assert choose_tier(n, workers=2) == "parallel"
        assert choose_tier(n * 10, workers=8) == "parallel"
        # a single worker can never fan out
        assert choose_tier(n * 10, workers=1) == "block"

    def test_model_instance_overrides_shift_the_crossover(self):
        cheap_blocks = CostModel(block_setup_rows=0.0)
        assert cheap_blocks.block_min_rows() == 1
        assert cheap_blocks.choose_tier(2) == "block"
        assert DEFAULT_MODEL.choose_tier(2) == "rows"


class TestOperatorCosts:
    def test_tier_ordering_above_the_setup_cost(self):
        n = 100000
        oracle = DEFAULT_MODEL.etl_operator_cost("FILTER", n, n, "oracle")
        rows = DEFAULT_MODEL.etl_operator_cost("FILTER", n, n, "rows")
        block = DEFAULT_MODEL.etl_operator_cost("FILTER", n, n, "block")
        assert oracle > rows > block

    def test_block_setup_makes_small_inputs_cheaper_on_rows(self):
        n = 50
        rows = DEFAULT_MODEL.etl_operator_cost("FILTER", n, n, "rows")
        block = DEFAULT_MODEL.etl_operator_cost("FILTER", n, n, "block")
        assert rows < block

    def test_operator_factors_order_join_above_filter(self):
        assert operator_factor("JOIN") > operator_factor("GROUP")
        assert operator_factor("GROUP") > operator_factor("FILTER")
        assert operator_factor("SPLIT") < operator_factor("FILTER")
        assert operator_factor("NEVER_HEARD_OF_IT") == 1.0

    def test_costs_monotone_in_rows(self):
        for tier in ("rows", "block", "oracle"):
            costs = [
                DEFAULT_MODEL.etl_operator_cost("JOIN", n, n, tier)
                for n in (0, 10, 1000, 100000)
            ]
            assert costs == sorted(costs)

    def test_sql_transfer_dominates_pass_through(self):
        # evaluating in sqlite is cheap, but a pass-through region pays
        # load + transfer on every row: pushing it must cost more than
        # the ETL engine's row kernel
        n = 10000.0
        pushed = (
            DEFAULT_MODEL.sql_load(n)
            + DEFAULT_MODEL.sql_operator_cost("PROJECT", n, n)
            + DEFAULT_MODEL.sql_transfer(n)
        )
        etl = DEFAULT_MODEL.etl_operator_cost("PROJECT", n, n, "rows")
        assert pushed > etl

    def test_sql_wins_when_it_reduces(self):
        # a filter+group region collapsing 10000 rows to 100 pays the
        # transfer only on the 100 survivors
        n, out = 10000.0, 100.0
        pushed = (
            DEFAULT_MODEL.sql_load(n)
            + DEFAULT_MODEL.sql_operator_cost("FILTER", n, n / 3)
            + DEFAULT_MODEL.sql_operator_cost("GROUP", n / 3, out)
            + DEFAULT_MODEL.sql_transfer(out)
        )
        etl = (
            DEFAULT_MODEL.etl_operator_cost("FILTER", n, n / 3, "rows")
            + DEFAULT_MODEL.etl_operator_cost("GROUP", n / 3, out, "rows")
        )
        assert pushed < etl

    def test_source_and_target_cost_scan_and_write(self):
        assert DEFAULT_MODEL.etl_operator_cost("SOURCE", 0, 100) > 0
        assert DEFAULT_MODEL.etl_operator_cost("TARGET", 100, 100) > 0
        assert DEFAULT_MODEL.sql_operator_cost("SOURCE", 100, 100) == 0.0
