"""The central knob registry: kwarg > setter > env > default."""

import pytest

from repro import config
from repro.config import Knob, check_mode, check_policy, parse_bool
from repro.errors import ValidationError


@pytest.fixture(autouse=True)
def _clean_overrides():
    """Every test leaves the process-wide knobs untouched."""
    yield
    for name in ("batch_size", "workers", "on_error", "mode",
                 "parallel_min_rows", "cost_based"):
        config.knob(name).set(None)


class TestPrecedence:
    def test_kwarg_beats_setter_beats_env_beats_default(self, monkeypatch):
        knob = config.BATCH_SIZE
        assert knob.resolve(None) == config.DEFAULT_BATCH_SIZE
        monkeypatch.setenv("REPRO_BATCH_SIZE", "64")
        assert knob.resolve(None) == 64
        knob.set(128)
        assert knob.resolve(None) == 128
        assert knob.resolve(256) == 256  # the kwarg always wins

    def test_setter_none_restores_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        config.WORKERS.set(6)
        assert config.WORKERS.default() == 6
        config.WORKERS.set(None)
        assert config.WORKERS.default() == 3

    def test_env_fallback_chain(self, monkeypatch):
        # batch_size reads REPRO_BATCH_SIZE first, then REPRO_BATCH
        monkeypatch.setenv("REPRO_BATCH", "512")
        assert config.BATCH_SIZE.default() == 512
        monkeypatch.setenv("REPRO_BATCH_SIZE", "2048")
        assert config.BATCH_SIZE.default() == 2048

    def test_unparseable_env_value_is_skipped(self, monkeypatch):
        # REPRO_BATCH=1 means "batched on", not "batch size 1"
        monkeypatch.setenv("REPRO_BATCH", "1")
        assert config.BATCHED.default() is True
        assert config.BATCH_SIZE.default() == config.DEFAULT_BATCH_SIZE

    def test_triads_delegate_to_the_registry(self):
        from repro.exec import set_default_workers
        from repro.exec.parallel import resolve_workers

        set_default_workers(5)
        try:
            assert resolve_workers(None) == 5
            assert config.WORKERS.default() == 5
            assert resolve_workers(2) == 2
        finally:
            set_default_workers(None)

    def test_resilience_triads_delegate(self):
        from repro.resilience import default_on_error, set_default_on_error

        set_default_on_error("reject")
        try:
            assert default_on_error() == "reject"
            assert config.ON_ERROR.default() == "reject"
        finally:
            set_default_on_error(None)


class TestValidation:
    def test_bad_policy_rejected_everywhere(self):
        with pytest.raises(ValidationError):
            check_policy("explode")
        with pytest.raises(ValidationError):
            config.ON_ERROR.set("explode")
        with pytest.raises(ValidationError):
            config.ON_ERROR.resolve("explode")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValidationError):
            check_mode("warp")
        with pytest.raises(ValidationError):
            config.MODE.resolve("warp")
        for mode in config.MODES:
            assert check_mode(mode) == mode

    def test_malformed_max_retries_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "many")
        with pytest.raises(ValidationError):
            config.MAX_RETRIES.default()
        monkeypatch.setenv("REPRO_MAX_RETRIES", "-1")
        with pytest.raises(ValidationError):
            config.MAX_RETRIES.default()

    def test_parse_bool(self):
        for raw in ("0", "false", "No", "OFF"):
            assert parse_bool(raw) is False
        for raw in ("1", "true", "yes", "anything"):
            assert parse_bool(raw) is True


class TestDerivedDefaults:
    def test_parallel_min_rows_comes_from_the_cost_model(self):
        from repro.cost.model import derived_parallel_min_rows
        from repro.exec.parallel import parallel_threshold

        assert config.PARALLEL_MIN_ROWS.default() == derived_parallel_min_rows()
        assert parallel_threshold() == derived_parallel_min_rows()

    def test_threshold_override_still_wins(self, monkeypatch):
        from repro.exec.parallel import parallel_threshold, set_parallel_threshold

        monkeypatch.setenv("REPRO_PARALLEL_MIN_ROWS", "100")
        assert parallel_threshold() == 100
        set_parallel_threshold(50)
        try:
            assert parallel_threshold() == 50
        finally:
            set_parallel_threshold(None)

    def test_snapshot_covers_every_knob(self):
        snap = config.snapshot()
        for name in ("compiled", "batched", "batch_size", "parallel",
                     "workers", "parallel_min_rows", "on_error",
                     "max_retries", "checkpoint_dir", "cost_based", "mode"):
            assert name in snap
        assert snap["compiled"] is True
        assert snap["cost_based"] is True
        assert snap["mode"] is None


class TestKnobMechanics:
    def test_callable_default_stays_live(self):
        calls = []

        def derive():
            calls.append(1)
            return 42

        knob = Knob("test_live", default=derive)
        assert knob.default() == 42
        assert knob.default() == 42
        assert len(calls) == 2  # re-derived, not cached

    def test_validate_applies_to_setter_and_kwarg_not_default(self):
        def check(value):
            if value < 0:
                raise ValueError("negative")
            return value * 2

        knob = Knob("test_validate", default=-1, validate=check)
        assert knob.default() == -1  # default bypasses validation
        assert knob.resolve(3) == 6
        with pytest.raises(ValueError):
            knob.set(-5)
