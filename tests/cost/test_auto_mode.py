"""mode="auto": per-run tier selection, bit-identical to the oracle."""

import pytest

from repro.compile import compile_job
from repro.cost import derived_block_min_rows, derived_parallel_min_rows
from repro.etl import EtlEngine
from repro.mapping import MappingExecutor
from repro.obs import Observability
from repro.ohm import OhmExecutor
from repro.workloads import (
    build_chain_job,
    build_example_job,
    generate_chain_instance,
    generate_instance,
)


def _auto_tier_metric(obs):
    counters = obs.metrics.snapshot().get("counters", {})
    tiers = [
        key[len("exec.auto.tier."):]
        for key in counters if key.startswith("exec.auto.tier.")
    ]
    assert len(tiers) >= 1
    return tiers[-1]


class TestTierSelection:
    def test_small_input_runs_on_row_kernels(self):
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, mode="auto")
        engine.execute(build_example_job(), generate_instance(20))
        assert _auto_tier_metric(obs) == "rows"

    def test_medium_input_runs_on_block_kernels(self):
        n = derived_block_min_rows() * 3
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, mode="auto")
        engine.execute(build_chain_job(4), generate_chain_instance(n))
        assert _auto_tier_metric(obs) == "block"

    def test_large_input_partitions(self):
        n = derived_parallel_min_rows() + 500
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, mode="auto", workers=2)
        engine.execute(build_chain_job(4), generate_chain_instance(n))
        assert _auto_tier_metric(obs) == "parallel"

    def test_single_worker_never_partitions(self):
        n = derived_parallel_min_rows() + 500
        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs, mode="auto", workers=1)
        engine.execute(build_chain_job(4), generate_chain_instance(n))
        assert _auto_tier_metric(obs) == "block"


class TestExplicitModes:
    def test_mode_rows_disables_batching_and_parallelism(self):
        engine = EtlEngine(mode="rows", batched=True, parallel=True)
        assert engine.batched is False
        assert engine.parallel is False

    def test_mode_block_enables_batching(self):
        engine = EtlEngine(mode="block")
        assert engine.batched is True
        assert engine.parallel is False

    def test_mode_parallel_enables_both(self):
        engine = EtlEngine(mode="parallel", workers=4)
        assert engine.batched is True
        assert engine.parallel is True

    def test_invalid_mode_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            EtlEngine(mode="turbo")


class TestAutoParity:
    """Whatever tier auto picks, results match the interpreting oracle."""

    @pytest.mark.parametrize("n", [50, 2000, 9000], ids=["rows", "block",
                                                         "parallel"])
    def test_etl_engine(self, n):
        job = build_chain_job(6)
        instance = generate_chain_instance(n)
        oracle = EtlEngine(compiled=False).execute(job, instance)
        auto = EtlEngine(mode="auto", workers=2).execute(job, instance)
        assert auto.same_bags(oracle)

    @pytest.mark.parametrize("n", [50, 2000, 9000], ids=["rows", "block",
                                                         "parallel"])
    def test_ohm_executor(self, n):
        graph = compile_job(build_chain_job(6))
        instance = generate_chain_instance(n)
        oracle = OhmExecutor(compiled=False).execute(graph, instance)
        auto = OhmExecutor(mode="auto", workers=2).execute(graph, instance)
        assert auto.same_bags(oracle)

    def test_mapping_executor(self):
        from repro.fasttrack import Orchid

        orchid = Orchid()
        job = build_example_job()
        mappings = orchid.to_mappings(orchid.import_etl(job))
        instance = generate_instance(150)
        oracle = MappingExecutor(compiled=False).execute(mappings, instance)
        auto = MappingExecutor(mode="auto", workers=2).execute(
            mappings, instance
        )
        assert auto.same_bags(oracle)

    def test_example_job_all_modes_agree(self):
        job = build_example_job()
        instance = generate_instance(120)
        oracle = EtlEngine(compiled=False).execute(job, instance)
        for mode in ("rows", "block", "parallel", "auto"):
            result = EtlEngine(mode=mode, workers=2).execute(job, instance)
            assert result.same_bags(oracle), mode
