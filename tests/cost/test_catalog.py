"""StatisticsCatalog: sampling determinism, sketch accuracy, feedback."""

import random

import pytest

from repro.cost import StatisticsCatalog, catalog_for
from repro.data.dataset import Dataset, Instance
from repro.schema import relation


def _dataset(n, n_categories=10, null_every=5, name="R"):
    rel = relation(
        name,
        ("id", "int", False),
        ("category", "varchar"),
        ("amount", "float"),
        keys=["id"],
    )
    rng = random.Random(99)
    data = Dataset(rel)
    for i in range(n):
        data.append({
            "id": i,
            "category": None if i % null_every == 0
            else f"c{rng.randrange(n_categories)}",
            "amount": rng.uniform(0, 100),
        })
    return data


class TestTableStats:
    def test_small_dataset_is_scanned_exactly(self):
        catalog = StatisticsCatalog()
        stats = catalog.observe_dataset(_dataset(100))
        assert stats.row_count == 100
        assert stats.sampled == 100
        assert stats.column("id").n_distinct == 100
        assert stats.column("id").null_fraction == 0.0
        # every 5th category is NULL
        assert stats.column("category").null_fraction == pytest.approx(0.2)
        assert stats.column("category").n_distinct <= 11

    def test_large_dataset_is_sampled(self):
        catalog = StatisticsCatalog(sample_size=256)
        stats = catalog.observe_dataset(_dataset(5000, n_categories=8))
        assert stats.row_count == 5000
        assert stats.sampled == 256
        # low-cardinality column: sample saturates, ndv taken at face value
        assert 4 <= stats.column("category").n_distinct <= 16
        # null fraction estimated from the sample, ~1/5
        assert stats.column("category").null_fraction == pytest.approx(
            0.2, abs=0.1
        )
        # unique column: sample keeps producing new values, scales up
        assert stats.column("id").n_distinct >= 4000

    def test_sampling_is_deterministic(self):
        data = _dataset(5000)
        a = StatisticsCatalog(sample_size=128, seed=7).observe_dataset(data)
        b = StatisticsCatalog(sample_size=128, seed=7).observe_dataset(data)
        for col in ("id", "category", "amount"):
            assert a.column(col).n_distinct == b.column(col).n_distinct
            assert a.column(col).null_fraction == b.column(col).null_fraction

    def test_invalid_sample_size_rejected(self):
        with pytest.raises(ValueError):
            StatisticsCatalog(sample_size=0)

    def test_catalog_for_instance(self):
        instance = Instance([_dataset(50, name="A"), _dataset(70, name="B")])
        catalog = catalog_for(instance)
        assert len(catalog) == 2
        assert catalog.row_count("A") == 50
        assert catalog.row_count("B") == 70
        assert catalog.covers(["A", "B"])
        assert not catalog.covers(["A", "C"])

    def test_observe_rows_records_cardinality_only(self):
        catalog = StatisticsCatalog()
        catalog.observe_rows("T", 1234)
        assert catalog.row_count("T") == 1234
        assert catalog.table("T").columns == {}
        assert catalog.row_count("missing") is None
        assert catalog.row_count("missing", 10) == 10


class TestFeedback:
    def test_observe_link_and_forget(self):
        catalog = StatisticsCatalog()
        catalog.observe_link("DSLink10", 42)
        assert catalog.observed("DSLink10") == 42
        catalog.forget_observations()
        assert catalog.observed("DSLink10") is None

    def test_observe_link_counts(self):
        catalog = StatisticsCatalog()
        catalog.observe_link_counts({"a": 1, "b": 2})
        assert catalog.observed("a") == 1
        assert catalog.observed("b") == 2

    def test_absorb_metrics_counters(self):
        catalog = StatisticsCatalog()
        absorbed = catalog.absorb_metrics({
            "etl.link.DSLink10.rows": 99,
            "ohm.operator.op7.rows_out": 12,
            "exec.kernel.filter.rows_in": 500,
            "unrelated.counter": 1,
        })
        assert absorbed == 2
        assert catalog.observed("DSLink10") == 99
        assert catalog.observed("op7") == 12
        assert catalog.kernel_totals() == {"exec.kernel.filter.rows_in": 500}

    def test_absorb_metrics_from_a_real_run(self):
        from repro.etl import EtlEngine
        from repro.obs import Observability
        from repro.workloads import build_example_job, generate_instance

        obs = Observability(stats=True)
        engine = EtlEngine(obs=obs)
        engine.execute(build_example_job(), generate_instance(40))
        catalog = StatisticsCatalog()
        assert catalog.absorb_metrics(obs.metrics) > 0
        assert catalog.observed("DSLink10") is not None

    def test_engine_feedback_populates_catalog(self):
        from repro.etl import EtlEngine
        from repro.workloads import build_example_job, generate_instance

        catalog = StatisticsCatalog()
        engine = EtlEngine(catalog=catalog)
        engine.execute(build_example_job(), generate_instance(40))
        # source tables observed, per-link actuals recorded
        assert catalog.covers(["Customers", "Accounts"])
        assert catalog.observed("DSLink10") is not None

    def test_nf2_set_valued_cells_are_sketchable(self):
        from repro.schema.model import Attribute, Relation
        from repro.schema.types import INTEGER, RecordType, SetType

        rel = Relation(
            "N",
            [
                Attribute("id", INTEGER),
                Attribute("items", SetType(RecordType([("v", INTEGER)]))),
            ],
        )
        data = Dataset(rel)
        for i in range(10):
            data.append({"id": i, "items": [{"v": i % 2}]})
        # unhashable list-of-record cells sketch by repr, two variants
        stats = StatisticsCatalog().observe_dataset(data)
        assert stats.column("items").n_distinct == 2
