"""The --explain rendering: one aligned row per operator, totals."""

from repro.compile import compile_job
from repro.cost import (
    CardinalityEstimator,
    actuals_from_edges,
    actuals_from_metrics,
    catalog_for,
    explain_graph,
)
from repro.obs import Observability
from repro.ohm import OhmExecutor
from repro.workloads import build_example_job, generate_instance


class TestExplainGraph:
    def test_renders_every_operator(self):
        graph = compile_job(build_example_job())
        text = explain_graph(graph)
        assert text.startswith("cost plan for 'CustomerBalanceSplit'")
        assert "(tier=rows)" in text
        header = text.splitlines()[1]
        for column in ("operator", "kind", "est in", "est out",
                       "actual", "cost", "source"):
            assert column in header
        assert text.rstrip().splitlines()[-1].lstrip().startswith(
            "total estimated cost:"
        )
        assert text.count("\n") >= len(graph.operators)

    def test_without_actuals_shows_dashes(self):
        graph = compile_job(build_example_job())
        lines = explain_graph(graph).splitlines()[2:-1]
        assert all("  -  " in line or " - " in line for line in lines)

    def test_with_actuals_shows_observed_rows(self):
        instance = generate_instance(50)
        graph = compile_job(build_example_job())
        catalog = catalog_for(instance)
        obs = Observability(stats=True)
        _targets, edges = OhmExecutor(obs=obs).run(graph, instance)
        actuals = actuals_from_metrics(obs.metrics)
        actuals.update(actuals_from_edges(edges))
        text = explain_graph(
            graph,
            estimator=CardinalityEstimator(catalog),
            actuals=actuals,
        )
        customers = next(
            line for line in text.splitlines() if "Customers " in line
        )
        assert " 50 " in customers  # the actual column, not a dash

    def test_tier_changes_costs_not_estimates(self):
        graph = compile_job(build_example_job())
        rows = explain_graph(graph, tier="rows")
        block = explain_graph(graph, tier="block")
        total = lambda text: float(
            text.rstrip().splitlines()[-1].split(":")[1].split()[0]
        )
        assert "(tier=block)" in block
        assert total(rows) != total(block)


class TestActualExtraction:
    def test_actuals_from_metrics_filters_operator_counters(self):
        actuals = actuals_from_metrics({
            "ohm.operator.op3.rows_out": 17,
            "ohm.operator.op4.rows_out": 0,
            "etl.stage.x.rows": 5,
        })
        assert actuals == {"op3": 17.0, "op4": 0.0}

    def test_actuals_from_edges_measures_datasets(self):
        instance = generate_instance(30)
        graph = compile_job(build_example_job())
        _targets, edges = OhmExecutor().run(graph, instance)
        actuals = actuals_from_edges(edges)
        assert actuals["DSLink10"] >= 0
        assert all(isinstance(v, float) for v in actuals.values())
