"""Cost-based pushdown placement: push only when the DBMS wins."""

import pytest

from repro.compile import compile_job
from repro.cost import (
    StatisticsCatalog,
    catalog_for,
    set_default_cost_based,
)
from repro.deploy import plan_pushdown
from repro.etl import run_job
from repro.obs import Observability
from repro.ohm import Filter, OhmGraph, Project, Source, Target
from repro.schema import relation
from repro.workloads import (
    build_example_job,
    generate_instance,
    synthesize_instance,
)


def _pass_through_graph():
    """A fully pushable pass-through projection: SQL would pay load +
    transfer on every row for no reduction, so pure ETL must win."""
    rel = relation(
        "R", ("id", "int", False), ("v", "float"), keys=["id"]
    )
    g = OhmGraph()
    s = g.add(Source(rel))
    p = g.add(Project([("id", "id"), ("v", "v + 1")]))
    t = g.add(Target(relation("Out", ("id", "int"), ("v", "float"))))
    g.chain(s, p, t, names=["in", "out"])
    return g


class TestSqlWins:
    """The example job reduces heavily before the frontier: push it."""

    @pytest.fixture
    def catalog(self):
        graph = compile_job(build_example_job())
        relations = [
            op.relation for op in graph.sources() if op.provider is None
        ]
        return catalog_for(synthesize_instance(relations, 5000))

    def test_reducing_region_is_pushed(self, catalog):
        graph = compile_job(build_example_job())
        hybrid = plan_pushdown(graph, catalog=catalog)
        assert list(hybrid.statements) == ["DSLink10"]
        assert len(hybrid.pushed_operator_uids) > 0
        assert hybrid.estimate is not None

    def test_decisions_explain_the_placement(self, catalog):
        graph = compile_job(build_example_job())
        hybrid = plan_pushdown(graph, catalog=catalog)
        sql = [d for d in hybrid.decisions if d.placement == "sql"]
        etl = [d for d in hybrid.decisions if d.placement == "etl"]
        assert len(sql) == 1 and len(etl) == 1
        assert sql[0].name == "DSLink10"
        assert sql[0].rows is not None and sql[0].cost is not None
        assert "transfer" in sql[0].reason or "row-units" in sql[0].reason

    def test_describe_reports_rows_and_costs(self, catalog):
        graph = compile_job(build_example_job())
        text = plan_pushdown(graph, catalog=catalog).describe()
        assert "rows out, cost" in text
        assert "row-units" in text
        assert "rows in, cost" in text  # the residual fragment line

    def test_hybrid_matches_pure_etl(self, catalog):
        graph = compile_job(build_example_job())
        hybrid = plan_pushdown(graph, catalog=catalog)
        instance = generate_instance(80)
        pure = run_job(build_example_job(), instance)
        assert hybrid.execute(instance).same_bags(pure)


class TestEtlWins:
    """A pass-through projection over many rows: keep it in the engine."""

    @pytest.fixture
    def catalog(self):
        graph = _pass_through_graph()
        relations = [op.relation for op in graph.sources()]
        return catalog_for(synthesize_instance(relations, 20000))

    def test_nothing_is_pushed(self, catalog):
        hybrid = plan_pushdown(_pass_through_graph(), catalog=catalog)
        assert hybrid.statements == {}
        assert hybrid.pushed_operator_uids == set()

    def test_describe_explains_the_all_etl_plan(self, catalog):
        text = plan_pushdown(
            _pass_through_graph(), catalog=catalog
        ).describe()
        assert "nothing pushed to the DBMS" in text
        assert "transfer dominates" in text

    def test_empty_plan_executes_as_pure_etl(self, catalog):
        graph = _pass_through_graph()
        hybrid = plan_pushdown(graph, catalog=catalog)
        rel = graph.sources()[0].relation
        instance = synthesize_instance([rel], 500)
        result = hybrid.execute(instance)
        expected = [
            {"id": r["id"], "v": None if r["v"] is None else r["v"] + 1}
            for r in instance.dataset("R")
        ]
        assert sorted(
            result.dataset("Out").rows, key=lambda r: r["id"]
        ) == sorted(expected, key=lambda r: r["id"])

    def test_cost_false_restores_maximal_pushdown(self, catalog):
        hybrid = plan_pushdown(
            _pass_through_graph(), catalog=catalog, cost=False
        )
        assert list(hybrid.statements) == ["out"]

    def test_process_default_can_disable_costing(self, catalog):
        set_default_cost_based(False)
        try:
            hybrid = plan_pushdown(_pass_through_graph(), catalog=catalog)
            assert list(hybrid.statements) == ["out"]
        finally:
            set_default_cost_based(None)


class TestBackwardCompatibility:
    def test_no_catalog_means_maximal_pushdown(self):
        hybrid = plan_pushdown(_pass_through_graph())
        assert list(hybrid.statements) == ["out"]
        assert hybrid.decisions == []
        assert hybrid.estimate is None

    def test_partial_catalog_coverage_falls_back(self):
        # statistics for a different relation: planning stays blind
        catalog = StatisticsCatalog()
        catalog.observe_rows("SomethingElse", 9)
        hybrid = plan_pushdown(_pass_through_graph(), catalog=catalog)
        assert list(hybrid.statements) == ["out"]

    def test_cost_metrics_emitted_only_in_cost_mode(self):
        graph = _pass_through_graph()
        catalog = catalog_for(
            synthesize_instance([graph.sources()[0].relation], 20000)
        )
        obs = Observability(stats=True)
        plan_pushdown(graph, catalog=catalog, obs=obs)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["deploy.pushdown.cost_candidates"] >= 2
        assert "deploy.pushdown.pushed_operators" in counters

        blind = Observability(stats=True)
        plan_pushdown(graph, obs=blind)
        assert (
            "deploy.pushdown.cost_candidates"
            not in blind.metrics.snapshot()["counters"]
        )


class TestAdaptiveReplanning:
    def test_feedback_can_flip_the_decision(self):
        """A filter the estimator thinks is highly selective (equality,
        1/ndv) actually keeps everything: after one observed run the
        planner stops pushing the (now non-reducing) region."""
        rel = relation("R", ("id", "int", False), ("v", "float"),
                       keys=["id"])
        g = OhmGraph()
        s = g.add(Source(rel))
        f = g.add(Filter("v = 1"))  # estimated 1/ndv; actually keeps all
        t = g.add(Target(relation("Out", ("id", "int"), ("v", "float"))))
        g.chain(s, f, t, names=["in", "kept"])

        catalog = StatisticsCatalog()
        catalog.observe_rows("R", 20000)
        before = plan_pushdown(g, catalog=catalog)
        assert list(before.statements) == ["kept"]  # estimate says reduce

        catalog.observe_link("kept", 20000)  # reality: no reduction
        after = plan_pushdown(g, catalog=catalog)
        assert after.statements == {}
