"""CLI tests: the ``orchid`` command surface."""

import json

import pytest

from repro.cli import main
from repro.etl import job_from_xml, job_to_xml, run_job
from repro.workloads import build_example_job, generate_instance


@pytest.fixture
def job_xml_path(tmp_path):
    path = tmp_path / "job.xml"
    path.write_text(job_to_xml(build_example_job()))
    return str(path)


class TestEtlToMappings:
    def test_json_output(self, job_xml_path, tmp_path):
        out = tmp_path / "mappings.json"
        assert main(["etl-to-mappings", job_xml_path, "-o", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["format"] == "orchid-mappings"
        assert [m["name"] for m in document["mappings"]] == ["M1", "M2", "M3"]

    def test_query_notation(self, job_xml_path, capsys):
        assert main(
            ["etl-to-mappings", job_xml_path, "--notation", "query"]
        ) == 0
        text = capsys.readouterr().out
        assert "for c in Customers, a in Accounts" in text

    def test_logic_notation(self, job_xml_path, capsys):
        assert main(
            ["etl-to-mappings", job_xml_path, "--notation", "logic"]
        ) == 0
        assert "∃" in capsys.readouterr().out


class TestMappingsToEtl:
    def test_full_round_trip_through_files(self, job_xml_path, tmp_path):
        mappings_path = tmp_path / "mappings.json"
        main(["etl-to-mappings", job_xml_path, "-o", str(mappings_path)])
        job_out = tmp_path / "regen.xml"
        assert main(
            ["mappings-to-etl", str(mappings_path), "-o", str(job_out)]
        ) == 0
        regenerated = job_from_xml(job_out.read_text())
        instance = generate_instance(30)
        assert run_job(regenerated, instance).same_bags(
            run_job(build_example_job(), instance)
        )

    def test_plan_flag_prints_boxes(self, job_xml_path, tmp_path, capsys):
        mappings_path = tmp_path / "mappings.json"
        main(["etl-to-mappings", job_xml_path, "-o", str(mappings_path)])
        main(["mappings-to-etl", str(mappings_path), "--plan",
              "-o", str(tmp_path / "j.xml")])
        assert "deployment plan" in capsys.readouterr().err


class TestShow:
    def test_text_listing(self, job_xml_path, capsys):
        assert main(["show", job_xml_path]) == 0
        out = capsys.readouterr().out
        assert "OHM instance" in out
        assert "GROUP" in out

    def test_dot_output(self, job_xml_path, capsys):
        assert main(["show", job_xml_path, "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out


class TestPushdown:
    def test_prints_hybrid_plan(self, job_xml_path, capsys):
        assert main(["pushdown", job_xml_path]) == 0
        out = capsys.readouterr().out
        assert "SELECT" in out and "residual ETL job" in out


class TestErrors:
    def test_unknown_command_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestOptimize:
    def test_optimized_job_round_trips(self, job_xml_path, tmp_path, capsys):
        out = tmp_path / "optimized.xml"
        assert main(["optimize", job_xml_path, "-o", str(out)]) == 0
        assert "OptimizationReport" in capsys.readouterr().err
        optimized = job_from_xml(out.read_text())
        instance = generate_instance(30)
        assert run_job(optimized, instance).same_bags(
            run_job(build_example_job(), instance)
        )


class TestExportOhm:
    def test_ohm_json_document(self, job_xml_path, tmp_path):
        out = tmp_path / "graph.json"
        assert main(["export-ohm", job_xml_path, "-o", str(out)]) == 0
        document = json.loads(out.read_text())
        assert document["format"] == "orchid-ohm"
        kinds = [op["kind"] for op in document["operators"]]
        assert "GROUP" in kinds and "SPLIT" in kinds


class TestObservabilityFlags:
    def test_trace_prints_span_tree_to_stderr(self, job_xml_path, capsys):
        assert main(["show", job_xml_path, "--trace"]) == 0
        captured = capsys.readouterr()
        assert "OHM instance" in captured.out  # primary output untouched
        assert "compile.job" in captured.err
        assert "compile.stage.Filter" in captured.err

    def test_stats_json_goes_to_stderr_and_parses(
        self, job_xml_path, capsys
    ):
        assert main(["show", job_xml_path, "--stats", "json"]) == 0
        captured = capsys.readouterr()
        document = json.loads(captured.err[captured.err.index("{"):])
        assert any(
            name.startswith("compile.phase.") for name in document["timers"]
        )
        assert document["counters"]["compile.stages"] == 9

    def test_stats_text_sections(self, job_xml_path, capsys):
        assert main(["optimize", job_xml_path, "--stats", "text"]) == 0
        err = capsys.readouterr().err
        assert "counters:" in err and "timers:" in err
        assert "rewrite.rule." in err

    def test_flags_off_by_default(self, job_xml_path, capsys):
        assert main(["show", job_xml_path]) == 0
        err = capsys.readouterr().err
        assert "compile.job" not in err


class TestBatchModeFlags:
    def test_row_mode_and_batch_size_are_mutually_exclusive(
        self, job_xml_path, capsys
    ):
        with pytest.raises(SystemExit):
            main(["show", job_xml_path, "--row-mode", "--batch-size", "64"])
        assert "mutually exclusive" in capsys.readouterr().err

    def test_batch_size_must_be_positive(self, job_xml_path, capsys):
        with pytest.raises(SystemExit):
            main(["show", job_xml_path, "--batch-size", "0"])
        assert "--batch-size" in capsys.readouterr().err

    def test_batch_size_sets_defaults_during_dispatch_then_restores(
        self, job_xml_path, monkeypatch
    ):
        import repro.cli as cli
        from repro.exec import default_batch_size, default_batched

        ambient = (default_batched(), default_batch_size())
        seen = {}
        real = cli._dispatch

        def spy(args, orchid):
            seen["batched"] = default_batched()
            seen["size"] = default_batch_size()
            return real(args, orchid)

        monkeypatch.setattr(cli, "_dispatch", spy)
        assert main(["show", job_xml_path, "--batch-size", "64"]) == 0
        assert seen == {"batched": True, "size": 64}
        # the flag's effect does not leak past the invocation
        assert (default_batched(), default_batch_size()) == ambient

    def test_row_mode_overrides_repro_batch(self, job_xml_path, monkeypatch):
        import repro.cli as cli
        from repro.exec import default_batched

        monkeypatch.setenv("REPRO_BATCH", "1")
        assert default_batched() is True
        seen = {}
        real = cli._dispatch

        def spy(args, orchid):
            seen["batched"] = default_batched()
            return real(args, orchid)

        monkeypatch.setattr(cli, "_dispatch", spy)
        assert main(["show", job_xml_path, "--row-mode"]) == 0
        assert seen == {"batched": False}
        assert default_batched() is True  # environment resolution restored
