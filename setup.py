"""Shim for editable installs in environments without the `wheel` package.

`pip install -e . --no-build-isolation` falls back to the legacy setup.py
develop path through this file; all metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
