"""repro.exec — the shared compiled execution core.

Every runtime in the reproduction (the OHM engine, the ETL stages, the
mapping executor) dispatches row work onto :mod:`repro.exec.kernels`
and lowers expressions through an :class:`ExpressionPlanner`, so the
operator semantics of the paper's abstract model are implemented
exactly once.

The planner has two strategies:

* ``compiled=True`` (the default) — expressions are lowered once per
  operator by :mod:`repro.exec.compile_expr` into plain Python
  closures;
* ``compiled=False`` — each closure defers to the tree-walking
  interpreter (:mod:`repro.expr.evaluator`), the semantic oracle.

The default is process-wide: :func:`set_default_compiled` overrides it
programmatically (the CLI's ``--interpreted`` flag), and the
``REPRO_COMPILED`` environment variable overrides it from outside
(``REPRO_COMPILED=0`` keeps CI's oracle runs green). Engine
constructors accept ``compiled=None`` meaning "use the default".
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional

from repro.data.dataset import Dataset
from repro.expr.ast import AggregateCall, Expr
from repro.expr.evaluator import (
    Environment,
    evaluate,
    evaluate_aggregate,
    evaluate_predicate,
)
from repro.expr.functions import DEFAULT_REGISTRY, FunctionRegistry

from repro.exec.compile_expr import (
    compile_aggregate,
    compile_expr,
    compile_predicate,
    is_foldable,
)
from repro.exec import kernels

_FALSE_VALUES = ("0", "false", "no", "off")

_default_compiled: Optional[bool] = None


def default_compiled() -> bool:
    """The process-wide compiled-mode default: a
    :func:`set_default_compiled` override wins, else the
    ``REPRO_COMPILED`` environment variable, else True."""
    if _default_compiled is not None:
        return _default_compiled
    raw = os.environ.get("REPRO_COMPILED")
    if raw is not None and raw.strip().lower() in _FALSE_VALUES:
        return False
    return True


def set_default_compiled(value: Optional[bool]) -> None:
    """Override the process-wide compiled default (None restores the
    environment-variable/True resolution)."""
    global _default_compiled
    _default_compiled = value


def resolve_compiled(value: Optional[bool]) -> bool:
    """Resolve an engine constructor's ``compiled`` argument: an
    explicit True/False wins, None means the process default."""
    return default_compiled() if value is None else bool(value)


class ExpressionPlanner:
    """Lowers expressions to per-member closures for the kernels.

    One planner is built per run (or per operator batch) and caches the
    lowered closure per expression identity (`Expr.key()`), so an
    expression shared by several operators is lowered once. The
    ``compiled`` strategy decides whether lowering means real
    compilation or a thin wrapper over the interpreter — kernels never
    know the difference, which is what keeps ``compiled=False`` an
    everything-else-equal semantic oracle.
    """

    def __init__(
        self,
        registry: Optional[FunctionRegistry] = None,
        compiled: Optional[bool] = None,
    ) -> None:
        self.registry = registry or DEFAULT_REGISTRY
        self.compiled = resolve_compiled(compiled)
        self._scalars: dict = {}
        self._predicates: dict = {}
        self._aggregates: dict = {}

    def scalar(self, expr: Expr) -> Callable[[Any], Any]:
        """An ``env → value`` closure for ``expr``."""
        key = expr.key()
        fn = self._scalars.get(key)
        if fn is None:
            if self.compiled:
                # kernels always bind real Environments, so dispatch the
                # raw compiled body (no bare-mapping conversion per call)
                fn = compile_expr(expr, self.registry).raw
            else:
                registry = self.registry

                def fn(env, _expr=expr, _registry=registry):
                    return evaluate(_expr, env, _registry)

            self._scalars[key] = fn
        return fn

    def predicate(self, expr: Expr) -> Callable[[Any], bool]:
        """An ``env → bool`` closure with SQL WHERE semantics (unknown
        filters out)."""
        key = expr.key()
        fn = self._predicates.get(key)
        if fn is None:
            if self.compiled:
                fn = compile_predicate(expr, self.registry).raw
            else:
                registry = self.registry

                def fn(env, _expr=expr, _registry=registry):
                    return evaluate_predicate(_expr, env, _registry)

            self._predicates[key] = fn
        return fn

    def materialize(self, relation, rows, fresh: bool = False):
        """Materialize kernel output ``rows`` as a Dataset.

        The compiled strategy adopts ``fresh`` row lists wholesale (the
        kernels built them, nothing else aliases them); the interpreting
        oracle always goes through the legacy copy-per-row constructor,
        so ``compiled=False`` reproduces the original engines'
        materialization behaviour exactly."""
        if self.compiled and fresh and isinstance(rows, list):
            return Dataset.adopt(relation, rows)
        return Dataset(relation, rows, validate=False)

    def aggregate(self, agg: AggregateCall) -> Callable[[list], Any]:
        """A ``members → value`` closure over a group of rows or
        environments."""
        key = agg.key()
        fn = self._aggregates.get(key)
        if fn is None:
            if self.compiled:
                fn = compile_aggregate(agg, self.registry)
            else:
                registry = self.registry

                def fn(members, _agg=agg, _registry=registry):
                    return evaluate_aggregate(_agg, members, _registry)

            self._aggregates[key] = fn
        return fn


__all__ = [
    "ExpressionPlanner",
    "compile_aggregate",
    "compile_expr",
    "compile_predicate",
    "default_compiled",
    "is_foldable",
    "kernels",
    "resolve_compiled",
    "set_default_compiled",
]
