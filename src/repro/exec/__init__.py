"""repro.exec — the shared compiled execution core.

Every runtime in the reproduction (the OHM engine, the ETL stages, the
mapping executor) dispatches row work onto :mod:`repro.exec.kernels`
and lowers expressions through an :class:`ExpressionPlanner`, so the
operator semantics of the paper's abstract model are implemented
exactly once.

The planner has two strategies:

* ``compiled=True`` (the default) — expressions are lowered once per
  operator by :mod:`repro.exec.compile_expr` into plain Python
  closures;
* ``compiled=False`` — each closure defers to the tree-walking
  interpreter (:mod:`repro.expr.evaluator`), the semantic oracle.

The default is process-wide: :func:`set_default_compiled` overrides it
programmatically (the CLI's ``--interpreted`` flag), and the
``REPRO_COMPILED`` environment variable overrides it from outside
(``REPRO_COMPILED=0`` keeps CI's oracle runs green). Engine
constructors accept ``compiled=None`` meaning "use the default".

On top of the compiled tier sits the *batched* (columnar) tier: block
kernels over :class:`repro.exec.block.RowBlock` columns with
expressions lowered by :mod:`repro.exec.compile_block`. It resolves the
same way — ``batched=True`` engine kwargs, :func:`set_default_batched`
(the CLI's ``--row-mode`` / ``--batch-size`` flags), or the
``REPRO_BATCH`` environment variable (``REPRO_BATCH=1`` switches it on;
an integer > 1, or ``REPRO_BATCH_SIZE``, also sets the batch size).
Batched execution requires the compiler, so under the interpreting
oracle (``compiled=False``) it switches itself off — and operators the
block tier cannot express identically fall back to the row kernels per
operator, never changing results.

The fourth tier is *parallel* execution (:mod:`repro.exec.parallel`):
independent stages run as topological wavefronts and the block join /
grouped-aggregation kernels partition by key hash across a worker pool,
deterministically (results stay bit-identical to serial runs). It
resolves through the same triad — ``parallel=True`` / ``workers=N``
engine kwargs, :func:`set_default_parallel` / :func:`set_default_workers`
(the CLI's ``--workers N``), or ``REPRO_PARALLEL`` / ``REPRO_WORKERS``
— and a failing worker degrades to the serial path per operator
(``exec.degrade.parallel_to_serial``). See ``docs/execution-model.md``
for the full five-tier handbook.

The fifth tier is *fused* execution (:mod:`repro.exec.fuse`): adjacent
block operators chain through selection vectors instead of
materializing an intermediate ``RowBlock`` per operator, gathering
columns once at the chain's single materialization point (and only the
columns downstream readers reference). It rides on the batched tier and
is on by default there — ``fused=False`` engine kwargs,
:func:`set_default_fused` (the CLI's ``--no-fuse``), or ``REPRO_FUSE=0``
switch it off — and any chain whose operators decline to fuse falls
back to the unfused block kernels per chain
(``exec.degrade.fused_to_block``), never changing results.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro import config
from repro.data.dataset import Dataset
from repro.expr.ast import AggregateCall, Expr
from repro.expr.evaluator import (
    Environment,
    evaluate,
    evaluate_aggregate,
    evaluate_predicate,
)
from repro.expr.functions import DEFAULT_REGISTRY, FunctionRegistry

from repro.exec.compile_expr import (
    compile_aggregate,
    compile_expr,
    compile_predicate,
    is_foldable,
)
from repro.exec.compile_block import (
    aggregate_values_reducer,
    compile_block_expr,
    compile_block_predicate,
)
from repro.exec import block, fuse, kernels, parallel
from repro.exec.block import RowBlock
from repro.exec.fuse import FusedBlock
from repro.exec.parallel import (
    WorkerPool,
    default_parallel,
    default_workers,
    resolve_parallel,
    resolve_workers,
    set_default_executor,
    set_default_parallel,
    set_default_workers,
    set_parallel_threshold,
)

#: default rows per block in batched mode (overridable per engine, via
#: ``set_default_batch_size``, or with ``REPRO_BATCH_SIZE``); the
#: authoritative value lives in the central knob registry,
#: :mod:`repro.config`.
DEFAULT_BATCH_SIZE = config.DEFAULT_BATCH_SIZE


def default_compiled() -> bool:
    """The process-wide compiled-mode default: a
    :func:`set_default_compiled` override wins, else the
    ``REPRO_COMPILED`` environment variable, else True."""
    return config.COMPILED.default()


def set_default_compiled(value: Optional[bool]) -> None:
    """Override the process-wide compiled default (None restores the
    environment-variable/True resolution)."""
    config.COMPILED.set(value)


def resolve_compiled(value: Optional[bool]) -> bool:
    """Resolve an engine constructor's ``compiled`` argument: an
    explicit True/False wins, None means the process default."""
    return default_compiled() if value is None else bool(value)


def default_batched() -> bool:
    """The process-wide batched-mode default: a
    :func:`set_default_batched` override wins, else the ``REPRO_BATCH``
    environment variable (any non-false value enables), else False."""
    return config.BATCHED.default()


def set_default_batched(value: Optional[bool]) -> None:
    """Override the process-wide batched default (None restores the
    environment-variable/False resolution)."""
    config.BATCHED.set(value)


def resolve_batched(value: Optional[bool]) -> bool:
    """Resolve an engine constructor's ``batched`` argument: an explicit
    True/False wins, None means the process default."""
    return default_batched() if value is None else bool(value)


def default_batch_size() -> int:
    """The process-wide batch size: a :func:`set_default_batch_size`
    override wins, else ``REPRO_BATCH_SIZE``, else an integer
    ``REPRO_BATCH`` value > 1 (so ``REPRO_BATCH=4096`` both enables
    batching and sizes the blocks), else :data:`DEFAULT_BATCH_SIZE`."""
    return config.BATCH_SIZE.default()


def set_default_batch_size(value: Optional[int]) -> None:
    """Override the process-wide batch size (None restores the
    environment-variable/:data:`DEFAULT_BATCH_SIZE` resolution)."""
    config.BATCH_SIZE.set(value)


def resolve_batch_size(value: Optional[int]) -> int:
    """Resolve an engine constructor's ``batch_size`` argument: an
    explicit size wins, None means the process default."""
    return config.BATCH_SIZE.resolve(value)


def default_fused() -> bool:
    """The process-wide fused-pipeline default: a
    :func:`set_default_fused` override wins, else ``REPRO_FUSE=0``
    disables, else True (fusion is on whenever batching is)."""
    return config.FUSED.default()


def set_default_fused(value: Optional[bool]) -> None:
    """Override the process-wide fused default (None restores the
    environment-variable/True resolution)."""
    config.FUSED.set(value)


def resolve_fused(value: Optional[bool]) -> bool:
    """Resolve an engine constructor's ``fused`` argument: an explicit
    True/False wins, None means the process default."""
    return default_fused() if value is None else bool(value)


def default_mode() -> Optional[str]:
    """The process-wide execution-mode default: a
    :func:`set_default_mode` override wins, else ``REPRO_MODE``, else
    ``None`` (engines honour their per-flag resolution)."""
    return config.MODE.default()


def set_default_mode(value: Optional[str]) -> None:
    """Override the process-wide execution mode — ``"rows"``,
    ``"block"``, ``"parallel"``, or ``"auto"`` (None restores the
    environment-variable resolution)."""
    config.MODE.set(value)


def resolve_mode(value: Optional[str]) -> Optional[str]:
    """Resolve an engine constructor's ``mode`` argument: an explicit
    mode wins (validated), None means the process default — which is
    itself usually None, meaning "use the compiled/batched/parallel
    flags as given"."""
    if value is not None:
        return config.check_mode(value)
    return default_mode()


# -- kernel fault injection ---------------------------------------------------
#
# The fault harness (repro.faults) installs a process-wide hook that may
# wrap every closure the planner hands to the kernels. The hook receives
# (tier, kind, fn) — tier is "block" / "compiled" / "oracle", kind is
# "scalar" / "predicate" / "aggregate" — and returns fn or a wrapper
# that raises repro.errors.FaultInjected on the invocations the fault
# plan selects. With no hook installed (the normal case) the planner's
# hot path is untouched.

_kernel_fault_hook: Optional[Callable] = None


def set_kernel_fault_hook(hook: Optional[Callable]) -> None:
    """Install (or with ``None`` remove) the process-wide kernel fault
    hook. Test/diagnostics machinery only — see :mod:`repro.faults`."""
    global _kernel_fault_hook
    _kernel_fault_hook = hook


def kernel_fault_hook() -> Optional[Callable]:
    return _kernel_fault_hook


class ExpressionPlanner:
    """Lowers expressions to per-member closures for the kernels.

    One planner is built per run (or per operator batch) and caches the
    lowered closure per expression identity (`Expr.key()`), so an
    expression shared by several operators is lowered once. The
    ``compiled`` strategy decides whether lowering means real
    compilation or a thin wrapper over the interpreter — kernels never
    know the difference, which is what keeps ``compiled=False`` an
    everything-else-equal semantic oracle.
    """

    def __init__(
        self,
        registry: Optional[FunctionRegistry] = None,
        compiled: Optional[bool] = None,
        batched: Optional[bool] = None,
        batch_size: Optional[int] = None,
        parallel: Optional[bool] = None,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        fused: Optional[bool] = None,
    ) -> None:
        self.registry = registry or DEFAULT_REGISTRY
        self.compiled = resolve_compiled(compiled)
        # the block tier builds on the compiler; under the interpreting
        # oracle it switches itself off so REPRO_COMPILED=0 stays a pure
        # row-at-a-time oracle run even with REPRO_BATCH=1
        self.batched = self.compiled and resolve_batched(batched)
        self.batch_size = resolve_batch_size(batch_size)
        # the parallel tier partitions *block* kernels, so it sits on top
        # of the batched tier the same way batched sits on compiled; a
        # worker count below 2 means there is nothing to fan out to
        self.workers = resolve_workers(workers)
        self.parallel = (
            self.batched and self.workers >= 2 and resolve_parallel(parallel)
        )
        # an explicit mode overrides the per-flag resolution above:
        # "rows"/"block"/"parallel" pin the tier, "auto" defers the
        # decision to tune_for() once the run's data size is known
        self.mode = resolve_mode(mode)
        if self.mode == "rows":
            self.batched = False
            self.parallel = False
        elif self.mode == "block":
            self.batched = self.compiled
            self.parallel = False
        elif self.mode == "parallel":
            self.batched = self.compiled
            self.parallel = self.batched and self.workers >= 2
        # the fused tier chains *block* operators, so it rides on the
        # batched tier (recomputed whenever tune_for() re-tiers)
        self._fused_requested = fused
        self.fused = self.batched and resolve_fused(fused)
        self._pool: Optional[WorkerPool] = None
        self._scalars: dict = {}
        self._predicates: dict = {}
        self._aggregates: dict = {}

    def tune_for(self, n_rows: int, model=None, memory_budget=None) -> str:
        """``mode="auto"``: pick the execution tier from the run's
        (estimated or actual) largest input cardinality via the cost
        model's crossovers (:func:`repro.cost.model.choose_tier`) and
        reconfigure this planner accordingly. A ``memory_budget``
        (resident-row ceiling) biases the choice toward the row tier
        once blocking operators would spill. Returns the chosen tier;
        a no-op (returning the current configuration's tier) for every
        other mode. Tier choice never changes results — block and
        partitioned kernels are bit-identical to the serial compiled
        path — only how fast they arrive."""
        if self.mode != "auto":
            if self.parallel:
                return "parallel"
            return "block" if self.batched else "rows"
        if model is None:
            from repro.cost.model import DEFAULT_MODEL as model
        tier = model.choose_tier(n_rows, self.workers, memory_budget)
        self.batched = self.compiled and tier in ("block", "parallel")
        self.parallel = self.batched and tier == "parallel"
        self.fused = self.batched and resolve_fused(self._fused_requested)
        return tier if self.compiled else "rows"

    def pool(self) -> WorkerPool:
        """The planner's worker pool (lazily built; threads by default,
        see :func:`repro.exec.parallel.set_default_executor`)."""
        if self._pool is None:
            self._pool = WorkerPool(self.workers)
        return self._pool

    def partitions_for(self, n_rows: int) -> int:
        """The degree of kernel parallelism chosen from the observed
        cardinality ``n_rows``: 0 when this planner is serial or the
        input is too small, else the data-size-driven partition count
        (:func:`repro.exec.parallel.partitions_for` — independent of the
        worker count, so results are too)."""
        if not self.parallel:
            return 0
        return parallel.partitions_for(n_rows)

    def scalar(self, expr: Expr) -> Callable[[Any], Any]:
        """An ``env → value`` closure for ``expr``."""
        key = expr.key()
        fn = self._scalars.get(key)
        if fn is None:
            if self.compiled:
                # kernels always bind real Environments, so dispatch the
                # raw compiled body (no bare-mapping conversion per call)
                fn = compile_expr(expr, self.registry).raw
            else:
                registry = self.registry

                def fn(env, _expr=expr, _registry=registry):
                    return evaluate(_expr, env, _registry)

            self._scalars[key] = fn
        return self._faulted("scalar", fn)

    def predicate(self, expr: Expr) -> Callable[[Any], bool]:
        """An ``env → bool`` closure with SQL WHERE semantics (unknown
        filters out)."""
        key = expr.key()
        fn = self._predicates.get(key)
        if fn is None:
            if self.compiled:
                fn = compile_predicate(expr, self.registry).raw
            else:
                registry = self.registry

                def fn(env, _expr=expr, _registry=registry):
                    return evaluate_predicate(_expr, env, _registry)

            self._predicates[key] = fn
        return self._faulted("predicate", fn)

    def materialize(self, relation, rows, fresh: bool = False):
        """Materialize kernel output ``rows`` as a Dataset.

        The compiled strategy adopts ``fresh`` row lists wholesale (the
        kernels built them, nothing else aliases them); the interpreting
        oracle always goes through the legacy copy-per-row constructor,
        so ``compiled=False`` reproduces the original engines'
        materialization behaviour exactly."""
        if self.compiled and fresh and isinstance(rows, list):
            return Dataset.adopt(relation, rows)
        return Dataset(relation, rows, validate=False)

    # -- block (columnar) lowering --------------------------------------

    def block_scalar(
        self, expr: Expr, resolve, tier: str = "block"
    ) -> Optional[Callable]:
        """A ``RowBlock → column`` function for ``expr`` under the given
        column resolver, or ``None`` when the operator must take the row
        path (batched mode off, or the expression isn't expressible
        column-wise). Compiled once per operator invocation — resolvers
        are call-site-specific, so these are not cached planner-wide.
        Fused call sites pass ``tier="fused"`` so a poisoned fused chain
        can be targeted independently of the block tier."""
        if not self.batched:
            return None
        fn = compile_block_expr(expr, self.registry, resolve)
        return None if fn is None else self._faulted("scalar", fn, tier=tier)

    def block_predicate(
        self, expr: Expr, resolve, tier: str = "block"
    ) -> Optional[Callable]:
        """A ``RowBlock → bool column`` function with SQL WHERE semantics
        (True only where definitely true), or ``None`` for row fallback."""
        if not self.batched:
            return None
        fn = compile_block_predicate(expr, self.registry, resolve)
        return (
            None if fn is None else self._faulted("predicate", fn, tier=tier)
        )

    def block_aggregate(self, agg: AggregateCall, resolve, tier: str = "block"):
        """``(values_fn, reducer)`` for columnar grouped aggregation —
        ``values_fn`` evaluates the argument once over a whole block,
        ``reducer`` folds one group's gathered values. ``(None, None)``
        is ``COUNT(*)`` (group size); a bare ``None`` means row
        fallback."""
        if not self.batched:
            return None
        if agg.arg is None:
            return (None, None)
        values_fn = compile_block_expr(agg.arg, self.registry, resolve)
        if values_fn is None:
            return None
        values_fn = self._faulted("aggregate", values_fn, tier=tier)
        return (values_fn, aggregate_values_reducer(agg))

    # -- fused (selection-vector) lowering ------------------------------

    def fused_chain(self, dataset, obs=None) -> Optional[FusedBlock]:
        """Open (or continue) a fused chain over ``dataset``: the
        upstream chain when the dataset is already fused-backed, else a
        fresh chain over its columnar form. ``None`` when this planner
        doesn't fuse — callers then use the unfused block path."""
        if not self.fused:
            return None
        chain = dataset.peek_fused()
        if chain is not None:
            return chain
        return fuse.fuse_source(dataset.as_block(), obs)

    def materialize_fused(self, relation, chain: FusedBlock):
        """Adopt a fused chain as a lazily-backed Dataset — columns are
        gathered only if/when a downstream consumer breaks the chain
        (``Dataset.as_block``/``.rows``) or at target delivery."""
        return Dataset.adopt_fused(relation, chain)

    def materialize_block(self, relation, rowblock: RowBlock):
        """Adopt a kernel-output block as a Dataset without converting
        through rows — the columnar analogue of ``materialize(...,
        fresh=True)``. Only called on block paths (which only run in
        batched mode, which implies compiled/trusted)."""
        return Dataset.adopt_block(relation, rowblock)

    def aggregate(self, agg: AggregateCall) -> Callable[[list], Any]:
        """A ``members → value`` closure over a group of rows or
        environments."""
        key = agg.key()
        fn = self._aggregates.get(key)
        if fn is None:
            if self.compiled:
                fn = compile_aggregate(agg, self.registry)
            else:
                registry = self.registry

                def fn(members, _agg=agg, _registry=registry):
                    return evaluate_aggregate(_agg, members, _registry)

            self._aggregates[key] = fn
        return self._faulted("aggregate", fn)

    def _faulted(self, kind: str, fn: Callable, tier: Optional[str] = None):
        """Hand ``fn`` to the installed kernel fault hook (if any); the
        closure cache always stores the unwrapped function, so removing
        the hook restores clean execution. The fused tier chains the
        block tier's hook underneath its own: a fault plan targeting
        ``tier="block"`` fires in the fused path too (the fused chain IS
        the block tier's work), while ``tier="fused"`` targets only
        fused lowering."""
        hook = _kernel_fault_hook
        if hook is None:
            return fn
        if tier is None:
            tier = "compiled" if self.compiled else "oracle"
        if tier == "fused":
            fn = hook("block", kind, fn)
        return hook(tier, kind, fn)


def degrade_counter(prev: "ExpressionPlanner") -> str:
    """The ``exec.degrade.*`` counter name for falling off the tier the
    planner ``prev`` ran at — shared by every runtime's degradation
    ladder so the fused→block→rows→oracle rungs are named once."""
    if getattr(prev, "fused", False):
        return "exec.degrade.fused_to_block"
    if prev.batched:
        return "exec.degrade.block_to_rows"
    return "exec.degrade.rows_to_oracle"


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "ExpressionPlanner",
    "FusedBlock",
    "RowBlock",
    "WorkerPool",
    "default_parallel",
    "default_workers",
    "parallel",
    "resolve_parallel",
    "resolve_workers",
    "set_default_executor",
    "set_default_parallel",
    "set_default_workers",
    "set_parallel_threshold",
    "aggregate_values_reducer",
    "block",
    "compile_aggregate",
    "compile_block_expr",
    "compile_block_predicate",
    "compile_expr",
    "compile_predicate",
    "default_batch_size",
    "default_batched",
    "default_compiled",
    "default_fused",
    "default_mode",
    "degrade_counter",
    "fuse",
    "resolve_fused",
    "resolve_mode",
    "set_default_fused",
    "set_default_mode",
    "is_foldable",
    "kernel_fault_hook",
    "kernels",
    "set_kernel_fault_hook",
    "resolve_batch_size",
    "resolve_batched",
    "resolve_compiled",
    "set_default_batch_size",
    "set_default_batched",
    "set_default_compiled",
]
