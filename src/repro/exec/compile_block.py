"""Columnar expression compiler: lower an AST to a column function, once.

Where :mod:`repro.exec.compile_expr` lowers an expression to an
``env → value`` closure called per row, this module lowers the same AST
to a ``RowBlock → column`` function called per *block*: node dispatch,
registry lookups, and name resolution happen once per operator, and the
per-row residue is a tight elementwise loop.

The semantics contract is the row compiler's, verbatim — the block
functions call the very same evaluator helpers (``_and3``, ``_arith``,
``_check_comparable``…) elementwise, so the NULL rules still live in one
place and the three modes (interpreted / compiled-row / batched) agree
bit-for-bit. Laziness that is observable row-wise is preserved
column-wise: CASE evaluates each WHEN's values only on the sub-block its
condition matched (via ``take``), exactly the rows the row path would
touch.

Name resolution is pluggable: ``resolve(ref) → column key or None``
(each runtime builds its resolver from how it binds environments —
see :func:`repro.exec.block.relation_resolver`). Anything the block
tier cannot express *identically* — an unresolvable column, an IN list
with non-constant items, an aggregate call — raises the internal
:class:`BlockCompileError`, and the public entry points return ``None``
so the caller falls back to the row kernels (which then raise the
oracle's own errors, if any).
"""

from __future__ import annotations

import operator
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.exec.block import BlockFn, RowBlock
from repro.exec.compile_expr import _COMPARATORS, is_foldable
from repro.expr.ast import (
    AggregateCall,
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.expr.evaluator import (
    _LIKE_CACHE,
    Environment,
    _and3,
    _arith,
    _as_bool,
    _check_comparable,
    _is_number,
    _like_to_regex,
    _or3,
    evaluate,
)
from repro.expr.functions import DEFAULT_REGISTRY, FunctionRegistry

#: resolve(ColumnRef) → column key in the block, or None (row fallback).
ResolveFn = Callable[[ColumnRef], Optional[str]]

#: sentinel: "this node is not a compile-time constant"
_MISSING = object()


class BlockCompileError(Exception):
    """Internal: the expression needs the row path (never escapes the
    public entry points)."""


def compile_block_expr(
    expr: Expr,
    registry: Optional[FunctionRegistry] = None,
    resolve: Optional[ResolveFn] = None,
) -> Optional[BlockFn]:
    """Compile ``expr`` into a ``RowBlock → column`` function returning
    one value per row (what :func:`~repro.expr.evaluator.evaluate`
    returns row-wise). ``None`` means the caller must use the row path."""
    registry = registry or DEFAULT_REGISTRY
    if resolve is None:
        resolve = lambda ref: None  # noqa: E731 — no columns resolvable
    try:
        fn, _const = _compile(expr, registry, resolve)
    except BlockCompileError:
        return None
    return fn


def compile_block_predicate(
    expr: Expr,
    registry: Optional[FunctionRegistry] = None,
    resolve: Optional[ResolveFn] = None,
) -> Optional[BlockFn]:
    """Like :func:`compile_block_expr` but reduced to SQL WHERE booleans:
    the output column holds ``True`` only where the predicate is
    definitely true (unknown filters out)."""
    inner = compile_block_expr(expr, registry, resolve)
    if inner is None:
        return None

    def predicate(block, _inner=inner):
        return [value is True for value in _inner(block)]

    return predicate


def aggregate_values_reducer(agg: AggregateCall) -> Callable[[List[Any]], Any]:
    """A ``values → value`` reducer over one group's *raw* argument
    values (NULLs included, member order preserved). Mirrors
    :func:`repro.exec.compile_expr.compile_aggregate`: NULLs are
    stripped, DISTINCT dedups by equality, SUM/AVG/MIN/MAX of an empty
    (or all-NULL) group is NULL, COUNT is 0. Column-major grouped
    aggregation evaluates the argument once per block, gathers per
    group, and reduces with this."""
    func = agg.func
    distinct = agg.distinct
    if func in ("FIRST", "LAST"):
        take_first = func == "FIRST"

        def order_sensitive(values):
            if not values:
                return None
            return values[0] if take_first else values[-1]

        return order_sensitive

    def reduce_values(values):
        values = [value for value in values if value is not None]
        if distinct:
            deduped = []
            for value in values:
                if value not in deduped:
                    deduped.append(value)
            values = deduped
        if func == "COUNT":
            return len(values)
        if not values:
            return None
        if func == "SUM":
            return sum(values)
        if func == "AVG":
            return sum(values) / len(values)
        if func == "MIN":
            return min(values)
        if func == "MAX":
            return max(values)
        raise EvaluationError(f"unknown aggregate {func!r}")

    return reduce_values


# -- node lowering ------------------------------------------------------------

#: compiled node: (block → column function, constant value or _MISSING)
_Compiled = Tuple[BlockFn, Any]


def _const(value) -> _Compiled:
    def broadcast(block, _value=value):
        return [_value] * block.length

    return broadcast, value


def _compile(expr: Expr, registry: FunctionRegistry, resolve: ResolveFn) -> _Compiled:
    if isinstance(expr, Literal):
        return _const(expr.value)
    if is_foldable(expr):
        try:
            value = evaluate(expr, Environment({}), registry)
        except EvaluationError:
            # data-independent error: the row path raises it per row (but
            # not at all over zero rows) — defer and re-raise per block
            def failing(block, _expr=expr, _registry=registry):
                if block.length == 0:
                    return []
                value = evaluate(_expr, Environment({}), _registry)
                return [value] * block.length  # pragma: no cover — raises

            return failing, _MISSING
        return _const(value)
    if isinstance(expr, ColumnRef):
        key = resolve(expr)
        if key is None:
            raise BlockCompileError(f"unresolvable column {expr.to_sql()}")

        def column(block, _key=key):
            return block.columns[_key]

        return column, _MISSING
    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, registry, resolve)
    if isinstance(expr, UnaryOp):
        return _compile_unary(expr, registry, resolve)
    if isinstance(expr, FunctionCall):
        return _compile_call(expr, registry, resolve)
    if isinstance(expr, Case):
        return _compile_case(expr, registry, resolve)
    if isinstance(expr, IsNull):
        operand, _c = _compile(expr.operand, registry, resolve)
        if expr.negated:
            return (
                lambda block: [v is not None for v in operand(block)],
                _MISSING,
            )
        return lambda block: [v is None for v in operand(block)], _MISSING
    if isinstance(expr, InList):
        return _compile_in(expr, registry, resolve)
    if isinstance(expr, Between):
        return _compile_between(expr, registry, resolve)
    if isinstance(expr, Like):
        return _compile_like(expr, registry, resolve)
    # AggregateCall (handled by the operators' grouped paths) and any
    # future node kinds take the row path
    raise BlockCompileError(f"cannot block-compile node {expr!r}")


def _cmp_cell(left, right, op, comparator):
    if left is None or right is None:
        return None
    _check_comparable(left, right, op)
    return comparator(left, right)


def _compile_binary(
    expr: BinaryOp, registry: FunctionRegistry, resolve: ResolveFn
) -> _Compiled:
    op = expr.op
    left, left_const = _compile(expr.left, registry, resolve)
    right, right_const = _compile(expr.right, registry, resolve)
    if op == "AND":
        return (
            lambda block: [_and3(l, r) for l, r in zip(left(block), right(block))],
            _MISSING,
        )
    if op == "OR":
        return (
            lambda block: [_or3(l, r) for l, r in zip(left(block), right(block))],
            _MISSING,
        )
    if op == "||":

        def concat(block):
            return [
                None if l is None or r is None else str(l) + str(r)
                for l, r in zip(left(block), right(block))
            ]

        return concat, _MISSING
    comparator = _COMPARATORS.get(op)
    if comparator is not None:
        # specialize the very common column-vs-constant comparison: no
        # broadcast list, no zip, one helper call per row
        if right_const is not _MISSING:

            def compare_const_right(block, _rv=right_const):
                return [
                    _cmp_cell(l, _rv, op, comparator) for l in left(block)
                ]

            return compare_const_right, _MISSING
        if left_const is not _MISSING:

            def compare_const_left(block, _lv=left_const):
                return [
                    _cmp_cell(_lv, r, op, comparator) for r in right(block)
                ]

            return compare_const_left, _MISSING

        def compare(block):
            return [
                _cmp_cell(l, r, op, comparator)
                for l, r in zip(left(block), right(block))
            ]

        return compare, _MISSING
    if right_const is not _MISSING:
        return (
            lambda block, _rv=right_const: [
                _arith(op, l, _rv) for l in left(block)
            ],
            _MISSING,
        )
    if left_const is not _MISSING:
        return (
            lambda block, _lv=left_const: [
                _arith(op, _lv, r) for r in right(block)
            ],
            _MISSING,
        )
    return (
        lambda block: [
            _arith(op, l, r) for l, r in zip(left(block), right(block))
        ],
        _MISSING,
    )


def _neg_cell(value):
    if value is None:
        return None
    if not _is_number(value):
        raise EvaluationError(f"unary minus needs a number, got {value!r}")
    return -value


def _compile_unary(
    expr: UnaryOp, registry: FunctionRegistry, resolve: ResolveFn
) -> _Compiled:
    operand, _c = _compile(expr.operand, registry, resolve)
    if expr.op == "NOT":
        return (
            lambda block: [
                None if v is None else (not _as_bool(v)) for v in operand(block)
            ],
            _MISSING,
        )
    return lambda block: [_neg_cell(v) for v in operand(block)], _MISSING


def _compile_call(
    expr: FunctionCall, registry: FunctionRegistry, resolve: ResolveFn
) -> _Compiled:
    function = registry.lookup(expr.name)
    function.check_arity(len(expr.args))
    args = [_compile(a, registry, resolve)[0] for a in expr.args]
    if not function.null_propagating:
        if not args:
            # zero-arg functions may be impure: call once per row
            return (
                lambda block: [function() for _ in range(block.length)],
                _MISSING,
            )

        def call_raw(block):
            return [function(*values) for values in zip(*[a(block) for a in args])]

        return call_raw, _MISSING
    if len(args) == 1:
        (only,) = args
        return (
            lambda block: [
                None if v is None else function(v) for v in only(block)
            ],
            _MISSING,
        )
    if len(args) == 2:
        first, second = args

        def call_two(block):
            return [
                None if a is None or b is None else function(a, b)
                for a, b in zip(first(block), second(block))
            ]

        return call_two, _MISSING

    def call(block):
        out = []
        for values in zip(*[a(block) for a in args]):
            if any(v is None for v in values):
                out.append(None)
            else:
                out.append(function(*values))
        return out

    return call, _MISSING


def _compile_case(
    expr: Case, registry: FunctionRegistry, resolve: ResolveFn
) -> _Compiled:
    branches = [
        (
            _compile(cond, registry, resolve)[0],
            _compile(value, registry, resolve)[0],
        )
        for cond, value in expr.whens
    ]
    default = (
        None
        if expr.default is None
        else _compile(expr.default, registry, resolve)[0]
    )

    def case(block):
        # peel matched rows off a shrinking pending sub-block so each
        # WHEN's condition/value touch exactly the rows the row-at-a-time
        # path would evaluate them on (observable through errors and
        # impure functions)
        out: List[Any] = [None] * block.length
        pending = list(range(block.length))
        sub = block
        for cond, value in branches:
            if not pending:
                break
            flags = cond(sub)
            matched = [i for i, flag in enumerate(flags) if flag is True]
            if not matched:
                continue
            values = value(sub.take(matched))
            for local, v in zip(matched, values):
                out[pending[local]] = v
            if len(matched) == len(pending):
                pending = []
                break
            remaining = [i for i, flag in enumerate(flags) if flag is not True]
            sub = sub.take(remaining)
            pending = [pending[i] for i in remaining]
        if default is not None and pending:
            for index, v in zip(pending, default(sub)):
                out[index] = v
        return out

    return case, _MISSING


def _compile_in(
    expr: InList, registry: FunctionRegistry, resolve: ResolveFn
) -> _Compiled:
    operand, _c = _compile(expr.operand, registry, resolve)
    item_values = []
    for item in expr.items:
        _fn, const = _compile(item, registry, resolve)
        if const is _MISSING:
            # the row path evaluates list items lazily per row; only a
            # fully-constant list is expressible column-wise
            raise BlockCompileError("IN list with non-constant items")
        item_values.append(const)
    negated = expr.negated

    def contains_cell(value, _items=tuple(item_values), _negated=negated):
        if value is None:
            return None
        saw_null = False
        for item_value in _items:
            if item_value is None:
                saw_null = True
            else:
                _check_comparable(value, item_value, "=")
                if value == item_value:
                    return False if _negated else True
        if saw_null:
            return None
        return True if _negated else False

    return lambda block: [contains_cell(v) for v in operand(block)], _MISSING


def _between_cell(value, low, high, negated):
    ge_low = None
    if value is not None and low is not None:
        _check_comparable(value, low, ">=")
        ge_low = value >= low
    le_high = None
    if value is not None and high is not None:
        _check_comparable(value, high, "<=")
        le_high = value <= high
    result = _and3(ge_low, le_high)
    if result is None:
        return None
    return (not result) if negated else result


def _compile_between(
    expr: Between, registry: FunctionRegistry, resolve: ResolveFn
) -> _Compiled:
    operand, _c = _compile(expr.operand, registry, resolve)
    low, _cl = _compile(expr.low, registry, resolve)
    high, _ch = _compile(expr.high, registry, resolve)
    negated = expr.negated

    def between(block):
        return [
            _between_cell(v, lo, hi, negated)
            for v, lo, hi in zip(operand(block), low(block), high(block))
        ]

    return between, _MISSING


def _like_cell(value, matcher, negated):
    if value is None:
        return None
    if not isinstance(value, str):
        raise EvaluationError("LIKE needs string operands")
    result = matcher(value) is not None
    return (not result) if negated else result


def _compile_like(
    expr: Like, registry: FunctionRegistry, resolve: ResolveFn
) -> _Compiled:
    operand, _c = _compile(expr.operand, registry, resolve)
    negated = expr.negated
    if isinstance(expr.pattern, Literal) and isinstance(
        expr.pattern.value, str
    ):
        matcher = _like_to_regex(expr.pattern.value).match
        return (
            lambda block: [
                _like_cell(v, matcher, negated) for v in operand(block)
            ],
            _MISSING,
        )
    pattern, _cp = _compile(expr.pattern, registry, resolve)

    def dynamic_cell(value, pattern_value, _negated=negated):
        if value is None or pattern_value is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern_value, str):
            raise EvaluationError("LIKE needs string operands")
        compiled = _LIKE_CACHE.get(pattern_value)
        if compiled is None:
            compiled = _like_to_regex(pattern_value)
            _LIKE_CACHE[pattern_value] = compiled
        result = compiled.match(value) is not None
        return (not result) if _negated else result

    def like(block):
        return [
            dynamic_cell(v, p) for v, p in zip(operand(block), pattern(block))
        ]

    return like, _MISSING


__all__ = [
    "BlockCompileError",
    "aggregate_values_reducer",
    "compile_block_expr",
    "compile_block_predicate",
]
