"""Fused pipelines: selection-vector block chains that never
materialize intermediates.

The block kernels of :mod:`repro.exec.block` are eager: every operator
builds a complete intermediate :class:`~repro.exec.block.RowBlock` — a
``take()`` copy of **all** columns — before the next kernel sees a
single value. For the operator chains the Orchid model produces
(Filter → Transformer scalar columns → Switch routing → a terminal
Aggregate/Dedup/Sort or a target materialization) those copies dominate
profile time, not predicate or scalar evaluation.

This module is the MonetDB/X100-style answer: a :class:`FusedBlock`
carries a *selection vector* alongside the original source block, so

* a filter narrows the selection (an index-list intersection) instead
  of gathering every column;
* a projection rebinds *handles* (name → source column, or name →
  computed column aligned to the selection) instead of copying;
* computed scalar columns are evaluated eagerly per operator — exactly
  the rows the unfused tier would see at that stage, so errors and
  rejects surface identically — but only over the *surviving*
  selection;
* columns are finally gathered exactly once, at the chain's single
  materialization point, and only the columns the consumer actually
  reads (dead-column pruning via :func:`read_set`).

A chain lives inside a :class:`~repro.data.dataset.Dataset` as a lazy
columnar backing (``Dataset.adopt_fused``); any consumer that needs a
real block (a join build side, the row path, ``.rows``) transparently
materializes it — such operators are *chain breakers*, and a new chain
starts after them.

Observability: ``exec.fuse.chains`` counts chains with at least one
fused operator, ``exec.fuse.operators`` the operators fused into them,
and ``exec.fuse.intermediate_rows_avoided`` the rows that were *not*
copied into an intermediate block at an operator boundary. The
``exec.fuse.chain`` span wraps each chain's materialization gather
(suppressed inside parallel worker threads, where the tracer's span
stack is not available).

Everything here is deliberately import-light: only the block container
and the worker-thread flag, so :mod:`repro.exec` can re-export the
module without cycles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.exec.block import RowBlock
from repro.exec.parallel import _in_worker

#: a handle payload: a key into the base block's columns (lazy — gather
#: deferred to materialization), or a list already aligned to the
#: chain's current selection (a computed column).
Handle = Union[str, List[Any]]


class FusedBlock:
    """A block pipeline in flight: a source block, a selection vector,
    and per-name column handles.

    ``base``       the source :class:`RowBlock` the chain started from.
    ``selection``  row indices into ``base`` (``None`` = identity).
    ``handles``    output name → :data:`Handle`. A ``str`` payload is a
                   base column gathered lazily through the selection; a
                   ``list`` payload is a computed column already aligned
                   to the selection.
    ``length``     number of surviving rows (``len(selection)``).

    Instances are immutable: every operator returns a new chain sharing
    the base, the gather cache, and whatever handles it passes through.
    The gather cache (``id(base column) → gathered list``) mirrors
    ``RowBlock.take``'s aliasing behaviour — a base column referenced
    under several names is gathered once per selection.
    """

    __slots__ = (
        "base",
        "selection",
        "handles",
        "length",
        "ops",
        "obs",
        "_gathered",
        "_state",
    )

    def __init__(
        self,
        base: RowBlock,
        selection: Optional[List[int]],
        handles: Dict[str, Handle],
        length: int,
        ops: int,
        obs=None,
        gathered: Optional[Dict[int, List[Any]]] = None,
        state: Optional[dict] = None,
    ):
        self.base = base
        self.selection = selection
        self.handles = handles
        self.length = length
        #: fused operators applied so far (span attribute)
        self.ops = ops
        #: the Observability captured when the chain started — used by
        #: the materialization span/metrics, which may fire lazily in a
        #: downstream stage
        self.obs = obs
        self._gathered: Dict[int, List[Any]] = (
            {} if gathered is None else gathered
        )
        # shared per-source bookkeeping: all chains narrowed/projected
        # from one fuse_source() share this cell so the chain is counted
        # once, at its first fused operator
        self._state = {"counted": False} if state is None else state

    # -- reading ------------------------------------------------------------

    @property
    def names(self) -> List[str]:
        return list(self.handles)

    def column(self, name: str) -> List[Any]:
        """The named column aligned to the current selection. Base
        columns gather through the selection on first access (cached);
        computed columns return as-is. Treat the result as immutable."""
        payload = self.handles[name]
        if not isinstance(payload, str):
            return payload
        col = self.base.columns[payload]
        if self.selection is None:
            return col
        gathered = self._gathered.get(id(col))
        if gathered is None:
            sel = self.selection
            gathered = self._gathered[id(col)] = [col[i] for i in sel]
        return gathered

    def view(self, names: Optional[Sequence[str]] = None) -> RowBlock:
        """A real :class:`RowBlock` over ``names`` (default: all
        handles) — the operator-local read-set view fused kernels
        evaluate predicates and scalars against."""
        names = self.names if names is None else list(names)
        return RowBlock({n: self.column(n) for n in names}, self.length)

    def head_rows(self, n: int, names: Sequence[str]) -> List[dict]:
        """The first ``n`` rows as dicts (Peek's sample) without
        gathering whole columns."""
        n = max(0, min(n, self.length))
        cols = []
        sel = self.selection
        for name in names:
            payload = self.handles[name]
            if isinstance(payload, str):
                col = self.base.columns[payload]
                head = (
                    col[:n] if sel is None else [col[i] for i in sel[:n]]
                )
            else:
                head = payload[:n]
            cols.append(head)
        return [dict(zip(names, values)) for values in zip(*cols)] if cols else [
            {} for _ in range(n)
        ]

    # -- fused operators ----------------------------------------------------

    def narrow(self, positions: Sequence[int]) -> "FusedBlock":
        """Keep only ``positions`` (indices into the *current* 0..length
        rows) — the fused form of a filter/route gather. Base handles
        stay lazy; computed columns are taken by position (aliasing
        preserved)."""
        sel = self.selection
        if sel is None:
            new_sel = list(positions)
        else:
            new_sel = [sel[p] for p in positions]
        shared: Dict[int, List[Any]] = {}
        handles: Dict[str, Handle] = {}
        for name, payload in self.handles.items():
            if isinstance(payload, str):
                handles[name] = payload
            else:
                taken = shared.get(id(payload))
                if taken is None:
                    taken = shared[id(payload)] = [
                        payload[p] for p in positions
                    ]
                handles[name] = taken
        return FusedBlock(
            self.base,
            new_sel,
            handles,
            len(new_sel),
            self.ops,
            self.obs,
            state=self._state,
        )

    def project(self, items: Sequence[Tuple[str, str]]) -> "FusedBlock":
        """Rename/subset handles — ``items`` are ``(output name, current
        name)`` pairs. Pure bookkeeping: no column is touched."""
        handles = {out: self.handles[source] for out, source in items}
        return FusedBlock(
            self.base,
            self.selection,
            handles,
            self.length,
            self.ops,
            self.obs,
            gathered=self._gathered,
            state=self._state,
        )

    def derive(self, handles: Dict[str, Handle]) -> "FusedBlock":
        """A chain with exactly these handles over the same selection
        (a Transformer/Project output link: pass-through handles plus
        freshly computed columns)."""
        return FusedBlock(
            self.base,
            self.selection,
            dict(handles),
            self.length,
            self.ops,
            self.obs,
            gathered=self._gathered,
            state=self._state,
        )

    def with_handles(self, extra: Dict[str, Handle]) -> "FusedBlock":
        """This chain's handles extended/shadowed by ``extra`` (stage
        variables, surrogate keys, dotted environment aliases)."""
        handles = dict(self.handles)
        handles.update(extra)
        return FusedBlock(
            self.base,
            self.selection,
            handles,
            self.length,
            self.ops,
            self.obs,
            gathered=self._gathered,
            state=self._state,
        )

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return (
            f"FusedBlock({len(self.handles)} cols × {self.length} rows, "
            f"{self.ops} ops fused)"
        )


# -- chain lifecycle -----------------------------------------------------------


def fuse_source(block: RowBlock, obs=None) -> FusedBlock:
    """Start a chain over ``block`` (identity selection, every column a
    lazy handle)."""
    return FusedBlock(
        block,
        None,
        {n: n for n in block.columns},
        block.length,
        0,
        obs,
    )


def fused_op(chain: FusedBlock, obs, rows_avoided: int = 0) -> FusedBlock:
    """Book one fused operator on ``chain``: bumps the chain's operator
    count and the ``exec.fuse.*`` metrics. ``rows_avoided`` is the rows
    the unfused tier would have copied into an intermediate block at
    this operator boundary. The chain itself is counted once, at its
    first fused operator (so chains that immediately fall back to the
    unfused kernels are not reported)."""
    chain.ops += 1
    if obs is not None and obs.enabled:
        metrics = obs.metrics
        state = chain._state
        if not state["counted"]:
            state["counted"] = True
            metrics.count("exec.fuse.chains")
        metrics.count("exec.fuse.operators")
        if rows_avoided:
            metrics.count("exec.fuse.intermediate_rows_avoided", rows_avoided)
    return chain


def read_set(
    exprs: Iterable, resolve: Callable
) -> Optional[List[str]]:
    """The column keys ``exprs`` read under ``resolve``, deduplicated in
    first-reference order — the per-operator read-set dead-column
    pruning gathers against. ``None`` when any reference fails to
    resolve (the caller must fall back to the full view)."""
    names: Dict[str, bool] = {}
    for expr in exprs:
        for ref in expr.column_refs():
            key = resolve(ref)
            if key is None:
                return None
            names[key] = True
    return list(names)


def materialize_fused(
    chain: FusedBlock,
    names: Optional[Sequence[str]] = None,
    fill_missing: bool = False,
) -> RowBlock:
    """The chain's single materialization point: gather exactly the
    ``names`` columns (default: every handle) through the selection.
    With ``fill_missing``, names without a handle become NULL columns
    (trusted target delivery semantics). Emits the ``exec.fuse.chain``
    span around the gather — except inside parallel worker threads,
    where only the (locked) metrics registry is thread-safe."""
    names = chain.names if names is None else list(names)
    obs = chain.obs
    span = None
    if (
        obs is not None
        and obs.enabled
        and not getattr(_in_worker, "active", False)
    ):
        span = obs.tracer.span(
            "exec.fuse.chain", operators=chain.ops, rows=chain.length
        )
    if span is not None:
        with span:
            return _gather(chain, names, fill_missing)
    return _gather(chain, names, fill_missing)


def _gather(
    chain: FusedBlock, names: Sequence[str], fill_missing: bool
) -> RowBlock:
    columns: Dict[str, List[Any]] = {}
    for name in names:
        if fill_missing and name not in chain.handles:
            columns[name] = [None] * chain.length
        else:
            columns[name] = chain.column(name)
    return RowBlock(columns, chain.length)


__all__ = [
    "FusedBlock",
    "Handle",
    "fuse_source",
    "fused_op",
    "materialize_fused",
    "read_set",
]
