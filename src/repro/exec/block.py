"""Columnar batches: the :class:`RowBlock` container and block kernels.

The row kernels in :mod:`repro.exec.kernels` pay per-row dispatch on
every operator: an environment rebind, a closure call, and a dict build
per row. This module adds the columnar tier ROADMAP calls for — the
same operator semantics, executed over *columns*:

* a :class:`RowBlock` is a dict of column lists plus a length. NULLs are
  in-band ``None`` entries (the same three-valued-logic convention the
  row engines use), so a column *is* its own null mask:
  ``block.null_mask(name)`` derives the boolean form when needed;
* block kernels consume and produce whole blocks: filtering builds a
  selection vector and gathers once, projection rebinds whole columns
  (a pass-through column is shared, not copied), grouped aggregation
  gathers per-column accumulators, and the hash join builds/probes over
  key columns and emits index vectors;
* columns are **immutable by convention**: kernels may alias an input
  column into an output block, and nothing may mutate a column list in
  place. Fresh lists are built wherever rows are reordered or selected.

Operators that stay row-shaped (nest/unnest, UNKNOWN/opaque bodies)
simply fall back to the row kernels — ``Dataset`` converts lazily in
both directions.

Kernels report ``exec.block.<name>.blocks_in/.blocks_out/.rows_in/
.rows_out`` when given an :class:`~repro.obs.Observability`.
"""

from __future__ import annotations

from itertools import chain
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ExecutionError
from repro.exec.kernels import (
    _hash_key,
    _sort_value,
    key_encoder,
    split_equi_condition,
)
from repro.expr.ast import Expr
from repro.schema.model import Relation
from repro.supervision.memory import active_memory_budget

#: A compiled block expression: RowBlock → column (list of values).
BlockFn = Callable[["RowBlock"], List[Any]]


def _observe_block(
    obs, kernel: str, blocks_in: int, blocks_out: int, rows_in: int, rows_out: int
) -> None:
    if obs is not None and obs.enabled:
        metrics = obs.metrics
        metrics.count(f"exec.block.{kernel}.blocks_in", blocks_in)
        metrics.count(f"exec.block.{kernel}.blocks_out", blocks_out)
        metrics.count(f"exec.block.{kernel}.rows_in", rows_in)
        metrics.count(f"exec.block.{kernel}.rows_out", rows_out)


class RowBlock:
    """A batch of rows stored column-wise.

    ``columns`` maps column name → list of values (``None`` = NULL);
    every list has exactly ``length`` entries. Several names may alias
    the *same* list object (projection rebinding), which is why columns
    are immutable by convention.
    """

    __slots__ = ("columns", "length", "_null_masks")

    def __init__(self, columns: Dict[str, List[Any]], length: int):
        self.columns = columns
        self.length = length
        # per-column null-mask memo — sound because columns are immutable
        self._null_masks: Optional[Dict[str, List[bool]]] = None

    # -- construction / conversion ----------------------------------------

    @classmethod
    def from_rows(cls, names: Sequence[str], rows: Sequence[dict]) -> "RowBlock":
        """Columnarize ``rows`` (each must hold every name)."""
        columns = {n: [row[n] for row in rows] for n in names}
        return cls(columns, len(rows))

    def to_rows(self, names: Optional[Sequence[str]] = None) -> List[dict]:
        """Materialize as fresh row dicts, columns ordered by ``names``
        (default: this block's column order)."""
        names = list(self.columns) if names is None else list(names)
        if not names:
            return [{} for _ in range(self.length)]
        cols = [self.columns[n] for n in names]
        return [dict(zip(names, values)) for values in zip(*cols)]

    @classmethod
    def concat(cls, blocks: Sequence["RowBlock"]) -> "RowBlock":
        """Concatenate blocks sharing a column-name set. Each output
        column is built in one pass (no repeated ``extend`` over many
        small chunks), and names aliasing the same list in *every* input
        stay aliased in the output."""
        if len(blocks) == 1:
            return blocks[0]
        if not blocks:
            return cls({}, 0)
        names = list(blocks[0].columns)
        length = sum(block.length for block in blocks)
        shared: Dict[Tuple[int, ...], List[Any]] = {}
        columns: Dict[str, List[Any]] = {}
        for n in names:
            key = tuple(id(block.columns[n]) for block in blocks)
            col = shared.get(key)
            if col is None:
                col = shared[key] = list(
                    chain.from_iterable(block.columns[n] for block in blocks)
                )
            columns[n] = col
        return cls(columns, length)

    # -- cheap structural ops ----------------------------------------------

    @property
    def names(self) -> List[str]:
        return list(self.columns)

    def column(self, name: str) -> List[Any]:
        return self.columns[name]

    def null_mask(self, name: str) -> List[bool]:
        """True where the column is NULL (the in-band ``None`` entries).
        Memoized per column name — repeated callers (join build/probe,
        grouped aggregation) scan the column once. Callers must treat
        the returned mask as immutable."""
        masks = self._null_masks
        if masks is None:
            masks = self._null_masks = {}
        mask = masks.get(name)
        if mask is None:
            mask = masks[name] = [
                value is None for value in self.columns[name]
            ]
        return mask

    def slice(self, start: int, stop: int) -> "RowBlock":
        """Row range ``[start, stop)`` — aliased column lists stay aliased."""
        start = max(0, start)
        stop = min(self.length, stop)
        shared: Dict[int, List[Any]] = {}
        columns: Dict[str, List[Any]] = {}
        for name, col in self.columns.items():
            cut = shared.get(id(col))
            if cut is None:
                cut = shared[id(col)] = col[start:stop]
            columns[name] = cut
        return RowBlock(columns, max(0, stop - start))

    def take(
        self,
        indices: Sequence[int],
        names: Optional[Sequence[str]] = None,
    ) -> "RowBlock":
        """Gather the given row positions (a selection vector) into a new
        block — aliased column lists are gathered once and stay aliased.
        ``names`` restricts the gather to the columns a downstream
        consumer actually reads (dead-column pruning)."""
        shared: Dict[int, List[Any]] = {}
        columns: Dict[str, List[Any]] = {}
        for name in (self.columns if names is None else names):
            col = self.columns[name]
            taken = shared.get(id(col))
            if taken is None:
                taken = shared[id(col)] = [col[i] for i in indices]
            columns[name] = taken
        return RowBlock(columns, len(indices))

    def chunks(self, size: Optional[int]) -> Iterator["RowBlock"]:
        """Split into row ranges of at most ``size`` rows (no copy when
        the block already fits)."""
        if not size or size >= self.length:
            yield self
            return
        for start in range(0, self.length, size):
            yield self.slice(start, min(start + size, self.length))

    def with_columns(self, extra: Dict[str, List[Any]]) -> "RowBlock":
        """A new block sharing these columns plus ``extra`` (no copies)."""
        columns = dict(self.columns)
        columns.update(extra)
        return RowBlock(columns, self.length)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"RowBlock({len(self.columns)} cols × {self.length} rows)"


# -- selection kernels ---------------------------------------------------------


def filter_block(
    block: RowBlock,
    predicate: BlockFn,
    batch_size: Optional[int] = None,
    obs=None,
) -> RowBlock:
    """SQL WHERE over a block: evaluate the predicate column chunk-wise,
    turn it into a selection vector, gather once."""
    indices: List[int] = []
    chunks_seen = 0
    offset = 0
    for chunk in block.chunks(batch_size):
        chunks_seen += 1
        mask = predicate(chunk)
        indices.extend(offset + i for i, flag in enumerate(mask) if flag)
        offset += chunk.length
    out = block.take(indices)
    _observe_block(obs, "filter", chunks_seen, 1, block.length, out.length)
    return out


def project_block(
    block: RowBlock,
    derivations: Sequence[Tuple[str, BlockFn]],
    defaults: Optional[dict] = None,
    batch_size: Optional[int] = None,
    obs=None,
) -> RowBlock:
    """Column rebinding: evaluate each derivation as a whole column.
    A pass-through column reference costs nothing — the output aliases
    the input list. ``defaults`` broadcast constant columns (e.g.
    NULL-filled underived target columns) before derivations apply."""
    outputs: List[RowBlock] = []
    chunks_seen = 0
    for chunk in block.chunks(batch_size):
        chunks_seen += 1
        columns: Dict[str, List[Any]] = {}
        if defaults:
            for name, value in defaults.items():
                columns[name] = [value] * chunk.length
        for name, fn in derivations:
            columns[name] = fn(chunk)
        outputs.append(RowBlock(columns, chunk.length))
    out = RowBlock.concat(outputs)
    _observe_block(obs, "project", chunks_seen, 1, block.length, out.length)
    return out


def route_block(
    block: RowBlock,
    specs: Sequence[Tuple[str, Optional[BlockFn]]],
    only_once: bool = False,
    obs=None,
) -> List[List[int]]:
    """Multi-output routing over a block: one selection vector per output.

    Mirrors :func:`repro.exec.kernels.route_rows` — ``specs`` are
    ``(kind, predicate)`` with kinds ``"always"`` / ``"pred"`` /
    ``"fallback"``; with ``only_once`` a row stops being considered by
    later predicate outputs after its first match."""
    n = block.length
    all_indices = list(range(n))
    has_predicates = any(kind == "pred" for kind, _ in specs)
    matched = [False] * n
    outputs: List[List[int]] = []
    for kind, predicate in specs:
        if kind == "always":
            outputs.append(all_indices)
        elif kind == "pred":
            mask = predicate(block)
            if only_once:
                selected = [i for i in all_indices if mask[i] and not matched[i]]
            else:
                selected = [i for i in all_indices if mask[i]]
            for i in selected:
                matched[i] = True
            outputs.append(selected)
        else:  # fallback
            outputs.append([])
    if has_predicates:
        unmatched = [i for i in all_indices if not matched[i]]
        for spec_index, (kind, _p) in enumerate(specs):
            if kind == "fallback":
                outputs[spec_index] = list(unmatched)
    _observe_block(
        obs, "route", 1, len(outputs), n, sum(len(o) for o in outputs)
    )
    return outputs


def switch_block(
    block: RowBlock,
    selector: BlockFn,
    cases: Sequence[Any],
    has_default: bool,
    obs=None,
) -> List[List[int]]:
    """Selector routing over a block: one selection vector per case (plus
    the trailing default when configured); first matching case wins."""
    values = selector(block)
    n_outputs = len(cases) + (1 if has_default else 0)
    outputs: List[List[int]] = [[] for _ in range(n_outputs)]
    for i, value in enumerate(values):
        for case_index, case in enumerate(cases):
            if value == case:
                outputs[case_index].append(i)
                break
        else:
            if has_default:
                outputs[-1].append(i)
    _observe_block(
        obs, "switch", 1, n_outputs, block.length, sum(len(o) for o in outputs)
    )
    return outputs


# -- grouping kernels ----------------------------------------------------------


def _parallel_group_aggregate(block, key_names, aggregates, planner, obs):
    """The partitioned path of :func:`group_aggregate_block`, or ``None``
    to stay serial (no parallel planner, input under the threshold, or a
    partition failed and the degradation ladder applies)."""
    if planner is None or not getattr(planner, "parallel", False):
        return None
    n_partitions = planner.partitions_for(block.length)
    if n_partitions < 2:
        return None
    from repro.exec import parallel

    try:
        return parallel.partitioned_group_aggregate(
            block, key_names, aggregates, planner.pool(), n_partitions, obs
        )
    except Exception:  # noqa: BLE001 — degrade to the serial kernel
        if obs is not None and obs.enabled:
            obs.metrics.count("exec.degrade.parallel_to_serial")
        return None


def _group_indices(
    block: RowBlock, key_names: Sequence[str]
) -> List[List[int]]:
    """Row-index groups by encoded key columns, first-seen order."""
    groups: Dict[Any, List[int]] = {}
    order: List[Any] = []
    if len(key_names) == 1:
        encode = key_encoder()
        col = block.columns[key_names[0]]
        for i, value in enumerate(col):
            key = encode(value)
            members = groups.get(key)
            if members is None:
                groups[key] = members = []
                order.append(key)
            members.append(i)
    else:
        encoders = [key_encoder() for _ in key_names]
        cols = [block.columns[k] for k in key_names]
        for i in range(block.length):
            key = tuple(
                encode(col[i]) for encode, col in zip(encoders, cols)
            )
            members = groups.get(key)
            if members is None:
                groups[key] = members = []
                order.append(key)
            members.append(i)
    return [groups[key] for key in order]


def group_aggregate_block(
    block: RowBlock,
    key_names: Sequence[str],
    aggregates: Sequence[Tuple[str, Optional[BlockFn], Optional[Callable]]],
    obs=None,
    planner=None,
) -> RowBlock:
    """Grouped aggregation over columns: rows are partitioned by encoded
    key columns (NULL keys equal, ``1 == 1.0``), each aggregate argument
    is evaluated *once* as a whole column, then gathered per group and
    reduced. ``aggregates`` are ``(name, values_fn, reducer)`` — a
    ``(name, None, None)`` entry is ``COUNT(*)`` (the group size).

    A parallel planner groups large blocks in contiguous row chunks
    merged in chunk order across its worker pool
    (:func:`repro.exec.parallel.partitioned_group_aggregate` —
    bit-identical output, serial group order); a failing partition
    degrades back to this serial path (``exec.degrade.
    parallel_to_serial``). Above an active memory budget the group
    states are grace-partitioned to temp-file runs instead
    (:func:`repro.supervision.spill.external_group_aggregate_block` —
    bit-identical output, ``exec.spill.*`` metrics)."""
    run_budget = active_memory_budget()
    if run_budget is not None and run_budget.exceeded(block.length):
        from repro.supervision.spill import external_group_aggregate_block

        out = external_group_aggregate_block(
            block, key_names, aggregates, run_budget, obs
        )
        _observe_block(obs, "group_aggregate", 1, 1, block.length, out.length)
        return out
    out = _parallel_group_aggregate(block, key_names, aggregates, planner, obs)
    if out is not None:
        _observe_block(obs, "group_aggregate", 1, 1, block.length, out.length)
        return out
    groups = _group_indices(block, key_names)
    columns: Dict[str, List[Any]] = {}
    for k in key_names:
        col = block.columns[k]
        columns[k] = [col[members[0]] for members in groups]
    for name, values_fn, reducer in aggregates:
        if values_fn is None and reducer is None:
            columns[name] = [len(members) for members in groups]
        else:
            values = values_fn(block)
            columns[name] = [
                reducer([values[i] for i in members]) for members in groups
            ]
    out = RowBlock(columns, len(groups))
    _observe_block(obs, "group_aggregate", 1, 1, block.length, out.length)
    return out


def dedup_block(
    block: RowBlock,
    key_names: Sequence[str],
    retain: str = "first",
    obs=None,
) -> RowBlock:
    """One row per key (first or last occurrence), first-seen key order."""
    groups = _group_indices(block, key_names)
    pick = -1 if retain == "last" else 0
    out = block.take([members[pick] for members in groups])
    _observe_block(obs, "dedup", 1, 1, block.length, out.length)
    return out


# -- set kernels ---------------------------------------------------------------


def union_block(
    blocks: Sequence[RowBlock],
    names: Sequence[str],
    distinct: bool = False,
    obs=None,
) -> RowBlock:
    """Bag union projected onto ``names``; ``distinct`` keeps the first
    occurrence of each row (NULLs equal)."""
    columns: Dict[str, List[Any]] = {n: [] for n in names}
    for block in blocks:
        for n in names:
            columns[n].extend(block.columns[n])
    length = sum(block.length for block in blocks)
    out = RowBlock(columns, length)
    total_in = length
    if distinct:
        encoders = [key_encoder() for _ in names]
        cols = [out.columns[n] for n in names]
        seen = set()
        indices: List[int] = []
        for i in range(length):
            key = tuple(encode(col[i]) for encode, col in zip(encoders, cols))
            if key not in seen:
                seen.add(key)
                indices.append(i)
        out = out.take(indices)
    _observe_block(obs, "union", len(blocks), 1, total_in, out.length)
    return out


# -- sorting -------------------------------------------------------------------


def sort_block(
    block: RowBlock,
    keys: Sequence[Tuple[str, str]],
    obs=None,
) -> RowBlock:
    """Stable multi-key sort by repeated stable index sorts (right-to-left,
    exactly the row kernel's strategy, so the permutation is identical).

    Above an active memory budget the sort buffer is spilled instead:
    the same permutation is computed by external merge over
    budget-sized runs (:func:`repro.supervision.spill.
    external_sort_indices`), then gathered once."""
    run_budget = active_memory_budget()
    if run_budget is not None and run_budget.exceeded(block.length):
        from repro.supervision.spill import (
            _Reversed,
            external_sort_indices,
        )

        specs = [
            (block.columns[col_name], direction == "desc")
            for col_name, direction in keys
        ]

        def key_of(i: int) -> tuple:
            return tuple(
                _Reversed(_sort_value(col[i], True))
                if descending
                else _sort_value(col[i], False)
                for col, descending in specs
            )

        order = external_sort_indices(block.length, key_of, run_budget, obs)
        out = block.take(order)
        _observe_block(obs, "sort", 1, 1, block.length, out.length)
        return out
    indices = list(range(block.length))
    for col_name, direction in reversed(list(keys)):
        descending = direction == "desc"
        col = block.columns[col_name]
        decorated = [_sort_value(value, descending) for value in col]
        indices.sort(key=decorated.__getitem__, reverse=descending)
    out = block.take(indices)
    _observe_block(obs, "sort", 1, 1, block.length, out.length)
    return out


# -- joins ---------------------------------------------------------------------


def hash_join_block(
    left: RowBlock,
    right: RowBlock,
    left_relation: Relation,
    right_relation: Relation,
    condition: Expr,
    kind: str,
    plan: Sequence[Tuple[str, str, str]],
    planner,
    obs=None,
) -> Optional[RowBlock]:
    """Hash join over key columns, or ``None`` when the condition needs
    the row path (no equi-conjuncts, residual conjuncts, or a key
    expression the block compiler cannot lower).

    Build/probe produce paired index vectors (``-1`` = outer padding);
    output columns are gathered straight from the ``(output name, side,
    source column)`` plan. Emission order matches the row kernel:
    matches in probe order with left paddings inline, right paddings
    last.

    A parallel planner probes large inputs in contiguous row chunks
    against one shared build index across its worker pool
    (:func:`repro.exec.parallel.partitioned_join` — bit-identical
    output, same emission order); a failing partition degrades back to
    the serial build/probe below (``exec.degrade.parallel_to_serial``)."""
    pairs, residual = split_equi_condition(
        condition, left_relation, right_relation
    )
    if not pairs or residual:
        return None
    run_budget = active_memory_budget()
    if run_budget is not None and run_budget.exceeded(right.length):
        # build side over budget: decline, so the caller's row path runs
        # and its hash join grace-partitions to temp-file runs
        return None
    left_resolve = relation_resolver(left_relation.name, left.columns)
    right_resolve = relation_resolver(right_relation.name, right.columns)
    left_key_fns = [planner.block_scalar(l, left_resolve) for l, _r in pairs]
    right_key_fns = [planner.block_scalar(r, right_resolve) for _l, r in pairs]
    if any(fn is None for fn in left_key_fns + right_key_fns):
        return None

    if getattr(planner, "parallel", False):
        n_partitions = planner.partitions_for(left.length + right.length)
        if n_partitions >= 2:
            from repro.exec import parallel

            try:
                out = parallel.partitioned_join(
                    left,
                    right,
                    [fn(left) for fn in left_key_fns],
                    [fn(right) for fn in right_key_fns],
                    kind,
                    plan,
                    planner.pool(),
                    n_partitions,
                    obs,
                )
            except Exception:  # noqa: BLE001 — degrade to the serial path
                if obs is not None and obs.enabled:
                    obs.metrics.count("exec.degrade.parallel_to_serial")
            else:
                _observe_block(
                    obs, "join", 2, 1, left.length + right.length, out.length
                )
                return out

    right_key_cols = [fn(right) for fn in right_key_fns]
    index: Dict[tuple, List[int]] = {}
    if len(right_key_cols) == 1:
        for i, value in enumerate(right_key_cols[0]):
            key = _hash_key((value,))
            if key is not None:
                index.setdefault(key, []).append(i)
    else:
        for i in range(right.length):
            key = _hash_key([col[i] for col in right_key_cols])
            if key is not None:
                index.setdefault(key, []).append(i)

    left_key_cols = [fn(left) for fn in left_key_fns]
    pad_left = kind in ("left", "full")
    left_idx: List[int] = []
    right_idx: List[int] = []
    matched_right = [False] * right.length
    if len(left_key_cols) == 1:
        probe_keys = ((_hash_key((v,)) for v in left_key_cols[0]))
    else:
        probe_keys = (
            _hash_key([col[i] for col in left_key_cols])
            for i in range(left.length)
        )
    for i, key in enumerate(probe_keys):
        hits = index.get(key) if key is not None else None
        if hits:
            for j in hits:
                matched_right[j] = True
                left_idx.append(i)
                right_idx.append(j)
        elif pad_left:
            left_idx.append(i)
            right_idx.append(-1)
    if kind in ("right", "full"):
        for j, was_matched in enumerate(matched_right):
            if not was_matched:
                left_idx.append(-1)
                right_idx.append(j)

    columns: Dict[str, List[Any]] = {}
    for out_name, side, source in plan:
        src_cols = left.columns if side == "left" else right.columns
        src_idx = left_idx if side == "left" else right_idx
        col = src_cols[source]
        columns[out_name] = [None if i < 0 else col[i] for i in src_idx]
    out = RowBlock(columns, len(left_idx))
    _observe_block(obs, "join", 2, 1, left.length + right.length, out.length)
    return out


def lookup_block(
    stream: RowBlock,
    reference: RowBlock,
    key_pairs: Sequence[Tuple[str, str]],
    returned: Sequence[str],
    on_failure: str,
    label: str = "",
    obs=None,
) -> RowBlock:
    """Key lookup enriching a stream from a reference (first reference
    match wins). Keys are *raw* Python tuples — exactly the row-path
    Lookup stage's dict semantics (``1`` and ``1.0`` collide, NULL
    matches NULL) — so both paths agree bit-for-bit. ``on_failure``:
    ``continue`` null-fills, ``drop`` discards, ``fail`` raises on the
    first unmatched stream row."""
    reference_key_cols = [reference.columns[r] for _s, r in key_pairs]
    index: Dict[tuple, int] = {}
    for i in range(reference.length):
        key = tuple(col[i] for col in reference_key_cols)
        if key not in index:
            index[key] = i
    stream_key_cols = [stream.columns[s] for s, _r in key_pairs]
    kept: List[int] = []
    hits: List[int] = []
    for i in range(stream.length):
        key = tuple(col[i] for col in stream_key_cols)
        j = index.get(key, -1)
        if j < 0:
            if on_failure == "drop":
                continue
            if on_failure == "fail":
                raise ExecutionError(f"Lookup {label!r} failed for key {key!r}")
        kept.append(i)
        hits.append(j)
    taken = stream.take(kept)
    columns = dict(taken.columns)
    for name in returned:
        col = reference.columns[name]
        columns[name] = [None if j < 0 else col[j] for j in hits]
    out = RowBlock(columns, taken.length)
    _observe_block(
        obs, "lookup", 2, 1, stream.length + reference.length, out.length
    )
    return out


# -- name resolution -----------------------------------------------------------


def relation_resolver(
    relation_name: Optional[str], columns: Iterable[str]
) -> Callable:
    """Column-reference resolver for the common case where the block's
    columns are both the anonymous row and the ``relation_name``-bound
    row (how :func:`repro.exec.kernels.row_binder` binds). Mirrors
    :meth:`repro.expr.evaluator.Environment.lookup`: qualified misses
    fall through to the dotted anonymous column (join outputs keep
    ``edge.column`` names), then to the plain name. Returns the column
    key, or ``None`` when the row path must resolve (and possibly raise
    its own unbound/ambiguous error)."""
    names = set(columns)

    def resolve(ref):
        name = ref.name
        qualifier = ref.qualifier
        if qualifier is None:
            return name if name in names else None
        if qualifier == relation_name and name in names:
            return name
        dotted = f"{qualifier}.{name}"
        if dotted in names:
            return dotted
        if name in names:
            return name
        return None

    return resolve


__all__ = [
    "BlockFn",
    "RowBlock",
    "filter_block",
    "project_block",
    "route_block",
    "switch_block",
    "group_aggregate_block",
    "dedup_block",
    "union_block",
    "sort_block",
    "hash_join_block",
    "lookup_block",
    "relation_resolver",
]
