"""Parallel kernel execution across workers (the fourth execution tier).

Two forms of parallelism, both strictly *deterministic* (see
``docs/execution-model.md``):

* **wavefront scheduling** — the engines group a job graph's stages /
  operators into topological waves (:func:`topological_waves`); every
  node in a wave has all of its inputs ready, so the wave's compute runs
  concurrently on a :class:`WorkerPool` while all bookkeeping (spans,
  metrics, statistics, checkpoints, output wiring) stays on the calling
  thread in topological order;
* **partitioned block kernels** — hash join and grouped aggregation
  split their :class:`~repro.exec.block.RowBlock` inputs into
  *contiguous* row chunks (the join broadcasts one shared build index;
  both use the same :func:`~repro.exec.kernels.key_encoder` encoding as
  the serial kernels), run one kernel task per chunk on workers, and
  concatenate the results in chunk order — which *is* the exact serial
  emission order.

Determinism rules the design:

* the partition count is a function of the **data size only** — never of
  the worker count — so ``--workers 2`` and ``--workers 8`` build
  identical partitions (:data:`PARALLEL_MIN_PARTITION_ROWS`);
* partitioned kernels restore the exact serial row order (probe order
  with left paddings inline, right paddings last; groups in global
  first-seen order with members in ascending row order), so outputs are
  bit-identical to the serial kernels — including float reduction order
  — and order-sensitive downstream operators (dedup ``retain=first``,
  stable sorts) see the same input;
* worker failure degrades to the serial path (counted as
  ``exec.degrade.parallel_to_serial``), never changing results.

Resolution follows the process-triad convention of :mod:`repro.exec`:
an explicit engine kwarg wins, then :func:`set_default_parallel` /
:func:`set_default_workers` (the CLI's ``--workers N``), then the
``REPRO_PARALLEL`` / ``REPRO_WORKERS`` environment variables.

Workers are threads by default (a process-wide pool per worker count);
tests inject any object with ``submit(fn)`` via
:func:`set_default_executor`.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import config
from repro.exec.kernels import key_encoder

#: the legacy hard-coded partitioned-kernel threshold, kept for
#: reference and back-compat imports; the *live* default now derives
#: from the cost model's crossover analysis
#: (:func:`repro.cost.model.derived_parallel_min_rows` — 8000 rows at
#: the shipped constants) and is tunable via ``set_parallel_threshold``
#: or ``REPRO_PARALLEL_MIN_ROWS``. The partition count derives from the
#: row count alone, so results are independent of the worker count.
PARALLEL_MIN_PARTITION_ROWS = 8192

#: hard cap on partitions per kernel call (diminishing returns beyond).
MAX_PARTITIONS = 8

#: workers used when ``REPRO_WORKERS`` and ``set_default_workers`` are
#: both unset: the machine's cores, clamped to [2, 8] so ``parallel=
#: True`` always means real fan-out even on single-core boxes.
DEFAULT_WORKERS = config.DEFAULT_WORKERS

_default_executor: Optional[Any] = None

_pool_lock = threading.Lock()
_shared_executors: Dict[int, Any] = {}

#: set while a thread is executing a pool task, so nested batches (a
#: partitioned kernel inside a wavefront compute task) run inline
#: instead of starving the shared executor — see ``WorkerPool``.
_in_worker = threading.local()


def _flagged(task: Callable[[], Any]) -> Callable[[], Any]:
    def run():
        _in_worker.active = True
        try:
            return task()
        finally:
            _in_worker.active = False

    return run


class WorkerUnavailable(RuntimeError):
    """The worker pool could not run a task (executor rejected or broke
    down). Engines treat this as "degrade to serial", never as a task
    failure."""


# -- the resolution triads ----------------------------------------------------


def default_parallel() -> bool:
    """The process-wide parallel default: a :func:`set_default_parallel`
    override wins, else the ``REPRO_PARALLEL`` environment variable (any
    non-false value enables), else False."""
    return config.PARALLEL.default()


def set_default_parallel(value: Optional[bool]) -> None:
    """Override the process-wide parallel default (None restores the
    environment-variable/False resolution)."""
    config.PARALLEL.set(value)


def resolve_parallel(value: Optional[bool]) -> bool:
    """Resolve an engine constructor's ``parallel`` argument: an explicit
    True/False wins, None means the process default."""
    return default_parallel() if value is None else bool(value)


def default_workers() -> int:
    """The process-wide worker count: a :func:`set_default_workers`
    override wins, else ``REPRO_WORKERS``, else :data:`DEFAULT_WORKERS`.
    An integer ``REPRO_PARALLEL`` value > 1 also sets the count (so
    ``REPRO_PARALLEL=4`` both enables parallelism and sizes the pool)."""
    return config.WORKERS.default()


def set_default_workers(value: Optional[int]) -> None:
    """Override the process-wide worker count (None restores the
    environment-variable/:data:`DEFAULT_WORKERS` resolution)."""
    config.WORKERS.set(value)


def resolve_workers(value: Optional[int]) -> int:
    """Resolve an engine constructor's ``workers`` argument: an explicit
    count wins, None means the process default."""
    return config.WORKERS.resolve(value)


def parallel_threshold() -> int:
    """Rows below which partitioned kernels stay serial: a
    :func:`set_parallel_threshold` override wins, else
    ``REPRO_PARALLEL_MIN_ROWS``, else the cost model's derived
    crossover (:func:`repro.cost.model.derived_parallel_min_rows` —
    the point where the block work a partition removes from the
    critical path outweighs its dispatch overhead)."""
    return config.PARALLEL_MIN_ROWS.default()


def set_parallel_threshold(value: Optional[int]) -> None:
    """Override the partitioned-kernel row threshold (None restores the
    environment-variable/derived resolution). Mostly a test hook — it
    lets small inputs exercise the partitioned kernels."""
    config.PARALLEL_MIN_ROWS.set(value)


def partitions_for(n_rows: int) -> int:
    """The degree of parallelism for a kernel over ``n_rows`` input rows:
    0 below the threshold (stay serial), otherwise one partition per
    threshold-of-rows, capped at :data:`MAX_PARTITIONS`. Depends on the
    observed cardinality only — *never* on the worker count — so every
    worker count computes identical partitions."""
    threshold = parallel_threshold()
    if n_rows < threshold:
        return 0
    return max(2, min(MAX_PARTITIONS, n_rows // threshold))


# -- the worker pool ----------------------------------------------------------


def set_default_executor(executor: Optional[Any]) -> None:
    """Inject an executor for every :class:`WorkerPool` built without an
    explicit one — anything with ``submit(fn) -> future`` (test hook:
    inline executors, broken executors). ``None`` restores the shared
    thread pools."""
    global _default_executor
    _default_executor = executor


def _shared_executor(workers: int):
    """One lazily-built process-wide thread pool per worker count, so
    per-run engines do not churn threads."""
    from concurrent.futures import ThreadPoolExecutor

    with _pool_lock:
        executor = _shared_executors.get(workers)
        if executor is None:
            executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-exec-{workers}"
            )
            _shared_executors[workers] = executor
        return executor


class WorkerPool:
    """A deterministic fan-out helper over an executor.

    ``run_all(tasks)`` submits every 0-arg task and returns, in task
    order, one ``(error, result)`` pair per task — a failed submit
    surfaces as a :class:`WorkerUnavailable` entry, a task exception as
    itself. Nothing is raised from ``run_all``, so callers choose the
    policy: the partitioned kernels raise the first error (their caller
    degrades to the serial kernel), the engine wavefronts recompute
    :class:`WorkerUnavailable` entries inline and re-raise genuine task
    errors exactly as the serial loop would.

    Nested batches run **inline**: a task that itself calls a
    ``WorkerPool`` (a wavefront compute task running a partitioned
    kernel) executes that inner batch sequentially on its own worker
    thread. Without this, a wave filling every worker with compute tasks
    that then block on queued kernel chunks starves the shared executor
    into deadlock. Inline execution is result-identical — the chunks and
    their merge order never depend on where they run."""

    __slots__ = ("workers", "_executor")

    def __init__(self, workers: Optional[int] = None, executor: Optional[Any] = None):
        self.workers = resolve_workers(workers)
        self._executor = executor

    def _resolve_executor(self):
        if self._executor is not None:
            return self._executor
        if _default_executor is not None:
            return _default_executor
        return _shared_executor(self.workers)

    @staticmethod
    def _run_inline(
        tasks: Sequence[Callable[[], Any]]
    ) -> List[Tuple[Optional[BaseException], Any]]:
        entries: List[Tuple[Optional[BaseException], Any]] = []
        for task in tasks:
            try:
                entries.append((None, task()))
            except Exception as exc:  # noqa: BLE001 — caller decides
                entries.append((exc, None))
        return entries

    def run_all(
        self, tasks: Sequence[Callable[[], Any]]
    ) -> List[Tuple[Optional[BaseException], Any]]:
        if len(tasks) == 1 or getattr(_in_worker, "active", False):
            # no fan-out for a single task or from inside a worker
            # thread (nested batches would starve the shared executor)
            return self._run_inline(tasks)
        try:
            executor = self._resolve_executor()
        except (RuntimeError, OSError) as exc:
            # pool construction can only fail on resource grounds; a
            # TypeError here would be a harness bug and must surface
            return [(WorkerUnavailable(str(exc)), None)] * len(tasks)
        futures: List[Tuple[Optional[Any], Optional[BaseException]]] = []
        for task in tasks:
            try:
                futures.append((executor.submit(_flagged(task)), None))
            except (RuntimeError, OSError) as exc:  # pool broke down
                futures.append((None, WorkerUnavailable(str(exc))))
        entries: List[Tuple[Optional[BaseException], Any]] = []
        for future, submit_error in futures:
            if future is None:
                entries.append((submit_error, None))
                continue
            try:
                entries.append((None, future.result()))
            except Exception as exc:  # noqa: BLE001 — caller decides
                entries.append((exc, None))
        return entries

    def run(self, tasks: Sequence[Callable[[], Any]]) -> List[Any]:
        """``run_all`` raising the first error (in task order)."""
        entries = self.run_all(tasks)
        for error, _result in entries:
            if error is not None:
                raise error
        return [result for _error, result in entries]

    def __repr__(self) -> str:
        return f"WorkerPool(workers={self.workers})"


# -- wavefront scheduling -----------------------------------------------------


def topological_waves(
    order: Sequence[Any],
    key: Callable[[Any], Any],
    parents: Callable[[Any], Iterable[Any]],
) -> List[List[Any]]:
    """Group topologically-ordered nodes into level-synchronous waves.

    ``key(node)`` is the node's identity, ``parents(node)`` yields the
    identities it depends on. A node's wave is one past its deepest
    parent, so every node in a wave has all inputs available once the
    previous waves completed — the members of one wave are mutually
    independent and may run concurrently. Within a wave, the input order
    (topological) is preserved, which is what keeps wavefront bookkeeping
    byte-identical to the serial loop."""
    level: Dict[Any, int] = {}
    waves: List[List[Any]] = []
    for node in order:
        depth = 0
        for parent in parents(node):
            parent_level = level.get(parent)
            if parent_level is not None and parent_level + 1 > depth:
                depth = parent_level + 1
        level[key(node)] = depth
        while len(waves) <= depth:
            waves.append([])
        waves[depth].append(node)
    return waves


def max_wavefront(waves: Sequence[Sequence[Any]]) -> int:
    """The widest wave — the graph's available stage-level parallelism."""
    return max((len(wave) for wave in waves), default=0)


# -- observability ------------------------------------------------------------


def _count(obs, name: str, n: int = 1) -> None:
    if obs is not None and obs.enabled:
        obs.metrics.count(name, n)


def _faulted_partition(task: Callable[[], Any]) -> Callable[[], Any]:
    """Route a partition task through the process-wide kernel fault hook
    (tier ``"parallel"``), so :mod:`repro.faults` can kill chosen
    partitions and exercise the degradation path."""
    from repro.exec import kernel_fault_hook

    hook = kernel_fault_hook()
    if hook is None:
        return task
    return hook("parallel", "partition", task)


# -- partitioned hash join ----------------------------------------------------


def _chunk_bounds(length: int, n_partitions: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` probe ranges. Boundaries depend on the
    data size and partition count alone — :func:`partitions_for` already
    ties the count to the data size, so the chunking (and with it every
    fault-injection schedule) is invariant under the worker count."""
    bounds = [length * k // n_partitions for k in range(n_partitions + 1)]
    return [(bounds[k], bounds[k + 1]) for k in range(n_partitions)]


def _build_join_index(
    key_cols: Sequence[List[Any]], length: int
) -> Tuple[Optional[Dict[Any, int]], Optional[Dict[Any, List[int]]]]:
    """Build-side hash index over encoded keys, NULLs excluded (a join
    key with a NULL component never matches). Returns ``(unique, None)``
    — a scalar key→row dict — when every build key is distinct, else
    ``(None, multi)`` mapping each key to its ascending row list
    (exactly the serial build order)."""
    unique: Dict[Any, int] = {}
    duplicates = False
    if len(key_cols) == 1:
        encode = key_encoder()
        col = key_cols[0]
        for j in range(length):
            value = col[j]
            if value is None:
                continue
            key = encode(value)
            if key in unique:
                duplicates = True
                break
            unique[key] = j
    else:
        encoders = [key_encoder() for _ in key_cols]
        for j in range(length):
            components = []
            for encode, col in zip(encoders, key_cols):
                value = col[j]
                if value is None:
                    components = None
                    break
                components.append(encode(value))
            if components is None:
                continue
            key = tuple(components)
            if key in unique:
                duplicates = True
                break
            unique[key] = j
    if not duplicates:
        return unique, None
    multi: Dict[Any, List[int]] = {}
    if len(key_cols) == 1:
        encode = key_encoder()
        for j, value in enumerate(key_cols[0]):
            if value is not None:
                multi.setdefault(encode(value), []).append(j)
    else:
        encoders = [key_encoder() for _ in key_cols]
        for j in range(length):
            components = []
            for encode, col in zip(encoders, key_cols):
                value = col[j]
                if value is None:
                    components = None
                    break
                components.append(encode(value))
            if components is not None:
                multi.setdefault(tuple(components), []).append(j)
    return None, multi


def partitioned_join(
    left,
    right,
    left_key_cols: Sequence[List[Any]],
    right_key_cols: Sequence[List[Any]],
    kind: str,
    plan: Sequence[Tuple[str, str, str]],
    pool: WorkerPool,
    n_partitions: int,
    obs=None,
):
    """Broadcast-build hash join with a chunk-partitioned probe; exact
    serial emission order.

    The build side is indexed once on the calling thread (NULL keys
    excluded, so the in-band NULL probe encoding simply misses); probe
    partitions are *contiguous* row ranges, so concatenating their
    results in chunk order reproduces the serial kernel's probe-order
    output with left paddings inline and right paddings last. With
    distinct build keys each chunk scatters at most one match per left
    row into a shared ``match_of`` array (disjoint slices — no
    collisions) via a single C-speed list comprehension; duplicate build
    keys fall back to per-chunk index-pair lists. Raises on any
    partition failure; the caller degrades to the serial kernel.
    Returns a :class:`~repro.exec.block.RowBlock`."""
    from repro.exec.block import RowBlock

    n_left = left.length
    n_right = right.length
    build, multi_build = _build_join_index(right_key_cols, n_right)
    chunks = _chunk_bounds(n_left, n_partitions)
    pad_left = kind in ("left", "full")

    # -1 = no match for this left row (pad under left/full, drop otherwise)
    match_of: List[int] = [-1] * n_left
    single_key = len(left_key_cols) == 1

    # one memoizing encoder per kernel call, shared by every chunk: a
    # distinct key value is encoded once per call, not once per chunk.
    # Concurrent memo writes are benign — both threads store the same
    # encoding, and dict operations are atomic under the GIL.
    shared_encode = key_encoder() if single_key else None
    shared_encoders = (
        None if single_key else [key_encoder() for _ in left_key_cols]
    )

    if multi_build is None:

        def probe_chunk(lo: int, hi: int) -> None:
            get = build.get
            if single_key:
                encode = shared_encode
                match_of[lo:hi] = [
                    get(encode(value), -1)
                    for value in left_key_cols[0][lo:hi]
                ]
            else:
                encoders = shared_encoders
                cols = left_key_cols
                match_of[lo:hi] = [
                    get(
                        tuple(e(c[i]) for e, c in zip(encoders, cols)), -1
                    )
                    for i in range(lo, hi)
                ]

    else:

        def probe_chunk(lo: int, hi: int) -> Tuple[List[int], List[int]]:
            get = multi_build.get
            li: List[int] = []
            ri: List[int] = []
            if single_key:
                encode = shared_encode
                col = left_key_cols[0]
                keys = (encode(v) for v in col[lo:hi])
            else:
                encoders = shared_encoders
                cols = left_key_cols
                keys = (
                    tuple(e(c[i]) for e, c in zip(encoders, cols))
                    for i in range(lo, hi)
                )
            for i, key in enumerate(keys, lo):
                hits = get(key)
                if hits is not None:
                    for j in hits:
                        li.append(i)
                        ri.append(j)
                elif pad_left:
                    li.append(i)
                    ri.append(-1)
            return li, ri

    tasks = [
        _faulted_partition(lambda lo=lo, hi=hi: probe_chunk(lo, hi))
        for lo, hi in chunks
    ]
    chunk_results = pool.run(tasks)

    left_pads = False
    if multi_build is None:
        if pad_left:
            left_idx = list(range(n_left))
            right_idx = match_of
            left_pads = any(j < 0 for j in right_idx)
        else:
            left_idx = [i for i, j in enumerate(match_of) if j >= 0]
            right_idx = [j for j in match_of if j >= 0]
    else:
        left_idx = []
        right_idx = []
        for li, ri in chunk_results:
            left_idx.extend(li)
            right_idx.extend(ri)
        left_pads = pad_left and any(j < 0 for j in right_idx)
    right_pads = False
    if kind in ("right", "full"):
        matched = [False] * n_right
        for j in right_idx:
            if j >= 0:
                matched[j] = True
        unmatched = [j for j in range(n_right) if not matched[j]]
        if unmatched:
            if right_idx is match_of:
                right_idx = list(right_idx)
            left_idx.extend([-1] * len(unmatched))
            right_idx.extend(unmatched)
            right_pads = True
    # a right join pads the LEFT side's columns; a left join the right's
    left_has_null = right_pads
    right_has_null = left_pads

    columns: Dict[str, List[Any]] = {}
    for out_name, side, source in plan:
        if side == "left":
            col = left.columns[source]
            idx = left_idx
            has_null = left_has_null
        else:
            col = right.columns[source]
            idx = right_idx
            has_null = right_has_null
        if has_null:
            columns[out_name] = [None if i < 0 else col[i] for i in idx]
        else:
            columns[out_name] = [col[i] for i in idx]
    _count(obs, "exec.parallel.join.partitions", n_partitions)
    _count(obs, "exec.parallel.join.rows_in", n_left + n_right)
    _count(obs, "exec.parallel.join.rows_out", len(left_idx))
    return RowBlock(columns, len(left_idx))


# -- partitioned grouped aggregation ------------------------------------------


def partitioned_group_aggregate(
    block,
    key_names: Sequence[str],
    aggregates: Sequence[Tuple[str, Optional[Callable], Optional[Callable]]],
    pool: WorkerPool,
    n_partitions: int,
    obs=None,
):
    """Chunk-partitioned grouped aggregation; exact serial order.

    Phase 1 groups *contiguous* row chunks independently; merging the
    per-chunk group maps in chunk order restores both invariants of the
    serial kernel for free — the global first-seen group order (a chunk's
    new keys append after every earlier chunk's) and ascending member
    lists (list ``extend`` in chunk order). Phase 2 reduces contiguous
    *group* ranges in parallel: every aggregate argument is evaluated
    once over the whole block (exactly like the serial kernel) and each
    reducer folds its group's members in ascending row order, so float
    reductions are bit-identical to serial. Raises on any partition
    failure; the caller degrades to the serial kernel. Unlike the join,
    NULL keys are real groups (SQL GROUP BY), so the encoding keeps
    them in-band."""
    from repro.exec.block import RowBlock

    length = block.length
    key_cols = [block.columns[k] for k in key_names]
    single_key = len(key_cols) == 1
    chunks = _chunk_bounds(length, n_partitions)

    # shared memoizing encoders (see partitioned_join: one encoding per
    # distinct value per call; concurrent memo writes are benign)
    shared_encode = key_encoder() if single_key else None
    shared_encoders = (
        None if single_key else [key_encoder() for _ in key_cols]
    )

    def group_chunk(lo: int, hi: int) -> Tuple[Dict[Any, List[int]], List[Any]]:
        groups: Dict[Any, List[int]] = {}
        order: List[Any] = []
        if single_key:
            encode = shared_encode
            col = key_cols[0]
            for i in range(lo, hi):
                key = encode(col[i])
                members = groups.get(key)
                if members is None:
                    groups[key] = [i]
                    order.append(key)
                else:
                    members.append(i)
        else:
            encoders = shared_encoders
            for i in range(lo, hi):
                key = tuple(
                    encode(col[i]) for encode, col in zip(encoders, key_cols)
                )
                members = groups.get(key)
                if members is None:
                    groups[key] = [i]
                    order.append(key)
                else:
                    members.append(i)
        return groups, order

    tasks = [
        _faulted_partition(lambda lo=lo, hi=hi: group_chunk(lo, hi))
        for lo, hi in chunks
    ]
    groups: Dict[Any, List[int]] = {}
    order: List[Any] = []
    for chunk_groups, chunk_order in pool.run(tasks):
        for key in chunk_order:
            members = groups.get(key)
            if members is None:
                groups[key] = chunk_groups[key]
                order.append(key)
            else:
                members.extend(chunk_groups[key])
    group_lists = [groups[key] for key in order]
    n_groups = len(group_lists)

    # aggregate argument columns: one whole-block evaluation per
    # aggregate, shared read-only by every reduction chunk
    value_cols: List[Optional[List[Any]]] = []
    for _name, values_fn, _reducer in aggregates:
        value_cols.append(None if values_fn is None else values_fn(block))

    def reduce_chunk(lo: int, hi: int) -> List[List[Any]]:
        out: List[List[Any]] = []
        for (_name, values_fn, reducer), values in zip(
            aggregates, value_cols
        ):
            if values_fn is None and reducer is None:
                out.append([len(m) for m in group_lists[lo:hi]])
            else:
                out.append(
                    [
                        reducer([values[i] for i in members])
                        for members in group_lists[lo:hi]
                    ]
                )
        return out

    reduce_tasks = [
        _faulted_partition(lambda lo=lo, hi=hi: reduce_chunk(lo, hi))
        for lo, hi in _chunk_bounds(n_groups, n_partitions)
    ]
    agg_cols: List[List[Any]] = [[] for _ in aggregates]
    for chunk_cols in pool.run(reduce_tasks):
        for acc, piece in zip(agg_cols, chunk_cols):
            acc.extend(piece)

    columns: Dict[str, List[Any]] = {}
    for name, col in zip(key_names, key_cols):
        columns[name] = [col[members[0]] for members in group_lists]
    for (name, _values_fn, _reducer), values in zip(aggregates, agg_cols):
        columns[name] = values
    _count(obs, "exec.parallel.group.partitions", n_partitions)
    _count(obs, "exec.parallel.group.rows_in", length)
    _count(obs, "exec.parallel.group.rows_out", n_groups)
    return RowBlock(columns, n_groups)


__all__ = [
    "DEFAULT_WORKERS",
    "MAX_PARTITIONS",
    "PARALLEL_MIN_PARTITION_ROWS",
    "WorkerPool",
    "WorkerUnavailable",
    "default_parallel",
    "default_workers",
    "max_wavefront",
    "parallel_threshold",
    "partitioned_group_aggregate",
    "partitioned_join",
    "partitions_for",
    "resolve_parallel",
    "resolve_workers",
    "set_default_executor",
    "set_default_parallel",
    "set_default_workers",
    "set_parallel_threshold",
    "topological_waves",
]
