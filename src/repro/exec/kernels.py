"""Batch execution kernels shared by every runtime.

The paper's central claim is that mappings, ETL jobs, and deployments
are views of one abstract operator model; this module mirrors that
unification at the *execution* layer. Each kernel implements the row
semantics of one operator family (filter, project/derive, hash join,
grouped aggregate, union/funnel, routing/switch, nest/unnest, dedup,
sort) exactly once, over lists of row-dicts (or, for the mapping
executor, :class:`~repro.expr.evaluator.Environment` members), so the
OHM engine, the ETL stages, and the mapping executor all exercise the
same code — and the three-way translation-verification tests check one
shared semantics rather than three.

Kernels are strategy-agnostic: they take already-built per-member
functions (predicates, derivations, aggregates), typically produced by
an :class:`~repro.exec.ExpressionPlanner`, which either compiles
expressions (:mod:`repro.exec.compile_expr`) or falls back to the
interpreting oracle when ``compiled=False``.

Passing an :class:`~repro.obs.Observability` records per-kernel row
counts (``exec.kernel.<name>.rows_in`` / ``.rows_out``) into the shared
metrics registry.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ExecutionError
from repro.expr.algebra import split_conjuncts
from repro.expr.ast import BinaryOp, ColumnRef, Expr
from repro.expr.evaluator import Environment
from repro.schema.model import Relation
from repro.supervision.memory import active_memory_budget

#: Per-member value function (over an Environment or a bare row).
ValueFn = Callable[[Any], Any]
#: Per-member predicate (already reduced to a bool at the boundary).
PredicateFn = Callable[[Any], bool]
#: Optional item → environment adapter given to row-oriented kernels.
BindFn = Optional[Callable[[Any], Any]]
#: Optional per-item error absorber ``(index, item, exc) -> None`` from
#: an active skip/reject error policy (repro.resilience.ErrorContext).
OnErrorFn = Optional[Callable[[int, Any, BaseException], None]]


def _observe(obs, kernel: str, rows_in: int, rows_out: int) -> None:
    if obs is not None and obs.enabled:
        obs.metrics.count(f"exec.kernel.{kernel}.rows_in", rows_in)
        obs.metrics.count(f"exec.kernel.{kernel}.rows_out", rows_out)


_NULL_KEY = ("null",)


def group_key_value(value: object) -> Tuple:
    """Hashable group/dedup-key encoding where NULLs compare equal and
    ``1 == 1.0`` (SQL GROUP BY behaviour). The single definition every
    runtime shares."""
    if value is None:
        return _NULL_KEY
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("num", float(value))
    return (type(value).__name__, str(value))


def key_encoder() -> Callable[[object], Tuple]:
    """A memoizing :func:`group_key_value` for one grouping pass.

    Grouped workloads see the same key values over and over (profiling
    shows the per-row tuple construction dominating small-group
    aggregations), so the encoding is cached per *class* then per value
    — the class level keeps ``1`` / ``1.0`` / ``True`` from colliding as
    dict keys while still encoding ``1 == 1.0``. Unhashable values fall
    back to the uncached encoding."""
    memos: Dict[type, dict] = {}

    def encode(value, _memos=memos, _encode=group_key_value):
        if value is None:
            return _NULL_KEY
        cache = _memos.get(value.__class__)
        if cache is None:
            cache = _memos[value.__class__] = {}
        try:
            return cache[value]
        except KeyError:
            cache[value] = key = _encode(value)
            return key
        except TypeError:  # unhashable value
            return _encode(value)

    return encode


def row_binder(relation_name: Optional[str]) -> Callable[[dict], Environment]:
    """A reusable row → :class:`Environment` adapter binding each row
    anonymously and (when given) under its relation/link name. The same
    environment object is rebound per row, so kernels pay two dict
    stores per row instead of an allocation."""
    env = Environment()
    bindings = env.bindings
    if relation_name is None:

        def bind(row):
            bindings[None] = row
            return env

    else:

        def bind(row):
            bindings[None] = row
            bindings[relation_name] = row
            return env

    return bind


# -- row-wise kernels ----------------------------------------------------------


def filter_rows(
    items: Sequence,
    predicate: PredicateFn,
    bind: BindFn = None,
    obs=None,
    on_error: OnErrorFn = None,
) -> List:
    """Keep the items whose predicate holds (SQL WHERE: unknown drops).
    Returns the original items, not copies.

    ``on_error(index, item, exc)`` — supplied by an active skip/reject
    error policy — absorbs a per-item evaluation error; the item then
    reaches no output. Without it the unguarded fast path runs and any
    error propagates."""
    if on_error is not None:
        kept = []
        for index, item in enumerate(items):
            try:
                if predicate(bind(item) if bind is not None else item):
                    kept.append(item)
            except Exception as exc:
                on_error(index, item, exc)
    elif bind is None:
        kept = [item for item in items if predicate(item)]
    else:
        kept = [item for item in items if predicate(bind(item))]
    _observe(obs, "filter", len(items), len(kept))
    return kept


def project_rows(
    items: Sequence,
    derivations: Sequence[Tuple[str, ValueFn]],
    bind: BindFn = None,
    defaults: Optional[dict] = None,
    obs=None,
    on_error: OnErrorFn = None,
) -> List[dict]:
    """Build one output row per item from ``(name, fn)`` derivations.
    ``defaults`` pre-populates each output row (e.g. NULL-filled
    underived target columns) before the derivations apply.
    ``on_error(index, item, exc)`` absorbs a failing item (no output row
    is produced for it); see :func:`filter_rows`."""
    out: List[dict] = []
    if on_error is not None:
        for index, item in enumerate(items):
            env = bind(item) if bind is not None else item
            try:
                row = dict(defaults) if defaults else {}
                for name, fn in derivations:
                    row[name] = fn(env)
            except Exception as exc:
                on_error(index, item, exc)
                continue
            out.append(row)
        _observe(obs, "project", len(items), len(out))
        return out
    if defaults:
        for item in items:
            env = bind(item) if bind is not None else item
            row = dict(defaults)
            for name, fn in derivations:
                row[name] = fn(env)
            out.append(row)
    else:
        for item in items:
            env = bind(item) if bind is not None else item
            out.append({name: fn(env) for name, fn in derivations})
    _observe(obs, "project", len(items), len(out))
    return out


def route_rows(
    items: Sequence,
    specs: Sequence[Tuple[str, Optional[PredicateFn]]],
    bind: BindFn = None,
    only_once: bool = False,
    obs=None,
    on_error: OnErrorFn = None,
) -> List[List]:
    """Route each item to zero or more outputs.

    ``specs`` holds one ``(kind, predicate)`` pair per output:

    * ``"always"`` — receives every item (an unconstrained Transformer
      output); does not count as a match;
    * ``"pred"`` — receives items whose predicate holds; with
      ``only_once`` an item stops being considered once matched
      (DataStage Filter row-only-once mode);
    * ``"fallback"`` — receives items no ``"pred"`` output accepted
      (reject / otherwise links); never fires when there are no
      ``"pred"`` outputs at all.

    ``on_error(index, item, exc)`` absorbs a per-item predicate error;
    placements are buffered per item, so a failing item reaches *no*
    output (not even the ones whose predicates already held)."""
    outputs: List[List] = [[] for _ in specs]
    has_predicates = any(kind == "pred" for kind, _ in specs)
    fallbacks = [i for i, (kind, _) in enumerate(specs) if kind == "fallback"]
    if on_error is not None:
        for index, item in enumerate(items):
            env = bind(item) if bind is not None else item
            placed: List[int] = []
            matched = False
            try:
                for i, (kind, predicate) in enumerate(specs):
                    if kind == "always":
                        placed.append(i)
                    elif kind == "pred":
                        if matched and only_once:
                            continue
                        if predicate(env):
                            matched = True
                            placed.append(i)
                if has_predicates and not matched:
                    placed.extend(fallbacks)
            except Exception as exc:
                on_error(index, item, exc)
                continue
            for i in placed:
                outputs[i].append(item)
        _observe(obs, "route", len(items), sum(len(o) for o in outputs))
        return outputs
    for item in items:
        env = bind(item) if bind is not None else item
        matched = False
        for i, (kind, predicate) in enumerate(specs):
            if kind == "always":
                outputs[i].append(item)
            elif kind == "pred":
                if matched and only_once:
                    continue
                if predicate(env):
                    matched = True
                    outputs[i].append(item)
        if has_predicates and not matched:
            for i in fallbacks:
                outputs[i].append(item)
    _observe(obs, "route", len(items), sum(len(o) for o in outputs))
    return outputs


def switch_rows(
    items: Sequence,
    selector: ValueFn,
    cases: Sequence,
    has_default: bool,
    bind: BindFn = None,
    obs=None,
    on_error: OnErrorFn = None,
) -> List[List]:
    """Route each item to exactly one output by selector value: the
    first matching case wins; unmatched items go to the trailing default
    output when configured, else nowhere. ``on_error(index, item, exc)``
    absorbs a selector error (the item reaches no output)."""
    n_outputs = len(cases) + (1 if has_default else 0)
    outputs: List[List] = [[] for _ in range(n_outputs)]
    if on_error is not None:
        for index, item in enumerate(items):
            try:
                value = selector(bind(item) if bind is not None else item)
            except Exception as exc:
                on_error(index, item, exc)
                continue
            for i, case in enumerate(cases):
                if value == case:
                    outputs[i].append(item)
                    break
            else:
                if has_default:
                    outputs[-1].append(item)
        _observe(obs, "switch", len(items), sum(len(o) for o in outputs))
        return outputs
    for item in items:
        value = selector(bind(item) if bind is not None else item)
        for i, case in enumerate(cases):
            if value == case:
                outputs[i].append(item)
                break
        else:
            if has_default:
                outputs[-1].append(item)
    _observe(obs, "switch", len(items), sum(len(o) for o in outputs))
    return outputs


# -- grouping kernels ----------------------------------------------------------


def group_rows(
    items: Sequence,
    key_fns: Sequence[ValueFn],
    bind: BindFn = None,
    obs=None,
    on_error: OnErrorFn = None,
) -> List[List]:
    """Partition items into groups by the encoded key-function values
    (NULL keys compare equal); groups come back in first-seen order.
    ``on_error(index, item, exc)`` absorbs a key evaluation error (the
    item joins no group)."""
    budget = active_memory_budget()
    if budget is not None and budget.exceeded(len(items)):
        from repro.supervision.spill import external_group_rows

        encoders = [key_encoder() for _ in key_fns]
        keyed: List[Tuple[int, tuple]] = []
        for index, item in enumerate(items):
            env = bind(item) if bind is not None else item
            if on_error is not None:
                try:
                    key = tuple(
                        encode(fn(env))
                        for encode, fn in zip(encoders, key_fns)
                    )
                except Exception as exc:
                    on_error(index, item, exc)
                    continue
            else:
                key = tuple(
                    encode(fn(env)) for encode, fn in zip(encoders, key_fns)
                )
            keyed.append((index, key))
        result = external_group_rows(items, keyed, budget, obs)
        _observe(obs, "group", len(items), len(result))
        return result
    groups: Dict[tuple, List] = {}
    order: List[tuple] = []
    encoders = [key_encoder() for _ in key_fns]
    for index, item in enumerate(items):
        env = bind(item) if bind is not None else item
        if on_error is not None:
            try:
                key = tuple(
                    encode(fn(env)) for encode, fn in zip(encoders, key_fns)
                )
            except Exception as exc:
                on_error(index, item, exc)
                continue
        else:
            key = tuple(
                encode(fn(env)) for encode, fn in zip(encoders, key_fns)
            )
        members = groups.get(key)
        if members is None:
            groups[key] = members = []
            order.append(key)
        members.append(item)
    result = [groups[key] for key in order]
    _observe(obs, "group", len(items), len(result))
    return result


def group_aggregate_rows(
    rows: Sequence[dict],
    key_names: Sequence[str],
    aggregates: Sequence[Tuple[str, Callable[[list], Any]]],
    obs=None,
) -> List[dict]:
    """Group rows by key columns and emit one row per group: the key
    values followed by each ``(name, aggregate_fn)`` over the members."""
    budget = active_memory_budget()
    if budget is not None and budget.exceeded(len(rows)):
        from repro.supervision.spill import external_group_aggregate_rows

        out = external_group_aggregate_rows(
            rows, key_names, aggregates, budget, obs
        )
        _observe(obs, "group_aggregate", len(rows), len(out))
        return out
    groups: Dict[tuple, List[dict]] = {}
    order: List[tuple] = []
    if len(key_names) == 1:
        # single-key fast path: no per-row tuple-of-generator build
        encode = key_encoder()
        k0 = key_names[0]
        for row in rows:
            key = encode(row[k0])
            members = groups.get(key)
            if members is None:
                groups[key] = members = []
                order.append(key)
            members.append(row)
    else:
        encoders = [key_encoder() for _ in key_names]
        for row in rows:
            key = tuple(
                encode(row[k]) for encode, k in zip(encoders, key_names)
            )
            members = groups.get(key)
            if members is None:
                groups[key] = members = []
                order.append(key)
            members.append(row)
    out: List[dict] = []
    for key in order:
        members = groups[key]
        out_row = {k: members[0][k] for k in key_names}
        for name, aggregate in aggregates:
            out_row[name] = aggregate(members)
        out.append(out_row)
    _observe(obs, "group_aggregate", len(rows), len(out))
    return out


def dedup_rows(
    rows: Sequence[dict],
    key_names: Sequence[str],
    retain: str = "first",
    obs=None,
) -> List[dict]:
    """Keep one row per key — the first or last occurrence — preserving
    first-seen key order. Returns copies."""
    chosen: Dict[tuple, dict] = {}
    order: List[tuple] = []
    keep_last = retain == "last"
    encoders = [key_encoder() for _ in key_names]
    for row in rows:
        key = tuple(encode(row[k]) for encode, k in zip(encoders, key_names))
        if key not in chosen:
            order.append(key)
            chosen[key] = row
        elif keep_last:
            chosen[key] = row
    out = [dict(chosen[key]) for key in order]
    _observe(obs, "dedup", len(rows), len(out))
    return out


def nest_rows(
    rows: Sequence[dict],
    key_names: Sequence[str],
    nested: Sequence[str],
    into: str,
    obs=None,
) -> List[dict]:
    """NF² NEST: group by key columns and pack the ``nested`` columns of
    each group into a set-valued ``into`` column."""
    groups: Dict[tuple, List[dict]] = {}
    order: List[tuple] = []
    for row in rows:
        key = tuple(group_key_value(row[k]) for k in key_names)
        members = groups.get(key)
        if members is None:
            groups[key] = members = []
            order.append(key)
        members.append(row)
    out: List[dict] = []
    for key in order:
        members = groups[key]
        out_row = {k: members[0][k] for k in key_names}
        out_row[into] = [{c: member[c] for c in nested} for member in members]
        out.append(out_row)
    _observe(obs, "nest", len(rows), len(out))
    return out


def unnest_rows(
    rows: Sequence[dict],
    attr: str,
    scalar_names: Sequence[str],
    obs=None,
) -> List[dict]:
    """NF² UNNEST: flatten the set-valued ``attr`` column into rows;
    empty (or NULL) sets produce no output rows."""
    out: List[dict] = []
    for row in rows:
        for element in row.get(attr) or ():
            out_row = {n: row[n] for n in scalar_names}
            out_row.update(element)
            out.append(out_row)
    _observe(obs, "unnest", len(rows), len(out))
    return out


# -- set kernels ---------------------------------------------------------------


def union_rows(
    inputs: Sequence[Sequence[dict]],
    names: Sequence[str],
    distinct: bool = False,
    obs=None,
) -> List[dict]:
    """Bag union of union-compatible inputs, projected to ``names``;
    ``distinct`` keeps the first occurrence of each row (NULLs equal)."""
    rows: List[dict] = []
    for data in inputs:
        rows.extend({n: row[n] for n in names} for row in data)
    total_in = len(rows)
    if distinct:
        deduped: List[dict] = []
        seen = set()
        encoders = [key_encoder() for _ in names]
        for row in rows:
            key = tuple(encode(row[n]) for encode, n in zip(encoders, names))
            if key not in seen:
                seen.add(key)
                deduped.append(row)
        rows = deduped
    _observe(obs, "union", total_in, len(rows))
    return rows


# -- sorting -------------------------------------------------------------------


def _sort_value(value, descending: bool):
    # NULLS LAST in *both* directions: the sort applies `reverse=True`
    # for descending keys, so NULL needs the low sentinel there and the
    # high sentinel ascending to always land at the end
    if value is None:
        return (0, "", "") if descending else (2, "", "")
    if isinstance(value, bool):
        return (1, "bool", value)
    if isinstance(value, (int, float)):
        return (1, "num", float(value))
    return (1, type(value).__name__, str(value))


def sort_rows(
    rows: Sequence[dict],
    keys: Sequence[Tuple[str, str]],
    obs=None,
) -> List[dict]:
    """Stable multi-key sort (``(column, 'asc'|'desc')`` pairs); NULLs
    sort last in both directions. Returns copies."""
    budget = active_memory_budget()
    if budget is not None and budget.exceeded(len(rows)):
        from repro.supervision.spill import external_sort_rows

        out = external_sort_rows(rows, keys, budget, obs)
        _observe(obs, "sort", len(rows), len(out))
        return out
    out = [dict(r) for r in rows]
    # stable sort by applying keys right-to-left
    for col, direction in reversed(list(keys)):
        descending = direction == "desc"
        out.sort(
            key=lambda r, _c=col, _d=descending: _sort_value(r[_c], _d),
            reverse=descending,
        )
    _observe(obs, "sort", len(rows), len(out))
    return out


# -- joins ---------------------------------------------------------------------


def _side_of(expr: Expr, left: Relation, right: Relation) -> Optional[str]:
    """Which single input every column reference of ``expr`` resolves
    against — 'left', 'right', or None when mixed/unresolvable."""
    sides = set()
    for ref in expr.column_refs():
        resolved = None
        for rel, side in ((left, "left"), (right, "right")):
            if ref.qualifier == rel.name and rel.has_attribute(ref.name):
                resolved = side
                break
            if ref.qualifier is None and rel.has_attribute(ref.name):
                if resolved is not None:
                    return None  # ambiguous unqualified reference
                resolved = side
        if resolved is None:
            return None
        sides.add(resolved)
    if len(sides) == 1:
        return sides.pop()
    return None


def split_equi_condition(
    condition: Expr, left: Relation, right: Relation
) -> Tuple[List[Tuple[Expr, Expr]], List[Expr]]:
    """Decompose a join condition into ``(left expr, right expr)``
    equality pairs and the residual conjuncts."""
    pairs: List[Tuple[Expr, Expr]] = []
    residual: List[Expr] = []
    for conjunct in split_conjuncts(condition):
        if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
            lhs_side = _side_of(conjunct.left, left, right)
            rhs_side = _side_of(conjunct.right, left, right)
            if lhs_side == "left" and rhs_side == "right":
                pairs.append((conjunct.left, conjunct.right))
                continue
            if lhs_side == "right" and rhs_side == "left":
                pairs.append((conjunct.right, conjunct.left))
                continue
        residual.append(conjunct)
    return pairs, residual


def _hash_key(values: Sequence[object]) -> Optional[tuple]:
    """A hashable join key; None when any component is NULL (never
    matches under SQL semantics). Numbers are normalized so int and
    float keys compare equal."""
    key = []
    for value in values:
        if value is None:
            return None
        if isinstance(value, bool):
            key.append(("bool", value))
        elif isinstance(value, (int, float)):
            key.append(("num", float(value)))
        else:
            key.append((type(value).__name__, value))
    return tuple(key)


def hash_join(
    left_rows: Sequence[dict],
    right_rows: Sequence[dict],
    left_relation: Relation,
    right_relation: Relation,
    condition: Expr,
    kind: str,
    merge: Callable[[Optional[dict], Optional[dict]], dict],
    emit: Callable[[dict], None],
    planner,
    obs=None,
) -> None:
    """Hash join on equi-conjuncts with a nested-loop fallback, calling
    ``emit`` once per output row (matches first, then the outer paddings
    the ``kind`` requires).

    The condition is decomposed into equality conjuncts between the two
    inputs (hashable) and a residual predicate; with at least one
    equi-conjunct the right side is indexed and probing is
    O(|L| + |R| + matches), else the classic nested loop runs. Key and
    residual expressions are lowered once by ``planner`` (an
    :class:`~repro.exec.ExpressionPlanner`), not re-walked per row.

    SQL semantics are preserved exactly: NULL keys never match (they
    are not inserted into, nor probed against, the index)."""
    left_name = left_relation.name
    right_name = right_relation.name
    pairs, residual = split_equi_condition(
        condition, left_relation, right_relation
    )

    budget = active_memory_budget()
    if (
        budget is not None
        and pairs
        and not residual
        and budget.exceeded(len(right_rows))
    ):
        # build side over budget: grace-partition instead of one index
        from repro.supervision.spill import grace_hash_join

        bind_left = row_binder(left_name)
        bind_right = row_binder(right_name)
        left_key_fns = [planner.scalar(l) for l, _r in pairs]
        right_key_fns = [planner.scalar(r) for _l, r in pairs]
        left_keys = [
            _hash_key([fn(bind_left(row)) for fn in left_key_fns])
            for row in left_rows
        ]
        right_keys = [
            _hash_key([fn(bind_right(row)) for fn in right_key_fns])
            for row in right_rows
        ]
        emitted = grace_hash_join(
            left_rows,
            right_rows,
            left_keys,
            right_keys,
            kind,
            merge,
            emit,
            budget,
            obs,
        )
        _observe(obs, "join", len(left_rows) + len(right_rows), emitted)
        return

    emitted = 0

    def env_for(left_row: Optional[dict], right_row: Optional[dict]):
        env = Environment()
        if left_row is not None:
            env.bind(left_name, left_row)
        if right_row is not None:
            env.bind(right_name, right_row)
        env.bind(None, merge(left_row, right_row))
        return env

    matched_right = [False] * len(right_rows)

    if pairs:
        left_keys = [planner.scalar(left_expr) for left_expr, _r in pairs]
        right_keys = [planner.scalar(right_expr) for _l, right_expr in pairs]
        residual_preds = [planner.predicate(c) for c in residual]
        bind_left = row_binder(left_name)
        bind_right = row_binder(right_name)

        index: Dict[tuple, List[int]] = {}
        for i, right_row in enumerate(right_rows):
            env = bind_right(right_row)
            key = _hash_key([fn(env) for fn in right_keys])
            if key is not None:
                index.setdefault(key, []).append(i)

        for left_row in left_rows:
            env = bind_left(left_row)
            key = _hash_key([fn(env) for fn in left_keys])
            matched = False
            for i in index.get(key, ()) if key is not None else ():
                right_row = right_rows[i]
                if residual_preds:
                    pair_env = env_for(left_row, right_row)
                    if not all(pred(pair_env) for pred in residual_preds):
                        continue
                matched = True
                matched_right[i] = True
                emit(merge(left_row, right_row))
                emitted += 1
            if not matched and kind in ("left", "full"):
                emit(merge(left_row, None))
                emitted += 1
    else:
        condition_pred = planner.predicate(condition)
        for left_row in left_rows:
            matched = False
            for i, right_row in enumerate(right_rows):
                if condition_pred(env_for(left_row, right_row)):
                    matched = True
                    matched_right[i] = True
                    emit(merge(left_row, right_row))
                    emitted += 1
            if not matched and kind in ("left", "full"):
                emit(merge(left_row, None))
                emitted += 1

    if kind in ("right", "full"):
        for i, right_row in enumerate(right_rows):
            if not matched_right[i]:
                emit(merge(None, right_row))
                emitted += 1

    _observe(obs, "join", len(left_rows) + len(right_rows), emitted)


__all__ = [
    "group_key_value",
    "key_encoder",
    "row_binder",
    "filter_rows",
    "project_rows",
    "route_rows",
    "switch_rows",
    "group_rows",
    "group_aggregate_rows",
    "dedup_rows",
    "nest_rows",
    "unnest_rows",
    "union_rows",
    "sort_rows",
    "split_equi_condition",
    "hash_join",
]
