"""Expression compiler: lower an AST to a Python closure, once.

The row-at-a-time interpreter (:func:`repro.expr.evaluator.evaluate`)
re-dispatches on node types, rebuilds argument lists, and re-looks-up
registry functions *per row*. Every hot path in the reproduction —
the OHM engine, the ETL stages, the mapping executor — evaluates the
same expression over thousands of rows, so this module performs that
dispatch exactly once and returns a closure evaluating the expression
against an :class:`~repro.expr.evaluator.Environment` (or a bare row
mapping).

Guarantees, enforced by ``tests/exec/test_parity.py``:

* **value parity** — for every expression and environment,
  ``compile_expr(e)(env) == evaluate(e, env)`` including SQL
  three-valued logic (``None`` as NULL/unknown);
* **error parity** — inputs on which the interpreter raises
  :class:`~repro.errors.EvaluationError` raise it here too.

The interpreter stays the *semantic oracle*: the compiled closures call
into the evaluator's own helpers (``_compare``, ``_arith``, three-valued
AND/OR) so the NULL rules live in exactly one place, and every runtime
accepts ``compiled=False`` to fall back to the oracle wholesale.

Compile-time work:

* **constant folding** — a sub-expression without column references,
  aggregates, or function calls (functions may be user-registered and
  impure) is evaluated once and becomes a constant closure;
* **column binding** — a :class:`ColumnRef` compiles to a direct
  dictionary probe of the environment's bindings, falling back to the
  full :meth:`Environment.lookup` resolution (qualifier fall-through,
  ambiguity detection) only on a miss;
* **registry capture** — function implementations, their NULL
  propagation mode, and arity checks are resolved at compile time;
* **pattern compilation** — a LIKE against a literal pattern captures
  its compiled regex.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Mapping, Optional

from repro.errors import EvaluationError
from repro.expr.ast import (
    AggregateCall,
    Between,
    BinaryOp,
    Case,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.expr.evaluator import (
    _LIKE_CACHE,
    Environment,
    _and3,
    _arith,
    _as_bool,
    _check_comparable,
    _is_number,
    _like_to_regex,
    _or3,
    evaluate,
)
from repro.expr.functions import DEFAULT_REGISTRY, FunctionRegistry

#: A compiled expression body: Environment → value.
CompiledBody = Callable[[Environment], Any]

_COMPARATORS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def is_foldable(expr: Expr) -> bool:
    """True when ``expr`` can be evaluated at compile time: no column
    references, no aggregates, and no function calls (registered
    functions are treated as potentially impure)."""
    for node in expr.walk():
        if isinstance(node, (ColumnRef, AggregateCall, FunctionCall)):
            return False
    return True


def compile_expr(
    expr: Expr,
    registry: Optional[FunctionRegistry] = None,
    fold_constants: bool = True,
) -> Callable[["Environment | Mapping"], Any]:
    """Compile ``expr`` into a closure over an environment (or a bare
    row mapping). The closure returns exactly what
    :func:`~repro.expr.evaluator.evaluate` would."""
    registry = registry or DEFAULT_REGISTRY
    body = _compile(expr, registry, fold_constants)

    def compiled(env):
        if not isinstance(env, Environment):
            env = Environment(env)
        return body(env)

    compiled.expr = expr  # for debugging / introspection
    # the raw body skips the bare-mapping conversion above; planners hand
    # it straight to the kernels, which always bind real Environments
    compiled.raw = body
    return compiled


def compile_predicate(
    expr: Expr,
    registry: Optional[FunctionRegistry] = None,
    fold_constants: bool = True,
) -> Callable[["Environment | Mapping"], bool]:
    """Compile a boolean expression for a filtering boundary: the closure
    returns True only when the predicate is definitely true (SQL WHERE
    semantics — unknown filters out)."""
    registry = registry or DEFAULT_REGISTRY
    body = _compile(expr, registry, fold_constants)

    def predicate(env):
        if not isinstance(env, Environment):
            env = Environment(env)
        return body(env) is True

    def raw(env):
        return body(env) is True

    predicate.expr = expr
    predicate.raw = raw
    return predicate


def compile_aggregate(
    agg: AggregateCall,
    registry: Optional[FunctionRegistry] = None,
    fold_constants: bool = True,
) -> Callable[[list], Any]:
    """Compile an aggregate call into a closure over a *group* — a list
    of rows or :class:`Environment` members. Mirrors
    :func:`~repro.expr.evaluator.evaluate_aggregate`: NULL inputs are
    skipped, SUM/AVG/MIN/MAX over an empty (or all-NULL) group yield
    NULL, COUNT yields 0, ``COUNT(*)`` counts all members."""
    if agg.arg is None:  # COUNT(*)
        return len
    arg = compile_expr(agg.arg, registry, fold_constants)
    func = agg.func
    distinct = agg.distinct

    if func in ("FIRST", "LAST"):
        take_first = func == "FIRST"

        def order_sensitive(members):
            if not members:
                return None
            return arg(members[0] if take_first else members[-1])

        return order_sensitive

    def aggregate(members):
        values = []
        for member in members:
            value = arg(member)
            if value is not None:
                values.append(value)
        if distinct:
            deduped = []
            for value in values:
                if value not in deduped:
                    deduped.append(value)
            values = deduped
        if func == "COUNT":
            return len(values)
        if not values:
            return None
        if func == "SUM":
            return sum(values)
        if func == "AVG":
            return sum(values) / len(values)
        if func == "MIN":
            return min(values)
        if func == "MAX":
            return max(values)
        raise EvaluationError(f"unknown aggregate {func!r}")

    return aggregate


# -- node lowering ------------------------------------------------------------


def _compile(
    expr: Expr, registry: FunctionRegistry, fold: bool
) -> CompiledBody:
    if fold and not isinstance(expr, Literal) and is_foldable(expr):
        try:
            value = evaluate(expr, Environment({}), registry)
        except EvaluationError:
            pass  # the error is data-independent; raise it per call below
        else:
            return lambda env: value
    if isinstance(expr, Literal):
        value = expr.value
        return lambda env: value
    if isinstance(expr, ColumnRef):
        return _compile_column(expr)
    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, registry, fold)
    if isinstance(expr, UnaryOp):
        return _compile_unary(expr, registry, fold)
    if isinstance(expr, FunctionCall):
        return _compile_call(expr, registry, fold)
    if isinstance(expr, Case):
        return _compile_case(expr, registry, fold)
    if isinstance(expr, IsNull):
        operand = _compile(expr.operand, registry, fold)
        if expr.negated:
            return lambda env: operand(env) is not None
        return lambda env: operand(env) is None
    if isinstance(expr, InList):
        return _compile_in(expr, registry, fold)
    if isinstance(expr, Between):
        return _compile_between(expr, registry, fold)
    if isinstance(expr, Like):
        return _compile_like(expr, registry, fold)
    if isinstance(expr, AggregateCall):
        raise EvaluationError(
            f"aggregate {expr.to_sql()} cannot be evaluated per-row; "
            "use compile_aggregate over a group"
        )
    raise EvaluationError(f"cannot compile node {expr!r}")


def _compile_column(ref: ColumnRef) -> CompiledBody:
    name = ref.name
    qualifier = ref.qualifier
    if qualifier is None:

        def unqualified(env, _name=name, _ref=ref):
            try:
                return env.bindings[None][_name]
            except KeyError:
                return env.lookup(_ref)

        return unqualified

    def qualified(env, _q=qualifier, _name=name, _ref=ref):
        try:
            return env.bindings[_q][_name]
        except KeyError:
            return env.lookup(_ref)

    return qualified


def _compile_binary(
    expr: BinaryOp, registry: FunctionRegistry, fold: bool
) -> CompiledBody:
    op = expr.op
    left = _compile(expr.left, registry, fold)
    right = _compile(expr.right, registry, fold)
    if op == "AND":
        return lambda env: _and3(left(env), right(env))
    if op == "OR":
        return lambda env: _or3(left(env), right(env))
    if op == "||":

        def concat(env):
            l = left(env)
            r = right(env)
            if l is None or r is None:
                return None
            return str(l) + str(r)

        return concat
    comparator = _COMPARATORS.get(op)
    if comparator is not None:

        def compare(env, _cmp=comparator, _op=op):
            l = left(env)
            r = right(env)
            if l is None or r is None:
                return None
            _check_comparable(l, r, _op)
            return _cmp(l, r)

        return compare
    return lambda env: _arith(op, left(env), right(env))


def _compile_unary(
    expr: UnaryOp, registry: FunctionRegistry, fold: bool
) -> CompiledBody:
    operand = _compile(expr.operand, registry, fold)
    if expr.op == "NOT":

        def negate(env):
            value = operand(env)
            return None if value is None else (not _as_bool(value))

        return negate

    def minus(env):
        value = operand(env)
        if value is None:
            return None
        if not _is_number(value):
            raise EvaluationError(f"unary minus needs a number, got {value!r}")
        return -value

    return minus


def _compile_call(
    expr: FunctionCall, registry: FunctionRegistry, fold: bool
) -> CompiledBody:
    function = registry.lookup(expr.name)
    function.check_arity(len(expr.args))
    arg_bodies = tuple(_compile(a, registry, fold) for a in expr.args)
    if not function.null_propagating:

        def call_raw(env):
            return function(*[a(env) for a in arg_bodies])

        return call_raw
    # the oracle evaluates every argument before the NULL check, so a
    # failing later argument must still raise even when an earlier one
    # is NULL — keep that order here
    if len(arg_bodies) == 1:
        (only,) = arg_bodies

        def call_one(env):
            value = only(env)
            if value is None:
                return None
            return function(value)

        return call_one
    if len(arg_bodies) == 2:
        first, second = arg_bodies

        def call_two(env):
            a = first(env)
            b = second(env)
            if a is None or b is None:
                return None
            return function(a, b)

        return call_two

    def call(env):
        args = [a(env) for a in arg_bodies]
        for value in args:
            if value is None:
                return None
        return function(*args)

    return call


def _compile_case(
    expr: Case, registry: FunctionRegistry, fold: bool
) -> CompiledBody:
    branches = tuple(
        (_compile(cond, registry, fold), _compile(value, registry, fold))
        for cond, value in expr.whens
    )
    default = (
        None if expr.default is None else _compile(expr.default, registry, fold)
    )

    def case(env):
        for cond, value in branches:
            if cond(env) is True:
                return value(env)
        if default is not None:
            return default(env)
        return None

    return case


def _compile_in(
    expr: InList, registry: FunctionRegistry, fold: bool
) -> CompiledBody:
    operand = _compile(expr.operand, registry, fold)
    items = tuple(_compile(i, registry, fold) for i in expr.items)
    negated = expr.negated

    def contains(env):
        value = operand(env)
        if value is None:
            return None
        saw_null = False
        for item in items:
            item_value = item(env)
            if item_value is None:
                saw_null = True
            else:
                _check_comparable(value, item_value, "=")
                if value == item_value:
                    return False if negated else True
        if saw_null:
            return None
        return True if negated else False

    return contains


def _compile_between(
    expr: Between, registry: FunctionRegistry, fold: bool
) -> CompiledBody:
    operand = _compile(expr.operand, registry, fold)
    low = _compile(expr.low, registry, fold)
    high = _compile(expr.high, registry, fold)
    negated = expr.negated

    def _cmp(op, left, right, comparator):
        if left is None or right is None:
            return None
        _check_comparable(left, right, op)
        return comparator(left, right)

    def between(env):
        # evaluate all three operands before comparing, like the oracle
        value = operand(env)
        low_value = low(env)
        high_value = high(env)
        ge_low = _cmp(">=", value, low_value, operator.ge)
        le_high = _cmp("<=", value, high_value, operator.le)
        result = _and3(ge_low, le_high)
        if result is None:
            return None
        return (not result) if negated else result

    return between


def _compile_like(
    expr: Like, registry: FunctionRegistry, fold: bool
) -> CompiledBody:
    operand = _compile(expr.operand, registry, fold)
    negated = expr.negated
    if isinstance(expr.pattern, Literal) and isinstance(
        expr.pattern.value, str
    ):
        matcher = _like_to_regex(expr.pattern.value).match

        def like_literal(env):
            value = operand(env)
            if value is None:
                return None
            if not isinstance(value, str):
                raise EvaluationError("LIKE needs string operands")
            result = matcher(value) is not None
            return (not result) if negated else result

        return like_literal

    pattern = _compile(expr.pattern, registry, fold)

    def like(env):
        value = operand(env)
        pattern_value = pattern(env)
        if value is None or pattern_value is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern_value, str):
            raise EvaluationError("LIKE needs string operands")
        compiled = _LIKE_CACHE.get(pattern_value)
        if compiled is None:
            compiled = _like_to_regex(pattern_value)
            _LIKE_CACHE[pattern_value] = compiled
        result = compiled.match(value) is not None
        return (not result) if negated else result

    return like


__all__ = [
    "compile_expr",
    "compile_predicate",
    "compile_aggregate",
    "is_foldable",
]
