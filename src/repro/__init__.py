"""Orchid reproduction: integrating schema mapping and ETL.

A from-scratch reproduction of *"Orchid: Integrating Schema Mapping and
ETL"* (Dessloch, Hernandez, Wisnesky, Radwan, Zhou - ICDE 2008): a system
converting declarative schema mappings into ETL jobs and vice versa
through a common abstract operator model (the Operator Hub Model, OHM),
with optimization and multi-platform deployment on top.

Layer map (paper Figure 1):

* External layer  - :mod:`repro.etl.xmlio` (job XML),
  :mod:`repro.mapping.jsonio` (mapping JSON)
* Intermediate layer - :mod:`repro.etl` (the DataStage-like substrate),
  :mod:`repro.intermediate` (wrapper graph)
* Abstract layer - :mod:`repro.ohm` (OHM), :mod:`repro.rewrite`
  (optimization), :mod:`repro.compile` (ETL to OHM),
  :mod:`repro.mapping` (mappings, OHM <-> mappings),
  :mod:`repro.deploy` (OHM to ETL / SQL / hybrid)

Quickstart::

    from repro import Orchid
    from repro.workloads import build_example_job

    orchid = Orchid()
    mappings = orchid.etl_to_mappings(build_example_job())
    print(mappings.to_text())
"""

from repro.data import Dataset, Instance
from repro.fasttrack import Orchid
from repro.mapping import Mapping, MappingSet, SourceBinding
from repro.schema import Attribute, Relation, Schema, relation

__version__ = "1.0.0"

__all__ = [
    "Orchid",
    "Dataset",
    "Instance",
    "Mapping",
    "MappingSet",
    "SourceBinding",
    "Attribute",
    "Relation",
    "Schema",
    "relation",
    "__version__",
]
