"""The Orchid façade — the FastTrack integration surface (paper §I, §VII).

One object ties the whole pipeline together:

* import ETL jobs (object model or external XML) and mappings (object
  model or JSON) into the common OHM layer,
* convert in both directions (ETL → mappings for analyst review,
  mappings → ETL skeletons for programmers, including placeholder stages
  and business-rule annotation pass-through),
* optimize at the OHM level and redeploy — to the ETL platform, or to a
  hybrid SQL + ETL plan via pushdown analysis,
* round-trip: regenerate mappings from a refined job; "unless the users
  radically modify the ETL jobs, the regenerated mappings will match the
  original mappings but will contain the extra implementation details
  just entered by the programmers."
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.compile import CompilerRegistry, compile_job
from repro.cost import StatisticsCatalog
from repro.deploy.datastage import DATASTAGE, deploy_to_job
from repro.deploy.platform import DeploymentPlan, RuntimePlatform
from repro.deploy.pushdown import HybridPlan, plan_pushdown
from repro.etl.model import Job
from repro.etl.xmlio import job_from_xml, job_to_xml
from repro.mapping.from_ohm import ohm_to_mappings
from repro.mapping.jsonio import mappings_from_json, mappings_to_json
from repro.mapping.model import MappingSet
from repro.mapping.to_ohm import mappings_to_ohm
from repro.obs import NULL_OBS, Observability
from repro.ohm.graph import OhmGraph
from repro.rewrite.optimizer import OptimizationReport, optimize


class Orchid:
    """The system entry point.

    >>> orchid = Orchid()
    >>> # job → mappings → job, all through the OHM hub
    >>> # mappings = orchid.etl_to_mappings(job)
    >>> # job2, plan = orchid.mappings_to_etl(mappings)

    Pass an :class:`~repro.obs.Observability` to profile everything the
    facade touches — compilation phases, rewrite rules, deployment
    placement — into one shared trace and metrics registry.
    """

    def __init__(
        self,
        platform: Optional[RuntimePlatform] = None,
        compilers: Optional[CompilerRegistry] = None,
        obs: Optional[Observability] = None,
        catalog: Optional["StatisticsCatalog"] = None,
    ):
        self.platform = platform or DATASTAGE
        self.compilers = compilers
        self.obs = obs or NULL_OBS
        #: statistics catalog consulted by :meth:`to_hybrid` for
        #: cost-based placement (None keeps maximal pushdown).
        self.catalog = catalog

    # -- imports (external / intermediate → abstract layer) ---------------------------

    def import_etl(self, job: Union[Job, str]) -> OhmGraph:
        """Compile an ETL job — an object-model :class:`Job` or an
        external-format XML string — into an OHM instance."""
        if isinstance(job, str):
            job = job_from_xml(job)
        return compile_job(job, registry=self.compilers, obs=self.obs)

    def import_mappings(self, mappings: Union[MappingSet, str]) -> OhmGraph:
        """Compile mappings — a :class:`MappingSet` or a JSON document —
        into an OHM instance (Figure 9 template instantiation)."""
        if isinstance(mappings, str):
            mappings = mappings_from_json(mappings)
        with self.obs.tracer.span("compile.mappings"), self.obs.metrics.timer(
            "compile.phase.mappings.seconds"
        ):
            return mappings_to_ohm(mappings)

    # -- exports (abstract layer → external) --------------------------------------------

    def to_mappings(self, graph: OhmGraph) -> MappingSet:
        """OHM → composed mappings (section V-B)."""
        with self.obs.tracer.span(
            "extract.mappings", graph=graph.name
        ), self.obs.metrics.timer("extract.mappings.seconds"):
            return ohm_to_mappings(graph)

    def to_etl(self, graph: OhmGraph) -> Tuple[Job, DeploymentPlan]:
        """OHM → an ETL job on the configured platform (section VI-B)."""
        return deploy_to_job(graph, self.platform, obs=self.obs)

    def to_hybrid(
        self, graph: OhmGraph, cost: Optional[bool] = None
    ) -> HybridPlan:
        """OHM → combined SQL + ETL deployment via pushdown analysis
        (cost-based when the facade carries a statistics catalog)."""
        return plan_pushdown(
            graph, self.platform, obs=self.obs, cost=cost,
            catalog=self.catalog,
        )

    # -- one-hop conveniences ----------------------------------------------------------

    def etl_to_mappings(self, job: Union[Job, str]) -> MappingSet:
        """The analyst-review direction: job → declarative mappings."""
        return self.to_mappings(self.import_etl(job))

    def mappings_to_etl(
        self, mappings: Union[MappingSet, str]
    ) -> Tuple[Job, DeploymentPlan]:
        """The programmer direction: mappings → ETL job (a *skeleton*
        when the mappings are incomplete — placeholder Join stages carry
        a ``placeholder`` annotation)."""
        return self.to_etl(self.import_mappings(mappings))

    def optimize(self, graph: OhmGraph) -> OptimizationReport:
        """Rewrite the OHM instance in place (cleanup + selection
        push-down et al.); then redeploy wherever needed."""
        return optimize(graph, obs=self.obs)

    def round_trip_etl(self, job: Union[Job, str]) -> Tuple[Job, MappingSet]:
        """job → mappings → job: what FastTrack does when programmers
        regenerate a job after analysts reviewed the mappings."""
        mappings = self.etl_to_mappings(job)
        regenerated, _plan = self.mappings_to_etl(mappings)
        return regenerated, mappings

    def round_trip_mappings(
        self, mappings: Union[MappingSet, str]
    ) -> Tuple[MappingSet, Job]:
        """mappings → job → mappings: regenerated mappings 'will match
        the original mappings but will contain the extra implementation
        details'."""
        job, _plan = self.mappings_to_etl(mappings)
        return self.etl_to_mappings(job), job

    # -- external formats ---------------------------------------------------------------

    @staticmethod
    def export_etl_xml(job: Job) -> str:
        return job_to_xml(job)

    @staticmethod
    def export_mappings_json(mappings: MappingSet) -> str:
        return mappings_to_json(mappings)


__all__ = ["Orchid"]
