"""FastTrack-style integration façade over the Orchid pipeline."""

from repro.fasttrack.orchid import Orchid

__all__ = ["Orchid"]
