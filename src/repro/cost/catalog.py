"""The statistics catalog: what the planner knows about the data.

A :class:`StatisticsCatalog` holds three layers of knowledge, each
overriding the weaker one below it at estimation time:

* **table statistics** — per-relation row counts plus per-column
  distinct-value and null-fraction sketches, built by (seedably)
  sampling a :class:`~repro.data.dataset.Dataset` (or its columnar
  :class:`~repro.exec.block.RowBlock` view) via :meth:`observe_dataset`;
* **observed cardinalities** — actual row counts per named dataflow
  edge/link from a previous run, fed back either directly
  (:meth:`observe_link`) or by absorbing a metrics registry
  (:meth:`absorb_metrics` reads the ``etl.link.<name>.rows`` and
  ``ohm.operator.<uid>.rows_out`` counters the engines already emit);
* **kernel totals** — the global ``exec.kernel.*.rows_in/rows_out``
  throughput counters, kept for diagnostics and the ``--explain``
  report.

The feedback loop closes here: run once, absorb the metrics, and the
next :meth:`~repro.cost.estimate.CardinalityEstimator.estimate_graph`
call re-plans from actual cardinalities instead of selectivity guesses.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, Optional

from repro.data.dataset import Dataset, Instance

#: rows sampled per dataset when the dataset is larger than this.
DEFAULT_SAMPLE_SIZE = 1024
#: default sampling seed (any fixed value keeps re-observation stable).
DEFAULT_SEED = 424242


class ColumnStats:
    """Distinct-value and null-fraction sketch of one column."""

    __slots__ = ("n_distinct", "null_fraction")

    def __init__(self, n_distinct: float, null_fraction: float):
        self.n_distinct = max(1.0, float(n_distinct))
        self.null_fraction = min(1.0, max(0.0, float(null_fraction)))

    def __repr__(self) -> str:
        return (
            f"ColumnStats(ndv={self.n_distinct:.0f}, "
            f"nulls={self.null_fraction:.2f})"
        )


class TableStats:
    """Row count plus per-column sketches for one relation."""

    __slots__ = ("row_count", "columns", "sampled")

    def __init__(
        self,
        row_count: int,
        columns: Optional[Dict[str, ColumnStats]] = None,
        sampled: int = 0,
    ):
        self.row_count = int(row_count)
        self.columns: Dict[str, ColumnStats] = columns or {}
        #: how many rows the sketches were computed from (== row_count
        #: when the dataset was small enough to scan fully).
        self.sampled = sampled

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)

    def __repr__(self) -> str:
        return (
            f"TableStats(rows={self.row_count}, "
            f"{len(self.columns)} columns)"
        )


def _estimate_ndv(distinct: int, sampled: int, total: int) -> float:
    """Scale a sample's distinct count up to the full table.

    Low-cardinality columns saturate quickly in any sample, so a sample
    whose distinct count is well below the sample size is taken at face
    value; a sample that keeps producing new values (>= 90% distinct)
    scales linearly with the table (the duj1-style heuristic)."""
    if sampled <= 0:
        return 1.0
    if sampled >= total:
        return float(max(1, distinct))
    ratio = distinct / sampled
    if ratio >= 0.9:
        return float(max(distinct, round(total * ratio)))
    if ratio <= 0.1:
        return float(max(1, distinct))
    # partially saturated: grow with the square root of the scale-up,
    # a middle ground between "saturated" and "all-new-values"
    scale = math.sqrt(total / sampled)
    return float(min(total, max(distinct, round(distinct * scale))))


class StatisticsCatalog:
    """Everything the cardinality estimator and cost model may consult.

    Seedable and deterministic: observing the same datasets with the
    same ``seed`` and ``sample_size`` produces identical statistics.
    """

    def __init__(
        self,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        seed: int = DEFAULT_SEED,
    ):
        if sample_size < 1:
            raise ValueError(f"sample size must be >= 1, got {sample_size!r}")
        self.sample_size = int(sample_size)
        self.seed = int(seed)
        self._tables: Dict[str, TableStats] = {}
        self._observed: Dict[str, int] = {}
        self._kernel_totals: Dict[str, int] = {}

    # -- building table statistics ------------------------------------------

    def observe_dataset(
        self, dataset: Dataset, name: Optional[str] = None
    ) -> TableStats:
        """Scan (or sample) ``dataset`` into full table statistics."""
        name = name or dataset.name
        total = len(dataset)
        rows = dataset.rows
        if total > self.sample_size:
            rng = random.Random(self.seed)
            sample = [rows[i] for i in sorted(
                rng.sample(range(total), self.sample_size)
            )]
        else:
            sample = rows
        sampled = len(sample)
        columns: Dict[str, ColumnStats] = {}
        for attribute in dataset.relation.attributes:
            col = attribute.name
            seen = set()
            nulls = 0
            for row in sample:
                value = row.get(col)
                if value is None:
                    nulls += 1
                else:
                    try:
                        seen.add(value)
                    except TypeError:  # set-valued (NF²) cells
                        seen.add(repr(value))
            ndv = _estimate_ndv(len(seen), sampled, total)
            fraction = (nulls / sampled) if sampled else 0.0
            columns[col] = ColumnStats(ndv, fraction)
        stats = TableStats(total, columns, sampled)
        self._tables[name] = stats
        return stats

    def observe_instance(self, instance: Instance) -> None:
        """Observe every dataset of an instance."""
        for dataset in instance:
            self.observe_dataset(dataset)

    def observe_rows(self, name: str, row_count: int) -> TableStats:
        """Record a cardinality-only table fact (no column sketches)."""
        existing = self._tables.get(name)
        if existing is not None:
            existing.row_count = int(row_count)
            return existing
        stats = TableStats(int(row_count))
        self._tables[name] = stats
        return stats

    # -- run feedback --------------------------------------------------------

    def observe_link(self, name: str, row_count: int) -> None:
        """Record the actual cardinality of a named dataflow edge/link."""
        self._observed[name] = int(row_count)

    def observe_link_counts(self, link_counts: Dict[str, int]) -> None:
        """Absorb an :class:`~repro.etl.engine.EtlRunStats`-style
        per-link row-count mapping."""
        for name, count in link_counts.items():
            self.observe_link(name, count)

    def absorb_metrics(self, metrics) -> int:
        """Pull observed cardinalities out of a
        :class:`~repro.obs.metrics.Metrics` registry (or a snapshot
        ``counters`` dict). Returns how many observations were absorbed.

        Reads ``etl.link.<name>.rows`` and ``ohm.operator.<uid>.rows_out``
        as per-edge/per-operator actuals, and keeps the global
        ``exec.kernel.*`` throughput counters for diagnostics."""
        counters = metrics if isinstance(metrics, dict) else (
            metrics.snapshot().get("counters", {})
        )
        absorbed = 0
        for key, value in counters.items():
            if key.startswith("etl.link.") and key.endswith(".rows"):
                self.observe_link(key[len("etl.link."):-len(".rows")], value)
                absorbed += 1
            elif key.startswith("ohm.operator.") and key.endswith(".rows_out"):
                uid = key[len("ohm.operator."):-len(".rows_out")]
                self._observed[uid] = int(value)
                absorbed += 1
            elif key.startswith("exec.kernel."):
                self._kernel_totals[key] = int(value)
        return absorbed

    def forget_observations(self) -> None:
        """Drop per-edge actuals (table statistics stay) — lets tests
        and the CLI compare pre- and post-feedback plans."""
        self._observed.clear()

    # -- lookups -------------------------------------------------------------

    def table(self, name: str) -> Optional[TableStats]:
        return self._tables.get(name)

    def row_count(self, name: str, default: Optional[int] = None):
        stats = self._tables.get(name)
        return stats.row_count if stats is not None else default

    def column(self, table: str, column: str) -> Optional[ColumnStats]:
        stats = self._tables.get(table)
        return stats.column(column) if stats is not None else None

    def observed(self, name: str) -> Optional[int]:
        """The actual cardinality recorded for an edge/link/operator."""
        return self._observed.get(name)

    def kernel_totals(self) -> Dict[str, int]:
        return dict(self._kernel_totals)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def covers(self, names: Iterable[str]) -> bool:
        """True when every named relation has table statistics."""
        return all(name in self._tables for name in names)

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        return (
            f"StatisticsCatalog({len(self._tables)} tables, "
            f"{len(self._observed)} observed edges)"
        )


def catalog_for(instance: Instance, **kwargs) -> StatisticsCatalog:
    """Convenience: a catalog pre-populated from an instance."""
    catalog = StatisticsCatalog(**kwargs)
    catalog.observe_instance(instance)
    return catalog


__all__ = [
    "ColumnStats",
    "DEFAULT_SAMPLE_SIZE",
    "DEFAULT_SEED",
    "StatisticsCatalog",
    "TableStats",
    "catalog_for",
]
