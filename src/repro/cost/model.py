"""Per-platform operator cost functions (the "how much" half of planning).

Costs are in abstract *row-units*: 1.0 is one row touched once by a
compiled row kernel. Every other platform is expressed relative to that,
calibrated against the repository's own benchmarks:

* the interpreting oracle is ~5x slower per row than compiled closures
  (``BENCH_engines``: 1.6-2.3x end to end with materialization amortized);
* block kernels are ~0.35x — the ~2.1x columnar speedup of
  ``BENCH_columnar`` plus the batch-build overhead modelled separately;
* sqlite evaluates an operator in C at ~0.2x, but *moving* rows costs:
  loading a row into the DBMS is ~0.3 units (executemany), and
  materializing a result row back out into Python dicts is ~2.0 units —
  which is exactly why pushing a pass-through projection loses while
  pushing a reducing filter + group wins;
* a partitioned-kernel task costs ~``PARALLEL_TASK_ROWS`` units of fixed
  dispatch overhead, which is where the partition threshold comes from.

Two derived crossovers replace previously hard-coded constants:

* :func:`derived_parallel_min_rows` — partitioning pays once the block
  work a second partition removes from the critical path exceeds the
  dispatch overhead of both partitions:
  ``n * BLOCK_ROW_COST / 2 > 2 * PARALLEL_TASK_ROWS``, i.e.
  ``n > 4 * PARALLEL_TASK_ROWS / BLOCK_ROW_COST``;
* :func:`derived_block_min_rows` — the block tier pays once the per-row
  saving beats the per-operator batch-build overhead:
  ``n * (ROW_COST - BLOCK_ROW_COST) > BLOCK_SETUP_ROWS``.

This module is deliberately a leaf: no imports from the engines, so the
config layer and ``repro.exec.parallel`` can consult it lazily without
cycles.
"""

from __future__ import annotations

from typing import Dict, Optional

#: per-row cost of one operator on the interpreting oracle.
ORACLE_ROW_COST = 5.0
#: per-row cost of one operator as a compiled row kernel (the unit).
ROW_COST = 1.0
#: per-row cost of one operator as a vectorized block kernel.
BLOCK_ROW_COST = 0.35
#: per-row cost of one operator inside a fused selection-vector chain —
#: cheaper than the block kernel because intermediate blocks are never
#: gathered (``BENCH_FUSION``: fused chains beat unfused blocks ~1.3x+
#: on filter→project→aggregate, with the batch setup paid once per
#: chain rather than once per operator).
FUSED_ROW_COST = 0.22
#: fixed per-operator overhead of the block path (column builds,
#: block compilation), in row-units.
BLOCK_SETUP_ROWS = 256.0
#: per-row cost of one operator evaluated inside sqlite.
SQL_ROW_COST = 0.2
#: per-row cost of loading a base row into the DBMS.
SQL_LOAD_COST = 0.3
#: per-row cost of materializing a query-result row back into Python.
SQL_TRANSFER_COST = 2.0
#: fixed dispatch overhead per partitioned-kernel task, in row-units.
PARALLEL_TASK_ROWS = 700.0
#: per-row cost of reading a base row in the ETL engine (source scan).
SCAN_COST = 0.1
#: per-row cost of delivering a row to a target.
WRITE_COST = 0.1
#: per-row I/O cost of one spill round-trip (pickle a frame to a temp
#: run file and read it back during the merge/probe phase). A blocking
#: operator over its memory budget pays this for every resident row,
#: which is what makes a smaller in-budget tier win under ``auto``.
SPILL_ROW_COST = 0.8

#: relative operator weight by OHM operator kind — a JOIN touches two
#: inputs and hashes, a GROUP hashes and folds, a SPLIT merely aliases.
OPERATOR_FACTORS: Dict[str, float] = {
    "SOURCE": 0.0,
    "TARGET": 0.0,
    "FILTER": 1.0,
    "PROJECT": 1.2,
    "BASIC PROJECT": 1.0,
    "KEYGEN": 1.0,
    "COLUMN SPLIT": 1.2,
    "COLUMN MERGE": 1.2,
    "JOIN": 2.5,
    "GROUP": 2.0,
    "UNION": 0.6,
    "SPLIT": 0.3,
    "NEST": 2.0,
    "UNNEST": 1.5,
    "UNKNOWN": 1.0,
}
DEFAULT_OPERATOR_FACTOR = 1.0

#: the execution tiers ``choose_tier`` selects between.
TIERS = ("rows", "block", "parallel")


def operator_factor(kind: str) -> float:
    return OPERATOR_FACTORS.get(kind, DEFAULT_OPERATOR_FACTOR)


def derived_parallel_min_rows() -> int:
    """The partitioned-kernel engagement threshold the cost model
    derives (see module docstring) — 8000 rows at the shipped
    constants, replacing the old hard-coded 8192."""
    return int(4 * PARALLEL_TASK_ROWS / BLOCK_ROW_COST)


def derived_block_min_rows() -> int:
    """Rows at which the block tier starts beating row kernels."""
    return int(BLOCK_SETUP_ROWS / (ROW_COST - BLOCK_ROW_COST)) + 1


def choose_tier(n_rows: int, workers: int = 1, memory_budget=None) -> str:
    """Pick the cheapest execution tier for a run whose largest input
    has ``n_rows`` rows: row kernels below the block crossover, block
    kernels above it, partitioned-parallel once the biggest input would
    actually partition (and there are workers to fan out to). Purely a
    function of data size, worker count, and the optional resident-row
    ``memory_budget`` (a :class:`~repro.supervision.MemoryBudget` or
    ``max_rows`` int), so ``mode="auto"`` stays deterministic."""
    return DEFAULT_MODEL.choose_tier(n_rows, workers, memory_budget)


class CostModel:
    """Costs operators on each platform from cardinality estimates.

    All methods return abstract row-units; only *comparisons* between
    them are meaningful. Instantiating with keyword overrides rescales
    individual constants (the benchmarks do this to stress decisions).
    """

    def __init__(
        self,
        oracle_row_cost: float = ORACLE_ROW_COST,
        row_cost: float = ROW_COST,
        block_row_cost: float = BLOCK_ROW_COST,
        fused_row_cost: float = FUSED_ROW_COST,
        block_setup_rows: float = BLOCK_SETUP_ROWS,
        sql_row_cost: float = SQL_ROW_COST,
        sql_load_cost: float = SQL_LOAD_COST,
        sql_transfer_cost: float = SQL_TRANSFER_COST,
        spill_row_cost: float = SPILL_ROW_COST,
    ):
        self.oracle_row_cost = oracle_row_cost
        self.row_cost = row_cost
        self.block_row_cost = block_row_cost
        self.fused_row_cost = fused_row_cost
        self.block_setup_rows = block_setup_rows
        self.sql_row_cost = sql_row_cost
        self.sql_load_cost = sql_load_cost
        self.sql_transfer_cost = sql_transfer_cost
        self.spill_row_cost = spill_row_cost

    # -- per-operator costs --------------------------------------------------

    def etl_operator_cost(
        self,
        kind: str,
        rows_in: float,
        rows_out: float,
        tier: str = "rows",
    ) -> float:
        """One operator executed by the ETL engine at ``tier``."""
        if kind == "SOURCE":
            return SCAN_COST * rows_out
        if kind == "TARGET":
            return WRITE_COST * rows_in
        per_row = {
            "rows": self.row_cost,
            "block": self.block_row_cost,
            "fused": self.fused_row_cost,
            "parallel": self.block_row_cost,
            "oracle": self.oracle_row_cost,
        }.get(tier, self.row_cost)
        cost = operator_factor(kind) * per_row * max(rows_in, 0.0)
        if tier in ("block", "parallel"):
            cost += self.block_setup_rows
        return cost

    def fused_chain_cost(self, rows_in: float, operators: int) -> float:
        """A maximal fused chain of ``operators`` fusable operators over
        ``rows_in`` input rows: each operator costs the fused per-row
        rate on the rows surviving so far (approximated by the input
        cardinality), and the batch-build overhead is paid once per
        chain — at the single materialization point — rather than once
        per operator as on the unfused block path."""
        return (
            self.fused_row_cost * max(rows_in, 0.0) * max(operators, 0)
            + self.block_setup_rows
        )

    def sql_operator_cost(
        self, kind: str, rows_in: float, rows_out: float
    ) -> float:
        """One operator evaluated inside the DBMS (no data movement —
        that is costed at the region boundary)."""
        if kind in ("SOURCE", "TARGET"):
            return 0.0
        return operator_factor(kind) * self.sql_row_cost * max(rows_in, 0.0)

    # -- region costs --------------------------------------------------------

    def sql_load(self, base_rows: float) -> float:
        """Loading ``base_rows`` source rows into the DBMS."""
        return self.sql_load_cost * max(base_rows, 0.0)

    def sql_transfer(self, frontier_rows: float) -> float:
        """Materializing ``frontier_rows`` query-result rows back out."""
        return self.sql_transfer_cost * max(frontier_rows, 0.0)

    # -- tier selection ------------------------------------------------------

    def block_min_rows(self) -> int:
        return int(self.block_setup_rows / (self.row_cost - self.block_row_cost)) + 1

    def parallel_min_rows(self) -> int:
        return int(4 * PARALLEL_TASK_ROWS / self.block_row_cost)

    def spill_cost(self, n_rows: float, memory_budget=None) -> float:
        """Temp-file I/O a blocking operator pays when ``n_rows``
        resident rows exceed ``memory_budget`` (a
        :class:`~repro.supervision.MemoryBudget` or a ``max_rows``
        int); 0 when the build fits or no budget governs the run."""
        max_rows = getattr(memory_budget, "max_rows", memory_budget)
        if max_rows is None or n_rows <= max_rows:
            return 0.0
        return self.spill_row_cost * max(n_rows, 0.0)

    def choose_tier(
        self, n_rows: int, workers: int = 1, memory_budget=None
    ) -> str:
        # Over the memory budget, every blocking operator spills to
        # row-based temp-file runs whatever the tier, so the block
        # tier's per-row saving has to beat setup *plus* the wasted
        # build it abandons when the budget check declines it — at
        # the shipped constants the spilled row path always wins.
        if self.spill_cost(n_rows, memory_budget) > 0.0:
            return "rows"
        if workers >= 2 and n_rows >= self.parallel_min_rows():
            return "parallel"
        if n_rows >= self.block_min_rows():
            return "block"
        return "rows"


#: the shared default model (all methods are pure, so sharing is safe).
DEFAULT_MODEL = CostModel()


__all__ = [
    "BLOCK_ROW_COST",
    "BLOCK_SETUP_ROWS",
    "CostModel",
    "DEFAULT_MODEL",
    "DEFAULT_OPERATOR_FACTOR",
    "FUSED_ROW_COST",
    "OPERATOR_FACTORS",
    "ORACLE_ROW_COST",
    "PARALLEL_TASK_ROWS",
    "ROW_COST",
    "SCAN_COST",
    "SPILL_ROW_COST",
    "SQL_LOAD_COST",
    "SQL_ROW_COST",
    "SQL_TRANSFER_COST",
    "TIERS",
    "WRITE_COST",
    "choose_tier",
    "derived_block_min_rows",
    "derived_parallel_min_rows",
    "operator_factor",
]
