"""Rendering cost plans for humans: the ``--explain`` report.

:func:`explain_graph` prints one line per operator of an OHM instance —
estimated rows in/out, the actual observed rows when a run's feedback
is available, and the modelled cost at the chosen execution tier — plus
totals. The CLI's ``--explain`` flag and ``examples/quickstart.py
--explain`` both render through here, so the format is pinned in one
place (and in ``tests/cost/test_explain.py``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cost.estimate import CardinalityEstimator, GraphEstimate
from repro.cost.model import DEFAULT_MODEL, CostModel
from repro.ohm.graph import OhmGraph


def actuals_from_metrics(metrics) -> Dict[str, float]:
    """Per-operator actual row counts out of a metrics registry (or a
    snapshot ``counters`` dict): ``ohm.operator.<uid>.rows_out``."""
    counters = metrics if isinstance(metrics, dict) else (
        metrics.snapshot().get("counters", {})
    )
    actuals: Dict[str, float] = {}
    for key, value in counters.items():
        if key.startswith("ohm.operator.") and key.endswith(".rows_out"):
            actuals[key[len("ohm.operator."):-len(".rows_out")]] = float(value)
    return actuals


def actuals_from_edges(edge_data) -> Dict[str, float]:
    """Per-edge actual row counts from an executor's edge datasets."""
    return {name: float(len(dataset)) for name, dataset in edge_data.items()}


def _fmt_rows(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return str(int(round(value)))


def explain_graph(
    graph: OhmGraph,
    estimate: Optional[GraphEstimate] = None,
    model: Optional[CostModel] = None,
    tier: str = "rows",
    actuals: Optional[Dict[str, float]] = None,
    estimator: Optional[CardinalityEstimator] = None,
) -> str:
    """A per-operator table of estimated vs actual cardinalities and
    modelled costs for ``graph`` at the given execution ``tier``.

    ``actuals`` maps operator uids and/or edge names to observed row
    counts (see :func:`actuals_from_metrics` /
    :func:`actuals_from_edges`); operators without one show ``-``.
    """
    model = model or DEFAULT_MODEL
    if estimate is None:
        estimate = (estimator or CardinalityEstimator()).estimate_graph(graph)
    actuals = actuals or {}
    rows = []
    total_cost = 0.0
    for op in graph.topological_order():
        op_estimate = estimate.operators.get(op.uid)
        if op_estimate is None:
            continue
        actual = actuals.get(op.uid)
        if actual is None:
            for edge in graph.out_edges(op.uid):
                actual = actuals.get(edge.name)
                if actual is not None:
                    break
        cost = model.etl_operator_cost(
            op.KIND, op_estimate.rows_in, op_estimate.rows_out, tier
        )
        total_cost += cost
        rows.append((
            op.label,
            op.KIND,
            _fmt_rows(op_estimate.rows_in),
            _fmt_rows(op_estimate.rows_out),
            _fmt_rows(actual),
            f"{cost:.0f}",
            op_estimate.source,
        ))
    header = ("operator", "kind", "est in", "est out", "actual", "cost",
              "source")
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows
        else len(header[i])
        for i in range(len(header))
    ]

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [f"cost plan for {graph.name!r} (tier={tier}):"]
    out.append("  " + line(header))
    for r in rows:
        out.append("  " + line(r))
    out.append(f"  total estimated cost: {total_cost:.0f} row-units")
    return "\n".join(out)


__all__ = ["actuals_from_edges", "actuals_from_metrics", "explain_graph"]
