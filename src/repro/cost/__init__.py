"""repro.cost — the cost-based planning layer.

Every data-size decision the system makes — push an OHM region into the
DBMS or keep it in the ETL engine (:mod:`repro.deploy.pushdown`), run a
job on row kernels, block kernels, or partitioned workers
(``mode="auto"`` on the engines), partition a join at 8 thousand or 80
thousand rows (:mod:`repro.exec.parallel`) — consults the same three
pieces:

* :mod:`repro.cost.catalog` — a :class:`StatisticsCatalog` of
  per-relation row counts, distinct-value/null-fraction sketches
  (seedable sampling), and observed per-edge actuals fed back from runs;
* :mod:`repro.cost.estimate` — a :class:`CardinalityEstimator` walking
  the OHM graph propagating selectivities;
* :mod:`repro.cost.model` — a :class:`CostModel` with per-platform
  operator cost functions (sqlite vs row kernels vs block kernels vs
  partitioned-parallel) and the derived tier/partition crossovers.

``--explain`` renders all of it per operator
(:func:`repro.cost.explain.explain_graph`); ``docs/planning.md`` is the
handbook.

The ``cost_based`` knob (kwarg > :func:`set_default_cost_based` >
``REPRO_COST`` > True) gates whether ``plan_pushdown`` costs SQL-vs-ETL
placement or keeps the paper's pushability-only maximal pushdown.
"""

from __future__ import annotations

from typing import Optional

from repro import config
from repro.cost.catalog import (
    ColumnStats,
    StatisticsCatalog,
    TableStats,
    catalog_for,
)
from repro.cost.estimate import (
    CardinalityEstimator,
    GraphEstimate,
    OperatorEstimate,
)
from repro.cost.explain import (
    actuals_from_edges,
    actuals_from_metrics,
    explain_graph,
)
from repro.cost.model import (
    DEFAULT_MODEL,
    FUSED_ROW_COST,
    CostModel,
    choose_tier,
    derived_block_min_rows,
    derived_parallel_min_rows,
)


def default_cost_based() -> bool:
    """The process-wide cost-based-pushdown default: a
    :func:`set_default_cost_based` override wins, else ``REPRO_COST``,
    else True."""
    return config.COST_BASED.default()


def set_default_cost_based(value: Optional[bool]) -> None:
    """Override the process-wide cost-based default (None restores the
    environment-variable/True resolution)."""
    config.COST_BASED.set(value)


def resolve_cost_based(value: Optional[bool]) -> bool:
    """Resolve ``plan_pushdown``'s ``cost`` argument: an explicit
    True/False wins, None means the process default."""
    return bool(config.COST_BASED.resolve(value))


__all__ = [
    "CardinalityEstimator",
    "ColumnStats",
    "CostModel",
    "DEFAULT_MODEL",
    "FUSED_ROW_COST",
    "GraphEstimate",
    "OperatorEstimate",
    "StatisticsCatalog",
    "TableStats",
    "actuals_from_edges",
    "actuals_from_metrics",
    "catalog_for",
    "choose_tier",
    "default_cost_based",
    "derived_block_min_rows",
    "derived_parallel_min_rows",
    "explain_graph",
    "resolve_cost_based",
    "set_default_cost_based",
]
