"""Cardinality estimation over OHM graphs (the "how many" half).

A :class:`CardinalityEstimator` walks an OHM instance in topological
order and predicts the row count on every edge, propagating textbook
selectivities through FILTER / PROJECT / JOIN / GROUP / dedup / UNION
(plus the NF² and opaque operators the hub model adds). Three sources
feed each prediction, strongest first:

* an **observed** actual from the statistics catalog (a previous run's
  ``etl.link.<name>.rows`` / ``ohm.operator.<uid>.rows_out`` feedback)
  pins the edge exactly — this is the adaptive re-planning loop;
* **table statistics** ground SOURCE row counts and the per-column
  distinct/null sketches the selectivity rules consult;
* **defaults** (``DEFAULT_ROWS`` rows per unknown source, the usual
  1/10 equality and 1/3 range selectivities) keep the estimator total —
  it never refuses to answer, it just answers with wider error bars.

All selectivities are clamped to [0, 1] and every rule is monotone
nondecreasing in its input cardinalities, properties the test suite
pins (``tests/cost/test_estimator.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cost.catalog import ColumnStats, StatisticsCatalog
from repro.expr.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.ohm.graph import OhmGraph
from repro.ohm.operators import (
    Filter,
    Group,
    Join,
    Nest,
    Operator,
    Project,
    Source,
    Split,
    Target,
    Union,
    Unknown,
    Unnest,
)

#: rows assumed for a source relation the catalog knows nothing about.
DEFAULT_ROWS = 1000.0
#: selectivity of ``col = literal`` without a distinct-value sketch.
DEFAULT_EQ_SELECTIVITY = 0.1
#: selectivity of a range comparison (``<``, ``>=`` ...).
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
#: selectivity of an opaque boolean expression.
DEFAULT_BOOL_SELECTIVITY = 1.0 / 3.0
#: selectivity of ``BETWEEN`` / ``LIKE``.
BETWEEN_SELECTIVITY = 0.25
LIKE_SELECTIVITY = 0.1
#: null fraction assumed without a sketch.
DEFAULT_NULL_FRACTION = 0.05
#: distinct values assumed without a sketch: one in ten rows.
DEFAULT_NDV_FRACTION = 0.1
#: survivor fraction of duplicate elimination without key sketches.
DEDUP_FACTOR = 0.8
#: rows produced per input row by UNNEST without better information.
UNNEST_FANOUT = 4.0


class _Cols:
    """Per-edge column knowledge: name → (ndv, null fraction)."""

    __slots__ = ("stats",)

    def __init__(self, stats: Optional[Dict[str, ColumnStats]] = None):
        self.stats = stats or {}

    def ndv(self, name: str, rows: float) -> float:
        info = self.stats.get(name)
        if info is not None:
            return max(1.0, min(info.n_distinct, max(rows, 1.0)))
        return max(1.0, rows * DEFAULT_NDV_FRACTION)

    def null_fraction(self, name: str) -> float:
        info = self.stats.get(name)
        return info.null_fraction if info is not None else DEFAULT_NULL_FRACTION

    def capped(self, rows: float) -> "_Cols":
        return _Cols({
            name: ColumnStats(min(info.n_distinct, max(rows, 1.0)),
                              info.null_fraction)
            for name, info in self.stats.items()
        })

    def merged(self, other: "_Cols") -> "_Cols":
        combined = dict(self.stats)
        combined.update(other.stats)
        return _Cols(combined)


class OperatorEstimate:
    """Estimated cardinality of one operator."""

    __slots__ = ("uid", "kind", "label", "rows_in", "rows_out", "source")

    def __init__(self, uid, kind, label, rows_in, rows_out, source):
        self.uid = uid
        self.kind = kind
        self.label = label
        self.rows_in = rows_in
        self.rows_out = rows_out
        #: where the output estimate came from: "observed" (feedback
        #: pinned it), "catalog" (table statistics), or "estimate"
        #: (selectivity rules over defaults).
        self.source = source

    def __repr__(self) -> str:
        return (
            f"OperatorEstimate({self.kind} {self.label!r}: "
            f"{self.rows_in:.0f} -> {self.rows_out:.0f} [{self.source}])"
        )


class GraphEstimate:
    """Every operator's and edge's estimated cardinality for one graph."""

    def __init__(self):
        self.operators: Dict[str, OperatorEstimate] = {}
        self.edges: Dict[str, float] = {}

    def rows_out(self, uid: str, default: float = 0.0) -> float:
        estimate = self.operators.get(uid)
        return estimate.rows_out if estimate is not None else default

    def edge_rows(self, name: str, default: float = 0.0) -> float:
        return self.edges.get(name, default)

    def __repr__(self) -> str:
        return f"GraphEstimate({len(self.operators)} operators)"


class CardinalityEstimator:
    """Walks an OHM graph predicting per-edge cardinalities."""

    def __init__(
        self,
        catalog: Optional[StatisticsCatalog] = None,
        default_rows: float = DEFAULT_ROWS,
    ):
        self.catalog = catalog
        self.default_rows = float(default_rows)

    # -- selectivity rules ---------------------------------------------------

    def selectivity(self, expr: Expr, cols: Optional[_Cols] = None,
                    rows: float = DEFAULT_ROWS) -> float:
        """The fraction of rows a predicate keeps, clamped to [0, 1]."""
        value = self._selectivity(expr, cols or _Cols(), rows)
        return min(1.0, max(0.0, value))

    def _eq_selectivity(self, left: Expr, right: Expr, cols: _Cols,
                        rows: float) -> float:
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            return 1.0 / max(
                cols.ndv(left.name, rows), cols.ndv(right.name, rows)
            )
        for side, other in ((left, right), (right, left)):
            if isinstance(side, ColumnRef) and isinstance(other, Literal):
                return 1.0 / cols.ndv(side.name, rows)
        return DEFAULT_EQ_SELECTIVITY

    def _selectivity(self, expr: Expr, cols: _Cols, rows: float) -> float:
        if isinstance(expr, Literal):
            if expr.value is None:
                return 0.0  # NULL is not true — WHERE filters it out
            return 1.0 if expr.value else 0.0
        if isinstance(expr, BinaryOp):
            op = expr.op
            if op == "AND":
                return (self.selectivity(expr.left, cols, rows)
                        * self.selectivity(expr.right, cols, rows))
            if op == "OR":
                left = self.selectivity(expr.left, cols, rows)
                right = self.selectivity(expr.right, cols, rows)
                return left + right - left * right
            if op == "=":
                return self._eq_selectivity(expr.left, expr.right, cols, rows)
            if op == "<>":
                return 1.0 - self._eq_selectivity(
                    expr.left, expr.right, cols, rows
                )
            if op in ("<", "<=", ">", ">="):
                return DEFAULT_RANGE_SELECTIVITY
            return DEFAULT_BOOL_SELECTIVITY
        if isinstance(expr, UnaryOp) and expr.op == "NOT":
            return 1.0 - self.selectivity(expr.operand, cols, rows)
        if isinstance(expr, IsNull):
            fraction = (
                cols.null_fraction(expr.operand.name)
                if isinstance(expr.operand, ColumnRef)
                else DEFAULT_NULL_FRACTION
            )
            return 1.0 - fraction if expr.negated else fraction
        if isinstance(expr, InList):
            each = (
                1.0 / cols.ndv(expr.operand.name, rows)
                if isinstance(expr.operand, ColumnRef)
                else DEFAULT_EQ_SELECTIVITY
            )
            hit = min(1.0, len(expr.items) * each)
            return 1.0 - hit if expr.negated else hit
        if isinstance(expr, Between):
            return (1.0 - BETWEEN_SELECTIVITY if expr.negated
                    else BETWEEN_SELECTIVITY)
        if isinstance(expr, Like):
            return 1.0 - LIKE_SELECTIVITY if expr.negated else LIKE_SELECTIVITY
        return DEFAULT_BOOL_SELECTIVITY

    # -- the graph walk ------------------------------------------------------

    def estimate_graph(self, graph: OhmGraph) -> GraphEstimate:
        """Estimate every operator's and edge's cardinality.

        The graph must have propagated schemas (callers that build one
        from scratch should run ``graph.propagate_schemas()`` first;
        the deployment pipeline already does)."""
        result = GraphEstimate()
        # (producer uid, port) → (rows, column knowledge)
        by_port: Dict[Tuple[str, int], Tuple[float, _Cols]] = {}
        for op in graph.topological_order():
            in_edges = graph.in_edges(op.uid)
            inputs = [
                by_port.get((e.src, e.src_port), (self.default_rows, _Cols()))
                for e in in_edges
            ]
            rows_in = sum(rows for rows, _cols in inputs)
            rows_out, cols, source = self._estimate_operator(op, inputs)
            # feedback beats estimation: a recorded actual for this
            # operator (by uid) or any of its out edges (by name) pins
            # the output cardinality
            if self.catalog is not None:
                observed = self.catalog.observed(op.uid)
                if observed is None:
                    for edge in graph.out_edges(op.uid):
                        observed = self.catalog.observed(edge.name)
                        if observed is not None:
                            break
                if observed is not None:
                    rows_out, source = float(observed), "observed"
                    cols = cols.capped(rows_out)
            result.operators[op.uid] = OperatorEstimate(
                op.uid, op.KIND, op.label, rows_in, rows_out, source
            )
            for edge in graph.out_edges(op.uid):
                by_port[(edge.src, edge.src_port)] = (rows_out, cols)
                result.edges[edge.name] = rows_out
        return result

    def _estimate_operator(
        self, op: Operator, inputs: List[Tuple[float, _Cols]]
    ) -> Tuple[float, _Cols, str]:
        if isinstance(op, Source):
            return self._estimate_source(op)
        if isinstance(op, Target):
            rows, cols = inputs[0] if inputs else (0.0, _Cols())
            return rows, cols, "estimate"
        if isinstance(op, Filter):
            rows, cols = inputs[0]
            kept = rows * self.selectivity(op.condition, cols, rows)
            return kept, cols.capped(kept), "estimate"
        if isinstance(op, Project):  # includes KeyGen & friends
            rows, cols = inputs[0]
            return rows, self._project_cols(op, rows, cols), "estimate"
        if isinstance(op, Join):
            return self._estimate_join(op, inputs)
        if isinstance(op, Union):
            rows = sum(r for r, _c in inputs)
            cols = _Cols()
            for _r, c in inputs:
                cols = cols.merged(c)
            if op.distinct:
                rows *= DEDUP_FACTOR
            return rows, cols.capped(rows), "estimate"
        if isinstance(op, Group):
            rows, cols = inputs[0]
            kept = self._distinct_of(op.keys, rows, cols)
            return kept, cols.capped(kept), "estimate"
        if isinstance(op, Nest):
            rows, cols = inputs[0]
            kept = self._distinct_of(op.keys, rows, cols)
            return kept, cols.capped(kept), "estimate"
        if isinstance(op, Unnest):
            rows, cols = inputs[0]
            grown = rows * UNNEST_FANOUT
            return grown, cols, "estimate"
        if isinstance(op, (Split, Unknown)):
            rows = sum(r for r, _c in inputs)
            cols = _Cols()
            for _r, c in inputs:
                cols = cols.merged(c)
            return rows, cols, "estimate"
        rows = sum(r for r, _c in inputs)
        return rows, _Cols(), "estimate"

    def _estimate_source(self, op: Source) -> Tuple[float, _Cols, str]:
        name = op.relation.name
        stats = self.catalog.table(name) if self.catalog is not None else None
        if stats is not None:
            rows = float(stats.row_count)
            cols = dict(stats.columns)
            source = "catalog"
        else:
            rows = self.default_rows
            cols = {}
            source = "estimate"
        # key attributes are unique by definition — even without a
        # sketch their distinct count is the row count
        for attribute in op.relation.attributes:
            if attribute.is_key and attribute.name not in cols:
                cols[attribute.name] = ColumnStats(rows, 0.0)
        return rows, _Cols(cols), source

    def _project_cols(self, op: Project, rows: float, cols: _Cols) -> _Cols:
        out: Dict[str, ColumnStats] = {}
        for name, expr in op.derivations:
            refs = expr.column_names() if hasattr(expr, "column_names") else []
            if isinstance(expr, ColumnRef):
                out[name] = ColumnStats(
                    cols.ndv(expr.name, rows), cols.null_fraction(expr.name)
                )
            elif len(refs) == 1:
                # a single-column derivation (UPPER(cat), amount + 1)
                # has at most its argument's distinct count
                out[name] = ColumnStats(
                    cols.ndv(refs[0], rows), cols.null_fraction(refs[0])
                )
            else:
                out[name] = ColumnStats(max(1.0, rows), 0.0)
        return _Cols(out)

    def _equi_keys(self, condition: Expr) -> List[Tuple[str, str]]:
        """The ``left.col = right.col`` conjunct pairs of a join
        condition (order as written; sides are resolved by name)."""
        pairs: List[Tuple[str, str]] = []

        def walk(expr: Expr) -> None:
            if isinstance(expr, BinaryOp):
                if expr.op == "AND":
                    walk(expr.left)
                    walk(expr.right)
                elif (expr.op == "=" and isinstance(expr.left, ColumnRef)
                        and isinstance(expr.right, ColumnRef)):
                    pairs.append((expr.left.name, expr.right.name))

        walk(condition)
        return pairs

    def _estimate_join(
        self, op: Join, inputs: List[Tuple[float, _Cols]]
    ) -> Tuple[float, _Cols, str]:
        (left_rows, left_cols), (right_rows, right_cols) = inputs
        pairs = self._equi_keys(op.condition)
        selectivity = 1.0
        if pairs:
            for left_name, right_name in pairs:
                ndv = max(
                    left_cols.ndv(left_name, left_rows),
                    right_cols.ndv(right_name, right_rows),
                    1.0,
                )
                selectivity /= ndv
        else:
            selectivity = self.selectivity(
                op.condition, left_cols.merged(right_cols),
                max(left_rows, right_rows),
            )
        rows = left_rows * right_rows * selectivity
        if op.kind in ("left", "full"):
            rows = max(rows, left_rows)
        if op.kind in ("right", "full"):
            rows = max(rows, right_rows)
        cols = left_cols.merged(right_cols).capped(rows)
        return rows, cols, "estimate"

    def _distinct_of(self, keys, rows: float, cols: _Cols) -> float:
        if rows <= 0:
            return 0.0
        if not keys:
            return 1.0  # a single all-rows group
        distinct = 1.0
        for key in keys:
            distinct *= cols.ndv(key, rows)
            if distinct >= rows:
                return rows
        return min(rows, max(1.0, distinct))


__all__ = [
    "BETWEEN_SELECTIVITY",
    "CardinalityEstimator",
    "DEDUP_FACTOR",
    "DEFAULT_BOOL_SELECTIVITY",
    "DEFAULT_EQ_SELECTIVITY",
    "DEFAULT_NDV_FRACTION",
    "DEFAULT_NULL_FRACTION",
    "DEFAULT_RANGE_SELECTIVITY",
    "DEFAULT_ROWS",
    "GraphEstimate",
    "LIKE_SELECTIVITY",
    "OperatorEstimate",
    "UNNEST_FANOUT",
]
