"""Span-based tracing for the translation pipeline.

A :class:`Tracer` records a tree of named :class:`Span`\\ s — one per
pipeline phase, compiled stage, executed operator … — each with
wall-clock timing and free-form attributes. The tree mirrors the call
structure (``compile.job`` contains one ``compile.stage.*`` span per
stage, ``ohm.run`` contains one ``ohm.op.*`` span per operator), which is
what makes a single quickstart run readable as a profile.

Conventions:

* span names are dotted lowercase paths, ``<layer>.<phase>[.<detail>]``
  (see ``docs/observability.md`` for the full catalogue);
* spans nest strictly: :meth:`Tracer.span` is a context manager and the
  innermost open span is the parent of the next one opened;
* the disabled default is :data:`NULL_TRACER`, whose :meth:`span` hands
  back a stateless singleton — instrumented code pays one attribute
  lookup and one no-op call, nothing else;
* a finished trace exports as JSON (:meth:`Tracer.to_json`, round-trips
  through :func:`tracer_from_json`) or as an indented text tree
  (:meth:`Tracer.to_text`).
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed region: a name, attributes, children, and a duration.

    :ivar name: dotted span name (``compile.stage.Filter``).
    :ivar attrs: free-form attributes (JSON-serializable values).
    :ivar children: spans opened while this one was the innermost.
    """

    __slots__ = ("name", "attrs", "children", "start_s", "end_s")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.children: List["Span"] = []
        self.start_s: float = 0.0
        self.end_s: Optional[float] = None

    @property
    def seconds(self) -> float:
        """Wall-clock duration; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) with the given name, depth-first."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        """Yield self and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(data["name"], data.get("attrs"))
        span.start_s = 0.0
        span.end_s = float(data.get("seconds", 0.0))
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.seconds * 1000:.3f}ms, "
            f"{len(self.children)} children)"
        )


class _SpanContext:
    """Context manager pushing/popping one span on a tracer's stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._pop(self.span)


class Tracer:
    """Collects a forest of spans for one pipeline run.

    Usage::

        tracer = Tracer()
        with tracer.span("compile.job", job="fig3") as outer:
            with tracer.span("compile.stage.Filter", stage="CheckBalance"):
                ...
        print(tracer.to_text())
    """

    enabled = True

    def __init__(self):
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a span; use as a context manager. The span closes (and
        its duration freezes) when the ``with`` block exits."""
        return _SpanContext(self, Span(name, attrs))

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        span.start_s = perf_counter()

    def _pop(self, span: Span) -> None:
        span.end_s = perf_counter()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def find(self, name: str) -> Optional[Span]:
        """First recorded span with the given name, depth-first."""
        for root in self.spans:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator[Span]:
        for root in self.spans:
            yield from root.walk()

    def to_dict(self) -> Dict[str, Any]:
        return {"trace": [span.to_dict() for span in self.spans]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_text(self) -> str:
        """The trace as an indented tree with millisecond durations."""
        lines: List[str] = []

        def render(span: Span, depth: int) -> None:
            attrs = ""
            if span.attrs:
                attrs = "  " + " ".join(
                    f"{k}={v}" for k, v in span.attrs.items()
                )
            lines.append(
                f"{'  ' * depth}{span.name}  "
                f"[{span.seconds * 1000:.3f}ms]{attrs}"
            )
            for child in span.children:
                render(child, depth + 1)

        for root in self.spans:
            render(root, 0)
        return "\n".join(lines) if lines else "(no spans recorded)"


class _NullSpan:
    """Stateless, reentrant stand-in for a span — safe as a singleton."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, Any] = {}
    children: List[Span] = []
    seconds = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-overhead default: every :meth:`span` call returns the
    same stateless singleton, nothing is recorded."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def find(self, name: str) -> None:
        return None

    def walk(self) -> Iterator[Span]:
        return iter(())

    @property
    def spans(self) -> List[Span]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {"trace": []}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_text(self) -> str:
        return "(tracing disabled)"


NULL_TRACER = NullTracer()


def tracer_from_json(text: str) -> Tracer:
    """Rebuild a (finished) tracer from its :meth:`Tracer.to_json`
    export; durations are preserved, absolute timestamps are not."""
    data = json.loads(text)
    tracer = Tracer()
    tracer.spans = [Span.from_dict(s) for s in data.get("trace", [])]
    return tracer


__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "tracer_from_json",
]
