"""The metrics registry: counters, gauges, and timers.

Where the tracer answers "what happened, in what order, how long did each
step take *this* run", the metrics registry accumulates the flat numbers
an ETL monitor would show (paper section VI): rows per link, rows in/out
per OHM operator, seconds per compile phase, rewrite-rule firings,
operators placed per runtime platform.

Conventions:

* metric names are dotted lowercase paths mirroring the span names,
  ending in the unit or quantity: ``etl.link.DSLink10.rows``,
  ``ohm.operator.FILTER_3.seconds``, ``rewrite.rule.merge-filters.fired``
  (see ``docs/observability.md``);
* **counters** are monotonically accumulated integers (:meth:`count`),
  **gauges** are last-write-wins floats (:meth:`gauge`), **timers**
  accumulate a call count and total seconds (:meth:`observe` /
  :meth:`timer`);
* the disabled default is :data:`NULL_METRICS`, whose methods are
  no-ops — instrumented code never branches on enablement;
* :meth:`Metrics.snapshot` is the canonical export: a plain dict with
  ``counters`` / ``gauges`` / ``timers`` sections, stable-sorted by
  name, serialized by :meth:`to_json` and pretty-printed by
  :meth:`to_text`.
"""

from __future__ import annotations

import json
from threading import Lock
from time import perf_counter
from typing import Any, Dict, List, Tuple

from repro.obs.tracer import NULL_SPAN, _NullSpan


class _TimerContext:
    """Context manager adding one observation to a timer on exit."""

    __slots__ = ("_metrics", "_name", "_start")

    def __init__(self, metrics: "Metrics", name: str):
        self._metrics = metrics
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._metrics.observe(self._name, perf_counter() - self._start)


class Metrics:
    """Accumulates counters, gauges, and timers for one pipeline run.

    Usage::

        metrics = Metrics()
        metrics.count("etl.link.DSLink1.rows", 200)
        metrics.gauge("deploy.pushdown.pushed_operators", 6)
        with metrics.timer("compile.phase.stages.seconds"):
            ...
        print(metrics.to_text())
    """

    enabled = True

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        # name -> [observation count, total seconds]
        self._timers: Dict[str, List[float]] = {}
        # parallel wavefronts and partitioned kernels record from worker
        # threads; a lock keeps read-modify-write accumulation exact
        self._lock = Lock()

    # -- recording -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Add one observation of ``seconds`` to the timer ``name``."""
        with self._lock:
            entry = self._timers.get(name)
            if entry is None:
                self._timers[name] = [1, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds

    def timer(self, name: str) -> _TimerContext:
        """Time a ``with`` block into the timer ``name``."""
        return _TimerContext(self, name)

    # -- reading -------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def timer_stats(self, name: str) -> Tuple[int, float]:
        """``(observation count, total seconds)`` for a timer."""
        entry = self._timers.get(name, [0, 0.0])
        return int(entry[0]), float(entry[1])

    @property
    def timers(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"count": int(entry[0]), "total_seconds": float(entry[1])}
            for name, entry in self._timers.items()
        }

    def snapshot(self) -> Dict[str, Any]:
        """The canonical export: every section, name-sorted."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": dict(sorted(self.timers.items())),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_text(self) -> str:
        """An aligned, sectioned table of every metric."""
        snap = self.snapshot()
        lines: List[str] = []
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(n) for n in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<{width}}  {value}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(n) for n in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<{width}}  {value}")
        if snap["timers"]:
            lines.append("timers:")
            width = max(len(n) for n in snap["timers"])
            for name, entry in snap["timers"].items():
                lines.append(
                    f"  {name:<{width}}  "
                    f"{entry['total_seconds'] * 1000:.3f}ms "
                    f"/ {entry['count']} calls"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


class NullMetrics:
    """The zero-overhead default: recording is a no-op, reads are empty."""

    enabled = False
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    timers: Dict[str, Dict[str, float]] = {}

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, seconds: float) -> None:
        pass

    def timer(self, name: str) -> _NullSpan:
        return NULL_SPAN

    def counter(self, name: str) -> int:
        return 0

    def timer_stats(self, name: str) -> Tuple[int, float]:
        return (0, 0.0)

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "timers": {}}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def to_text(self) -> str:
        return "(metrics disabled)"


NULL_METRICS = NullMetrics()


__all__ = ["Metrics", "NullMetrics", "NULL_METRICS"]
