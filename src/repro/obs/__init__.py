"""Pipeline-wide observability: tracing, metrics, and profiling.

The paper positions Orchid between an ETL monitor (section VI's
"statistics an ETL monitor would show") and a query optimizer — both of
which live and die by measurement. This package is the measurement
substrate for the whole reproduction: a span-based :class:`Tracer`
(:mod:`repro.obs.tracer`), a :class:`Metrics` registry of counters /
gauges / timers (:mod:`repro.obs.metrics`), and the
:class:`Observability` bundle that threads both through every layer —
the ETL engine, the OHM executor, the stage compilers, the rewrite
optimizer, and the deployment planners.

Conventions:

* every instrumented entry point accepts an optional ``obs`` argument;
  ``None`` means :data:`NULL_OBS`, whose tracer and metrics are
  stateless no-ops, so uninstrumented callers pay (almost) nothing;
* one :class:`Observability` instance spans one logical pipeline run —
  create it, pass it everywhere, then export with
  ``obs.tracer.to_text()`` / ``obs.metrics.to_json()``;
* span and metric names share one dotted-lowercase namespace documented
  in ``docs/observability.md``.

Usage::

    from repro.obs import Observability

    obs = Observability(trace=True, stats=True)
    graph = Orchid(obs=obs).import_etl(job)
    print(obs.tracer.to_text())    # the profile of this compile
    print(obs.metrics.to_json())   # the monitor numbers
"""

from __future__ import annotations

from repro.obs.metrics import Metrics, NullMetrics, NULL_METRICS
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    tracer_from_json,
)


class Observability:
    """A tracer and a metrics registry travelling together.

    :ivar tracer: a :class:`Tracer`, or :data:`NULL_TRACER` when
        ``trace=False``.
    :ivar metrics: a :class:`Metrics`, or :data:`NULL_METRICS` when
        ``stats=False``.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(self, trace: bool = False, stats: bool = False):
        self.tracer = Tracer() if trace else NULL_TRACER
        self.metrics = Metrics() if stats else NULL_METRICS

    @property
    def enabled(self) -> bool:
        """Whether anything at all is being recorded."""
        return self.tracer.enabled or self.metrics.enabled

    def __repr__(self) -> str:
        return (
            f"Observability(trace={self.tracer.enabled}, "
            f"stats={self.metrics.enabled})"
        )


#: the shared disabled default — safe to use from any number of callers
#: concurrently because none of its components hold state.
NULL_OBS = Observability()


__all__ = [
    "Observability",
    "NULL_OBS",
    "Tracer",
    "NullTracer",
    "Span",
    "tracer_from_json",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
]
