"""The Operator Hub Model (OHM) — paper section IV.

An OHM instance is a directed graph of abstract operators — "an extension
of relational algebra with extra operators and meta-data annotations" —
serving as the product-independent hub between ETL jobs and schema
mappings. This package provides the operator taxonomy, the dataflow graph
with schema-annotated edges, and a reference execution engine used to
verify semantics preservation.
"""

from repro.ohm.engine import OhmExecutor, execute, execute_with_edges
from repro.ohm.graph import Edge, OhmGraph
from repro.ohm.jsonio import graph_from_json, graph_to_json, read_graph, write_graph
from repro.ohm.operators import (
    Filter,
    Group,
    Join,
    Nest,
    Operator,
    Project,
    Source,
    Split,
    Target,
    Union,
    Unknown,
    Unnest,
)
from repro.ohm.subtypes import (
    BasicProject,
    ColumnMerge,
    ColumnSplit,
    KeyGen,
    reset_keygen_sequences,
)

__all__ = [
    "OhmExecutor",
    "execute",
    "execute_with_edges",
    "Edge",
    "OhmGraph",
    "graph_from_json",
    "graph_to_json",
    "read_graph",
    "write_graph",
    "Filter",
    "Group",
    "Join",
    "Nest",
    "Operator",
    "Project",
    "Source",
    "Split",
    "Target",
    "Union",
    "Unknown",
    "Unnest",
    "BasicProject",
    "ColumnMerge",
    "ColumnSplit",
    "KeyGen",
    "reset_keygen_sequences",
]
