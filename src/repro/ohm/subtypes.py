"""Refined PROJECT variants — OHM operator subtyping (paper section IV).

"An operator subtype may introduce additional semantics by defining how
new properties are reflected into inherited properties ... a refined
operator must be a specialization of its more generic base operator. That
is, its behavior must be realizable by the base operator. Consequently,
rewrite rules that apply to a base operator also apply to any refined
variant."

Each subtype here constructs the derivations of its PROJECT base from its
own refined properties, so the OHM engine, schema propagation, rewrites,
and the mapping generator all treat it as a PROJECT; ``as_base_project``
materializes the generalization explicitly (used by a property test to
assert behavioural equality).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.expr.ast import ColumnRef, Expr, FunctionCall, Literal
from repro.expr.functions import DEFAULT_REGISTRY, register
from repro.ohm.operators import Project
from repro.schema.model import Relation
from repro.schema.types import INTEGER, STRING

# SPLIT_PART / surrogate-key support functions used by the subtypes'
# inherited derivations. Registered once at import.
if not DEFAULT_REGISTRY.knows("SPLIT_PART"):
    register(
        "SPLIT_PART",
        lambda s, delim, n: (s.split(delim) + [""] * n)[n - 1],
        STRING,
        3,
    )

_keygen_sequences = {}


def _next_key(sequence: str, start: int) -> int:
    value = _keygen_sequences.get(sequence, start)
    _keygen_sequences[sequence] = value + 1
    return value


def reset_keygen_sequences() -> None:
    """Reset all surrogate-key counters (tests and repeated runs)."""
    _keygen_sequences.clear()


class BasicProject(Project):
    """"BASIC PROJECT permits only renaming and dropping columns, and does
    not support complex transformations or data type changes."

    ``columns`` is a list of ``(output_name, input_name)`` pairs.
    """

    KIND = "BASIC PROJECT"

    def __init__(self, columns: Sequence[Tuple[str, str]], **kwargs):
        if not columns:
            raise ValidationError("BASIC PROJECT requires at least one column")
        self.columns = [(str(out), str(src)) for out, src in columns]
        derivations = [
            (out, ColumnRef(src)) for out, src in self.columns
        ]
        super().__init__(derivations, **kwargs)

    @classmethod
    def identity(cls, relation: Relation, **kwargs) -> "BasicProject":
        """The pass-everything-through projection over ``relation`` — the
        'redundant (i.e., empty) operator' shape stage compilers may emit."""
        return cls([(a.name, a.name) for a in relation], **kwargs)

    @classmethod
    def keep(cls, names: Sequence[str], **kwargs) -> "BasicProject":
        """Keep exactly ``names``, unrenamed."""
        return cls([(n, n) for n in names], **kwargs)

    def as_base_project(self) -> Project:
        """The PROJECT generalization with identical behaviour."""
        return Project(list(self.derivations), label=self.label)

    def describe_properties(self):
        return {"columns": dict(self.columns)}


class KeyGen(Project):
    """"KEYGEN introduces and populates a new surrogate key column in the
    output dataset."

    All input columns pass through; ``key_column`` is appended and
    populated from a named monotone sequence starting at ``start``.
    Schema-wise this is a PROJECT whose extra derivation is the opaque
    ``NEXT_SURROGATE_KEY(sequence)`` function; the OHM engine recognizes
    and executes it, and deployment maps it onto a SurrogateKey stage.
    """

    KIND = "KEYGEN"

    def __init__(
        self,
        key_column: str,
        sequence: Optional[str] = None,
        start: int = 1,
        passthrough: Optional[Sequence[str]] = None,
        **kwargs,
    ):
        self.key_column = key_column
        self.sequence = sequence or key_column
        self.start = int(start)
        self._passthrough = list(passthrough) if passthrough is not None else None
        derivations: List[Tuple[str, Expr]] = []
        if self._passthrough is not None:
            derivations = [(name, ColumnRef(name)) for name in self._passthrough]
        derivations.append(
            (
                key_column,
                FunctionCall("NEXT_SURROGATE_KEY", [Literal(self.sequence)]),
            )
        )
        super().__init__(derivations, **kwargs)
        _keygen_sequences.setdefault(self.sequence, self.start)

    def validate(self, inputs: Sequence[Relation]) -> None:
        (incoming,) = inputs
        if incoming.has_attribute(self.key_column):
            raise ValidationError(
                f"KEYGEN: input already has column {self.key_column!r}"
            )
        if self._passthrough is None:
            # late-bind passthrough to the actual input columns
            self.derivations = [
                (a.name, ColumnRef(a.name)) for a in incoming
            ] + [self.derivations[-1]]
            self._passthrough = list(incoming.attribute_names)
        super().validate(inputs)

    def as_base_project(self) -> Project:
        return Project(list(self.derivations), label=self.label)

    def describe_properties(self):
        return {"key_column": self.key_column, "sequence": self.sequence}


if not DEFAULT_REGISTRY.knows("NEXT_SURROGATE_KEY"):
    register(
        "NEXT_SURROGATE_KEY",
        lambda sequence: _next_key(sequence, 1),
        INTEGER,
        1,
        null_propagating=False,
    )


class ColumnSplit(Project):
    """"COLUMN SPLIT ... split[s] the content of a single column into
    multiple output columns" by a delimiter; all other columns pass
    through, the source column is replaced by its parts."""

    KIND = "COLUMN SPLIT"

    def __init__(
        self,
        source: str,
        targets: Sequence[str],
        delimiter: str,
        passthrough: Sequence[str] = (),
        **kwargs,
    ):
        if len(targets) < 2:
            raise ValidationError("COLUMN SPLIT needs at least two targets")
        self.source = source
        self.targets = list(targets)
        self.delimiter = delimiter
        self.passthrough = list(passthrough)
        derivations: List[Tuple[str, Expr]] = [
            (name, ColumnRef(name)) for name in self.passthrough
        ]
        derivations += [
            (
                target,
                FunctionCall(
                    "SPLIT_PART",
                    [ColumnRef(source), Literal(delimiter), Literal(i + 1)],
                ),
            )
            for i, target in enumerate(self.targets)
        ]
        super().__init__(derivations, **kwargs)

    def as_base_project(self) -> Project:
        return Project(list(self.derivations), label=self.label)

    def describe_properties(self):
        return {
            "source": self.source,
            "targets": self.targets,
            "delimiter": self.delimiter,
        }


class ColumnMerge(Project):
    """"COLUMN MERGE" — the inverse pair of COLUMN SPLIT: concatenates
    several input columns into one output column with a delimiter."""

    KIND = "COLUMN MERGE"

    def __init__(
        self,
        sources: Sequence[str],
        target: str,
        delimiter: str,
        passthrough: Sequence[str] = (),
        **kwargs,
    ):
        if len(sources) < 2:
            raise ValidationError("COLUMN MERGE needs at least two sources")
        self.sources = list(sources)
        self.target = target
        self.delimiter = delimiter
        self.passthrough = list(passthrough)
        merged: Expr = ColumnRef(self.sources[0])
        for source in self.sources[1:]:
            merged = FunctionCall(
                "CONCAT", [merged, Literal(delimiter), ColumnRef(source)]
            )
        derivations: List[Tuple[str, Expr]] = [
            (name, ColumnRef(name)) for name in self.passthrough
        ]
        derivations.append((target, merged))
        super().__init__(derivations, **kwargs)

    def as_base_project(self) -> Project:
        return Project(list(self.derivations), label=self.label)

    def describe_properties(self):
        return {
            "sources": self.sources,
            "target": self.target,
            "delimiter": self.delimiter,
        }


__all__ = [
    "BasicProject",
    "KeyGen",
    "ColumnSplit",
    "ColumnMerge",
    "reset_keygen_sequences",
]
