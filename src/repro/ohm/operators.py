"""The Operator Hub Model's abstract operators (paper section IV, Figure 2).

"The set of operators currently defined in OHM includes well-known
generalizations of the traditional relational algebra operators such as
selection (FILTER), PROJECT, JOIN, UNION, and GROUP ..., but also supports
nested data structures through the NEST and UNNEST operators ... OHM
includes a SPLIT operator, whose only task is to copy the input data to
one or more outputs" — plus the catch-all UNKNOWN for ETL stages whose
semantics mapping systems cannot express.

Operator *subtypes* (BASIC PROJECT, KEYGEN, COLUMN SPLIT, COLUMN MERGE)
live in :mod:`repro.ohm.subtypes`; SOURCE/TARGET access operators anchor a
graph to named external relations.

Each operator:

* declares its input/output port multiplicity,
* validates its properties against the input schemas (``validate``),
* computes its output schemas (``output_relations``) — this is what
  annotates OHM edges with "the schema of the data flowing along it".

Execution semantics live in :mod:`repro.ohm.engine` so the model stays a
pure description, as in the paper.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ValidationError
from repro.expr.ast import AggregateCall, ColumnRef, Expr
from repro.expr.parser import parse
from repro.expr.typecheck import TypeContext, check_boolean, infer_type
from repro.schema.model import Attribute, Relation
from repro.schema.types import BOOLEAN, INTEGER, RecordType, SetType

_id_counter = itertools.count(1)


def _fresh_id(prefix: str) -> str:
    return f"{prefix.lower()}_{next(_id_counter)}"


def _as_expr(expr: Union[Expr, str]) -> Expr:
    return expr if isinstance(expr, Expr) else parse(expr)


class Operator:
    """Base class of all OHM operators.

    :ivar uid: graph-unique identifier (auto-generated when omitted).
    :ivar label: human-readable label, typically inherited from the ETL
        stage or mapping the operator was compiled from.
    :ivar annotations: free-form key→string metadata; FastTrack uses this
        to carry business-rule text onto generated stages (paper §I).
    """

    #: OHM operator kind, UPPERCASE as the paper writes them.
    KIND = "ABSTRACT"
    min_inputs = 1
    max_inputs: Optional[int] = 1
    min_outputs = 1
    max_outputs: Optional[int] = 1

    def __init__(
        self,
        uid: Optional[str] = None,
        label: Optional[str] = None,
        annotations: Optional[Dict[str, str]] = None,
    ):
        self.uid = uid or _fresh_id(self.KIND.replace(" ", "_"))
        self.label = label or self.KIND
        self.annotations: Dict[str, str] = dict(annotations or {})

    # -- multiplicity -------------------------------------------------------

    def check_port_counts(self, n_inputs: int, n_outputs: int) -> None:
        if n_inputs < self.min_inputs or (
            self.max_inputs is not None and n_inputs > self.max_inputs
        ):
            raise ValidationError(
                f"{self.KIND} {self.uid}: {n_inputs} inputs out of range "
                f"[{self.min_inputs}, {self.max_inputs}]"
            )
        if n_outputs < self.min_outputs or (
            self.max_outputs is not None and n_outputs > self.max_outputs
        ):
            raise ValidationError(
                f"{self.KIND} {self.uid}: {n_outputs} outputs out of range "
                f"[{self.min_outputs}, {self.max_outputs}]"
            )

    # -- schema interface ---------------------------------------------------

    def validate(self, inputs: Sequence[Relation]) -> None:
        """Check operator properties against the input schemas; raises
        :class:`ValidationError` when ill-formed."""

    def output_relations(
        self, inputs: Sequence[Relation], out_names: Sequence[str]
    ) -> List[Relation]:
        """Schemas of each output edge, named by ``out_names`` (edge/link
        names, e.g. ``DSLink10``)."""
        raise NotImplementedError

    def describe_properties(self) -> Dict[str, object]:
        """Displayable summary of the operator's properties."""
        return {}

    def __repr__(self) -> str:
        props = self.describe_properties()
        inner = ", ".join(f"{k}={v}" for k, v in props.items())
        return f"{self.KIND}[{self.uid}]({inner})"


class Source(Operator):
    """Access operator anchoring the graph to an external source relation.

    ``provider`` optionally supplies the data directly (a zero-argument
    callable returning a :class:`~repro.data.dataset.Dataset`); the engine
    uses it when the run instance does not contain the relation — this is
    how generated-data stages (RowGenerator) compile.
    """

    KIND = "SOURCE"
    min_inputs = 0
    max_inputs = 0

    def __init__(self, relation: Relation, provider=None, **kwargs):
        kwargs.setdefault("label", relation.name)
        super().__init__(**kwargs)
        self.relation = relation
        self.provider = provider

    def output_relations(self, inputs, out_names):
        return [self.relation.renamed(name) for name in out_names]

    def describe_properties(self):
        return {"relation": self.relation.name}


class Target(Operator):
    """Access operator delivering data into an external target relation."""

    KIND = "TARGET"
    min_outputs = 0
    max_outputs = 0

    def __init__(self, relation: Relation, **kwargs):
        kwargs.setdefault("label", relation.name)
        super().__init__(**kwargs)
        self.relation = relation

    def validate(self, inputs: Sequence[Relation]) -> None:
        (incoming,) = inputs
        for attr in self.relation:
            if not incoming.has_attribute(attr.name):
                raise ValidationError(
                    f"TARGET {self.relation.name!r}: incoming data lacks "
                    f"column {attr.name!r} (has {list(incoming.attribute_names)})"
                )
            incoming_attr = incoming.attribute(attr.name)
            if not attr.dtype.accepts(incoming_attr.dtype):
                raise ValidationError(
                    f"TARGET {self.relation.name}.{attr.name}: cannot accept "
                    f"{incoming_attr.dtype!r}"
                )

    def output_relations(self, inputs, out_names):
        return []

    def describe_properties(self):
        return {"relation": self.relation.name}


class Filter(Operator):
    """Selection: passes rows whose condition evaluates to true."""

    KIND = "FILTER"

    def __init__(self, condition: Union[Expr, str], **kwargs):
        super().__init__(**kwargs)
        self.condition = _as_expr(condition)

    def validate(self, inputs: Sequence[Relation]) -> None:
        (incoming,) = inputs
        context = TypeContext(incoming).bind(incoming.name, incoming)
        check_boolean(self.condition, context)

    def output_relations(self, inputs, out_names):
        (incoming,) = inputs
        return [incoming.renamed(out_names[0])]

    def describe_properties(self):
        return {"condition": self.condition.to_sql()}


class Project(Operator):
    """Generalized projection: each output column is derived from an
    arbitrary scalar expression over the input columns ("similar to the
    expressions supported in the select-list of a SQL select statement")."""

    KIND = "PROJECT"

    def __init__(
        self,
        derivations: Sequence[Tuple[str, Union[Expr, str]]],
        **kwargs,
    ):
        super().__init__(**kwargs)
        if not derivations:
            raise ValidationError("PROJECT requires at least one derivation")
        self.derivations: List[Tuple[str, Expr]] = []
        seen = set()
        for out_name, expr in derivations:
            if out_name in seen:
                raise ValidationError(
                    f"PROJECT: duplicate output column {out_name!r}"
                )
            seen.add(out_name)
            self.derivations.append((out_name, _as_expr(expr)))

    def validate(self, inputs: Sequence[Relation]) -> None:
        (incoming,) = inputs
        context = TypeContext(incoming).bind(incoming.name, incoming)
        for out_name, expr in self.derivations:
            infer_type(expr, context)

    def output_relations(self, inputs, out_names):
        (incoming,) = inputs
        context = TypeContext(incoming).bind(incoming.name, incoming)
        attrs = []
        for out_name, expr in self.derivations:
            source = self._resolve_plain_ref(expr, incoming)
            if source is not None:
                # a pure column passthrough keeps its nullability/key data
                attrs.append(source.renamed(out_name))
            else:
                attrs.append(Attribute(out_name, infer_type(expr, context)))
        return [Relation(out_names[0], attrs)]

    @staticmethod
    def _resolve_plain_ref(expr, incoming: Relation):
        """The input attribute a ColumnRef derivation copies, or None."""
        if not isinstance(expr, ColumnRef):
            return None
        candidates = [expr.name]
        if expr.qualifier is not None:
            candidates.insert(0, f"{expr.qualifier}.{expr.name}")
        for name in candidates:
            if incoming.has_attribute(name):
                return incoming.attribute(name)
        return None

    def describe_properties(self):
        return {
            "derivations": {
                name: expr.to_sql() for name, expr in self.derivations
            }
        }

    def is_identity_for(self, incoming: Relation) -> bool:
        """True when this projection just passes every input column
        through unchanged — the "redundant (i.e., empty) operators" the
        paper lets stage compilers generate and a rewrite later removes."""
        if len(self.derivations) != len(incoming.attributes):
            return False
        return all(
            isinstance(expr, ColumnRef)
            and expr.name == out_name
            and out_name == attr.name
            for (out_name, expr), attr in zip(
                self.derivations, incoming.attributes
            )
        )


class Join(Operator):
    """Binary join with a boolean condition. ``kind`` is one of
    ``inner``/``left``/``right``/``full`` (DataStage's Join stage offers
    all four)."""

    KIND = "JOIN"
    min_inputs = 2
    max_inputs = 2

    JOIN_KINDS = ("inner", "left", "right", "full")

    def __init__(self, condition: Union[Expr, str], kind: str = "inner", **kwargs):
        super().__init__(**kwargs)
        self.condition = _as_expr(condition)
        kind = kind.lower()
        if kind not in self.JOIN_KINDS:
            raise ValidationError(f"unknown join kind {kind!r}")
        self.kind = kind

    def validate(self, inputs: Sequence[Relation]) -> None:
        left, right = inputs
        context = TypeContext()
        context.bind(left.name, left)
        context.bind(right.name, right)
        check_boolean(self.condition, context)

    @staticmethod
    def joined_attributes(
        left: Relation, right: Relation
    ) -> List[Tuple[Attribute, str, str]]:
        """Concatenated ``(attribute, side, source column)`` triples; name
        collisions become dotted names qualified by the input relation
        names (``Customers.customerID``), which the expression layer
        resolves transparently. ``source column`` is the column's name in
        its input relation (it differs from the attribute name exactly
        when the collision renaming applied)."""
        collisions = set(left.attribute_names) & set(right.attribute_names)
        attrs: List[Tuple[Attribute, str, str]] = []
        for rel, side in ((left, "left"), (right, "right")):
            for attr in rel:
                if attr.name in collisions:
                    attrs.append(
                        (attr.renamed(f"{rel.name}.{attr.name}"), side, attr.name)
                    )
                else:
                    attrs.append((attr, side, attr.name))
        return attrs

    def output_relations(self, inputs, out_names):
        left, right = inputs
        nullable_sides = {
            "inner": (),
            "left": ("right",),
            "right": ("left",),
            "full": ("left", "right"),
        }[self.kind]
        attrs = [
            attr.as_nullable() if side in nullable_sides else attr
            for attr, side, _source in self.joined_attributes(left, right)
        ]
        return [Relation(out_names[0], attrs)]

    def describe_properties(self):
        return {"condition": self.condition.to_sql(), "kind": self.kind}


class Union(Operator):
    """N-ary bag union of union-compatible inputs; ``distinct`` adds
    duplicate elimination (an operation that, like GROUP, blocks mapping
    composition)."""

    KIND = "UNION"
    min_inputs = 2
    max_inputs = None

    def __init__(self, distinct: bool = False, **kwargs):
        super().__init__(**kwargs)
        self.distinct = bool(distinct)

    def validate(self, inputs: Sequence[Relation]) -> None:
        first = inputs[0]
        for other in inputs[1:]:
            if not first.is_union_compatible(other):
                raise ValidationError(
                    f"UNION inputs {first.name!r} and {other.name!r} are not "
                    "union-compatible"
                )

    def output_relations(self, inputs, out_names):
        return [inputs[0].renamed(out_names[0])]

    def describe_properties(self):
        return {"distinct": self.distinct}


class Group(Operator):
    """Grouping with aggregation (and, with no aggregates, duplicate
    elimination). Output columns are the grouping keys followed by the
    aggregate result columns."""

    KIND = "GROUP"

    def __init__(
        self,
        keys: Sequence[str],
        aggregates: Sequence[Tuple[str, Union[AggregateCall, str]]] = (),
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.keys = list(keys)
        self.aggregates: List[Tuple[str, AggregateCall]] = []
        for out_name, agg in aggregates:
            if isinstance(agg, str):
                agg = parse(agg)
            if not isinstance(agg, AggregateCall):
                raise ValidationError(
                    f"GROUP aggregate {out_name!r} must be an aggregate call, "
                    f"got {agg!r}"
                )
            self.aggregates.append((out_name, agg))
        if not self.keys and not self.aggregates:
            raise ValidationError("GROUP requires keys and/or aggregates")
        out_cols = self.keys + [name for name, _ in self.aggregates]
        if len(set(out_cols)) != len(out_cols):
            raise ValidationError(f"GROUP output columns collide: {out_cols}")

    def validate(self, inputs: Sequence[Relation]) -> None:
        (incoming,) = inputs
        for key in self.keys:
            incoming.attribute(key)
        context = TypeContext(incoming).bind(incoming.name, incoming)
        for _name, agg in self.aggregates:
            infer_type(agg, context, allow_aggregates=True)

    def output_relations(self, inputs, out_names):
        (incoming,) = inputs
        context = TypeContext(incoming).bind(incoming.name, incoming)
        attrs = [incoming.attribute(k) for k in self.keys]
        for name, agg in self.aggregates:
            dtype = infer_type(agg, context, allow_aggregates=True)
            # groups are never empty, so an aggregate is only nullable
            # when its argument can be NULL (COUNT never is)
            if agg.func == "COUNT":
                nullable = False
            elif isinstance(agg.arg, ColumnRef) and incoming.has_attribute(
                agg.arg.name
            ):
                nullable = incoming.attribute(agg.arg.name).nullable
            else:
                nullable = True
            attrs.append(Attribute(name, dtype, nullable=nullable))
        return [Relation(out_names[0], attrs)]

    @property
    def eliminates_duplicates(self) -> bool:
        return True

    def describe_properties(self):
        return {
            "keys": self.keys,
            "aggregates": {n: a.to_sql() for n, a in self.aggregates},
        }


class Split(Operator):
    """Copies its input unchanged to each of its outputs — "the same data
    in a complex data flow may need to be processed by multiple subsequent
    operators"."""

    KIND = "SPLIT"
    min_outputs = 1
    max_outputs = None

    def output_relations(self, inputs, out_names):
        (incoming,) = inputs
        return [incoming.renamed(name) for name in out_names]


class Nest(Operator):
    """NF² nest: groups by ``keys`` and packs the remaining ``nested``
    columns of each group into a set-valued attribute ``into``."""

    KIND = "NEST"

    def __init__(
        self, keys: Sequence[str], nested: Sequence[str], into: str, **kwargs
    ):
        super().__init__(**kwargs)
        self.keys = list(keys)
        self.nested = list(nested)
        self.into = into
        if not self.keys:
            raise ValidationError("NEST requires at least one key column")
        if not self.nested:
            raise ValidationError("NEST requires at least one nested column")
        if into in self.keys:
            raise ValidationError(f"NEST: {into!r} collides with a key column")

    def validate(self, inputs: Sequence[Relation]) -> None:
        (incoming,) = inputs
        for col in self.keys + self.nested:
            incoming.attribute(col)

    def output_relations(self, inputs, out_names):
        (incoming,) = inputs
        element = RecordType(
            (c, incoming.attribute(c).dtype) for c in self.nested
        )
        attrs = [incoming.attribute(k) for k in self.keys]
        attrs.append(Attribute(self.into, SetType(element), nullable=False))
        return [Relation(out_names[0], attrs)]

    def describe_properties(self):
        return {"keys": self.keys, "nested": self.nested, "into": self.into}


class Unnest(Operator):
    """NF² unnest: flattens the set-valued attribute ``attr`` — one output
    row per element, carrying the other columns alongside the element's
    fields. Rows with an empty (or NULL) set produce no output rows."""

    KIND = "UNNEST"

    def __init__(self, attr: str, **kwargs):
        super().__init__(**kwargs)
        self.attr = attr

    def validate(self, inputs: Sequence[Relation]) -> None:
        (incoming,) = inputs
        set_attr = incoming.attribute(self.attr)
        if not isinstance(set_attr.dtype, SetType) or not isinstance(
            set_attr.dtype.element_type, RecordType
        ):
            raise ValidationError(
                f"UNNEST: {self.attr!r} must be a set of records, "
                f"got {set_attr.dtype!r}"
            )

    def output_relations(self, inputs, out_names):
        (incoming,) = inputs
        element: RecordType = incoming.attribute(self.attr).dtype.element_type
        attrs = [a for a in incoming if a.name != self.attr]
        attrs += [Attribute(name, dtype) for name, dtype in element.fields]
        return [Relation(out_names[0], attrs)]

    def describe_properties(self):
        return {"attr": self.attr}


class Unknown(Operator):
    """Catch-all for complex/custom ETL operations that have no mapping
    counterpart; "we may not know the transformation semantics of the
    operator but we at least know what are the input and output types".

    ``reference`` names the original ETL stage; ``executor`` optionally
    carries the stage's original behaviour so OHM graphs containing
    UNKNOWN remain executable for verification.
    """

    KIND = "UNKNOWN"
    min_inputs = 1
    max_inputs = None
    min_outputs = 1
    max_outputs = None

    def __init__(
        self,
        output_schemas: Sequence[Relation],
        reference: str,
        executor=None,
        **kwargs,
    ):
        kwargs.setdefault("label", reference)
        super().__init__(**kwargs)
        if not output_schemas:
            raise ValidationError("UNKNOWN requires declared output schemas")
        self.output_schemas = list(output_schemas)
        self.reference = reference
        self.executor = executor

    def output_relations(self, inputs, out_names):
        if len(out_names) != len(self.output_schemas):
            raise ValidationError(
                f"UNKNOWN {self.reference!r} declares "
                f"{len(self.output_schemas)} outputs, graph wires "
                f"{len(out_names)}"
            )
        return [
            schema.renamed(name)
            for schema, name in zip(self.output_schemas, out_names)
        ]

    def describe_properties(self):
        return {"reference": self.reference}


__all__ = [
    "Operator",
    "Source",
    "Target",
    "Filter",
    "Project",
    "Join",
    "Union",
    "Group",
    "Split",
    "Nest",
    "Unnest",
    "Unknown",
]
