"""OHM dataflow graphs.

"Formally, an OHM instance is a directed graph of abstract operator
nodes. The graph represents a dataflow with data flowing in the direction
of the edges. Each node ... is annotated with the information needed to
capture the transformation semantics ... Each edge in the graph is
annotated with the schema of the data flowing along it."

The graph machinery (ports, edges, topological analysis, schema
propagation) is shared with ETL jobs through
:class:`repro.dataflow.DataflowGraph`; this subclass adds the
operator-specific vocabulary.
"""

from __future__ import annotations

from typing import List

from repro.dataflow import DataflowGraph, Edge
from repro.ohm.operators import Operator, Source, Target

__all__ = ["Edge", "OhmGraph"]


class OhmGraph(DataflowGraph[Operator]):
    """A directed acyclic graph of OHM operators."""

    node_noun = "operator"

    def __init__(self, name: str = "ohm"):
        super().__init__(name)

    # operator-flavoured aliases ------------------------------------------------

    @property
    def operators(self) -> List[Operator]:
        return self.nodes

    def operator(self, uid: str) -> Operator:
        return self.node(uid)

    def remove_operator(self, uid: str) -> None:
        self.remove_node(uid)

    def sources(self) -> List[Source]:
        return [op for op in self.nodes if isinstance(op, Source)]

    def targets(self) -> List[Target]:
        return [op for op in self.nodes if isinstance(op, Target)]

    def operators_of_kind(self, kind: str) -> List[Operator]:
        return [op for op in self.nodes if op.KIND == kind]

    def to_dot(self) -> str:
        """GraphViz rendering with operator properties on labels."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for op in self.nodes:
            props = op.describe_properties()
            detail = str(next(iter(props.values()))) if props else ""
            label = f"{op.KIND}\\n{detail}" if detail else op.KIND
            shape = "box" if op.KIND in ("SOURCE", "TARGET") else "ellipse"
            lines.append(f'  "{op.uid}" [label="{label}", shape={shape}];')
        for edge in self.edges:
            lines.append(f'  "{edge.src}" -> "{edge.dst}" [label="{edge.name}"];')
        lines.append("}")
        return "\n".join(lines)
