"""Reference execution engine for OHM graphs.

The paper treats OHM as a description to be *deployed*; this engine gives
OHM a direct executable semantics so the reproduction can verify that
every translation (ETL→OHM, OHM→mappings, mappings→OHM, OHM→deployment)
preserves transformation semantics on actual data — the three-way checks
in the integration tests.

Row work is dispatched onto the shared kernels in
:mod:`repro.exec.kernels`; expressions are lowered once per operator by
an :class:`~repro.exec.ExpressionPlanner` (pass ``compiled=False`` to
fall back to the tree-walking interpreter, the semantic oracle). With
``batched=True`` the executor routes block-capable operators (FILTER,
PROJECT, JOIN, UNION, GROUP, SPLIT, TARGET) through the columnar
kernels in :mod:`repro.exec.block`, falling back per operator to the
row kernels whenever an expression cannot be lowered column-wise;
row-shaped operators (NEST, UNNEST, UNKNOWN) always take the row path.
On top of batched mode, ``fused`` (default on, ``REPRO_FUSE=0`` to
disable) chains FILTER/PROJECT/SPLIT selection-vector style through
:mod:`repro.exec.fuse`: filters narrow an index list instead of
gathering, projections rename or compute handles lazily, and columns
materialize once — at a GROUP terminal, a chain breaker (JOIN, UNION,
NEST/UNNEST), or TARGET delivery, which gathers only the target's
columns.

Conventions:

* expressions inside operators reference columns unqualified or qualified
  by the *input edge name* (which is also the input schema's relation
  name after propagation);
* JOIN merges rows, renaming colliding columns to
  ``<input-edge-name>.<column>`` as computed by
  :meth:`repro.ohm.operators.Join.joined_attributes`;
* GROUP treats NULL key values as equal (SQL GROUP BY behaviour);
* a row whose FILTER predicate is *unknown* is dropped (SQL WHERE).

Passing an :class:`~repro.obs.Observability` profiles the run: one
``ohm.op.<KIND>`` span per executed operator under an ``ohm.run`` root,
plus per-operator metrics ``ohm.operator.<uid>.rows_in`` /
``.rows_out`` (counters) and ``.seconds`` (timer) — the row/timing
numbers a query-plan monitor would show for the abstract layer — and
the per-kernel ``exec.kernel.*`` row counts.

Fault tolerance mirrors the ETL engine (``docs/robustness.md``): an
``on_error`` policy (``fail_fast`` / ``skip`` / ``reject``) absorbs
row-level expression errors in FILTER, PROJECT, and TARGET delivery;
:meth:`OhmExecutor.run_with_rejects` additionally returns the rejected
rows as a reject :class:`~repro.data.dataset.Dataset`. A failing tier
(a fused chain, then a batched kernel, then the compiled row kernels)
degrades per operator down to the interpreting oracle, counted in
``exec.degrade.*``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.data.dataset import Dataset, Instance, Row
from repro.errors import STATIC_ERRORS, ExecutionError, RunCancelled
from repro.exec import (
    ExpressionPlanner,
    block,
    degrade_counter,
    fuse,
    kernels,
    resolve_parallel,
)
from repro.exec.block import relation_resolver
from repro.exec.parallel import WorkerUnavailable, topological_waves
from repro.expr.ast import ColumnRef
from repro.expr.functions import DEFAULT_REGISTRY, FunctionRegistry
from repro.obs import NULL_OBS, Observability
from repro.ohm.graph import OhmGraph
from repro.ohm.operators import (
    Filter,
    Group,
    Join,
    Nest,
    Operator,
    Project,
    Source,
    Split,
    Target,
    Union,
    Unknown,
    Unnest,
)
from repro.resilience import (
    ErrorContext,
    RejectedRow,
    rejects_dataset,
    resolve_on_error,
)
from repro.schema.model import Relation
from repro.supervision import (
    governed,
    resolve_memory_budget,
    resolve_supervisor,
)


class OhmExecutor:
    """Executes a schema-propagated OHM graph over an :class:`Instance`.

    An executor carries no run-scoped state — the source instance is
    threaded through the call chain — so one executor can run several
    graphs concurrently (or recursively) without interference."""

    def __init__(
        self,
        registry: Optional[FunctionRegistry] = None,
        obs: Optional[Observability] = None,
        compiled: Optional[bool] = None,
        batched: Optional[bool] = None,
        batch_size: Optional[int] = None,
        on_error: Optional[str] = None,
        degrade: bool = True,
        parallel: Optional[bool] = None,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        catalog=None,
        fused: Optional[bool] = None,
        deadline: Optional[float] = None,
        memory_budget=None,
        supervisor=None,
        check: Optional[bool] = None,
    ):
        self.registry = registry or DEFAULT_REGISTRY
        self._obs = obs or NULL_OBS
        # local import: repro.analysis imports the operator catalogue,
        # so a module-level import here would be circular
        from repro.analysis import resolve_check

        #: whether :func:`repro.analysis.check_plan` vets the graph
        #: before any row is processed (``REPRO_CHECK`` ladder).
        self.check = resolve_check(check)
        self._planner = ExpressionPlanner(
            self.registry, compiled, batched, batch_size,
            parallel=parallel, workers=workers, mode=mode, fused=fused,
        )
        self.compiled = self._planner.compiled
        self.batched = self._planner.batched
        #: selection-vector pipeline fusion (requires ``batched``).
        self.fused = self._planner.fused
        #: execution-tier mode: "rows"/"block"/"parallel" pin the tier,
        #: "auto" picks per run from the input size via the cost model,
        #: None keeps the per-flag resolution.
        self.mode = self._planner.mode
        #: wavefront scheduling: independent operators of one
        #: topological level run concurrently on the planner's worker
        #: pool (kernel partitioning additionally requires ``batched``).
        self.workers = self._planner.workers
        if self.mode is not None:
            self.parallel = self._planner.parallel
        else:
            self.parallel = resolve_parallel(parallel) and self.workers >= 2
        #: run-level row error policy; an operator may override via an
        #: ``on_error`` attribute of its own.
        self.on_error = resolve_on_error(on_error)
        self.degrade = degrade
        #: per-run deadline supervision, or None (no per-boundary work).
        self.supervisor = resolve_supervisor(
            supervisor, deadline, obs=self._obs
        )
        #: resident-row budget blocking kernels obey during runs, or None.
        self.memory_budget = resolve_memory_budget(memory_budget)
        #: statistics catalog fed back with per-edge actuals after every
        #: run (None disables the feedback loop).
        self.catalog = catalog

    def run(
        self, graph: OhmGraph, instance: Instance
    ) -> Tuple[Instance, Dict[str, Dataset]]:
        """Execute ``graph`` against ``instance``.

        Returns ``(targets, edge_data)``: the datasets delivered to each
        TARGET operator (named by target relation), and every intermediate
        edge's dataset keyed by edge name (useful to inspect
        materialization points such as ``DSLink10``)."""
        targets, edge_data, _rejected = self._run_impl(graph, instance)
        return targets, edge_data

    def run_with_rejects(
        self, graph: OhmGraph, instance: Instance
    ) -> Tuple[Instance, Dict[str, Dataset], Dataset]:
        """Like :meth:`run`, additionally returning the rows rejected
        under the ``reject`` policy as a dataset of the standard reject
        relation (:data:`~repro.resilience.REJECT_COLUMNS`)."""
        targets, edge_data, rejected = self._run_impl(graph, instance)
        return targets, edge_data, rejects_dataset(rejected)

    def execute(self, graph: OhmGraph, instance: Instance) -> Instance:
        """Execute and return only the target datasets."""
        targets, _edges = self.run(graph, instance)
        return targets

    # -- fault tolerance ------------------------------------------------------

    def _ladder(self) -> List[ExpressionPlanner]:
        """Degradation tiers, most capable first (see the ETL engine)."""
        tiers = [self._planner]
        if not self.degrade:
            return tiers
        if self._planner.fused:
            tiers.append(
                ExpressionPlanner(
                    self.registry, True, True, self._planner.batch_size,
                    fused=False,
                )
            )
        if self._planner.batched:
            tiers.append(
                ExpressionPlanner(
                    self.registry, True, False, self._planner.batch_size
                )
            )
        if self.compiled:
            tiers.append(
                ExpressionPlanner(
                    self.registry, False, False, self._planner.batch_size
                )
            )
        return tiers

    def _attempt(self, fn, tiers, ctx, metrics):
        """Run ``fn(planner)`` down the degradation ladder; the context
        is reset per attempt and the last tier's error propagates."""
        last_exc = None
        for i, planner in enumerate(tiers):
            if i:
                metrics.count(degrade_counter(tiers[i - 1]))
            ctx.reset()
            try:
                return fn(planner)
            except RunCancelled:
                raise  # cancellation is not a tier failure — never degrade
            except STATIC_ERRORS:
                # a plan defect fails identically at every tier: degrading
                # would only bury the diagnosis under tier noise
                raise
            except Exception as exc:  # noqa: BLE001 — ladder decides
                last_exc = exc
        raise last_exc

    # -- per-operator semantics ----------------------------------------------

    def _run_operator(
        self,
        op: Operator,
        inputs: List[Dataset],
        out_relations: List[Relation],
        instance: Optional[Instance] = None,
        planner: Optional[ExpressionPlanner] = None,
        errors: Optional[ErrorContext] = None,
    ) -> List[Dataset]:
        planner = planner or self._planner
        if isinstance(op, Source):
            return [
                self._run_source(op, out, instance) for out in out_relations
            ]
        if isinstance(op, Filter):
            return [
                self._run_filter(op, inputs[0], out_relations[0], planner, errors)
            ]
        if isinstance(op, Project):  # covers all PROJECT subtypes
            return [
                self._run_project(op, inputs[0], out_relations[0], planner, errors)
            ]
        if isinstance(op, Join):
            return [
                self._run_join(op, inputs[0], inputs[1], out_relations[0], planner)
            ]
        if isinstance(op, Union):
            return [self._run_union(op, inputs, out_relations[0], planner)]
        if isinstance(op, Group):
            return [self._run_group(op, inputs[0], out_relations[0], planner)]
        if isinstance(op, Split):
            if planner.batched:
                chain = planner.fused_chain(inputs[0], self._obs)
                if chain is not None:
                    # handle renames only — every output keeps chaining
                    # on the shared selection, nothing is gathered
                    results = [
                        planner.materialize_fused(
                            out,
                            chain.project(
                                [(n, n) for n in out.attribute_names]
                            ),
                        )
                        for out in out_relations
                    ]
                    fuse.fused_op(chain, self._obs, 0)
                    return results
                # every output shares the (immutable) input columns
                shared = inputs[0].as_block()
                return [
                    planner.materialize_block(out, shared)
                    for out in out_relations
                ]
            return [
                planner.materialize(
                    out, [dict(r) for r in inputs[0]], fresh=True
                )
                for out in out_relations
            ]
        if isinstance(op, Nest):
            return [self._run_nest(op, inputs[0], out_relations[0], planner)]
        if isinstance(op, Unnest):
            return [self._run_unnest(op, inputs[0], out_relations[0], planner)]
        if isinstance(op, Unknown):
            return self._run_unknown(op, inputs, out_relations)
        raise ExecutionError(
            f"no execution semantics for {op.KIND} {op.uid}", stage=op.uid
        )

    def _run_source(
        self, op: Source, out: Relation, instance: Optional[Instance]
    ) -> Dataset:
        if instance is None or op.relation.name not in instance:
            if op.provider is not None:
                return op.provider().renamed(out.name)
            raise ExecutionError(
                f"source relation {op.relation.name!r} not present in instance",
                stage=op.uid,
            )
        dataset = instance.dataset(op.relation.name)
        checked = dataset.with_relation(op.relation)  # validates types
        return checked.renamed(out.name)

    def _run_filter(
        self,
        op: Filter,
        data: Dataset,
        out: Relation,
        planner: ExpressionPlanner,
        errors: Optional[ErrorContext] = None,
    ) -> Dataset:
        if planner.batched:
            chain = planner.fused_chain(data, self._obs)
            if chain is not None:
                resolve = relation_resolver(
                    data.relation.name, chain.handles
                )
                predicate = planner.block_predicate(
                    op.condition, resolve, tier="fused"
                )
                if predicate is not None:
                    # narrow the selection vector — no gather; the
                    # predicate sees only the columns it reads
                    reads = fuse.read_set([op.condition], resolve)
                    mask = predicate(chain.view(reads))
                    kept = [i for i, flag in enumerate(mask) if flag]
                    fuse.fused_op(chain, self._obs, len(kept))
                    return planner.materialize_fused(
                        out, chain.narrow(kept)
                    )
            blk = data.as_block()
            resolve = relation_resolver(data.relation.name, blk.columns)
            predicate = planner.block_predicate(op.condition, resolve)
            if predicate is not None:
                kept = block.filter_block(
                    blk, predicate, planner.batch_size, obs=self._obs
                )
                return planner.materialize_block(out, kept)
        on_error = errors.kernel_handler() if errors is not None else None
        kept = kernels.filter_rows(
            data.rows,
            planner.predicate(op.condition),
            kernels.row_binder(data.relation.name),
            obs=self._obs,
            on_error=on_error,
        )
        return planner.materialize(
            out, [dict(row) for row in kept], fresh=True
        )

    def _run_project(
        self,
        op: Project,
        data: Dataset,
        out: Relation,
        planner: ExpressionPlanner,
        errors: Optional[ErrorContext] = None,
    ) -> Dataset:
        if planner.batched:
            chain = planner.fused_chain(data, self._obs)
            if chain is not None:
                produced = self._project_fused(op, data, chain, planner)
                if produced is not None:
                    return planner.materialize_fused(out, produced)
            blk = data.as_block()
            resolve = relation_resolver(data.relation.name, blk.columns)
            lowered = [
                (name, planner.block_scalar(expr, resolve))
                for name, expr in op.derivations
            ]
            if all(fn is not None for _name, fn in lowered):
                produced = block.project_block(
                    blk,
                    lowered,
                    batch_size=planner.batch_size,
                    obs=self._obs,
                )
                return planner.materialize_block(out, produced)
        on_error = errors.kernel_handler() if errors is not None else None
        rows = kernels.project_rows(
            data.rows,
            [(name, planner.scalar(expr)) for name, expr in op.derivations],
            kernels.row_binder(data.relation.name),
            obs=self._obs,
            on_error=on_error,
        )
        return planner.materialize(out, rows, fresh=True)

    def _project_fused(
        self,
        op: Project,
        data: Dataset,
        chain: fuse.FusedBlock,
        planner: ExpressionPlanner,
    ) -> Optional[fuse.FusedBlock]:
        """PROJECT as a handle rebinding on the chain: pass-through
        column references rename handles (no gather), computed columns
        evaluate eagerly but only over read-set views of the surviving
        selection. ``None`` when any derivation needs the unfused path
        — fusion is all-or-nothing per operator."""
        resolve = relation_resolver(data.relation.name, chain.handles)
        lowered = []
        for name, expr in op.derivations:
            if isinstance(expr, ColumnRef):
                key = resolve(expr)
                if key is not None:
                    lowered.append((name, None, key))
                    continue
            fn = planner.block_scalar(expr, resolve, tier="fused")
            if fn is None:
                return None
            lowered.append((name, expr, fn))
        handles: Dict[str, fuse.Handle] = {}
        for name, expr, fn in lowered:
            if expr is None:
                handles[name] = chain.handles[fn]
            else:
                handles[name] = fn(
                    chain.view(fuse.read_set([expr], resolve))
                )
        fuse.fused_op(chain, self._obs, chain.length)
        return chain.derive(handles)

    def _run_join(
        self,
        op: Join,
        left: Dataset,
        right: Dataset,
        out: Relation,
        planner: ExpressionPlanner,
    ) -> Dataset:
        attrs = Join.joined_attributes(left.relation, right.relation)
        if planner.batched:
            joined = block.hash_join_block(
                left.as_block(),
                right.as_block(),
                left.relation,
                right.relation,
                op.condition,
                op.kind,
                [(attr.name, side, source) for attr, side, source in attrs],
                planner,
                obs=self._obs,
            )
            if joined is not None:
                return planner.materialize_block(out, joined)

        def merge(left_row: Optional[Row], right_row: Optional[Row]) -> Row:
            merged: Row = {}
            for attr, side, source in attrs:
                source_row = left_row if side == "left" else right_row
                merged[attr.name] = (
                    None if source_row is None else source_row[source]
                )
            return merged

        rows: List[Row] = []
        kernels.hash_join(
            left.rows,
            right.rows,
            left.relation,
            right.relation,
            op.condition,
            op.kind,
            merge,
            rows.append,
            planner,
            obs=self._obs,
        )
        return planner.materialize(out, rows, fresh=True)

    def _run_union(
        self,
        op: Union,
        inputs: List[Dataset],
        out: Relation,
        planner: ExpressionPlanner,
    ) -> Dataset:
        if planner.batched:
            unioned = block.union_block(
                [dataset.as_block() for dataset in inputs],
                out.attribute_names,
                distinct=op.distinct,
                obs=self._obs,
            )
            return planner.materialize_block(out, unioned)
        rows = kernels.union_rows(
            [dataset.rows for dataset in inputs],
            out.attribute_names,
            distinct=op.distinct,
            obs=self._obs,
        )
        return planner.materialize(out, rows, fresh=True)

    def _run_group(
        self,
        op: Group,
        data: Dataset,
        out: Relation,
        planner: ExpressionPlanner,
    ) -> Dataset:
        if planner.batched:
            produced = self._group_block(op, data, planner)
            if produced is not None:
                return planner.materialize_block(out, produced)
        rows = kernels.group_aggregate_rows(
            data.rows,
            op.keys,
            [(name, planner.aggregate(agg)) for name, agg in op.aggregates],
            obs=self._obs,
        )
        return planner.materialize(out, rows, fresh=True)

    def _group_block(self, op: Group, data: Dataset, planner: ExpressionPlanner):
        """The GROUP operator over columns, or ``None`` when any
        aggregate argument needs the row path. Aggregate members are
        bound anonymously on the row path, so the resolver here carries
        no relation qualifier."""
        chain = planner.fused_chain(data, self._obs)
        if chain is not None:
            produced = self._group_fused(op, chain, planner)
            if produced is not None:
                return produced
        blk = data.as_block()
        resolve = relation_resolver(None, blk.columns)
        lowered = []
        for name, agg in op.aggregates:
            plan = planner.block_aggregate(agg, resolve)
            if plan is None:
                return None
            lowered.append((name, plan[0], plan[1]))
        return block.group_aggregate_block(
            blk, op.keys, lowered, obs=self._obs, planner=planner
        )

    def _group_fused(self, op: Group, chain, planner: ExpressionPlanner):
        """GROUP as a fused terminal: aggregate over a read-set view of
        the chain (group keys plus the columns the aggregate arguments
        touch) — the full intermediate block never materializes."""
        resolve = relation_resolver(None, chain.handles)
        lowered = []
        args = []
        for name, agg in op.aggregates:
            plan = planner.block_aggregate(agg, resolve, tier="fused")
            if plan is None:
                return None
            if agg.arg is not None:
                args.append(agg.arg)
            lowered.append((name, plan[0], plan[1]))
        reads = fuse.read_set(args, resolve)
        names = list(dict.fromkeys(list(op.keys) + (reads or [])))
        view = chain.view(names if reads is not None else None)
        fuse.fused_op(chain, self._obs, chain.length)
        return block.group_aggregate_block(
            view, op.keys, lowered, obs=self._obs, planner=planner
        )

    def _run_nest(
        self, op: Nest, data: Dataset, out: Relation, planner: ExpressionPlanner
    ) -> Dataset:
        rows = kernels.nest_rows(
            data.rows, op.keys, op.nested, op.into, obs=self._obs
        )
        return planner.materialize(out, rows, fresh=True)

    def _run_unnest(
        self, op: Unnest, data: Dataset, out: Relation, planner: ExpressionPlanner
    ) -> Dataset:
        scalar_names = [a.name for a in data.relation if a.name != op.attr]
        rows = kernels.unnest_rows(
            data.rows, op.attr, scalar_names, obs=self._obs
        )
        return planner.materialize(out, rows, fresh=True)

    def _run_unknown(
        self, op: Unknown, inputs: List[Dataset], out_relations: List[Relation]
    ) -> List[Dataset]:
        if op.executor is None:
            raise ExecutionError(
                f"UNKNOWN operator {op.reference!r} carries no executable "
                "behaviour; cannot run this graph directly",
                stage=op.uid,
            )
        outputs = op.executor(inputs)
        if len(outputs) != len(out_relations):
            raise ExecutionError(
                f"UNKNOWN {op.reference!r} produced {len(outputs)} outputs, "
                f"expected {len(out_relations)}",
                stage=op.uid,
            )
        return [
            Dataset(out, [dict(r) for r in produced], validate=False)
            for out, produced in zip(out_relations, outputs)
        ]

    def _run_target(
        self,
        op: Target,
        data: Dataset,
        planner: ExpressionPlanner,
        errors: Optional[ErrorContext] = None,
    ) -> Dataset:
        names = op.relation.attribute_names
        if errors is not None and errors.handling:
            # an active policy forces the checked path — bad rows land on
            # the policy's channel, never abort the delivery
            from repro.errors import SchemaError

            result = Dataset(op.relation)
            for index, row in enumerate(data):
                try:
                    result.append({n: row.get(n) for n in names})
                except SchemaError as exc:
                    errors.record(index, dict(row), exc)
            return result
        if planner.batched:
            fused = data.peek_fused()
            if fused is not None:
                # fused delivery: the chain's terminal gather — only the
                # target's columns materialize; columns the target lacks
                # become NULL, matching the row path's row.get
                return Dataset.adopt_block(
                    op.relation,
                    fuse.materialize_fused(fused, names, fill_missing=True),
                )
            blk = data.peek_block()
            if blk is not None:
                # trusted delivery straight from the columnar form:
                # subset/NULL-fill to the target attribute set without a
                # row round-trip (missing columns become NULL, matching
                # the row path's row.get)
                columns = {
                    n: blk.columns[n]
                    if n in blk.columns
                    else [None] * blk.length
                    for n in names
                }
                return Dataset.adopt_block(
                    op.relation, block.RowBlock(columns, blk.length)
                )
        if self.compiled:
            # trusted delivery: upstream kernels already shaped the rows
            return Dataset.adopt(
                op.relation, [{n: row.get(n) for n in names} for row in data]
            )
        result = Dataset(op.relation)
        for row in data:
            result.append({n: row.get(n) for n in names})
        return result

    def _compute_op(self, op, inputs, out_edges, instance, tiers, ctx, metrics):
        """One operator's pure compute through the degradation ladder —
        safe off the main thread (no spans, no shared-state writes)."""
        if isinstance(op, Target):
            delivered = self._attempt(
                lambda p: self._run_target(op, inputs[0], p, errors=ctx),
                tiers,
                ctx,
                metrics,
            )
            return [delivered]
        out_relations = [e.schema for e in out_edges]
        outputs = self._attempt(
            lambda p: self._run_operator(
                op, inputs, out_relations, instance, planner=p, errors=ctx
            ),
            tiers,
            ctx,
            metrics,
        )
        if len(outputs) != len(out_edges):
            raise ExecutionError(
                f"{op.KIND} {op.uid} produced {len(outputs)} "
                f"outputs for {len(out_edges)} edges",
                stage=op.uid,
            )
        return outputs

    def _finish_op(
        self, op, inputs, outputs, out_edges, ctx, span, seconds,
        targets, by_edge, edge_data, rejected,
    ) -> None:
        """One operator's bookkeeping — always on the calling thread, in
        topological order, so wavefront runs publish byte-identically to
        serial runs."""
        metrics = self._obs.metrics
        if isinstance(op, Target):
            targets.put(outputs[0])
        rejected.extend(ctx.rejected)
        ctx.publish(metrics, span)
        if self._obs.enabled:
            rows_in = sum(len(d) for d in inputs)
            rows_out = sum(len(d) for d in outputs)
            span.set(rows_in=rows_in, rows_out=rows_out)
            prefix = f"ohm.operator.{op.uid}"
            metrics.count(f"{prefix}.rows_in", rows_in)
            metrics.count(f"{prefix}.rows_out", rows_out)
            metrics.observe(f"{prefix}.seconds", seconds)
        if not isinstance(op, Target):
            for edge, dataset in zip(out_edges, outputs):
                by_edge[(edge.src, edge.src_port)] = dataset
                edge_data[edge.name] = dataset

    def _run_impl(
        self, graph: OhmGraph, instance: Instance
    ) -> Tuple[Instance, Dict[str, Dataset], List[RejectedRow]]:
        tracer = self._obs.tracer
        metrics = self._obs.metrics
        observing = self._obs.enabled
        if self.check:
            from repro.analysis import check_plan

            check_plan(graph, registry=self.registry)
        supervisor = self.supervisor
        if supervisor is not None:
            supervisor.start(self._obs)
        if self.mode == "auto":
            n_rows = max((len(d) for d in instance), default=0)
            tier = self._planner.tune_for(
                n_rows, memory_budget=self.memory_budget
            )
            self.batched = self._planner.batched
            self.fused = self._planner.fused
            metrics.count(f"exec.auto.tier.{tier}")
        parallel = (
            self._planner.parallel if self.mode is not None else self.parallel
        )
        tiers = self._ladder()
        graph.propagate_schemas()
        edge_data: Dict[str, Dataset] = {}
        by_edge: Dict[Tuple[str, int], Dataset] = {}
        targets = Instance()
        rejected: List[RejectedRow] = []
        order = graph.topological_order()
        if parallel:
            waves = topological_waves(
                order,
                lambda op: op.uid,
                lambda op: (e.src for e in graph.in_edges(op.uid)),
            )
        else:
            waves = [order]
        with governed(self.memory_budget), tracer.span(
            "ohm.run", graph=graph.name
        ):
            for wave in waves:
                if supervisor is not None:
                    supervisor.check("wave")
                if parallel and len(wave) >= 2:
                    self._run_wave(
                        wave, graph, instance, tiers,
                        targets, by_edge, edge_data, rejected, supervisor,
                    )
                    continue
                for op in wave:
                    if supervisor is not None:
                        supervisor.check(op.uid)
                    inputs = [
                        by_edge[(e.src, e.src_port)]
                        for e in graph.in_edges(op.uid)
                    ]
                    out_edges = graph.out_edges(op.uid)
                    ctx = ErrorContext(
                        op.uid, getattr(op, "on_error", None) or self.on_error
                    )
                    with tracer.span(f"ohm.op.{op.KIND}", uid=op.uid) as span:
                        started = perf_counter() if observing else 0.0
                        outputs = self._compute_op(
                            op, inputs, out_edges, instance, tiers, ctx, metrics
                        )
                        seconds = (
                            perf_counter() - started if observing else 0.0
                        )
                        self._finish_op(
                            op, inputs, outputs, out_edges, ctx, span, seconds,
                            targets, by_edge, edge_data, rejected,
                        )
                    if supervisor is not None:
                        supervisor.committed(op.uid)
        if self.catalog is not None:
            # close the feedback loop: the next estimate_graph over the
            # same edge names re-plans from these actuals
            self.catalog.observe_instance(instance)
            for name, dataset in edge_data.items():
                self.catalog.observe_link(name, len(dataset))
        return targets, edge_data, rejected

    def _run_wave(
        self, wave, graph, instance, tiers,
        targets, by_edge, edge_data, rejected, supervisor=None,
    ) -> None:
        """Run one topological wave of mutually-independent operators on
        the planner's worker pool. Compute fans out; bookkeeping (spans,
        metrics, output wiring) replays on this thread in topological
        order. An unavailable worker recomputes inline
        (``exec.degrade.parallel_to_serial``); a genuine operator error
        propagates exactly as the serial loop's would."""
        tracer = self._obs.tracer
        metrics = self._obs.metrics
        prepared = []
        for op in wave:
            inputs = [
                by_edge[(e.src, e.src_port)] for e in graph.in_edges(op.uid)
            ]
            out_edges = graph.out_edges(op.uid)
            ctx = ErrorContext(
                op.uid, getattr(op, "on_error", None) or self.on_error
            )
            prepared.append((op, inputs, out_edges, ctx))

        def make_task(op, inputs, out_edges, ctx):
            def task():
                started = perf_counter()
                outputs = self._compute_op(
                    op, inputs, out_edges, instance, tiers, ctx, metrics
                )
                return outputs, perf_counter() - started

            if supervisor is not None:
                return supervisor.guard(task)
            return task

        pool = self._planner.pool()
        entries = pool.run_all([make_task(*entry) for entry in prepared])
        metrics.count("exec.parallel.waves")
        metrics.count("exec.parallel.tasks", len(wave))
        with tracer.span(
            "exec.parallel.wave", operators=len(wave), workers=pool.workers
        ):
            for (op, inputs, out_edges, ctx), (error, payload) in zip(
                prepared, entries
            ):
                if isinstance(error, WorkerUnavailable):
                    metrics.count("exec.degrade.parallel_to_serial")
                    ctx.reset()
                    started = perf_counter()
                    payload = (
                        self._compute_op(
                            op, inputs, out_edges, instance, tiers, ctx, metrics
                        ),
                        perf_counter() - started,
                    )
                elif error is not None:
                    raise error
                outputs, seconds = payload
                with tracer.span(f"ohm.op.{op.KIND}", uid=op.uid) as span:
                    self._finish_op(
                        op, inputs, outputs, out_edges, ctx, span, seconds,
                        targets, by_edge, edge_data, rejected,
                    )
                if supervisor is not None:
                    supervisor.committed(op.uid)


def execute(
    graph: OhmGraph,
    instance: Instance,
    registry: Optional[FunctionRegistry] = None,
    obs: Optional[Observability] = None,
    compiled: Optional[bool] = None,
    batched: Optional[bool] = None,
    batch_size: Optional[int] = None,
    on_error: Optional[str] = None,
    fused: Optional[bool] = None,
    deadline: Optional[float] = None,
    memory_budget=None,
    supervisor=None,
    check: Optional[bool] = None,
) -> Instance:
    """Execute ``graph`` over ``instance``; returns the target datasets."""
    return OhmExecutor(
        registry,
        obs=obs,
        compiled=compiled,
        batched=batched,
        batch_size=batch_size,
        on_error=on_error,
        fused=fused,
        deadline=deadline,
        memory_budget=memory_budget,
        supervisor=supervisor,
        check=check,
    ).execute(graph, instance)


def execute_with_edges(
    graph: OhmGraph,
    instance: Instance,
    registry: Optional[FunctionRegistry] = None,
    obs: Optional[Observability] = None,
    compiled: Optional[bool] = None,
    batched: Optional[bool] = None,
    batch_size: Optional[int] = None,
    on_error: Optional[str] = None,
    fused: Optional[bool] = None,
    deadline: Optional[float] = None,
    memory_budget=None,
    supervisor=None,
    check: Optional[bool] = None,
) -> Tuple[Instance, Dict[str, Dataset]]:
    """Execute and also return every intermediate edge's data by name."""
    return OhmExecutor(
        registry,
        obs=obs,
        compiled=compiled,
        batched=batched,
        batch_size=batch_size,
        on_error=on_error,
        fused=fused,
        deadline=deadline,
        memory_budget=memory_budget,
        supervisor=supervisor,
        check=check,
    ).run(graph, instance)


__all__ = ["OhmExecutor", "execute", "execute_with_edges"]
