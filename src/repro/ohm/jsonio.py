"""JSON serialization for OHM instances.

The paper's external layer covers ETL jobs and mappings; in a deployed
product the *abstract* layer also needs persistence (save an imported
OHM instance now, optimize and deploy it later, ship it between
services). This module round-trips OHM graphs through a JSON document:
operators by kind with their properties (expressions as SQL text),
edges with ports and names.

Lossy by nature, like every external format here: SOURCE data providers
and UNKNOWN executors are live Python callables and do not serialize —
an UNKNOWN comes back as the black box it always was.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from repro.errors import SerializationError
from repro.expr.parser import parse
from repro.ohm.graph import OhmGraph
from repro.ohm.operators import (
    Filter,
    Group,
    Join,
    Nest,
    Operator,
    Project,
    Source,
    Split,
    Target,
    Union,
    Unknown,
    Unnest,
)
from repro.ohm.subtypes import BasicProject, ColumnMerge, ColumnSplit, KeyGen
from repro.schema.model import Attribute, Relation

_FORMAT = "orchid-ohm"
_VERSION = 1


def _relation_to_json(rel: Relation) -> dict:
    return {
        "name": rel.name,
        "columns": [
            {
                "name": a.name,
                "type": getattr(a.dtype, "name", repr(a.dtype)),
                "nullable": a.nullable,
                "key": a.is_key,
            }
            for a in rel
        ],
    }


def _relation_from_json(doc: dict) -> Relation:
    return Relation(
        doc["name"],
        [
            Attribute(
                c["name"], c["type"],
                nullable=c.get("nullable", True),
                is_key=c.get("key", False),
            )
            for c in doc["columns"]
        ],
    )


def _operator_properties(op: Operator) -> dict:
    if isinstance(op, Source):
        return {"relation": _relation_to_json(op.relation)}
    if isinstance(op, Target):
        return {"relation": _relation_to_json(op.relation)}
    if isinstance(op, Filter):
        return {"condition": op.condition.to_sql()}
    if isinstance(op, BasicProject):
        return {"columns": [list(c) for c in op.columns]}
    if isinstance(op, KeyGen):
        return {
            "key_column": op.key_column,
            "sequence": op.sequence,
            "start": op.start,
        }
    if isinstance(op, ColumnSplit):
        return {
            "source": op.source,
            "targets": op.targets,
            "delimiter": op.delimiter,
            "passthrough": op.passthrough,
        }
    if isinstance(op, ColumnMerge):
        return {
            "sources": op.sources,
            "target": op.target,
            "delimiter": op.delimiter,
            "passthrough": op.passthrough,
        }
    if isinstance(op, Project):
        return {
            "derivations": [[c, e.to_sql()] for c, e in op.derivations]
        }
    if isinstance(op, Join):
        return {"condition": op.condition.to_sql(), "kind": op.kind}
    if isinstance(op, Union):
        return {"distinct": op.distinct}
    if isinstance(op, Group):
        return {
            "keys": list(op.keys),
            "aggregates": [[c, a.to_sql()] for c, a in op.aggregates],
        }
    if isinstance(op, Split):
        return {}
    if isinstance(op, Nest):
        return {"keys": op.keys, "nested": op.nested, "into": op.into}
    if isinstance(op, Unnest):
        return {"attr": op.attr}
    if isinstance(op, Unknown):
        return {
            "output_schemas": [
                _relation_to_json(rel) for rel in op.output_schemas
            ],
            "reference": op.reference,
        }
    raise SerializationError(f"cannot serialize operator kind {op.KIND!r}")


_BUILDERS: Dict[str, Callable[[dict], Operator]] = {
    "SOURCE": lambda p: Source(_relation_from_json(p["relation"])),
    "TARGET": lambda p: Target(_relation_from_json(p["relation"])),
    "FILTER": lambda p: Filter(p["condition"]),
    "PROJECT": lambda p: Project([(c, e) for c, e in p["derivations"]]),
    "BASIC PROJECT": lambda p: BasicProject(
        [(o, s) for o, s in p["columns"]]
    ),
    "KEYGEN": lambda p: KeyGen(
        p["key_column"], sequence=p.get("sequence"), start=p.get("start", 1)
    ),
    "COLUMN SPLIT": lambda p: ColumnSplit(
        p["source"], p["targets"], p["delimiter"],
        passthrough=p.get("passthrough", ()),
    ),
    "COLUMN MERGE": lambda p: ColumnMerge(
        p["sources"], p["target"], p["delimiter"],
        passthrough=p.get("passthrough", ()),
    ),
    "JOIN": lambda p: Join(p["condition"], kind=p.get("kind", "inner")),
    "UNION": lambda p: Union(distinct=p.get("distinct", False)),
    "GROUP": lambda p: Group(
        p["keys"], [(c, parse(a)) for c, a in p.get("aggregates", [])]
    ),
    "SPLIT": lambda p: Split(),
    "NEST": lambda p: Nest(p["keys"], p["nested"], into=p["into"]),
    "UNNEST": lambda p: Unnest(p["attr"]),
    "UNKNOWN": lambda p: Unknown(
        [_relation_from_json(r) for r in p["output_schemas"]],
        reference=p["reference"],
    ),
}


def graph_to_json(graph: OhmGraph) -> str:
    """Serialize an OHM instance to a JSON document."""
    operators = []
    for op in graph.operators:
        operators.append(
            {
                "uid": op.uid,
                "kind": op.KIND,
                "label": op.label,
                "annotations": dict(op.annotations),
                "properties": _operator_properties(op),
            }
        )
    edges = [
        {
            "src": e.src,
            "srcPort": e.src_port,
            "dst": e.dst,
            "dstPort": e.dst_port,
            "name": e.name,
        }
        for e in graph.edges
    ]
    return json.dumps(
        {
            "format": _FORMAT,
            "version": _VERSION,
            "name": graph.name,
            "operators": operators,
            "edges": edges,
        },
        indent=2,
    )


def graph_from_json(text: str) -> OhmGraph:
    """Parse a JSON document back into an OHM instance."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"malformed OHM document: {exc}") from exc
    if document.get("format") != _FORMAT:
        raise SerializationError(
            f"not an OHM document (format {document.get('format')!r})"
        )
    graph = OhmGraph(document.get("name", "ohm"))
    for entry in document.get("operators", []):
        builder = _BUILDERS.get(entry["kind"])
        if builder is None:
            raise SerializationError(
                f"unknown operator kind {entry['kind']!r}"
            )
        op = builder(entry.get("properties", {}))
        op.uid = entry["uid"]
        op.label = entry.get("label", op.KIND)
        op.annotations = dict(entry.get("annotations", {}))
        graph.add(op)
    for entry in document.get("edges", []):
        graph.connect(
            entry["src"], entry["dst"],
            src_port=entry.get("srcPort", 0),
            dst_port=entry.get("dstPort", 0),
            name=entry.get("name"),
        )
    return graph


def write_graph(graph: OhmGraph, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(graph_to_json(graph))


def read_graph(path: str) -> OhmGraph:
    with open(path, "r") as handle:
        return graph_from_json(handle.read())


__all__ = ["graph_to_json", "graph_from_json", "write_graph", "read_graph"]
