"""Shared join execution — compatibility facade.

The join algorithm (hash join on equi-conjuncts with a nested-loop
fallback, SQL NULL-key semantics) now lives in
:func:`repro.exec.kernels.hash_join`, where both runtimes (the OHM
engine and the ETL Join stage) dispatch directly with their own
:class:`~repro.exec.ExpressionPlanner`. This module keeps the original
``join_rows`` entry point for callers that hold a registry rather than
a planner, and re-exports :func:`split_equi_condition` for the
condition-decomposition tests and the deployment planner.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.exec import ExpressionPlanner
from repro.exec.kernels import hash_join, split_equi_condition
from repro.expr.ast import Expr
from repro.expr.functions import FunctionRegistry
from repro.schema.model import Relation


def join_rows(
    left_rows: Sequence[dict],
    right_rows: Sequence[dict],
    left_relation: Relation,
    right_relation: Relation,
    condition: Expr,
    kind: str,
    merge: Callable[[Optional[dict], Optional[dict]], dict],
    emit: Callable[[dict], None],
    registry: FunctionRegistry,
    compiled: Optional[bool] = None,
) -> None:
    """Run the join, calling ``emit`` once per output row (matches first,
    then the outer paddings the ``kind`` requires)."""
    hash_join(
        left_rows,
        right_rows,
        left_relation,
        right_relation,
        condition,
        kind,
        merge,
        emit,
        ExpressionPlanner(registry, compiled),
    )


__all__ = ["join_rows", "split_equi_condition"]
