"""Shared join execution: hash join on equi-conjuncts with a nested-loop
fallback.

Both runtimes (the OHM engine and the ETL Join/Lookup stages) execute
joins through :func:`join_rows`. The condition is decomposed into
equality conjuncts between the two inputs (hashable) and a residual
predicate (evaluated per candidate pair); with at least one equi-conjunct
the right side is indexed and probing is O(|L| + |R| + matches), else the
classic nested loop runs.

SQL semantics are preserved exactly: NULL keys never match (they are not
inserted into, nor probed against, the index), and numeric keys hash
consistently across int/float (``1`` joins ``1.0``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.expr.algebra import split_conjuncts
from repro.expr.ast import BinaryOp, ColumnRef, Expr
from repro.expr.evaluator import Environment, evaluate, evaluate_predicate
from repro.expr.functions import FunctionRegistry
from repro.schema.model import Relation


def _side_of(expr: Expr, left: Relation, right: Relation) -> Optional[str]:
    """Which single input every column reference of ``expr`` resolves
    against — 'left', 'right', or None when mixed/unresolvable."""
    sides = set()
    for ref in expr.column_refs():
        resolved = None
        for rel, side in ((left, "left"), (right, "right")):
            if ref.qualifier == rel.name and rel.has_attribute(ref.name):
                resolved = side
                break
            if ref.qualifier is None and rel.has_attribute(ref.name):
                if resolved is not None:
                    return None  # ambiguous unqualified reference
                resolved = side
        if resolved is None:
            return None
        sides.add(resolved)
    if len(sides) == 1:
        return sides.pop()
    return None


def split_equi_condition(
    condition: Expr, left: Relation, right: Relation
) -> Tuple[List[Tuple[Expr, Expr]], List[Expr]]:
    """Decompose a join condition into ``(left expr, right expr)`` equality
    pairs and the residual conjuncts."""
    pairs: List[Tuple[Expr, Expr]] = []
    residual: List[Expr] = []
    for conjunct in split_conjuncts(condition):
        if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
            lhs_side = _side_of(conjunct.left, left, right)
            rhs_side = _side_of(conjunct.right, left, right)
            if lhs_side == "left" and rhs_side == "right":
                pairs.append((conjunct.left, conjunct.right))
                continue
            if lhs_side == "right" and rhs_side == "left":
                pairs.append((conjunct.right, conjunct.left))
                continue
        residual.append(conjunct)
    return pairs, residual


def _hash_key(values: Sequence[object]) -> Optional[tuple]:
    """A hashable join key; None when any component is NULL (never
    matches under SQL semantics). Numbers are normalized so int and
    float keys compare equal."""
    key = []
    for value in values:
        if value is None:
            return None
        if isinstance(value, bool):
            key.append(("bool", value))
        elif isinstance(value, (int, float)):
            key.append(("num", float(value)))
        else:
            key.append((type(value).__name__, value))
    return tuple(key)


def join_rows(
    left_rows: Sequence[dict],
    right_rows: Sequence[dict],
    left_relation: Relation,
    right_relation: Relation,
    condition: Expr,
    kind: str,
    merge: Callable[[Optional[dict], Optional[dict]], dict],
    emit: Callable[[dict], None],
    registry: FunctionRegistry,
) -> None:
    """Run the join, calling ``emit`` once per output row (matches first,
    then the outer paddings the ``kind`` requires)."""
    left_name = left_relation.name
    right_name = right_relation.name
    pairs, residual = split_equi_condition(
        condition, left_relation, right_relation
    )

    def env_for(left_row: Optional[dict], right_row: Optional[dict]) -> Environment:
        env = Environment()
        if left_row is not None:
            env.bind(left_name, left_row)
        if right_row is not None:
            env.bind(right_name, right_row)
        env.bind(None, merge(left_row, right_row))
        return env

    matched_right = [False] * len(right_rows)

    if pairs:
        index: Dict[tuple, List[int]] = {}
        for i, right_row in enumerate(right_rows):
            env = Environment(right_row).bind(right_name, right_row)
            key = _hash_key(
                [evaluate(expr, env, registry) for _l, expr in pairs]
            )
            if key is not None:
                index.setdefault(key, []).append(i)

        for left_row in left_rows:
            env = Environment(left_row).bind(left_name, left_row)
            key = _hash_key(
                [evaluate(expr, env, registry) for expr, _r in pairs]
            )
            matched = False
            for i in index.get(key, ()) if key is not None else ():
                right_row = right_rows[i]
                if residual and not all(
                    evaluate_predicate(c, env_for(left_row, right_row), registry)
                    for c in residual
                ):
                    continue
                matched = True
                matched_right[i] = True
                emit(merge(left_row, right_row))
            if not matched and kind in ("left", "full"):
                emit(merge(left_row, None))
    else:
        for left_row in left_rows:
            matched = False
            for i, right_row in enumerate(right_rows):
                if evaluate_predicate(
                    condition, env_for(left_row, right_row), registry
                ):
                    matched = True
                    matched_right[i] = True
                    emit(merge(left_row, right_row))
            if not matched and kind in ("left", "full"):
                emit(merge(left_row, None))

    if kind in ("right", "full"):
        for i, right_row in enumerate(right_rows):
            if not matched_right[i]:
                emit(merge(None, right_row))


__all__ = ["join_rows", "split_equi_condition"]
