"""In-memory data model: rows, datasets (bags), instances, CSV I/O."""

from repro.data.csvio import (
    dataset_from_csv_text,
    dataset_to_csv_text,
    read_csv,
    write_csv,
)
from repro.data.dataset import Dataset, Instance, Row

__all__ = [
    "Dataset",
    "Instance",
    "Row",
    "read_csv",
    "write_csv",
    "dataset_from_csv_text",
    "dataset_to_csv_text",
]
