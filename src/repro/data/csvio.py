"""CSV import/export for datasets.

ETL jobs in the wild read and write delimited files; the examples and
benchmarks use this module to move data in and out of the engines. Values
are parsed according to the relation's attribute types; empty fields are
NULL.
"""

from __future__ import annotations

import csv
import datetime
import io
import os
from typing import Iterable, List, Optional, TextIO, Union

from repro.data.dataset import Dataset
from repro.errors import SerializationError
from repro.schema.model import Relation
from repro.schema.types import (
    BOOLEAN,
    DATE,
    DECIMAL,
    FLOAT,
    INTEGER,
    STRING,
    TIMESTAMP,
    AtomicType,
)


def _parse_cell(dtype: AtomicType, text: str):
    if text == "":
        return None
    try:
        if dtype is INTEGER:
            return int(text)
        if dtype in (FLOAT, DECIMAL):
            return float(text)
        if dtype is BOOLEAN:
            lowered = text.strip().lower()
            if lowered in ("true", "t", "1", "yes"):
                return True
            if lowered in ("false", "f", "0", "no"):
                return False
            raise ValueError(f"bad boolean {text!r}")
        if dtype is DATE:
            return datetime.date.fromisoformat(text)
        if dtype is TIMESTAMP:
            return datetime.datetime.fromisoformat(text)
        return text
    except ValueError as exc:
        raise SerializationError(f"cannot parse {text!r} as {dtype!r}: {exc}") from exc


def _format_cell(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    return str(value)


def read_csv(
    source: Union[str, TextIO],
    relation: Relation,
    has_header: bool = True,
) -> Dataset:
    """Read a CSV file (path or open text file) into a dataset.

    With ``has_header`` the header row selects/reorders columns; without,
    columns are taken positionally in relation order."""
    close = False
    if isinstance(source, str):
        handle: TextIO = open(source, "r", newline="")
        close = True
    else:
        handle = source
    try:
        reader = csv.reader(handle)
        rows = list(reader)
    finally:
        if close:
            handle.close()
    if not relation.is_flat():
        raise SerializationError(
            f"relation {relation.name!r} is nested; CSV supports flat relations"
        )
    if has_header:
        if not rows:
            return Dataset(relation)
        header, data_rows = rows[0], rows[1:]
        unknown = set(header) - set(relation.attribute_names)
        if unknown:
            raise SerializationError(
                f"CSV header columns {sorted(unknown)} not in relation "
                f"{relation.name!r}"
            )
        columns = header
    else:
        data_rows = rows
        columns = list(relation.attribute_names)
    dataset = Dataset(relation)
    for line_number, cells in enumerate(data_rows, start=2 if has_header else 1):
        if len(cells) != len(columns):
            raise SerializationError(
                f"line {line_number}: expected {len(columns)} cells, "
                f"got {len(cells)}"
            )
        row = {
            name: _parse_cell(relation.attribute(name).dtype, cell)
            for name, cell in zip(columns, cells)
        }
        dataset.append(row)
    return dataset


def _write_rows(dataset: Dataset, handle: TextIO) -> None:
    writer = csv.writer(handle)
    names = list(dataset.relation.attribute_names)
    writer.writerow(names)
    for row in dataset:
        writer.writerow([_format_cell(row.get(n)) for n in names])


def write_csv(dataset: Dataset, target: Union[str, TextIO]) -> None:
    """Write a dataset as CSV with a header row.

    A path target is written transactionally: rows stage into a
    ``.tmp`` sibling that is fsynced and atomically renamed over the
    destination, so a crash mid-write never leaves a torn or
    half-written file — readers see either the old file or the new one,
    complete."""
    if isinstance(target, str):
        tmp = target + ".tmp"
        with open(tmp, "w", newline="") as handle:
            _write_rows(dataset, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        return
    _write_rows(dataset, target)


def dataset_from_csv_text(text: str, relation: Relation) -> Dataset:
    """Parse CSV from an in-memory string (tests and examples)."""
    return read_csv(io.StringIO(text), relation)


def dataset_to_csv_text(dataset: Dataset) -> str:
    buffer = io.StringIO()
    write_csv(dataset, buffer)
    return buffer.getvalue()


__all__ = [
    "read_csv",
    "write_csv",
    "dataset_from_csv_text",
    "dataset_to_csv_text",
]
