"""In-memory datasets and instances.

Rows are plain dicts (column name → Python value, ``None`` = NULL); a
:class:`Dataset` is an ordered *bag* of rows conforming to a
:class:`~repro.schema.model.Relation`. Bag semantics match both ETL links
(streams of records, duplicates allowed) and the default behaviour of OHM
operators.

An :class:`Instance` names several datasets — the input or output of a
job, an OHM graph, or a set of mappings.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.schema.model import Relation
from repro.schema.types import coerce_value

Row = Dict[str, object]


class Dataset:
    """An ordered bag of rows over a relation schema."""

    def __init__(
        self,
        relation: Relation,
        rows: Iterable[Mapping] = (),
        validate: bool = True,
    ):
        self._relation = relation
        self._rows: Optional[List[Row]] = []
        self._block = None  # columnar backing (repro.exec.block.RowBlock)
        self._fused = None  # pipeline backing (repro.exec.fuse.FusedBlock)
        self._checked: Dict[Tuple, object] = {}  # with_relation memo
        for row in rows:
            self.append(row, validate=validate)

    @classmethod
    def adopt(cls, relation: Relation, rows: List[Row]) -> "Dataset":
        """Wrap a list of row dicts without copying or validating.

        The caller transfers ownership: ``rows`` must be freshly built
        dicts not aliased by anything that may mutate them (kernel
        outputs qualify). This is the trusted materialization path the
        compiled engines use; the interpreting oracle keeps the
        copy-and-validate constructor."""
        out = cls(relation)
        out._rows = rows
        return out

    @classmethod
    def adopt_block(cls, relation: Relation, block) -> "Dataset":
        """Wrap a :class:`~repro.exec.block.RowBlock` without converting
        it to rows — the columnar trusted-materialization path, so
        adjacent block-capable operators never round-trip through row
        dicts. The column-name set must match the relation exactly (the
        schema check the source boundary owns); rows materialize lazily
        on first :attr:`rows` access and the block stays available via
        :meth:`as_block`."""
        if set(block.columns) != set(relation.attribute_names):
            raise SchemaError(
                f"block columns {sorted(block.columns)} do not match "
                f"relation {relation.name!r} attributes "
                f"{sorted(relation.attribute_names)}"
            )
        out = cls(relation)
        out._rows = None
        out._block = block
        return out

    @classmethod
    def adopt_fused(cls, relation: Relation, fused) -> "Dataset":
        """Wrap a :class:`~repro.exec.fuse.FusedBlock` pipeline without
        gathering its columns — the fused trusted-materialization path.
        Downstream fused operators keep chaining on the selection vector
        via :meth:`peek_fused`; anything that needs real storage (a
        block consumer, row access) breaks the chain through
        :meth:`as_block`, which gathers each column exactly once."""
        if set(fused.names) != set(relation.attribute_names):
            raise SchemaError(
                f"fused chain columns {sorted(fused.names)} do not match "
                f"relation {relation.name!r} attributes "
                f"{sorted(relation.attribute_names)}"
            )
        out = cls(relation)
        out._rows = None
        out._fused = fused
        return out

    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def rows(self) -> List[Row]:
        if self._rows is None:
            # lazy row materialization of a block-/fused-backed dataset
            self._rows = self.as_block().to_rows(
                self._relation.attribute_names
            )
        return self._rows

    def peek_block(self):
        """The columnar backing if this dataset has one, else ``None``
        (no conversion is performed either way)."""
        return self._block

    def peek_fused(self):
        """The fused-pipeline backing if this dataset has one, else
        ``None`` (never materializes)."""
        return self._fused

    def as_block(self):
        """This dataset as a :class:`~repro.exec.block.RowBlock`,
        columnarizing (and caching) on first call for row-backed data
        and gathering a fused chain's surviving columns for
        fused-backed data. The block shares the dataset's values;
        columns are immutable by convention."""
        if self._block is None:
            if self._fused is not None:
                from repro.exec.fuse import materialize_fused

                self._block = materialize_fused(
                    self._fused, self._relation.attribute_names
                )
                self._fused = None
            else:
                from repro.exec.block import RowBlock

                self._block = RowBlock.from_rows(
                    self._relation.attribute_names, self._rows
                )
        return self._block

    @property
    def name(self) -> str:
        return self._relation.name

    def append(self, row: Mapping, validate: bool = True) -> None:
        """Append a row. When ``validate`` is set, unknown columns raise,
        missing columns become NULL, and values are checked (with lossless
        numeric coercion) against the attribute types."""
        rows = self.rows  # materializes a block/fused backing before mutation
        self._block = None  # the columnar form would go stale
        self._fused = None
        self._checked.clear()  # memoized validations would go stale
        if validate:
            unknown = set(row) - set(self._relation.attribute_names)
            if unknown:
                raise SchemaError(
                    f"row has columns {sorted(unknown)} not in relation "
                    f"{self._relation.name!r}"
                )
            normalized: Row = {}
            for attr in self._relation:
                value = row.get(attr.name)
                if value is None:
                    if not attr.nullable:
                        raise SchemaError(
                            f"NULL in non-nullable column "
                            f"{self._relation.name}.{attr.name}"
                        )
                    normalized[attr.name] = None
                else:
                    normalized[attr.name] = coerce_value(attr.dtype, value)
            rows.append(normalized)
        else:
            rows.append(dict(row))

    def extend(self, rows: Iterable[Mapping], validate: bool = True) -> None:
        for row in rows:
            self.append(row, validate=validate)

    def renamed(self, new_name: str) -> "Dataset":
        """Same rows over the relation renamed to ``new_name``."""
        out = Dataset(self._relation.renamed(new_name), validate=False)
        if self._rows is None:
            # block-/fused-backed: share the (immutable-by-convention)
            # columns / the chain (fused ops never mutate a chain)
            out._rows = None
            out._block = self._block
            out._fused = self._fused
        else:
            out._rows = [dict(r) for r in self._rows]
        return out

    def with_relation(self, relation: Relation) -> "Dataset":
        """Same rows, re-validated against ``relation``.

        Validation is memoized per schema: the first call over a given
        (name, dtype, nullable) signature pays the full per-row check
        and caches the normalized result as an immutable
        :class:`~repro.exec.block.RowBlock`; later calls with an
        equivalent schema share that block (every engine re-extracting
        the same source revalidates it for free). Only successful
        validations are cached — bad data raises on every call — and
        any mutation of this dataset drops the memo."""
        signature = tuple(
            (a.name, a.dtype, a.nullable) for a in relation
        )
        cached = self._checked.get(signature)
        if cached is None:
            # full checked path: unknown-column detection, NULL checks,
            # lossless numeric coercion (see append)
            cached = Dataset(relation, self.rows).as_block()
            self._checked[signature] = cached
        return Dataset.adopt_block(relation, cached)

    def head(self, n: int = 5) -> List[Row]:
        return self.rows[:n]

    def column(self, name: str) -> List[object]:
        self._relation.attribute(name)  # raise on unknown column
        if self._rows is None:
            if self._fused is not None:
                # single-column gather through the chain's selection —
                # the other columns stay ungathered
                return list(self._fused.column(name))
            return list(self._block.columns[name])
        return [row[name] for row in self._rows]

    def sort_key(self) -> List[Tuple]:
        """Canonical sortable projection of all rows, for bag comparison."""
        names = self._relation.attribute_names
        return sorted(
            tuple(_orderable(row.get(n)) for n in names) for row in self.rows
        )

    def same_bag(self, other: "Dataset") -> bool:
        """True when both datasets hold the same bag of rows (column
        order and row order are ignored; NULLs compare equal)."""
        if set(self._relation.attribute_names) != set(
            other._relation.attribute_names
        ):
            return False
        names = self._relation.attribute_names
        mine = sorted(
            tuple(_orderable(row.get(n)) for n in names) for row in self.rows
        )
        theirs = sorted(
            tuple(_orderable(row.get(n)) for n in names) for row in other.rows
        )
        return mine == theirs

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __len__(self) -> int:
        if self._rows is None:
            if self._fused is not None:
                return self._fused.length
            return self._block.length
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Dataset({self._relation.name!r}, {len(self)} rows)"

    def to_table(self, limit: int = 20) -> str:
        """Pretty-print as an aligned text table (for examples & debug)."""
        names = list(self._relation.attribute_names)
        rows = [
            ["NULL" if row.get(n) is None else str(row.get(n)) for n in names]
            for row in self.rows[:limit]
        ]
        widths = [
            max([len(n)] + [len(r[i]) for r in rows]) for i, n in enumerate(names)
        ]
        def fmt(cells):
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        lines = [fmt(names), "-+-".join("-" * w for w in widths)]
        lines += [fmt(r) for r in rows]
        if len(self) > limit:
            lines.append(f"... ({len(self) - limit} more rows)")
        return "\n".join(lines)


def _orderable(value: object) -> Tuple:
    """Map a value into a tuple orderable across types (None sorts first,
    then by type name, then value). Floats that equal ints compare equal."""
    if value is None:
        return (0, "", "")
    if isinstance(value, bool):
        return (1, "bool", value)
    if isinstance(value, (int, float)):
        return (1, "num", float(value))
    return (1, type(value).__name__, str(value))


class Instance:
    """A named collection of datasets (e.g. 'the source database')."""

    def __init__(self, datasets: Iterable[Dataset] = ()):
        self._datasets: Dict[str, Dataset] = {}
        for dataset in datasets:
            self.add(dataset)

    def add(self, dataset: Dataset) -> "Instance":
        if dataset.name in self._datasets:
            raise SchemaError(f"instance already holds dataset {dataset.name!r}")
        self._datasets[dataset.name] = dataset
        return self

    def put(self, dataset: Dataset) -> "Instance":
        """Add or replace."""
        self._datasets[dataset.name] = dataset
        return self

    def dataset(self, name: str) -> Dataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise SchemaError(
                f"instance has no dataset {name!r}; has {sorted(self._datasets)}"
            ) from None

    @property
    def names(self) -> List[str]:
        return sorted(self._datasets)

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    def __iter__(self) -> Iterator[Dataset]:
        return iter(self._datasets.values())

    def __len__(self) -> int:
        return len(self._datasets)

    def same_bags(self, other: "Instance") -> bool:
        """True when both instances hold the same dataset names and each
        pair is bag-equal."""
        if set(self.names) != set(other.names):
            return False
        return all(
            self._datasets[name].same_bag(other.dataset(name))
            for name in self._datasets
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}({len(ds)})" for name, ds in sorted(self._datasets.items())
        )
        return f"Instance({inner})"


__all__ = ["Row", "Dataset", "Instance"]
