"""Checkpointed resume for the ETL engine.

The engine snapshots every completed stage's output datasets (and, for
targets, the delivered table) into a :class:`CheckpointStore`. When a
run fails partway, re-running the same job against the same store
restores the completed frontier from disk and executes only the stages
past it; a successful run clears its checkpoints.

Layout: ``<dir>/<job-fingerprint>/<stage-file>.json`` — one JSON file
per completed stage, written atomically (temp file + rename). The
fingerprint hashes the job's *structure* (stage names, types, configs,
links), so editing the job invalidates old checkpoints; it does not
hash the input instance — resuming against different input data is the
caller's responsibility, as with any restartable ETL tool.

Snapshots are torn-write hardened: each file embeds a sha256 checksum
of its payload and is fsynced before the atomic rename, and a snapshot
that fails to parse or to verify is treated as absent (the stage simply
re-runs) rather than poisoning the resume.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import re
from typing import Dict, List, Optional, Tuple

from repro import config
from repro.data.dataset import Dataset
from repro.errors import SerializationError

# the stage modules already own a JSON relation codec; checkpoints reuse
# it so schema round-tripping has exactly one implementation
from repro.etl.stages.access import _relation_from_config, _relation_to_config

def default_checkpoint_dir() -> Optional[str]:
    """Process default checkpoint directory: the
    ``set_default_checkpoint_dir`` override if set, else
    ``REPRO_CHECKPOINT_DIR``, else ``None`` (checkpointing off)."""
    return config.CHECKPOINT_DIR.default()


def set_default_checkpoint_dir(path: Optional[str]) -> None:
    """Override the process default (``None`` restores env resolution)."""
    config.CHECKPOINT_DIR.set(path)


def resolve_checkpoint(explicit) -> Optional["CheckpointStore"]:
    """An engine's effective checkpoint store: a :class:`CheckpointStore`
    is used as-is, a string becomes a store at that directory, ``None``
    defers to the process default (off when that is unset)."""
    if isinstance(explicit, CheckpointStore):
        return explicit
    if explicit is not None:
        if hasattr(explicit, "save_stage") and hasattr(
            explicit, "load_frontier"
        ):
            # store-like proxy (e.g. the fault harness's CrashingStore)
            return explicit
        return CheckpointStore(explicit)
    path = default_checkpoint_dir()
    return CheckpointStore(path) if path else None


def _checksum(body: str) -> str:
    """The integrity digest embedded in every snapshot file."""
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


# -- value codec --------------------------------------------------------------

def encode_value(value):
    """JSON-encode one cell value, tagging non-JSON types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, datetime.datetime):
        return {"$datetime": value.isoformat()}
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {"$record": {k: encode_value(v) for k, v in value.items()}}
    raise SerializationError(
        f"cannot checkpoint value of type {type(value).__name__}: {value!r}"
    )


def decode_value(value):
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if "$datetime" in value:
            return datetime.datetime.fromisoformat(value["$datetime"])
        if "$date" in value:
            return datetime.date.fromisoformat(value["$date"])
        if "$record" in value:
            return {k: decode_value(v) for k, v in value["$record"].items()}
        raise SerializationError(f"unrecognized checkpoint value {value!r}")
    return value


def _encode_dataset(dataset: Dataset) -> dict:
    return {
        "relation": _relation_to_config(dataset.relation),
        "rows": [
            {k: encode_value(v) for k, v in row.items()}
            for row in dataset.rows
        ],
    }


def _decode_dataset(payload: dict) -> Dataset:
    relation = _relation_from_config(payload["relation"])
    rows = [
        {k: decode_value(v) for k, v in row.items()}
        for row in payload["rows"]
    ]
    # checkpointed rows were validated when first produced
    return Dataset.adopt(relation, rows)


class CheckpointStore:
    """Completed-stage snapshots for one or more jobs under a directory."""

    def __init__(self, directory: str):
        self.directory = directory

    # -- identity -------------------------------------------------------------

    @staticmethod
    def fingerprint(job) -> str:
        """A structural digest of the job: stages (name, type, config)
        and links (endpoints, ports, name, kind)."""
        stages = sorted(
            (
                s.uid,
                s.STAGE_TYPE,
                getattr(s, "on_error", None) or "",
                json.dumps(s.to_config(), sort_keys=True, default=str),
            )
            for s in job.nodes
        )
        links = sorted(
            (e.src, e.src_port, e.dst, e.dst_port, e.name, e.kind)
            for e in job.edges
        )
        blob = json.dumps([job.name, stages, links], default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def _job_dir(self, job) -> str:
        return os.path.join(self.directory, self.fingerprint(job))

    @staticmethod
    def _stage_file(stage_uid: str) -> str:
        safe = re.sub(r"[^A-Za-z0-9._-]+", "_", stage_uid)[:60]
        digest = hashlib.sha256(stage_uid.encode("utf-8")).hexdigest()[:8]
        return f"{safe}-{digest}.json"

    # -- writing --------------------------------------------------------------

    def save_stage(
        self,
        job,
        stage_uid: str,
        outputs: List[Tuple[str, Dataset]],
        delivered: Optional[Dataset] = None,
    ) -> None:
        """Snapshot one completed stage: ``outputs`` maps output link
        name → dataset; ``delivered`` is a target stage's loaded table."""
        job_dir = self._job_dir(job)
        os.makedirs(job_dir, exist_ok=True)
        payload = {
            "stage": stage_uid,
            "outputs": [
                {"link": name, **_encode_dataset(data)}
                for name, data in outputs
            ],
            "delivered": (
                None if delivered is None else _encode_dataset(delivered)
            ),
        }
        body = json.dumps(payload, sort_keys=True)
        record = {"checksum": _checksum(body), "payload": payload}
        path = os.path.join(job_dir, self._stage_file(stage_uid))
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(record, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- reading --------------------------------------------------------------

    def load_frontier(
        self, job
    ) -> Dict[str, Tuple[Dict[str, Dataset], Optional[Dataset]]]:
        """All completed stages of this job on disk:
        ``{stage_uid: ({link_name: dataset}, delivered_or_None)}``.
        Unreadable snapshot files are ignored (treated as not done)."""
        job_dir = self._job_dir(job)
        if not os.path.isdir(job_dir):
            return {}
        frontier = {}
        known = {s.uid for s in job.nodes}
        for entry in sorted(os.listdir(job_dir)):
            if not entry.endswith(".json"):
                continue
            path = os.path.join(job_dir, entry)
            try:
                with open(path, "r") as handle:
                    record = json.load(handle)
                payload = record["payload"]
                body = json.dumps(payload, sort_keys=True)
                if record.get("checksum") != _checksum(body):
                    continue  # torn or tampered snapshot: re-run the stage
                stage_uid = payload["stage"]
                if stage_uid not in known:
                    continue
                outputs = {
                    out["link"]: _decode_dataset(out)
                    for out in payload["outputs"]
                }
                delivered = (
                    None
                    if payload.get("delivered") is None
                    else _decode_dataset(payload["delivered"])
                )
            except (
                OSError,
                ValueError,
                KeyError,
                TypeError,
                AttributeError,
                SerializationError,
            ):
                continue
            frontier[stage_uid] = (outputs, delivered)
        return frontier

    def clear(self, job) -> None:
        """Remove this job's snapshots (called after a successful run)."""
        job_dir = self._job_dir(job)
        if not os.path.isdir(job_dir):
            return
        for entry in os.listdir(job_dir):
            if entry.endswith(".json") or entry.endswith(".tmp"):
                try:
                    os.remove(os.path.join(job_dir, entry))
                except OSError:
                    pass
        try:
            os.rmdir(job_dir)
        except OSError:
            pass

    def __repr__(self) -> str:
        return f"CheckpointStore({self.directory!r})"


__all__ = [
    "CheckpointStore",
    "default_checkpoint_dir",
    "set_default_checkpoint_dir",
    "resolve_checkpoint",
    "encode_value",
    "decode_value",
]
