"""Fault-tolerant execution: error policies, retry, checkpoints.

DataStage jobs survive dirty rows and flaky endpoints; this package
gives the reproduction the same tier, shared by all three runtimes:

* :mod:`repro.resilience.policy` — the per-stage/per-operator row error
  policy (``fail_fast`` | ``skip`` | ``reject``), the standard reject
  relation, and :class:`ErrorContext`, the per-stage collector the
  engines and kernels route row-level failures through;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, exponential
  backoff with a deadline behind an injectable clock/sleep;
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointStore`, the
  ETL engine's completed-stage snapshots for restartable runs.

Process-wide defaults follow the same triad pattern as
:mod:`repro.exec` (explicit argument > ``set_default_*`` override >
environment variable): ``REPRO_ON_ERROR``, ``REPRO_MAX_RETRIES``, and
``REPRO_CHECKPOINT_DIR`` — also reachable via the CLI flags
``--on-error``, ``--max-retries``, and ``--checkpoint-dir``. See
``docs/robustness.md``.
"""

from __future__ import annotations

from repro.resilience.checkpoint import (
    CheckpointStore,
    default_checkpoint_dir,
    resolve_checkpoint,
    set_default_checkpoint_dir,
)
from repro.resilience.policy import (
    FAIL_FAST,
    POLICIES,
    REJECT,
    SKIP,
    ErrorContext,
    RejectedRow,
    check_policy,
    default_on_error,
    format_row,
    reject_relation,
    rejects_dataset,
    resolve_on_error,
    set_default_on_error,
)
from repro.resilience.retry import (
    RetryPolicy,
    default_max_retries,
    resolve_retry,
    set_default_max_retries,
)

__all__ = [
    "FAIL_FAST",
    "SKIP",
    "REJECT",
    "POLICIES",
    "check_policy",
    "default_on_error",
    "set_default_on_error",
    "resolve_on_error",
    "reject_relation",
    "rejects_dataset",
    "format_row",
    "RejectedRow",
    "ErrorContext",
    "RetryPolicy",
    "default_max_retries",
    "set_default_max_retries",
    "resolve_retry",
    "CheckpointStore",
    "default_checkpoint_dir",
    "set_default_checkpoint_dir",
    "resolve_checkpoint",
]
