"""Retry with exponential backoff and a deadline.

Transient endpoint failures (a busy table source, a locked SQLite
database) are retried with exponentially growing pauses until either
the attempt budget or the wall-clock deadline runs out. The clock and
the sleep function are injectable so tests — and the fault-injection
suite — run instantly against a fake clock.

Only :class:`~repro.errors.TransientError` (and whatever extra types a
caller lists in ``retry_on``) is retried; a permanent failure
propagates on the first attempt.

Backoff is deterministic by default (the exact schedule
``base_delay * multiplier**n`` capped at ``max_delay``). Opting in with
``jitter=True`` switches to *full jitter*: each pause is drawn
uniformly from ``[0, scheduled_pause]``, decorrelating a thundering
herd of workers that all tripped over the same locked endpoint. The
RNG is injectable (any object with ``uniform``), so seeded tests stay
deterministic.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple, Type

from repro import config
from repro.errors import TransientError, ValidationError
from repro.obs import NULL_OBS


def default_max_retries() -> int:
    """Process default attempt budget: ``set_default_max_retries``
    override if set, else ``REPRO_MAX_RETRIES``, else 0 (no retries)."""
    return config.MAX_RETRIES.default()


def set_default_max_retries(value: Optional[int]) -> None:
    """Override the process default (``None`` restores env resolution)."""
    config.MAX_RETRIES.set(value)


class RetryPolicy:
    """Exponential backoff: delays ``base_delay * multiplier**n`` capped
    at ``max_delay``, at most ``max_retries`` retries, and never past
    ``deadline`` seconds of total elapsed time.

    With ``jitter=True`` each pause becomes ``uniform(0, pause)`` (full
    jitter); ``rng`` takes any ``random.Random``-like object for
    deterministic seeded schedules.

    :ivar clock: 0-arg callable returning seconds (injectable).
    :ivar sleep: 1-arg callable pausing execution (injectable).
    """

    __slots__ = (
        "max_retries",
        "base_delay",
        "multiplier",
        "max_delay",
        "deadline",
        "clock",
        "sleep",
        "jitter",
        "rng",
    )

    def __init__(
        self,
        max_retries: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 5.0,
        deadline: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        jitter: bool = False,
        rng: Optional[random.Random] = None,
    ):
        if max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if base_delay < 0 or max_delay < 0:
            raise ValidationError("delays must be >= 0")
        if multiplier < 1.0:
            raise ValidationError("multiplier must be >= 1")
        self.max_retries = max_retries
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.deadline = deadline
        self.clock = clock
        self.sleep = sleep
        self.jitter = jitter
        self.rng = rng if rng is not None else random.Random()

    def delays(self) -> Tuple[float, ...]:
        """The full *scheduled* backoff (jitter, when enabled, draws
        each actual pause from ``[0, scheduled]`` at call time)."""
        out, delay = [], self.base_delay
        for _ in range(self.max_retries):
            out.append(min(delay, self.max_delay))
            delay *= self.multiplier
        return tuple(out)

    def call(
        self,
        fn: Callable,
        name: str = "call",
        obs=None,
        retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
    ):
        """Invoke ``fn()`` under this policy.

        Emits ``exec.retry.<name>.attempts`` per retry,
        ``exec.retry.<name>.recovered`` when a retry eventually
        succeeds, and ``exec.retry.<name>.exhausted`` when the budget or
        deadline runs out (the last error then propagates)."""
        obs = obs or NULL_OBS
        start = self.clock()
        attempt = 0
        delay = self.base_delay
        while True:
            try:
                result = fn()
            except retry_on as exc:
                attempt += 1
                elapsed = self.clock() - start
                pause = min(delay, self.max_delay)
                if self.jitter:
                    pause = self.rng.uniform(0.0, pause)
                out_of_budget = attempt > self.max_retries
                past_deadline = (
                    self.deadline is not None
                    and elapsed + pause > self.deadline
                )
                if out_of_budget or past_deadline:
                    obs.metrics.count(f"exec.retry.{name}.exhausted")
                    raise exc
                obs.metrics.count(f"exec.retry.{name}.attempts")
                self.sleep(pause)
                delay = delay * self.multiplier
            else:
                if attempt:
                    obs.metrics.count(f"exec.retry.{name}.recovered")
                return result

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_retries={self.max_retries}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier}, "
            f"max_delay={self.max_delay}, deadline={self.deadline})"
        )


def resolve_retry(explicit) -> Optional["RetryPolicy"]:
    """An engine's effective retry policy.

    ``explicit`` may be a :class:`RetryPolicy` (used as-is), an ``int``
    (shorthand for ``RetryPolicy(max_retries=n)``), or ``None`` — then
    the process default attempt budget applies, yielding ``None`` (no
    retry wrapper at all) when that budget is 0."""
    if isinstance(explicit, RetryPolicy):
        return explicit
    if explicit is not None:
        if explicit < 0:
            raise ValidationError("max retries must be >= 0")
        return RetryPolicy(max_retries=int(explicit)) if explicit else None
    budget = default_max_retries()
    return RetryPolicy(max_retries=budget) if budget else None


__all__ = [
    "RetryPolicy",
    "default_max_retries",
    "set_default_max_retries",
    "resolve_retry",
]
