"""Row-level error policies and the reject channel.

A stage (or OHM operator, or mapping) processes rows under one of three
policies:

* ``fail_fast`` — any row error aborts the run (the historical
  behaviour, and still the default);
* ``skip`` — rows that error are dropped, counted in
  ``exec.errors.<stage>.skipped``;
* ``reject`` — rows that error are captured as :class:`RejectedRow`
  records (error code, message, originating stage/link, row index, and
  the offending row) and routed onto the reject channel: a dedicated
  reject link in ETL jobs, or a reject :class:`~repro.data.dataset.
  Dataset` returned alongside results by the OHM and mapping executors.

:class:`ErrorContext` is the per-stage collector: engines create one
per stage execution, kernels call its handler for each failing row, and
the engine publishes the counts to metrics once the stage (including
any degradation retries — see ``docs/robustness.md``) has succeeded.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro import config
from repro.config import check_policy
from repro.data.dataset import Dataset
from repro.errors import INFRASTRUCTURE_ERRORS, STATIC_ERRORS
from repro.schema.model import Relation, relation

FAIL_FAST = "fail_fast"
SKIP = "skip"
REJECT = "reject"
POLICIES = config.ERROR_POLICIES


def default_on_error() -> str:
    """The process-wide default policy: the ``set_default_on_error``
    override if set, else ``REPRO_ON_ERROR``, else ``fail_fast``."""
    return config.ON_ERROR.default()


def set_default_on_error(policy: Optional[str]) -> None:
    """Override the process default (``None`` restores env resolution)."""
    config.ON_ERROR.set(policy)


def resolve_on_error(explicit: Optional[str]) -> str:
    """An engine's effective policy: explicit argument wins, else the
    process default."""
    return config.ON_ERROR.resolve(explicit)


# -- the reject relation ------------------------------------------------------

#: column layout of every reject channel; the ``row`` column holds
#: :func:`format_row` of the offending input row so reject outputs are
#: comparable across runtimes and execution modes.
REJECT_COLUMNS = (
    ("stage", "varchar", False),
    ("link", "varchar", True),
    ("row_index", "int", True),
    ("error_code", "varchar", False),
    ("message", "varchar", True),
    ("row", "varchar", True),
)


def reject_relation(name: str = "rejects") -> Relation:
    """The standard reject-channel relation under the given link name."""
    return relation(name, *REJECT_COLUMNS)


def format_row(row) -> str:
    """Canonical text form of a row: keys sorted, ``repr`` values.

    Deterministic across runtimes and execution modes, so parity suites
    can compare rejected-row multisets textually."""
    if not isinstance(row, dict):
        return repr(row)
    inner = ", ".join(f"{k}: {row[k]!r}" for k in sorted(row))
    return "{" + inner + "}"


class RejectedRow:
    """One row that failed under the ``reject`` policy."""

    __slots__ = ("stage", "link", "row_index", "row", "error_code", "message")

    def __init__(
        self,
        stage: str,
        row_index: Optional[int],
        row,
        error_code: str,
        message: str,
        link: Optional[str] = None,
    ):
        self.stage = stage
        self.link = link
        self.row_index = row_index
        self.row = row
        self.error_code = error_code
        self.message = message

    def as_reject_row(self) -> dict:
        """This record as a row of the standard reject relation."""
        return {
            "stage": self.stage,
            "link": self.link,
            "row_index": self.row_index,
            "error_code": self.error_code,
            "message": self.message,
            "row": format_row(self.row),
        }

    def __repr__(self) -> str:
        return (
            f"RejectedRow(stage={self.stage!r}, row_index={self.row_index}, "
            f"error_code={self.error_code!r})"
        )


def rejects_dataset(rejected: List[RejectedRow], name: str = "rejects") -> Dataset:
    """Materialize rejected rows as a dataset of the reject relation."""
    return Dataset.adopt(
        reject_relation(name), [r.as_reject_row() for r in rejected]
    )


class ErrorContext:
    """Per-stage row-error collector.

    The engine creates one per stage execution and passes its
    :meth:`kernel_handler` into the row kernels as ``on_error``. Under
    ``fail_fast`` the handler is ``None`` and kernels keep their
    unguarded hot path. Collected rows/counts are *pending* until the
    stage attempt succeeds: the degradation ladder calls :meth:`reset`
    before each retry so a failed attempt's partial rejects are not
    double-counted, and :meth:`publish` emits metrics exactly once.
    """

    __slots__ = ("stage", "policy", "rejected", "skipped", "redirected")

    def __init__(self, stage: str, policy: str):
        self.stage = stage
        self.policy = check_policy(policy)
        self.rejected: List[RejectedRow] = []
        self.skipped = 0
        #: rows whose error was redirected onto an in-band output (the
        #: FilterStage reject output) rather than the generic channel.
        self.redirected = 0

    @property
    def handling(self) -> bool:
        """Whether row errors are absorbed rather than propagated."""
        return self.policy != FAIL_FAST

    def reset(self) -> None:
        """Drop pending state (called before each execution attempt)."""
        self.rejected = []
        self.skipped = 0
        self.redirected = 0

    def record(
        self,
        row_index: Optional[int],
        row,
        exc: BaseException,
        link: Optional[str] = None,
    ) -> None:
        if isinstance(exc, INFRASTRUCTURE_ERRORS):
            # not a data error: let retry / the degradation ladder see it
            raise exc
        if isinstance(exc, STATIC_ERRORS):
            # a deterministic plan defect (bad schema, unparseable or
            # ill-typed expression): absorbing it per row would skip or
            # reject *every* row — surface it instead
            raise exc
        if self.policy == REJECT:
            self.rejected.append(
                RejectedRow(
                    self.stage,
                    row_index,
                    dict(row) if isinstance(row, dict) else row,
                    type(exc).__name__,
                    str(exc),
                    link=link,
                )
            )
        else:
            self.skipped += 1

    def kernel_handler(
        self,
        row_of: Optional[Callable] = None,
        link: Optional[str] = None,
    ) -> Optional[Callable]:
        """An ``on_error(index, item, exc)`` callback for the kernels,
        or ``None`` under ``fail_fast`` (kernels then keep their
        unguarded fast path). ``row_of`` maps the kernel's item (e.g. a
        bound :class:`~repro.expr.evaluator.Environment`) back to the
        source row recorded on the reject channel."""
        if not self.handling:
            return None

        def handle(index, item, exc):
            row = row_of(item) if row_of is not None else item
            self.record(index, row, exc, link=link)

        return handle

    def publish(self, metrics, span=None) -> None:
        """Emit ``exec.errors.*`` counters (and span attributes) for the
        committed attempt."""
        total = len(self.rejected) + self.skipped + self.redirected
        if not total:
            return
        if self.rejected:
            metrics.count(f"exec.errors.{self.stage}.rejected", len(self.rejected))
        if self.skipped:
            metrics.count(f"exec.errors.{self.stage}.skipped", self.skipped)
        if self.redirected:
            metrics.count(
                f"exec.errors.{self.stage}.redirected", self.redirected
            )
        metrics.count("exec.errors.total", total)
        if span is not None:
            span.set(
                rejected=len(self.rejected),
                skipped=self.skipped,
                redirected=self.redirected,
            )


__all__ = [
    "FAIL_FAST",
    "SKIP",
    "REJECT",
    "POLICIES",
    "check_policy",
    "default_on_error",
    "set_default_on_error",
    "resolve_on_error",
    "REJECT_COLUMNS",
    "reject_relation",
    "rejects_dataset",
    "format_row",
    "RejectedRow",
    "ErrorContext",
]
