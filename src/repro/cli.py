"""Command-line interface: convert between ETL jobs and mappings.

::

    orchid etl-to-mappings job.xml -o mappings.json
    orchid mappings-to-etl mappings.json -o job.xml
    orchid show job.xml              # render the OHM instance
    orchid pushdown job.xml          # print the hybrid SQL + ETL plan
    orchid optimize job.xml -o job2.xml   # OHM-level rewrites, redeployed
    orchid export-ohm job.xml -o g.json   # persist the abstract layer
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.fasttrack.orchid import Orchid


def _read(path: str) -> str:
    with open(path, "r") as handle:
        return handle.read()


def _write(text: str, path: Optional[str]) -> None:
    if path:
        with open(path, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
        if not text.endswith("\n"):
            sys.stdout.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="orchid",
        description="Convert between ETL jobs and schema mappings via the "
        "Operator Hub Model.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "etl-to-mappings", help="compile a job XML into composed mappings"
    )
    p.add_argument("job", help="path to the job XML document")
    p.add_argument("-o", "--output", help="write mappings JSON here")
    p.add_argument(
        "--notation",
        choices=["json", "query", "logic"],
        default="json",
        help="output notation (default: json)",
    )

    p = sub.add_parser(
        "mappings-to-etl", help="deploy a mappings JSON document as a job"
    )
    p.add_argument("mappings", help="path to the mappings JSON document")
    p.add_argument("-o", "--output", help="write job XML here")
    p.add_argument(
        "--plan", action="store_true", help="also print the deployment plan"
    )

    p = sub.add_parser("show", help="print the OHM instance of a job")
    p.add_argument("job", help="path to the job XML document")
    p.add_argument(
        "--dot", action="store_true", help="emit GraphViz instead of text"
    )

    p = sub.add_parser(
        "pushdown", help="print the hybrid SQL + ETL deployment of a job"
    )
    p.add_argument("job", help="path to the job XML document")

    p = sub.add_parser(
        "optimize",
        help="import a job, rewrite it at the OHM level, redeploy it",
    )
    p.add_argument("job", help="path to the job XML document")
    p.add_argument("-o", "--output", help="write the optimized job XML here")

    p = sub.add_parser(
        "export-ohm", help="persist a job's OHM instance as JSON"
    )
    p.add_argument("job", help="path to the job XML document")
    p.add_argument("-o", "--output", help="write the OHM JSON here")

    args = parser.parse_args(argv)
    orchid = Orchid()

    if args.command == "etl-to-mappings":
        mappings = orchid.etl_to_mappings(_read(args.job))
        if args.notation == "query":
            _write(mappings.to_text(), args.output)
        elif args.notation == "logic":
            _write(
                "\n".join(m.to_logical_notation() for m in mappings),
                args.output,
            )
        else:
            _write(Orchid.export_mappings_json(mappings), args.output)
        return 0

    if args.command == "mappings-to-etl":
        job, plan = orchid.mappings_to_etl(_read(args.mappings))
        if args.plan:
            sys.stderr.write(plan.describe() + "\n")
        _write(Orchid.export_etl_xml(job), args.output)
        return 0

    if args.command == "show":
        graph = orchid.import_etl(_read(args.job))
        if args.dot:
            _write(graph.to_dot(), None)
        else:
            lines = [f"OHM instance {graph.name!r}:"]
            for op in graph.topological_order():
                lines.append(f"  {op!r}")
            _write("\n".join(lines), None)
        return 0

    if args.command == "pushdown":
        graph = orchid.import_etl(_read(args.job))
        _write(orchid.to_hybrid(graph).describe(), None)
        return 0

    if args.command == "optimize":
        graph = orchid.import_etl(_read(args.job))
        report = orchid.optimize(graph)
        sys.stderr.write(f"{report!r}\n")
        job, _plan = orchid.to_etl(graph)
        _write(Orchid.export_etl_xml(job), args.output)
        return 0

    if args.command == "export-ohm":
        from repro.ohm import graph_to_json

        graph = orchid.import_etl(_read(args.job))
        _write(graph_to_json(graph), args.output)
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
