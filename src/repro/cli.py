"""Command-line interface: convert between ETL jobs and mappings.

::

    orchid etl-to-mappings job.xml -o mappings.json
    orchid mappings-to-etl mappings.json -o job.xml
    orchid show job.xml              # render the OHM instance
    orchid pushdown job.xml          # print the hybrid SQL + ETL plan
    orchid optimize job.xml -o job2.xml   # OHM-level rewrites, redeployed
    orchid export-ohm job.xml -o g.json   # persist the abstract layer
    orchid lint job.xml              # static analysis, no execution

``lint`` reports ORC-coded diagnostics (``docs/analysis.md``) as text or
``--format json`` and exits 1 on errors (with ``--strict``, on warnings
too). ``--check`` on any subcommand makes every plan the invocation
executes pass the same analysis first (equivalent to REPRO_CHECK=1).

Every subcommand additionally accepts ``--trace`` (print the span tree
of the run), ``--stats {json,text}`` (print the metrics registry),
``--interpreted`` (evaluate expressions with the tree-walking oracle
instead of the compiler), ``--row-mode`` (force row-at-a-time execution
even when ``REPRO_BATCH`` enables the columnar tier), and
``--batch-size N`` (enable columnar batches of N rows — see
``docs/execution.md``), and ``--workers N`` (run independent
stages/operators and partitioned kernels on N worker threads — see
``docs/execution-model.md``). Trace/stats reports go to *stderr* so the
primary document on stdout stays machine-readable; see
``docs/observability.md`` for the span and metric naming conventions.

Fault-tolerance flags (``docs/robustness.md``) set the matching process
defaults for anything the invocation executes: ``--on-error
{fail_fast,skip,reject}`` (row error policy, REPRO_ON_ERROR),
``--max-retries N`` (transient-failure retry budget, REPRO_MAX_RETRIES)
and ``--checkpoint-dir DIR`` (resumable ETL runs, REPRO_CHECKPOINT_DIR).

Supervision flags: ``--deadline SECONDS`` (cooperative wall-clock
cancellation, REPRO_DEADLINE; a cancelled run exits with status 4 and
prints the committed frontier) and ``--memory-budget ROWS`` (blocking
operators above the resident-row budget spill to temp-file runs,
REPRO_MEMORY_BUDGET).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import set_default_check
from repro.config import MODES
from repro.errors import RunCancelled
from repro.exec import (
    set_default_batch_size,
    set_default_batched,
    set_default_compiled,
    set_default_fused,
    set_default_mode,
    set_default_parallel,
    set_default_workers,
)
from repro.fasttrack.orchid import Orchid
from repro.obs import Observability
from repro.resilience import (
    POLICIES,
    set_default_checkpoint_dir,
    set_default_max_retries,
    set_default_on_error,
)
from repro.supervision import (
    set_default_deadline,
    set_default_memory_budget,
)


def _read(path: str) -> str:
    with open(path, "r") as handle:
        return handle.read()


def _write(text: str, path: Optional[str]) -> None:
    if path:
        with open(path, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
        if not text.endswith("\n"):
            sys.stdout.write("\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="orchid",
        description="Convert between ETL jobs and schema mappings via the "
        "Operator Hub Model.",
    )
    observability = argparse.ArgumentParser(add_help=False)
    observability.add_argument(
        "--trace",
        action="store_true",
        help="print the span tree of this run to stderr",
    )
    observability.add_argument(
        "--stats",
        choices=["json", "text"],
        help="print pipeline metrics (counters/gauges/timers) to stderr",
    )
    observability.add_argument(
        "--interpreted",
        action="store_true",
        help="evaluate expressions with the tree-walking interpreter "
        "instead of the expression compiler (the semantic oracle; "
        "equivalent to REPRO_COMPILED=0)",
    )
    observability.add_argument(
        "--row-mode",
        action="store_true",
        help="force row-at-a-time execution, overriding REPRO_BATCH "
        "(equivalent to REPRO_BATCH=0)",
    )
    observability.add_argument(
        "--batch-size",
        type=int,
        metavar="N",
        help="run block-capable operators over columnar batches of N "
        "rows (enables batched mode; equivalent to REPRO_BATCH=N)",
    )
    observability.add_argument(
        "--no-fuse",
        action="store_true",
        help="disable selection-vector pipeline fusion and run batched "
        "operators through the per-operator block kernels (equivalent "
        "to REPRO_FUSE=0; only meaningful in batched mode — see "
        "docs/execution-model.md)",
    )
    observability.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="run independent stages/operators and partitioned "
        "join/aggregate kernels on N worker threads; N=1 forces serial "
        "(equivalent to REPRO_WORKERS plus REPRO_PARALLEL=1 — see "
        "docs/execution-model.md)",
    )
    observability.add_argument(
        "--mode",
        choices=list(MODES),
        help="pin the execution tier (rows/block/parallel) or let the "
        "cost model pick per run from the input size (auto; equivalent "
        "to REPRO_MODE — see docs/planning.md)",
    )
    observability.add_argument(
        "--on-error",
        choices=list(POLICIES),
        help="row-level error policy for everything this invocation "
        "executes (equivalent to REPRO_ON_ERROR)",
    )
    observability.add_argument(
        "--max-retries",
        type=int,
        metavar="N",
        help="retry transient source/target failures up to N times with "
        "exponential backoff (equivalent to REPRO_MAX_RETRIES)",
    )
    observability.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="snapshot completed ETL stages under DIR so interrupted "
        "runs resume from the last good frontier (equivalent to "
        "REPRO_CHECKPOINT_DIR)",
    )
    observability.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="cancel any run cooperatively once it has used SECONDS of "
        "wall clock; exits with status 4 and the committed frontier "
        "(equivalent to REPRO_DEADLINE — see docs/robustness.md)",
    )
    observability.add_argument(
        "--memory-budget",
        type=int,
        metavar="ROWS",
        help="cap blocking operators (join builds, aggregation state, "
        "sort buffers) at ROWS resident rows; overruns spill to "
        "temp-file runs with identical results (equivalent to "
        "REPRO_MEMORY_BUDGET)",
    )
    observability.add_argument(
        "--check",
        action="store_true",
        help="statically analyze every plan before running it and refuse "
        "statically-broken ones (equivalent to REPRO_CHECK=1 — see "
        "docs/analysis.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "etl-to-mappings",
        parents=[observability],
        help="compile a job XML into composed mappings",
    )
    p.add_argument("job", help="path to the job XML document")
    p.add_argument("-o", "--output", help="write mappings JSON here")
    p.add_argument(
        "--notation",
        choices=["json", "query", "logic"],
        default="json",
        help="output notation (default: json)",
    )

    p = sub.add_parser(
        "mappings-to-etl",
        parents=[observability],
        help="deploy a mappings JSON document as a job",
    )
    p.add_argument("mappings", help="path to the mappings JSON document")
    p.add_argument("-o", "--output", help="write job XML here")
    p.add_argument(
        "--plan", action="store_true", help="also print the deployment plan"
    )

    p = sub.add_parser(
        "show",
        parents=[observability],
        help="print the OHM instance of a job",
    )
    p.add_argument("job", help="path to the job XML document")
    p.add_argument(
        "--dot", action="store_true", help="emit GraphViz instead of text"
    )

    p = sub.add_parser(
        "pushdown",
        parents=[observability],
        help="print the hybrid SQL + ETL deployment of a job",
    )
    p.add_argument("job", help="path to the job XML document")
    p.add_argument(
        "--explain",
        action="store_true",
        help="also print the per-operator cost plan (estimated "
        "cardinalities and row-unit costs)",
    )
    p.add_argument(
        "--sample",
        type=int,
        metavar="N",
        help="build a statistics catalog from N seeded synthetic rows "
        "per source relation, enabling cost-based placement",
    )

    p = sub.add_parser(
        "explain",
        parents=[observability],
        help="run a job over synthetic data and print estimated vs "
        "actual cardinalities and costs per operator",
    )
    p.add_argument("job", help="path to the job XML document")
    p.add_argument(
        "--sample",
        type=int,
        default=1000,
        metavar="N",
        help="synthetic rows per source relation (default: 1000)",
    )

    p = sub.add_parser(
        "optimize",
        parents=[observability],
        help="import a job, rewrite it at the OHM level, redeploy it",
    )
    p.add_argument("job", help="path to the job XML document")
    p.add_argument("-o", "--output", help="write the optimized job XML here")

    p = sub.add_parser(
        "export-ohm",
        parents=[observability],
        help="persist a job's OHM instance as JSON",
    )
    p.add_argument("job", help="path to the job XML document")
    p.add_argument("-o", "--output", help="write the OHM JSON here")

    p = sub.add_parser(
        "lint",
        parents=[observability],
        help="statically analyze a job without executing it "
        "(docs/analysis.md lists the ORC diagnostic codes)",
    )
    p.add_argument("job", help="path to the job XML document")
    p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero on warnings too, not just errors",
    )
    p.add_argument(
        "--ohm",
        action="store_true",
        help="lint the compiled OHM instance (pushdown-placement lints) "
        "instead of the ETL job layer",
    )

    args = parser.parse_args(argv)
    obs = Observability(
        trace=bool(args.trace), stats=args.stats is not None
    )
    if args.row_mode and args.batch_size is not None:
        parser.error("--row-mode and --batch-size are mutually exclusive")
    if args.interpreted:
        set_default_compiled(False)
    if args.row_mode:
        set_default_batched(False)
    elif args.batch_size is not None:
        if args.batch_size < 1:
            parser.error("--batch-size must be >= 1")
        set_default_batched(True)
        set_default_batch_size(args.batch_size)
    if args.no_fuse:
        set_default_fused(False)
    if args.workers is not None:
        if args.workers < 1:
            parser.error("--workers must be >= 1")
        set_default_workers(args.workers)
        set_default_parallel(args.workers > 1)
    if args.mode:
        set_default_mode(args.mode)
    if args.max_retries is not None and args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.on_error:
        set_default_on_error(args.on_error)
    if args.max_retries is not None:
        set_default_max_retries(args.max_retries)
    if args.checkpoint_dir:
        set_default_checkpoint_dir(args.checkpoint_dir)
    if args.deadline is not None:
        if args.deadline <= 0:
            parser.error("--deadline must be > 0 seconds")
        set_default_deadline(args.deadline)
    if args.memory_budget is not None:
        if args.memory_budget < 1:
            parser.error("--memory-budget must be >= 1 row")
        set_default_memory_budget(args.memory_budget)
    if args.check:
        set_default_check(True)
    orchid = Orchid(obs=obs)
    try:
        return _dispatch(args, orchid)
    except RunCancelled as exc:
        # a deadline or cancel is an orderly outcome, not a crash:
        # report the committed (resumable) frontier and exit distinctly
        frontier = ", ".join(exc.frontier) if exc.frontier else "(none)"
        sys.stderr.write(
            f"run cancelled ({exc.reason}): {exc}\n"
            f"committed frontier: {frontier}\n"
        )
        return 4
    finally:
        if args.interpreted:
            set_default_compiled(None)
        if args.row_mode or args.batch_size is not None:
            set_default_batched(None)
            set_default_batch_size(None)
        if args.no_fuse:
            set_default_fused(None)
        if args.workers is not None:
            set_default_workers(None)
            set_default_parallel(None)
        if args.mode:
            set_default_mode(None)
        if args.on_error:
            set_default_on_error(None)
        if args.max_retries is not None:
            set_default_max_retries(None)
        if args.checkpoint_dir:
            set_default_checkpoint_dir(None)
        if args.deadline is not None:
            set_default_deadline(None)
        if args.memory_budget is not None:
            set_default_memory_budget(None)
        if args.check:
            set_default_check(None)
        if args.trace:
            sys.stderr.write(obs.tracer.to_text() + "\n")
        if args.stats == "json":
            sys.stderr.write(obs.metrics.to_json() + "\n")
        elif args.stats == "text":
            sys.stderr.write(obs.metrics.to_text() + "\n")


def _synthetic_instance(graph, n_rows: int):
    """A seeded synthetic instance covering every table source of an
    OHM graph (provider-backed sources generate their own data)."""
    from repro.ohm.operators import Source
    from repro.workloads import synthesize_instance

    return synthesize_instance(
        [
            op.relation
            for op in graph.operators
            if isinstance(op, Source) and op.provider is None
        ],
        n_rows,
    )


def _dispatch(args: argparse.Namespace, orchid: Orchid) -> int:
    if args.command == "etl-to-mappings":
        mappings = orchid.etl_to_mappings(_read(args.job))
        if args.notation == "query":
            _write(mappings.to_text(), args.output)
        elif args.notation == "logic":
            _write(
                "\n".join(m.to_logical_notation() for m in mappings),
                args.output,
            )
        else:
            _write(Orchid.export_mappings_json(mappings), args.output)
        return 0

    if args.command == "mappings-to-etl":
        job, plan = orchid.mappings_to_etl(_read(args.mappings))
        if args.plan:
            sys.stderr.write(plan.describe() + "\n")
        _write(Orchid.export_etl_xml(job), args.output)
        return 0

    if args.command == "show":
        graph = orchid.import_etl(_read(args.job))
        if args.dot:
            _write(graph.to_dot(), None)
        else:
            lines = [f"OHM instance {graph.name!r}:"]
            for op in graph.topological_order():
                lines.append(f"  {op!r}")
            _write("\n".join(lines), None)
        return 0

    if args.command == "pushdown":
        from repro.cost import CardinalityEstimator, catalog_for, explain_graph

        graph = orchid.import_etl(_read(args.job))
        if args.sample:
            if args.sample < 1:
                raise SystemExit("--sample must be >= 1")
            orchid.catalog = catalog_for(
                _synthetic_instance(graph, args.sample)
            )
        plan = orchid.to_hybrid(graph)
        out = [plan.describe()]
        if args.explain:
            graph.propagate_schemas()
            out.append(explain_graph(
                graph,
                estimate=plan.estimate,
                estimator=CardinalityEstimator(orchid.catalog),
            ))
        _write("\n\n".join(out), None)
        return 0

    if args.command == "explain":
        from repro.cost import (
            CardinalityEstimator,
            actuals_from_edges,
            actuals_from_metrics,
            catalog_for,
            explain_graph,
        )
        from repro.obs import Observability as _Obs
        from repro.ohm.engine import OhmExecutor

        if args.sample < 1:
            raise SystemExit("--sample must be >= 1")
        graph = orchid.import_etl(_read(args.job))
        graph.propagate_schemas()
        instance = _synthetic_instance(graph, args.sample)
        catalog = catalog_for(instance)
        estimate = CardinalityEstimator(catalog).estimate_graph(graph)
        run_obs = _Obs(stats=True)
        executor = OhmExecutor(obs=run_obs, catalog=catalog)
        _targets, edge_data = executor.run(graph, instance)
        actuals = actuals_from_metrics(run_obs.metrics)
        actuals.update(actuals_from_edges(edge_data))
        _write(
            explain_graph(graph, estimate=estimate, actuals=actuals), None
        )
        return 0

    if args.command == "optimize":
        graph = orchid.import_etl(_read(args.job))
        report = orchid.optimize(graph)
        sys.stderr.write(f"{report!r}\n")
        job, _plan = orchid.to_etl(graph)
        _write(Orchid.export_etl_xml(job), args.output)
        return 0

    if args.command == "export-ohm":
        from repro.ohm import graph_to_json

        graph = orchid.import_etl(_read(args.job))
        _write(graph_to_json(graph), args.output)
        return 0

    if args.command == "lint":
        from repro.analysis import AnalysisReport
        from repro.errors import MappingError, ParseError, SchemaError
        from repro.etl.xmlio import job_from_xml

        try:
            job = job_from_xml(_read(args.job))
        except (ParseError, SchemaError, MappingError) as exc:
            # the document never became a plan: a one-diagnostic report
            report = AnalysisReport(subject=args.job)
            report.emit("ORC001", str(exc))
        else:
            if args.ohm:
                from repro.analysis import analyze_graph

                report = analyze_graph(
                    orchid.import_etl(job), registry=job.registry
                )
            else:
                from repro.analysis import analyze_job

                report = analyze_job(job)
        if args.format == "json":
            _write(report.to_json(), None)
        else:
            _write(report.to_text(), None)
        return report.exit_code(strict=args.strict)

    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
